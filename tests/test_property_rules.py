"""Property-based tests: the refinement rules are total and consistent."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.interval import Interval
from repro.refine.lsbrules import LsbPolicy, decide_lsb, lsb_from_sigma
from repro.refine.monitors import ErrorSummary, SignalRecord
from repro.refine.msbrules import MsbPolicy, decide_msb

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
small_pos = st.floats(min_value=1e-9, max_value=1e3,
                      allow_nan=False, allow_infinity=False)


@st.composite
def records(draw):
    observed = draw(st.booleans())
    if observed:
        a = draw(finite)
        b = draw(finite)
        stat_min, stat_max = min(a, b), max(a, b)
        n = draw(st.integers(min_value=1, max_value=10000))
    else:
        stat_min = stat_max = math.nan
        n = 0
    prop_kind = draw(st.sampled_from(["empty", "finite", "inf"]))
    if prop_kind == "empty":
        prop = Interval()
    elif prop_kind == "inf":
        prop = Interval(-math.inf, math.inf)
    else:
        a = draw(finite)
        b = draw(finite)
        prop = Interval(min(a, b), max(a, b))
    count = draw(st.integers(min_value=0, max_value=10000))
    std = draw(st.floats(min_value=0, max_value=10))
    mean = draw(st.floats(min_value=-1, max_value=1))
    max_abs = max(abs(mean) + std, draw(st.floats(min_value=0,
                                                  max_value=20)))
    return SignalRecord(
        name="s", is_register=draw(st.booleans()), dtype=None, role="",
        n_assign=n, stat_min=stat_min, stat_max=stat_max,
        frac_bits=draw(st.integers(min_value=0, max_value=48)),
        prop=prop,
        err_consumed=ErrorSummary(count, mean, std, max_abs),
        err_produced=ErrorSummary(count, mean, std, max_abs),
        val_rms=draw(st.floats(min_value=0, max_value=100)),
    )


class TestMsbRuleTotality:
    @given(records())
    @settings(max_examples=300)
    def test_always_returns_a_decision(self, rec):
        d = decide_msb(rec)
        assert d.mode in ("error", "wrap", "saturate")
        assert d.case in ("a", "b", "c", "explosion", "unobserved",
                          "no-prop")

    @given(records())
    @settings(max_examples=300)
    def test_decided_msb_covers_observation(self, rec):
        d = decide_msb(rec)
        if d.msb is None or not rec.observed:
            return
        if isinstance(d.msb, float):
            return
        if d.mode == "saturate":
            return  # saturation intentionally clips beyond the range
        stat = rec.stat_msb()
        if stat is not None:
            assert d.msb >= stat

    @given(records())
    @settings(max_examples=200)
    def test_explosion_always_annotatable(self, rec):
        d = decide_msb(rec)
        if d.case == "explosion":
            assert d.needs_range_annotation


class TestLsbRuleTotality:
    @given(records())
    @settings(max_examples=300)
    def test_always_returns_a_decision(self, rec):
        d = decide_lsb(rec)
        assert d.mode in ("round", "floor")
        if rec.err_produced.count > 0 and not d.divergent:
            assert d.lsb is not None
            assert 0 <= d.lsb <= LsbPolicy().max_frac_bits

    @given(small_pos, st.floats(min_value=0.25, max_value=8),
           st.integers(min_value=1, max_value=32))
    def test_lsb_monotone_in_sigma(self, sigma, k_w, cap):
        f1 = lsb_from_sigma(sigma, k_w, cap)
        f2 = lsb_from_sigma(sigma * 4, k_w, cap)
        assert f2 <= f1

    @given(small_pos, st.integers(min_value=1, max_value=32))
    def test_lsb_step_is_sufficient(self, sigma, cap):
        # The chosen step never exceeds k_w * sigma (unless capped).
        k_w = 2.0
        f = lsb_from_sigma(sigma, k_w, cap)
        if 0 < f < cap:
            assert 2.0 ** -f <= k_w * sigma + 1e-12
