"""The three bounded properties against the gallery's documented verdicts.

Every gallery check is discharged with the self-contained enumeration
backend; when z3 is installed the same checks are repeated there and
the verdicts must agree (the acceptance bar of the verifier).
"""

import pytest

from repro.core.dtype import DType
from repro.refine.flow import Design
from repro.signal import Reg, Sig
from repro.signal.ops import fmax
from repro.verify import (COUNTEREXAMPLE, PROVED, UNKNOWN, Envelope,
                          VerifyBudget, VerifyError,
                          prove_no_limit_cycle, prove_no_overflow,
                          prove_response_error, trace_design,
                          z3_available)
from repro.verify.gallery import (AccRoundWrapDesign, FirCoarseDesign,
                                  FirOkDesign, FirWrapBugDesign,
                                  GALLERY_ENVELOPE, gallery)

_PROVERS = {
    "no-overflow": prove_no_overflow,
    "no-limit-cycle": prove_no_limit_cycle,
    "response-error": prove_response_error,
}


def _run_check(entry, prop, kwargs, backend):
    return _PROVERS[prop](entry.factory, backend=backend, **kwargs)


def _all_checks():
    for entry in gallery().values():
        for prop, kwargs, expected in entry.checks:
            yield pytest.param(entry, prop, kwargs, expected,
                               id="%s-%s" % (entry.name, prop))


class TestGalleryEnumeration:
    @pytest.mark.parametrize("entry,prop,kwargs,expected",
                             list(_all_checks()))
    def test_documented_verdict(self, entry, prop, kwargs, expected):
        v = _run_check(entry, prop, kwargs, "enumeration")
        assert v.status == expected, v.describe()
        if expected == COUNTEREXAMPLE:
            assert v.counterexample is not None
            assert v.counterexample.replayed or prop == "response-error"

    def test_wrap_bug_counterexample_locates_output(self):
        v = prove_no_overflow(FirWrapBugDesign, GALLERY_ENVELOPE, k=3,
                              backend="enumeration")
        cex = v.counterexample
        assert cex.signal == "y"
        assert cex.replayed
        # taps sum to 1.25 > 0.9375 = max of the wrapping <5,4> word.
        assert abs(cex.value) > 0.9375

    def test_limit_cycle_is_period_one_fixed_point(self):
        v = prove_no_limit_cycle(AccRoundWrapDesign, k=2,
                                 backend="enumeration")
        assert v.status == COUNTEREXAMPLE
        cex = v.counterexample
        assert cex.init_state and cex.replayed
        assert all(all(s == 0.0 for s in series)
                   for series in cex.inputs.values())

    def test_response_error_tight_bound_violated(self):
        # half-LSB rounding error is exactly 0.0625; a tighter bound
        # must produce a concrete violating stimulus.
        v = prove_response_error(FirCoarseDesign, bound=0.03125, k=3,
                                 envelope=GALLERY_ENVELOPE,
                                 backend="enumeration")
        assert v.status == COUNTEREXAMPLE
        assert abs(v.counterexample.value) > 0.03125


class TestUnknownPaths:
    def test_budget_exhaustion_is_unknown(self):
        # fir-ok folds to FALSE by interval analysis alone (no search),
        # so exhaust the budget on a design whose violation is live.
        v = prove_no_overflow(FirWrapBugDesign, GALLERY_ENVELOPE, k=3,
                              backend="enumeration",
                              budget=VerifyBudget(max_assignments=10))
        assert v.status == UNKNOWN
        assert "10" in v.reason or "budget" in v.reason.lower()

    def test_interval_fold_proves_without_search(self):
        # headroom design: PROVED even under a tiny assignment budget.
        v = prove_no_overflow(FirOkDesign, GALLERY_ENVELOPE, k=3,
                              backend="enumeration",
                              budget=VerifyBudget(max_assignments=1))
        assert v.status == PROVED

    def test_untyped_state_limit_cycle_unknown(self):
        class Untyped(Design):
            name = "untyped-acc"
            inputs = ("x",)

            def build(self, ctx):
                self.x = Sig("x", dtype=DType("TI", 5, 3, "tc",
                                              "saturate", "round"))
                self.acc = Reg("acc")

            def run(self, ctx, n):
                for _ in range(int(n)):
                    self.x.assign(0.25)
                    self.acc.assign(self.acc * 0.5 + self.x)
                    ctx.tick()

        v = prove_no_limit_cycle(Untyped, k=2, backend="enumeration")
        assert v.status == UNKNOWN
        assert "dtype" in v.reason

    def test_nonlinear_design_response_error_unknown(self):
        class NonLti(Design):
            name = "nonlti"
            inputs = ("x",)
            output = "y"

            def build(self, ctx):
                t = DType("TI", 5, 3, "tc", "saturate", "round")
                self.x = Sig("x", dtype=t)
                self.y = Sig("y", dtype=t)

            def run(self, ctx, n):
                for _ in range(int(n)):
                    self.x.assign(0.25)
                    self.y.assign(fmax(self.x, 0.0))
                    ctx.tick()

        v = prove_response_error(NonLti, bound=0.5, k=2,
                                 envelope=GALLERY_ENVELOPE,
                                 backend="enumeration")
        assert v.status == UNKNOWN

    def test_stateless_design_limit_cycle_trivially_proved(self):
        class Stateless(Design):
            name = "stateless"
            inputs = ("x",)
            output = "y"

            def build(self, ctx):
                t = DType("TI", 5, 3, "tc", "saturate", "round")
                self.x = Sig("x", dtype=t)
                self.y = Sig("y", dtype=t)

            def run(self, ctx, n):
                for _ in range(int(n)):
                    self.x.assign(0.5)
                    self.y.assign(self.x * 0.5)
                    ctx.tick()

        v = prove_no_limit_cycle(Stateless, k=3, backend="enumeration")
        assert v.status == PROVED


class TestVerdictPlumbing:
    def test_finding_carries_dg_code_and_payload(self):
        v = prove_no_overflow(FirWrapBugDesign, GALLERY_ENVELOPE, k=3,
                              backend="enumeration")
        f = v.to_finding()
        assert f.rule_id == "DG211"
        assert f.severity == "error"
        assert f.data["counterexample"]["signal"] == "y"
        assert f.data["envelope"]["x"] == [-1.0, 1.0]

    def test_counters_move(self):
        from repro.obs import counters
        counters.reset()
        prove_no_overflow(FirOkDesign, GALLERY_ENVELOPE, k=2,
                          backend="enumeration")
        prove_no_overflow(FirWrapBugDesign, GALLERY_ENVELOPE, k=3,
                          backend="enumeration")
        assert counters.get("verify.checks") == 2
        assert counters.get("verify.proved") == 1
        assert counters.get("verify.counterexample") == 1
        assert counters.get("verify.replays") == 1

    def test_bad_bound_raises(self):
        with pytest.raises(VerifyError):
            prove_response_error(FirCoarseDesign, bound=-1.0, k=2,
                                 envelope=GALLERY_ENVELOPE)


@pytest.mark.skipif(not z3_available(), reason="z3-solver not installed")
class TestBackendAgreement:
    """Both backends must return the same verdict on every gallery
    check — the acceptance bar of ISSUE 8."""

    @pytest.mark.parametrize("entry,prop,kwargs,expected",
                             list(_all_checks()))
    def test_z3_agrees_with_enumeration(self, entry, prop, kwargs,
                                        expected):
        ve = _run_check(entry, prop, kwargs, "enumeration")
        vz = _run_check(entry, prop, kwargs, "z3")
        assert ve.status == vz.status == expected, \
            (ve.describe(), vz.describe())

    def test_auto_prefers_z3(self):
        from repro.verify import VerifyBudget, resolve_backend
        assert resolve_backend("auto", VerifyBudget()).name == "z3"
