"""Direct unit tests for the individual fault sites and the new
durability-layer hardening they exercise: SimCache checksums, journal
degrade-on-ENOSPC, journal compaction, and the chaos hook protocol."""

import errno
import os
import pickle

import numpy as np
import pytest

from repro import chaoshooks
from repro.chaoshooks import ChaosCrash, ChaosHooks, armed
from repro.core.dtype import DType
from repro.obs import counters as obs_counters
from repro.parallel.runner import (SimCache, SimConfig, SimOutcome,
                                   run_simulations)
from repro.robust.chaos import ChaosInjector
from repro.robust.recovery import Journal
from repro.signal import Sig
from repro.refine import Design

T8 = DType("T8", 8, 6, "tc", "saturate", "round")


class Tiny(Design):
    name = "tiny"
    inputs = ("x",)
    output = "y"

    def build(self, ctx):
        self.x = Sig("x")
        self.y = Sig("y")
        rng = np.random.default_rng(7)
        self._stim = iter(rng.uniform(-1, 1, 4096).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.y.assign(self.x * 0.5)
            ctx.tick()


def _outcome(label="a", value=0.5):
    return SimOutcome(label=label, records={"v": value}, output="v")


class TestSimCacheChecksums:
    def test_corrupt_payload_detected_and_evicted(self):
        cache = SimCache()
        cache.put("k", _outcome())
        payload, sha = cache._store["k"]
        cache._store["k"] = (payload[:-1] + bytes([payload[-1] ^ 0xFF]),
                             sha)
        before = obs_counters.get("cache.corrupt")
        assert cache.get("k") is None
        assert cache.n_corrupt == 1
        assert "k" not in cache
        assert obs_counters.get("cache.corrupt") == before + 1

    def test_checksummed_but_unpicklable_entry_dropped(self):
        cache = SimCache()
        cache.put("k", _outcome())
        bad = b"\x80\x04not a pickle"
        import hashlib
        cache._store["k"] = (bad, hashlib.sha256(bad).hexdigest())
        assert cache.get("k") is None
        assert cache.n_corrupt == 1

    def test_unpicklable_outcome_not_cached(self):
        cache = SimCache()
        cache.put("k", _outcome(value=lambda: None))   # lambdas don't pickle
        assert "k" not in cache
        assert len(cache) == 0

    def test_clean_roundtrip_is_bit_exact(self):
        cache = SimCache()
        out = _outcome(value=0.1 + 0.2)
        cache.put("k", out)
        got = cache.get("k")
        assert got.records["v"].hex() == out.records["v"].hex()

    def test_clear_resets_corruption_counter(self):
        cache = SimCache()
        cache.put("k", _outcome())
        payload, sha = cache._store["k"]
        cache._store["k"] = (b"x" + payload, sha)
        cache.get("k")
        assert cache.n_corrupt == 1
        cache.clear()
        assert cache.n_corrupt == 0

    def test_evict_race_hook_turns_hit_into_miss(self):
        class Evictor(ChaosHooks):
            def on_cache_lookup(self, key):
                return True

        cache = SimCache()
        cache.put("k", _outcome())
        with armed(Evictor()):
            assert cache.get("k") is None
        assert "k" not in cache
        assert cache.get("k") is None      # still gone when disarmed


class TestJournalDegrade:
    def test_enospc_degrades_to_memory(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j = Journal(path)
        assert j.append("a", _outcome("a"))
        os.close(j._fh.fileno())           # every later write -> EBADF
        assert j.append("b", _outcome("b"))
        assert j.degraded and isinstance(j.io_error, OSError)
        assert j.get("b") is not None      # in-memory copy retained
        j.close()
        assert list(Journal(path).entries()) == ["a"]   # disk has phase 1

    def test_on_io_error_raise_mode(self, tmp_path):
        from repro.robust.recovery import JournalError
        j = Journal(str(tmp_path / "j.jsonl"), on_io_error="raise")
        os.close(j._fh.fileno())
        with pytest.raises(JournalError):
            j.append("a", _outcome())

    def test_degraded_run_still_returns_outcomes(self, tmp_path):
        """run_simulations survives a dead journal and emits DG205."""
        from repro.robust.diagnostics import Diagnostics

        class Enospc(ChaosHooks):
            def on_journal_write(self, journal, data):
                raise OSError(errno.ENOSPC, "No space left on device")

        journal = Journal(str(tmp_path / "j.jsonl"))
        diag = Diagnostics()
        cfgs = [SimConfig(label="t%d" % i, dtypes={"x": T8},
                          n_samples=64, seed=i) for i in range(3)]
        with armed(Enospc()):
            outs = run_simulations(Tiny, cfgs, workers=1, journal=journal,
                                   diagnostics=diag)
        assert all(o.completed for o in outs)
        assert journal.degraded
        events = [e for e in diag.events if e.code == "DG205"]
        assert len(events) == 1, "exactly one degrade warning expected"
        journal.close()


class TestJournalCompaction:
    def test_compact_drops_stale_records(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j = Journal(path)
        for i in range(4):
            j.append("k", _outcome("k", float(i)))     # same key 4x
        j.append("other", _outcome("other"))
        size_before = j.size_bytes()
        assert j.compact() == 3
        assert j.size_bytes() < size_before
        assert len(j) == 2
        j.append("post", _outcome("post"))             # handle still live
        j.close()
        reloaded = Journal(path)
        assert set(reloaded.entries()) == {"k", "other", "post"}
        assert reloaded.get("k").records["v"] == 3.0   # latest won

    def test_maybe_compact_respects_threshold(self, tmp_path):
        j = Journal(str(tmp_path / "j.jsonl"),
                    compact_threshold=10 ** 9)
        for i in range(3):
            j.append("k", _outcome("k", float(i)))
        assert j.maybe_compact() == 0          # under threshold: no-op
        j.close()

    def test_maybe_compact_skips_when_nothing_stale(self, tmp_path):
        j = Journal(str(tmp_path / "j.jsonl"), compact_threshold=1)
        j.append("a", _outcome("a"))
        j.append("b", _outcome("b"))
        assert j.maybe_compact() == 0          # all records are live
        j.close()

    def test_runner_autocompacts_over_threshold(self, tmp_path):
        """A re-run batch with a tiny threshold triggers DG208."""
        from repro.robust.diagnostics import Diagnostics
        journal = Journal(str(tmp_path / "j.jsonl"), compact_threshold=64)
        cfg = SimConfig(label="t", dtypes={"x": T8}, n_samples=64, seed=1)
        run_simulations(Tiny, [cfg], workers=1, journal=journal)
        # Force a stale duplicate, then re-run to trip maybe_compact().
        journal.append(next(iter(journal.entries())),
                       _outcome("stale"))
        diag = Diagnostics()
        run_simulations(Tiny, [SimConfig(label="t2", dtypes={"x": T8},
                                         n_samples=64, seed=2)],
                        workers=1, journal=journal, diagnostics=diag)
        assert any(e.code == "DG208" for e in diag.events)
        journal.close()


class TestInjectorDeterminism:
    def test_same_triple_same_damage(self):
        a = ChaosInjector("journal.torn_write", trigger=1, seed=9)
        b = ChaosInjector("journal.torn_write", trigger=1, seed=9)
        assert a.rng.random() == b.rng.random()

    def test_different_seed_different_stream(self):
        a = ChaosInjector("journal.torn_write", trigger=1, seed=9)
        b = ChaosInjector("journal.torn_write", trigger=1, seed=10)
        assert a.rng.random() != b.rng.random()

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            ChaosInjector("journal.not_a_site")

    def test_cache_corruption_is_reproducible(self):
        payload = pickle.dumps(_outcome())
        a = ChaosInjector("cache.corrupt", trigger=0, seed=3)
        b = ChaosInjector("cache.corrupt", trigger=0, seed=3)
        ca = a.on_cache_store("k", payload)        # one-shot: fires here
        cb = b.on_cache_store("k", payload)
        assert ca == cb
        assert ca != payload


class TestHookProtocol:
    def test_defaults_are_noops(self, tmp_path):
        hooks = ChaosHooks()
        assert hooks.on_journal_write(None, b"data") == b"data"
        assert hooks.on_cache_store("k", b"p") == b"p"
        assert hooks.on_cache_lookup("k") is False
        assert hooks.on_job(0, "cfg") == "cfg"

    def test_armed_always_uninstalls(self):
        class Boom(ChaosHooks):
            pass

        with pytest.raises(RuntimeError):
            with armed(Boom()):
                assert chaoshooks.ACTIVE is not None
                raise RuntimeError("x")
        assert chaoshooks.ACTIVE is None

    def test_chaoscrash_bypasses_except_exception(self):
        with pytest.raises(ChaosCrash):
            try:
                raise ChaosCrash("simulated death")
            except Exception:                  # noqa: BLE001
                pytest.fail("ChaosCrash must not be an Exception")


class TestCompactContention:
    """Two processes sharing a journal must not compact concurrently:
    the loser degrades to a counted no-op, never a second rewrite."""

    def _hold_lock(self, path):
        import fcntl
        fh = open(path + ".lock", "a")
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        return fh

    def test_contended_compact_is_a_noop(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j = Journal(path)
        for i in range(4):
            j.append("k", _outcome("k", float(i)))
        before = obs_counters.get("journal.compact_contended")
        holder = self._hold_lock(path)
        try:
            assert j.compact() == 0
            assert j.n_compact_skipped == 1
            assert obs_counters.get("journal.compact_contended") \
                == before + 1
            # The file was left exactly as it was (stale lines intact)
            # and the append handle is still live.
            assert j._n_records == 4
            assert j.append("post", _outcome("post"))
        finally:
            holder.close()
        # Lock released: the same journal compacts normally again.
        assert j.compact() == 3
        assert j.n_compact_skipped == 1
        j.close()

    def test_runner_surfaces_contention_as_diagnostic(self, tmp_path):
        from repro.robust.diagnostics import Diagnostics
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path, compact_threshold=64)
        run_simulations(Tiny, [SimConfig(label="t", dtypes={"x": T8},
                                         n_samples=64, seed=1)],
                        workers=1, journal=journal)
        journal.append(next(iter(journal.entries())), _outcome("stale"))
        diag = Diagnostics()
        holder = self._hold_lock(path)
        try:
            run_simulations(Tiny, [SimConfig(label="t2", dtypes={"x": T8},
                                             n_samples=64, seed=2)],
                            workers=1, journal=journal, diagnostics=diag)
        finally:
            holder.close()
        contended = [e for e in diag.events
                     if e.category == "journal-compact"
                     and e.data.get("contended")]
        assert len(contended) == 1
        assert journal.n_compact_skipped == 1
        journal.close()

    def test_uncontended_compact_leaves_no_skip(self, tmp_path):
        j = Journal(str(tmp_path / "j.jsonl"))
        j.append("a", _outcome("a"))
        j.append("a", _outcome("a", 2.0))
        assert j.compact() == 1
        assert j.n_compact_skipped == 0
        j.close()


class TestServiceFaultSites:
    """The three service-boundary injector sites key on the journal's
    role tag, so sibling journals in the same root stay untouched."""

    def test_submit_torn_ignores_other_journals(self, tmp_path):
        inj = ChaosInjector("service.submit_torn", trigger=0, seed=1)
        plain = Journal(str(tmp_path / "plain.jsonl"))
        with armed(inj):
            assert plain.append("k", _outcome())    # untouched
        assert not inj.events
        plain.close()

    def test_submit_torn_kills_the_submission_append(self, tmp_path):
        inj = ChaosInjector("service.submit_torn", trigger=0, seed=1)
        subs = Journal(str(tmp_path / "subs.jsonl"),
                       meta={"role": "service-submissions"})
        with armed(inj):
            with pytest.raises(ChaosCrash):
                subs.append("k", _outcome())
        assert inj.events and inj.events[0]["action"] == "torn"

    def test_result_corrupt_garbles_only_result_writes(self, tmp_path):
        inj = ChaosInjector("service.result_corrupt", trigger=0, seed=1)
        subs = Journal(str(tmp_path / "subs.jsonl"),
                       meta={"role": "service-submissions"})
        results = Journal(str(tmp_path / "res.jsonl"),
                          meta={"role": "service-results"})
        with armed(inj):
            assert subs.append("s", _outcome("s"))
            assert results.append("r", _outcome("r"))
        subs.close()
        results.close()
        # The submissions journal replays clean; the damaged result
        # record fails its sha on reopen and is dropped.
        assert list(Journal(str(tmp_path / "subs.jsonl")).entries()) \
            == ["s"]
        reloaded = Journal(str(tmp_path / "res.jsonl"))
        assert list(reloaded.entries()) == []
        assert reloaded.n_dropped == 1

    def test_dispatch_crash_fires_at_its_trigger(self):
        inj = ChaosInjector("service.dispatch_crash", trigger=1, seed=2)
        inj.on_service_dispatch(["job0"])           # occurrence 0: armed
        with pytest.raises(ChaosCrash):
            inj.on_service_dispatch(["job1", "job2"])
        assert inj.events[0]["jobs"] == 2

    def test_dispatch_hook_default_is_noop(self):
        assert ChaosHooks().on_service_dispatch(["j"]) is None
