"""Bit-true cross-check: netlist evaluation vs signal-layer simulation.

If the :class:`NetlistSimulator` (the executable specification of the
generated VHDL) produces exactly the same fixed-point values as the
monitored signal-layer simulation, the netlist extraction, the derived
intermediate formats and the quantization mapping are all correct.
"""

import numpy as np
import pytest

from repro.core.dtype import DType
from repro.hdl.pysim import NetlistSimulator
from repro.sfg import trace
from repro.signal import DesignContext, Reg, Sig, select
from repro.signal.ops import gt

T_IN = DType("T_in", 8, 5, "tc", "saturate", "round")


def _trace_design(build_and_run):
    """Run ``build_and_run(ctx, record)`` under trace; returns (sfg, log).

    ``record(**signals)`` is called once per cycle with the signal objects
    whose fx values should be logged.
    """
    ctx = DesignContext("pysim", seed=0)
    log = []
    with ctx:
        with trace(ctx) as t:
            build_and_run(ctx, log)
    return t.sfg, log


class TestScaledAdder:
    def _run(self, samples):
        T_OUT = DType("T_out", 9, 6, "tc", "saturate", "round")

        def body(ctx, log):
            x = Sig("x", T_IN)
            y = Sig("y", T_OUT)
            for v in samples:
                x.assign(float(v))
                y.assign(x * 0.5 + 0.25)
                log.append({"x_in": float(v), "y": y.fx})
                ctx.tick()

        sfg, log = _trace_design(body)
        sim = NetlistSimulator(sfg, {"x": T_IN, "y": T_OUT},
                               inputs=["x"], outputs=["y"])
        outs = sim.run([{"x": e["x_in"]} for e in log])
        return log, outs

    def test_bit_exact(self):
        rng = np.random.default_rng(4)
        log, outs = self._run(rng.uniform(-2, 2, size=100))
        for e, o in zip(log, outs):
            assert o["y"] == e["y"]


class TestSaturationAndRounding:
    @pytest.mark.parametrize("msbspec", ["saturate", "wrap"])
    @pytest.mark.parametrize("lsbspec", ["round", "floor"])
    def test_modes_match(self, msbspec, lsbspec):
        T_OUT = DType("T_out", 6, 3, "tc", msbspec, lsbspec)

        def body(ctx, log):
            x = Sig("x", T_IN)
            y = Sig("y", T_OUT)
            rng = np.random.default_rng(7)
            for v in rng.uniform(-4, 4, size=200):
                x.assign(float(v))
                y.assign(x * 1.5)
                log.append({"x_in": float(v), "y": y.fx})
                ctx.tick()

        sfg, log = _trace_design(body)
        sim = NetlistSimulator(sfg, {"x": T_IN, "y": T_OUT},
                               inputs=["x"], outputs=["y"])
        outs = sim.run([{"x": e["x_in"]} for e in log])
        mism = [i for i, (e, o) in enumerate(zip(log, outs))
                if o["y"] != e["y"]]
        assert mism == []


class TestRegisteredAccumulator:
    def test_bit_exact_feedback(self):
        T_ACC = DType("T_acc", 12, 6, "tc", "saturate", "round")

        def body(ctx, log):
            x = Sig("x", T_IN)
            acc = Reg("acc", T_ACC)
            rng = np.random.default_rng(9)
            for v in rng.uniform(-1, 1, size=300):
                x.assign(float(v))
                acc.assign(acc * 0.75 + x)
                log.append({"x_in": float(v), "acc": acc.fx})
                ctx.tick()

        sfg, log = _trace_design(body)
        sim = NetlistSimulator(sfg, {"x": T_IN, "acc": T_ACC},
                               inputs=["x"], outputs=["acc"])
        outs = sim.run([{"x": e["x_in"]} for e in log])
        # The signal log records acc BEFORE the tick (the old value),
        # matching the simulator's pre-edge output sampling.
        for e, o in zip(log, outs):
            assert o["acc"] == e["acc"]


class TestSelectAndCompare:
    def test_slicer_bit_exact(self):
        T_Y = DType("T_y", 2, 0, "tc", "saturate", "round")

        def body(ctx, log):
            x = Sig("x", T_IN)
            y = Sig("y", T_Y)
            rng = np.random.default_rng(11)
            for v in rng.uniform(-2, 2, size=200):
                x.assign(float(v))
                y.assign(select(gt(x, 0.0), 1.0, -1.0))
                log.append({"x_in": float(v), "y": y.fx})
                ctx.tick()

        sfg, log = _trace_design(body)
        sim = NetlistSimulator(sfg, {"x": T_IN, "y": T_Y},
                               inputs=["x"], outputs=["y"])
        outs = sim.run([{"x": e["x_in"]} for e in log])
        for e, o in zip(log, outs):
            assert o["y"] == e["y"]


class TestFullLmsDesignBitExact:
    """The whole motivational example, RTL semantics vs simulator."""

    def test_lms_outputs_match(self):
        from repro.dsp.lms import LmsEqualizerDesign
        from repro.refine import Annotations, FlowConfig, RefinementFlow

        flow = RefinementFlow(
            design_factory=LmsEqualizerDesign,
            input_types={"x": T_IN.with_(name="T_input", n=7, f=5)},
            input_ranges={"x": (-1.5, 1.5)},
            user_ranges={"b": (-0.2, 0.2)},
            config=FlowConfig(n_samples=800, auto_range=False, seed=1),
        )
        res = flow.run()
        types = dict(res.types)
        types["x"] = DType("T_input", 7, 5)

        import itertools
        samples = list(itertools.islice(
            LmsEqualizerDesign()._stimulus_factory(), 300))

        # Monitored run with full types; the coefficient initialization
        # must happen inside the trace (and after the types are applied)
        # so the netlist captures it with identical quantization.
        ctx = DesignContext("lms-bit", seed=0)
        with ctx:
            design = LmsEqualizerDesign()
            design.build(ctx)
            Annotations(dtypes=types).apply(ctx)
            design._stim = iter(samples)
            ctx.get("v[3]").watch()
            ctx.get("y").watch()
            with trace(ctx) as t:
                for i, coef in enumerate(design.coefficients):
                    design.c[i] = coef
                design.run(ctx, 300)
        v3_hist = [fx for fx, _ in ctx.get("v[3]").history]
        y_hist = [fx for fx, _ in ctx.get("y").history]

        sim = NetlistSimulator(t.sfg, types, inputs=["x"],
                               outputs=["v[3]", "y"])
        outs = sim.run([{"x": s} for s in samples])
        v3_rtl = [o["v[3]"] for o in outs]
        y_rtl = [o["y"] for o in outs]
        assert v3_rtl == v3_hist
        assert y_rtl == y_hist
