"""Stateful model of the durability layer under damage interleavings.

Hypothesis drives random interleavings of the operations a long
campaign (or the chaos injector) can inflict on a :class:`Journal` and
a :class:`SimCache` — append, reopen, compact, corrupt a record,
truncate the tail, flip cached bytes — and checks the durability and
exactness invariants after *every* step:

* every record the model says survived replays bit-identically
  (:func:`outcome_digest` equality), and
* nothing the model says was destroyed ever resurfaces.

The model is deliberately simple (an ordered list of ``(key, digest)``
appends plus the journal's documented tail-drop rule); if the real
implementation and the model ever disagree, the implementation is
wrong or the documented contract is.
"""

import os
import shutil
import tempfile

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro.parallel.runner import SimCache, SimOutcome
from repro.robust.invariants import outcome_digest
from repro.robust.recovery import Journal

# Small, picklable, digestable payloads; floats exercise the bit-exact
# canonicalization.
_VALUES = st.floats(allow_nan=False, allow_infinity=False, width=32)


def _outcome(n, value):
    return SimOutcome(label="s%d" % n, records={"v": value}, output="v",
                      guard_trips=n % 3)


class JournalMachine(RuleBasedStateMachine):
    """Journal vs. model: appends, damage, recovery, compaction."""

    def __init__(self):
        super().__init__()
        self.dir = tempfile.mkdtemp(prefix="chaos-model-")
        self.path = os.path.join(self.dir, "j.jsonl")
        self.journal = Journal(self.path, sync=False)
        #: append history: (key, digest) in file order (dups legal).
        self.order = []
        self.n_appends = 0

    # -- model helpers -----------------------------------------------------

    def _model_entries(self):
        """Replay semantics: last surviving append per key wins."""
        return dict(self.order)

    def _check_replay(self):
        """The full invariant: reload and compare against the model."""
        self.journal.close()
        reopened = Journal(self.path, sync=False)
        expect = self._model_entries()
        got = {k: outcome_digest(o)
               for k, o in reopened.entries().items()}
        assert got == expect, "journal replay diverged from the model"
        self.journal = reopened

    # -- rules -------------------------------------------------------------

    @rule(value=_VALUES)
    def append(self, value):
        self.n_appends += 1
        key = "key-%d" % self.n_appends
        outcome = _outcome(self.n_appends, value)
        assert self.journal.append(key, outcome)
        self.order.append((key, outcome_digest(outcome)))

    @precondition(lambda self: self.order)
    @rule(value=_VALUES, which=st.integers(min_value=0, max_value=10 ** 6))
    def append_superseding(self, value, which):
        """Re-append an existing key: the newer record must win."""
        key = self.order[which % len(self.order)][0]
        self.n_appends += 1
        outcome = _outcome(self.n_appends, value)
        assert self.journal.append(key, outcome)
        self.order.append((key, outcome_digest(outcome)))

    @rule()
    def reopen(self):
        self._check_replay()

    @rule()
    def compact(self):
        stale = len(self.order) - len(self._model_entries())
        dropped = self.journal.compact()
        assert dropped == max(stale, 0)
        # Compaction rewrites history as exactly the surviving map.
        self.order = list(self._model_entries().items())
        self._check_replay()

    @precondition(lambda self: self.order)
    @rule(which=st.integers(min_value=0, max_value=10 ** 6))
    def corrupt_record(self, which):
        """Garble one record's payload: it and everything after drop."""
        self.journal.close()
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        i = 1 + which % (len(lines) - 1)          # line 0 is the header
        pos = lines[i].find('"payload": "') + len('"payload": "') + 4
        lines[i] = lines[i][:pos] + "########" + lines[i][pos + 8:]
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        self.order = self.order[:i - 1]           # tail-drop rule
        self.journal = Journal(self.path, sync=False)
        self._check_replay()

    @precondition(lambda self: self.order)
    @rule(cut=st.integers(min_value=2, max_value=40))
    def truncate_tail(self, cut):
        """Tear bytes off the file end: only the last record may die."""
        self.journal.close()
        with open(self.path, "rb") as fh:
            data = fh.read()
        last = data.rstrip(b"\n").rfind(b"\n")
        cut = min(cut, len(data) - last - 2)      # stay inside the record
        if cut >= 2:
            with open(self.path, "wb") as fh:
                fh.write(data[:-cut])
            self.order = self.order[:-1]
        self.journal = Journal(self.path, sync=False)
        self._check_replay()

    def teardown(self):
        self.journal.close()
        shutil.rmtree(self.dir, ignore_errors=True)


class SimCacheMachine(RuleBasedStateMachine):
    """Cache vs. model: hits are bit-exact, corruption never surfaces."""

    def __init__(self):
        super().__init__()
        self.cache = SimCache(max_entries=8)
        self.model = {}       # key -> digest, for keys we believe clean
        self.n = 0

    @rule(value=_VALUES)
    def put(self, value):
        self.n += 1
        key = "k%d" % self.n
        outcome = _outcome(self.n, value)
        self.cache.put(key, outcome)
        self.model[key] = outcome_digest(outcome)
        if len(self.model) > 8:
            # LRU capacity: some model keys may be evicted; forget the
            # model's claim, get() handles absent keys below.
            self.model = {k: v for k, v in self.model.items()
                          if k in self.cache}

    @precondition(lambda self: self.model)
    @rule(which=st.integers(min_value=0, max_value=10 ** 6))
    def get_is_exact(self, which):
        key = list(self.model)[which % len(self.model)]
        got = self.cache.get(key)
        if got is not None:
            assert outcome_digest(got) == self.model[key]

    @precondition(lambda self: self.model)
    @rule(which=st.integers(min_value=0, max_value=10 ** 6),
          flip=st.integers(min_value=0, max_value=10 ** 6))
    def corrupt_never_surfaces(self, which, flip):
        key = list(self.model)[which % len(self.model)]
        entry = self.cache._store.get(key)
        if entry is None:
            return
        payload, sha = entry
        pos = flip % len(payload)
        bad = payload[:pos] + bytes([payload[pos] ^ 0x01]) \
            + payload[pos + 1:]
        self.cache._store[key] = (bad, sha)
        n_corrupt = self.cache.n_corrupt
        assert self.cache.get(key) is None        # detected, never garbage
        assert self.cache.n_corrupt == n_corrupt + 1
        assert key not in self.cache              # and evicted
        del self.model[key]


JournalMachine.TestCase.settings = settings(max_examples=20,
                                            stateful_step_count=20,
                                            deadline=None)
SimCacheMachine.TestCase.settings = settings(max_examples=20,
                                             stateful_step_count=20,
                                             deadline=None)

TestJournalModel = JournalMachine.TestCase
TestSimCacheModel = SimCacheMachine.TestCase
