"""Unit tests for repro.dsp.metrics."""

import math

import numpy as np
import pytest

from repro.dsp.metrics import (ber, evm_percent, mse, snr_db, sqnr_db,
                               sqnr_from_stats)


class TestMse:
    def test_known(self):
        assert mse([1, 2, 3], [1, 2, 5]) == pytest.approx(4 / 3)

    def test_zero(self):
        assert mse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse([1, 2], [1, 2, 3])

    def test_empty(self):
        with pytest.raises(ValueError):
            mse([], [])


class TestSqnr:
    def test_known_value(self):
        ref = np.ones(100)
        test = np.ones(100) * 0.9  # noise power 0.01, signal power 1
        assert sqnr_db(ref, test) == pytest.approx(20.0)

    def test_perfect_is_inf(self):
        assert sqnr_db([1.0], [1.0]) == math.inf

    def test_zero_signal(self):
        assert sqnr_db([0.0, 0.0], [0.1, 0.1]) == -math.inf

    def test_quantization_matches_theory(self):
        rng = np.random.default_rng(0)
        ref = rng.uniform(-1, 1, size=100000)
        from repro.core.quantize import quantize_array
        test = quantize_array(ref, 12, 10)
        # Uniform in [-1,1]: P = 1/3; noise q^2/12 with q = 2^-10.
        expected = 10 * math.log10((1 / 3) / (2.0 ** -20 / 12))
        assert sqnr_db(ref, test) == pytest.approx(expected, abs=0.2)

    def test_from_stats(self):
        assert sqnr_from_stats(1.0, 0.1) == pytest.approx(20.0)
        assert sqnr_from_stats(1.0, 0.0) == math.inf
        assert sqnr_from_stats(0.0, 0.1) == -math.inf

    def test_snr_db(self):
        assert snr_db(1.0, 0.01) == pytest.approx(20.0)
        assert snr_db(1.0, 0.0) == math.inf
        assert snr_db(0.0, 1.0) == -math.inf


class TestBer:
    def test_no_errors(self):
        assert ber([1, -1, 1], [1, -1, 1]) == 0.0

    def test_all_errors(self):
        assert ber([1, 1], [-1, -1]) == 1.0

    def test_skip(self):
        assert ber([-1, 1, 1], [1, 1, 1], skip=1) == 0.0

    def test_truncates_to_shorter(self):
        assert ber([1, 1, 1, -1], [1, 1]) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ber([], [])


class TestEvm:
    def test_known(self):
        ref = np.ones(10)
        test = np.ones(10) * 1.1
        assert evm_percent(ref, test) == pytest.approx(10.0)

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            evm_percent(np.zeros(5), np.ones(5))
