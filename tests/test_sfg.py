"""Tests for SFG capture (tracing) and analytical range propagation."""

import math

import pytest

from repro.core.dtype import DType
from repro.core.errors import DesignError
from repro.core.interval import Interval
from repro.signal import DesignContext, Reg, Sig, cast, select
from repro.sfg import SFG, Tracer, propagate_ranges, trace


@pytest.fixture
def ctx():
    with DesignContext("sfg-test", seed=0) as c:
        yield c


class TestGraphBasics:
    def test_dedup_sig_nodes(self):
        g = SFG()
        a = g.sig_node("a")
        assert g.sig_node("a") is a
        assert g.n_nodes == 1

    def test_sig_reg_conflict(self):
        g = SFG()
        g.sig_node("a", is_register=False)
        with pytest.raises(DesignError):
            g.sig_node("a", is_register=True)

    def test_dedup_const_nodes(self):
        g = SFG()
        assert g.const_node(1.0) is g.const_node(1.0)
        assert g.const_node(1.0) is not g.const_node(2.0)

    def test_dedup_op_nodes(self):
        g = SFG()
        a = g.sig_node("a")
        b = g.sig_node("b")
        op1 = g.op_node("add", [a, b])
        op2 = g.op_node("add", [a, b])
        assert op1 is op2
        assert g.op_node("add", [b, a]) is not op1  # order matters

    def test_preds_ordered(self):
        g = SFG()
        a = g.sig_node("a")
        b = g.sig_node("b")
        op = g.op_node("sub", [a, b])
        assert g.preds(op) == [a, b]

    def test_assign_edge_and_sources(self):
        g = SFG()
        a = g.sig_node("a")
        op = g.op_node("neg", [a])
        g.assign_edge(op, "b")
        assert g.node_for_signal("b") in g.succs(op)
        assert [n.label for n in g.sources()] == ["a"]

    def test_missing_signal(self):
        g = SFG()
        with pytest.raises(DesignError):
            g.node_for_signal("zz")

    def test_feedback_detection(self):
        g = SFG()
        acc = g.sig_node("acc", is_register=True)
        x = g.sig_node("x")
        op = g.op_node("add", [acc, x])
        g.assign_edge(op, "acc", is_register=True)
        assert g.feedback_signals() == ["acc"]

    def test_no_feedback(self):
        g = SFG()
        a = g.sig_node("a")
        g.assign_edge(g.op_node("neg", [a]), "b")
        assert g.feedback_signals() == []


class TestTracing:
    def test_trace_simple_dataflow(self, ctx):
        a = Sig("a")
        b = Sig("b")
        c = Sig("c")
        with trace(ctx) as t:
            a.assign(1.0)
            b.assign(2.0)
            c.assign(a * b + 1.0)
        g = t.sfg
        assert set(g.signal_names()) == {"a", "b", "c"}
        # One mul, one add, regardless of re-execution.
        assert len([n for n in g.nodes("op")]) == 2

    def test_trace_dedups_across_iterations(self, ctx):
        a = Sig("a")
        b = Sig("b")
        with trace(ctx) as t:
            for i in range(50):
                a.assign(float(i))
                b.assign(a * 2.0)
        assert len(t.sfg.nodes("op")) == 1

    def test_trace_captures_register_feedback(self, ctx):
        acc = Reg("acc")
        x = Sig("x")
        with trace(ctx) as t:
            for i in range(3):
                x.assign(1.0)
                acc.assign(acc + x)
                ctx.tick()
        assert t.sfg.feedback_signals() == ["acc"]
        assert t.sfg.node_for_signal("acc").kind == "reg"

    def test_nested_trace_rejected(self, ctx):
        with trace(ctx):
            with pytest.raises(DesignError):
                with trace(ctx):
                    pass

    def test_tracer_detached_after_block(self, ctx):
        with trace(ctx):
            pass
        assert ctx.tracer is None

    def test_select_traced(self, ctx):
        a = Sig("a")
        y = Sig("y")
        with trace(ctx) as t:
            a.assign(0.5)
            y.assign(select(a > 0, 1.0, -1.0))
        labels = [n.label for n in t.sfg.nodes("op")]
        assert "select" in labels

    def test_cast_traced(self, ctx):
        a = Sig("a")
        y = Sig("y")
        T = DType("T", 8, 5)
        with trace(ctx) as t:
            a.assign(0.4)
            y.assign(cast(a + 0.0, T))
        labels = [n.label for n in t.sfg.nodes("op")]
        assert any(l.startswith("cast<8,5,tc") for l in labels)


class TestPropagation:
    def _graph_fir(self):
        """y = 0.5*x0 + 0.25*x1 built by hand."""
        g = SFG()
        x0 = g.sig_node("x0")
        x1 = g.sig_node("x1")
        m0 = g.op_node("mul", [x0, g.const_node(0.5)])
        m1 = g.op_node("mul", [x1, g.const_node(0.25)])
        s = g.op_node("add", [m0, m1])
        g.assign_edge(s, "y")
        return g

    def test_feedforward(self):
        g = self._graph_fir()
        res = propagate_ranges(g, input_ranges={"x0": (-1, 1), "x1": (-1, 1)})
        assert res.converged
        assert res.ranges["y"] == Interval(-0.75, 0.75)
        assert res.msb("y") == 0
        assert res.exploded == []

    def test_unseeded_input_is_empty(self):
        g = self._graph_fir()
        res = propagate_ranges(g, input_ranges={"x0": (-1, 1)})
        assert res.ranges["y"].is_empty
        assert res.msb("y") is None

    def test_accumulator_explodes(self, ctx):
        acc = Reg("acc")
        x = Sig("x")
        with trace(ctx) as t:
            x.assign(1.0)
            acc.assign(acc + x)
            ctx.tick()
        res = propagate_ranges(t.sfg, input_ranges={"x": (-1, 1),
                                                    "acc": None} or {"x": (-1, 1)})
        res = propagate_ranges(t.sfg, input_ranges={"x": (-1, 1)})
        assert "acc" in res.exploded
        assert not res.ranges["acc"].is_finite

    def test_forced_range_stops_explosion(self, ctx):
        acc = Reg("acc")
        x = Sig("x")
        with trace(ctx) as t:
            x.assign(1.0)
            acc.assign(acc + x)
            ctx.tick()
        res = propagate_ranges(t.sfg, input_ranges={"x": (-1, 1)},
                               forced_ranges={"acc": (-4, 4)})
        assert res.exploded == []
        assert res.ranges["acc"] == Interval(-4, 4)

    def test_clip_range_stops_explosion(self, ctx):
        acc = Reg("acc")
        x = Sig("x")
        with trace(ctx) as t:
            x.assign(1.0)
            acc.assign(acc + x)
            ctx.tick()
        res = propagate_ranges(t.sfg, input_ranges={"x": (-1, 1)},
                               clip_ranges={"acc": (-4, 4)})
        assert res.exploded == []
        # acc = clip(acc + x): range settles at [-4, 4].
        assert res.ranges["acc"] == Interval(-4, 4)

    def test_annotation_on_traced_signal_object(self, ctx):
        acc = Reg("acc")
        x = Sig("x")
        acc.range(-2.0, 2.0)
        x.range(-1.0, 1.0)
        with trace(ctx) as t:
            x.assign(1.0)
            acc.assign(acc + x)
            ctx.tick()
        res = propagate_ranges(t.sfg)
        assert res.ranges["acc"] == Interval(-2.0, 2.0)
        assert res.ranges["x"] == Interval(-1.0, 1.0)

    def test_saturating_dtype_on_traced_signal(self, ctx):
        T = DType("T", 8, 5, msbspec="saturate")
        acc = Reg("acc", T)
        x = Sig("x")
        x.range(-1.0, 1.0)
        with trace(ctx) as t:
            x.assign(1.0)
            acc.assign(acc + x)
            ctx.tick()
        res = propagate_ranges(t.sfg)
        assert res.exploded == []
        assert res.ranges["acc"].hi <= T.max_value

    def test_select_union(self, ctx):
        a = Sig("a")
        y = Sig("y")
        a.range(-1, 1)
        with trace(ctx) as t:
            a.assign(0.5)
            y.assign(select(a > 0, 1.0, -1.0))
        res = propagate_ranges(t.sfg)
        assert res.ranges["y"] == Interval(-1.0, 1.0)

    def test_division_by_zero_crossing_is_unbounded(self, ctx):
        num = Sig("num")
        den = Sig("den")
        y = Sig("y")
        num.range(1, 2)
        den.range(-1, 1)
        with trace(ctx) as t:
            num.assign(1.0)
            den.assign(0.5)
            y.assign(num / den)
        res = propagate_ranges(t.sfg)
        assert "y" in res.exploded

    def test_msb_inf_for_exploded(self, ctx):
        acc = Reg("acc")
        x = Sig("x")
        x.range(-1, 1)
        with trace(ctx) as t:
            x.assign(1.0)
            acc.assign(acc + x)
            ctx.tick()
        res = propagate_ranges(t.sfg)
        assert res.msb("acc") == math.inf

    def test_paper_fir_range(self, ctx):
        """The LMS example's FIR: v3 = c0*x0 + c1*x1 + c2*x2."""
        coefs = [-0.11, 1.2, -0.02]
        x = Sig("x")
        x.range(-1.5, 1.5)
        v = Sig("v3")
        with trace(ctx) as t:
            x.assign(1.0)
            acc = x * coefs[0] + x * coefs[1] + x * coefs[2]
            v.assign(acc)
        res = propagate_ranges(t.sfg)
        bound = 1.5 * sum(abs(c) for c in coefs)
        assert res.ranges["v3"].hi == pytest.approx(bound)
        assert res.msb("v3") == 1
