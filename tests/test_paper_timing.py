"""Integration test: the paper's complex example (Fig. 5, Section 6.1).

Paper claims encoded here:

* the system has ~61 signals subject to refinement (ours: 63/64),
* MSB refinement needs 2 iterations; the explosion set contains the
  feedback accumulators (loop filter integrator) and resolves after
  range annotations,
* a handful of signals end in saturation mode, the majority stay
  non-saturated with a sub-bit average MSB overhead versus the purely
  statistic-based result (paper: 0.22 bits/signal),
* with the hardware-style wrap-typed NCO phase, exactly that "D signal
  inside the NCO" has divergent (unstable) error statistics; one
  ``error()`` annotation fixes it and one further iteration settles all
  other LSB weights (2 LSB iterations total),
* the refined loop still locks and decides symbols correctly.
"""

import numpy as np
import pytest

from repro.core.dtype import DType
from repro.dsp.timing_recovery import (TimingRecoveryDesign,
                                       aligned_symbol_errors)
from repro.refine import FlowConfig, RefinementFlow

T_IN = DType("T_in", 9, 7, "tc", "saturate", "round")
PHASE_T = DType("T_eta", 12, 12, "us", "wrap", "round")

N_SAMPLES = 6000


def make_flow():
    return RefinementFlow(
        design_factory=lambda: TimingRecoveryDesign(
            noise_std=0.05, nco_phase_dtype=PHASE_T),
        input_types={"in": T_IN},
        input_ranges={"in": (-2.0, 2.0)},
        preset_types={"nco.eta": PHASE_T},
        user_errors={"nco.eta": 2.0 ** -12},
        config=FlowConfig(n_samples=N_SAMPLES, auto_range=True,
                          auto_error=False, seed=21),
    )


@pytest.fixture(scope="module")
def result():
    return make_flow().run()


class TestSystemShape:
    def test_signal_count_near_61(self, result):
        n = len(result.lsb.final.records)
        assert 55 <= n <= 70  # paper: 61

    def test_design_locks_in_float(self):
        d = TimingRecoveryDesign(noise_std=0.05)
        from repro.signal import DesignContext
        ctx = DesignContext("lock", seed=0)
        with ctx:
            d.build(ctx)
            d.run(ctx, N_SAMPLES)
        rate, lag = aligned_symbol_errors(d.tx_symbols, d.decisions,
                                          skip=800)
        assert rate < 0.01


class TestMsbPhase:
    def test_two_iterations(self, result):
        assert result.msb.n_iterations == 2
        assert result.msb.resolved

    def test_loop_integrator_explodes(self, result):
        assert "lf.i" in result.msb.iterations[0].exploded

    def test_saturated_minority(self, result):
        final = result.msb.final.decisions
        saturated = [n for n, d in final.items() if d.mode == "saturate"]
        nonsat = [n for n, d in final.items() if d.mode != "saturate"]
        # Paper: 7 of 61 saturated.  Ours: the annotated feedback set.
        assert 2 <= len(saturated) <= 20
        assert len(nonsat) > len(saturated)

    def test_average_msb_overhead_below_one_bit(self, result):
        final = result.msb.final.decisions
        overheads = [d.overhead_bits() for d in final.values()
                     if d.mode != "saturate" and d.msb is not None
                     and d.stat_msb is not None]
        assert overheads, "no non-saturated decided signals"
        avg = sum(overheads) / len(overheads)
        # Paper: 0.22 bits/signal overhead vs statistic-based.
        assert 0.0 <= avg < 1.0


class TestLsbPhase:
    def test_two_iterations(self, result):
        assert result.lsb.n_iterations == 2
        assert result.lsb.resolved

    def test_eta_is_divergent_in_iteration_one(self, result):
        assert "nco.eta" in result.lsb.iterations[0].divergent

    def test_only_eta_needs_annotation(self, result):
        assert list(result.lsb.annotations) == ["nco.eta"]
        assert result.lsb.annotations["nco.eta"] == 2.0 ** -12

    def test_iteration_two_settles_everything(self, result):
        assert result.lsb.iterations[1].divergent == {}
        final = result.lsb.final.decisions
        undecided = [n for n, d in final.items()
                     if d.lsb is None and d.count > 0]
        assert undecided == []

    def test_slicer_error_free(self, result):
        assert result.lsb.final.decisions["y"].lsb == 0


class TestVerification:
    def test_no_genuine_overflows(self, result):
        assert result.verification.total_overflows == 0

    def test_phase_wraps_counted_separately(self, result):
        assert result.verification.wrap_events.get("nco.eta", 0) > 0

    def test_output_sqnr_reasonable(self, result):
        v = result.verification.output_sqnr_db
        assert 30.0 < v < 80.0
        # Cost of refinement bounded.
        assert result.baseline_sqnr_db - v < 8.0

    def test_refined_loop_still_locks(self, result):
        from repro.refine import Annotations
        from repro.signal import DesignContext
        all_types = dict(result.types)
        all_types["in"] = T_IN
        ctx = DesignContext("verify-lock", seed=3)
        with ctx:
            d = TimingRecoveryDesign(noise_std=0.05,
                                     nco_phase_dtype=PHASE_T)
            d.build(ctx)
            Annotations(dtypes=all_types).apply(ctx)
            d.run(ctx, N_SAMPLES)
        rate, lag = aligned_symbol_errors(d.tx_symbols, d.decisions,
                                          skip=800)
        assert rate < 0.02
