"""Tests for result serialization (JSON/CSV) and DType spec parsing."""

import json

import pytest

from repro.core.dtype import DType
from repro.core.errors import DTypeError
from repro.refine.export import (lsb_table_to_csv, msb_table_to_csv,
                                 result_to_dict, result_to_json,
                                 types_from_dict, types_to_csv,
                                 types_to_dict)


class TestFromSpec:
    def test_roundtrip(self):
        for dt in (DType("a", 8, 5), DType("b", 7, 5, "us", "wrap", "floor"),
                   DType("c", 12, 12, "us", "wrap", "round")):
            assert DType.from_spec(dt.spec()) == dt

    def test_short_form(self):
        dt = DType.from_spec("<7,5,tc>")
        assert (dt.n, dt.f, dt.vtype) == (7, 5, "tc")
        assert dt.msbspec == "saturate" and dt.lsbspec == "round"

    def test_whitespace_tolerated(self):
        assert DType.from_spec(" <8, 5, tc, sa, ro> ").n == 8

    @pytest.mark.parametrize("bad", ["8,5,tc", "<8,5>", "<8,5,tc,xx,ro>",
                                     "<8,5,tc,sa,zz>", "<a,b,tc>"])
    def test_invalid(self, bad):
        with pytest.raises((DTypeError, ValueError)):
            DType.from_spec(bad)


@pytest.fixture(scope="module")
def result():
    from repro.refine import FlowConfig, RefinementFlow
    from tests.test_flow import ScaleDesign, T_IN
    flow = RefinementFlow(ScaleDesign, input_types={"x": T_IN},
                          input_ranges={"x": (-1, 1)},
                          config=FlowConfig(n_samples=1200, seed=8))
    return flow.run()


class TestTypesSerialization:
    def test_dict_roundtrip(self, result):
        data = types_to_dict(result.types)
        back = types_from_dict(data)
        assert {k: v.spec() for k, v in back.items()} == \
               {k: v.spec() for k, v in result.types.items()}

    def test_csv_has_all_signals(self, result):
        text = types_to_csv(result.types)
        lines = text.strip().splitlines()
        assert lines[0].startswith("signal,spec")
        assert len(lines) == 1 + len(result.types)


class TestResultSerialization:
    def test_json_parses(self, result):
        data = json.loads(result_to_json(result))
        assert data["msb"]["resolved"] is True
        assert data["lsb"]["iterations"] == result.lsb.n_iterations
        assert data["total_bits"] == result.total_bits()
        assert "y" in data["types"]

    def test_decisions_serialized(self, result):
        data = result_to_dict(result)
        y = data["msb"]["decisions"]["y"]
        assert set(y) == {"stat_msb", "prop_msb", "msb", "mode", "case",
                          "guard_msb", "note"}
        ly = data["lsb"]["decisions"]["y"]
        assert ly["lsb"] == result.lsb.final.decisions["y"].lsb

    def test_nonfinite_values_are_json_safe(self):
        # A result containing inf SQNR must still serialize.
        from repro.refine.export import _clean
        assert _clean(float("inf")) == "inf"
        assert _clean(float("-inf")) == "-inf"
        assert _clean(float("nan")) == "nan"
        assert _clean(1.5) == 1.5

    def test_table_csvs(self, result):
        msb_csv = msb_table_to_csv(result.msb.final.records,
                                   result.msb.final.decisions)
        lsb_csv = lsb_table_to_csv(result.lsb.final.records,
                                   result.lsb.final.decisions)
        assert "stat_msb" in msb_csv.splitlines()[0]
        assert "divergent" in lsb_csv.splitlines()[0]
        assert len(msb_csv.strip().splitlines()) == \
               1 + len(result.msb.final.decisions)
