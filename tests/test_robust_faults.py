"""Tests for the fault-injection campaign machinery on toy designs."""

import math

import numpy as np
import pytest

from repro.core.dtype import DType
from repro.refine import Design, FlowConfig, RefinementFlow
from repro.robust.faults import (BitFlip, ChannelDrop, FaultCampaign,
                                 InputScale, NanInject, SeedPerturb, StuckAt,
                                 standard_faults)
from repro.signal import Sig

T_IN = DType("T_in", 8, 6, "tc", "saturate", "round")


class SeededScale(Design):
    """y = 0.5*x + 0.25 with a controllable stimulus seed."""

    name = "scale"
    inputs = ("x",)
    output = "y"

    def __init__(self, seed=3):
        self.seed = seed

    def build(self, ctx):
        self.x = Sig("x")
        self.y = Sig("y")
        rng = np.random.default_rng(self.seed)
        self._stim = iter(rng.uniform(-1, 1, size=100000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.y.assign(self.x * 0.5 + 0.25)
            ctx.tick()


@pytest.fixture(scope="module")
def refined():
    cfg = FlowConfig(n_samples=1500, seed=9)
    flow = RefinementFlow(SeededScale, input_types={"x": T_IN},
                          input_ranges={"x": (-1, 1)}, config=cfg)
    return flow.run()


@pytest.fixture(scope="module")
def campaign(refined):
    return FaultCampaign(SeededScale, refined.types,
                         errors=refined.lsb.annotations, output="y",
                         n_samples=1500,
                         seeded_factory=lambda s: SeededScale(seed=s))


class TestCampaignBasics:
    def test_outcomes_align_with_faults(self, campaign):
        faults = [BitFlip("y", bit=0, at=100), StuckAt("y", 0.0)]
        out = campaign.run(faults)
        assert [o.kind for o in out.outcomes] == ["bit-flip", "stuck-at"]
        assert math.isfinite(out.baseline_sqnr_db)
        assert out.baseline_sqnr_db > 30.0

    def test_severity_ordering(self, campaign, refined):
        n_bits = refined.types["y"].n
        out = campaign.run([BitFlip("y", bit=0, at=100),
                            BitFlip("y", bit=n_bits - 1, at=100),
                            StuckAt("y", 0.0)])
        lsb_flip, msb_flip, stuck = out.outcomes
        assert lsb_flip.degradation_db < msb_flip.degradation_db
        assert msb_flip.degradation_db < stuck.degradation_db

    def test_transient_lsb_flip_is_mild(self, campaign):
        out = campaign.run([BitFlip("y", bit=0, at=100)])
        assert out.outcomes[0].completed
        assert out.outcomes[0].degradation_db < 3.0

    def test_input_scale_causes_overflows(self, campaign):
        # x in (-1, 1) scaled x4 exceeds T_in's [-2, 2) and y's headroom.
        out = campaign.run([InputScale("x", 4.0)])
        assert out.outcomes[0].overflows > 0

    def test_nan_inject_recorded_by_guard(self, campaign):
        out = campaign.run([NanInject("x", at=50)])
        o = out.outcomes[0]
        assert o.completed
        assert o.guard_trips >= 1

    def test_nan_inject_aborts_under_raise_guard(self, refined):
        strict = FaultCampaign(SeededScale, refined.types, output="y",
                               n_samples=500, guard_action="raise")
        out = strict.run([NanInject("x", at=50)])
        o = out.outcomes[0]
        assert not o.completed
        assert "non-finite" in o.error

    def test_seed_perturb_uses_seeded_factory(self, campaign):
        out = campaign.run([SeedPerturb(777), SeedPerturb(778)])
        for o in out.outcomes:
            assert o.completed
            # A different stimulus changes the SQNR, but within noise.
            assert abs(o.degradation_db) < 3.0
        assert out.outcomes[0].sqnr_db != out.outcomes[1].sqnr_db

    def test_abort_on_bad_fault_is_an_outcome(self, campaign):
        out = campaign.run([ChannelDrop("no_such_channel")])
        o = out.outcomes[0]
        assert not o.completed
        assert "channel" in o.error

    def test_bitflip_validates_bit_position(self, campaign):
        out = campaign.run([BitFlip("y", bit=99, at=0)])
        assert not out.outcomes[0].completed

    def test_never_fired_fault_is_flagged(self, campaign):
        # at= beyond the run length: the hook never fires, and the
        # clean-looking outcome must not certify the margin silently.
        out = campaign.run([BitFlip("y", bit=0, at=10 ** 6)])
        o = out.outcomes[0]
        assert o.completed
        assert not o.triggered
        assert o.degradation_db == pytest.approx(0.0)
        assert "IDLE" in out.table()
        assert "never fired" in out.summary()
        assert out.certified(1.0)
        assert not out.certified(1.0, require_triggered=True)
        assert out.to_dict()["outcomes"][0]["triggered"] is False

    def test_triggered_faults_report_true(self, campaign):
        out = campaign.run([BitFlip("y", bit=0, at=100),
                            SeedPerturb(777)])
        assert all(o.triggered for o in out.outcomes)
        assert out.certified(60.0, require_triggered=True)


class TestCampaignResult:
    @pytest.fixture(scope="class")
    def result(self, campaign):
        return campaign.run([BitFlip("y", bit=0, at=100),
                             StuckAt("y", 0.0),
                             SeedPerturb(777)])

    def test_worst_degradation(self, result):
        stuck = result.outcomes[1]
        assert result.worst_degradation_db() == pytest.approx(
            stuck.degradation_db)

    def test_certified_margins(self, result):
        worst = result.worst_degradation_db()
        assert result.certified(60.0, kinds=("bit-flip", "seed-perturb"))
        assert not result.certified(0.5, kinds=("stuck-at",))
        assert not result.certified(worst - 1.0)
        assert result.certified(worst + 1.0)

    def test_table_and_summary(self, result):
        text = result.table()
        assert "bit-flip" in text and "stuck-at" in text
        assert "baseline" in text
        assert "worst SQNR degradation" in result.summary()

    def test_to_dict(self, result):
        d = result.to_dict()
        assert d["output"] == "y"
        assert len(d["outcomes"]) == 3
        assert all("degradation_db" in o for o in d["outcomes"])


class TestStandardFaults:
    def test_composition(self, refined):
        faults = standard_faults(refined.types, inputs=("x",), n_seeds=2)
        kinds = [f.kind for f in faults]
        assert kinds.count("seed-perturb") == 2
        assert kinds.count("input-scale") == 1
        assert kinds.count("nan-inject") == 1
        assert kinds.count("bit-flip") >= 2   # lsb + msb per typed signal

    def test_bitflip_cap(self, refined):
        faults = standard_faults(refined.types, max_bitflip_signals=1)
        assert sum(1 for f in faults if f.kind == "bit-flip") <= 2

    def test_runs_end_to_end(self, campaign, refined):
        faults = standard_faults(refined.types, inputs=("x",), n_seeds=1)
        out = campaign.run(faults)
        assert len(out.outcomes) == len(faults)
        assert all(o.completed for o in out.outcomes)
