"""CLI, bundled-design registry and flow-integration tests."""

import json

import pytest

from repro.lint.cli import design_registry, lint_design, main


@pytest.fixture(scope="module")
def registry():
    return design_registry()


class TestBundledDesigns:
    def test_registry_names(self, registry):
        assert {"lms", "adaptive-lms", "biquad", "cordic",
                "timing-recovery"} <= set(registry)

    @pytest.mark.parametrize("name", ["lms", "adaptive-lms", "biquad",
                                      "cordic", "timing-recovery"])
    def test_bundled_design_has_no_errors(self, registry, name):
        report = lint_design(registry[name])
        assert report.errors == [], report.table()

    def test_unannotated_lms_reports_explosion(self, registry):
        import dataclasses
        entry = dataclasses.replace(registry["lms"], ranges={})
        report = lint_design(entry)
        assert any(f.rule_id == "FX001" and f.signal == "b"
                   for f in report.errors)

    def test_artifact_points_at_design_source(self, registry):
        report = lint_design(registry["lms"])
        assert report.artifact and "lms" in report.artifact


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "lms" in out and "biquad" in out

    def test_unknown_design(self, capsys):
        assert main(["no-such-design"]) == 2
        assert "unknown design" in capsys.readouterr().err

    def test_clean_run_exits_zero(self, capsys):
        assert main(["lms"]) == 0
        out = capsys.readouterr().out
        assert "0 error" in out

    def test_disabled_annotations_via_select(self, capsys):
        # Selecting only FX006 must not fail the run on errors.
        assert main(["lms", "--select", "FX006"]) == 0

    def test_json_format(self, capsys):
        assert main(["lms", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-lint"
        assert payload["designs"][0]["design"] == "lms"

    def test_sarif_format_shape(self, capsys):
        assert main(["lms", "biquad", "--format", "sarif"]) == 0
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        assert sarif["$schema"].endswith("sarif-2.1.0.json")
        assert [r["automationDetails"]["id"] for r in sarif["runs"]] == [
            "repro-lint/lms", "repro-lint/biquad"]
        for run in sarif["runs"]:
            driver = run["tool"]["driver"]
            assert driver["name"] == "repro-lint"
            assert len(driver["rules"]) >= 8
            for rule in driver["rules"]:
                assert rule["id"].startswith("FX")
                assert rule["defaultConfiguration"]["level"] in (
                    "note", "warning", "error")

    def test_output_file(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["lms", "--format", "json",
                     "--output", str(path)]) == 0
        assert json.loads(path.read_text())["tool"] == "repro-lint"

    def test_severity_override_fails_run(self, capsys):
        # cordic is clean by default; forcing FX00x severities up cannot
        # invent findings, but demoting fail-on to info catches nothing
        # either on a clean design.
        assert main(["cordic", "--fail-on", "info"]) == 0

    def test_samples_override(self, capsys):
        assert main(["lms", "--samples", "4"]) == 0


class TestCliBaseline:
    def test_write_and_apply_baseline(self, tmp_path, capsys, monkeypatch):
        import dataclasses

        import repro.lint.cli as cli
        registry = design_registry()
        broken = {"lms": dataclasses.replace(registry["lms"], ranges={})}
        monkeypatch.setattr(cli, "design_registry", lambda: broken)

        assert cli.main(["lms"]) == 1          # errors without baseline
        capsys.readouterr()

        path = tmp_path / "baseline.json"
        assert cli.main(["lms", "--write-baseline", str(path)]) == 1
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert payload["version"] == 1 and payload["fingerprints"]

        # With the baseline applied the same findings are suppressed.
        assert cli.main(["lms", "--baseline", str(path)]) == 0
        out = capsys.readouterr().out
        assert "suppressed" in out

    def test_fail_on_never(self, capsys, monkeypatch):
        import dataclasses

        import repro.lint.cli as cli
        registry = design_registry()
        broken = {"lms": dataclasses.replace(registry["lms"], ranges={})}
        monkeypatch.setattr(cli, "design_registry", lambda: broken)
        assert cli.main(["lms", "--fail-on", "never"]) == 0


class TestFlowIntegration:
    def _flow(self, **kw):
        from repro.core.dtype import DType
        from repro.dsp import LmsEqualizerDesign
        from repro.refine.flow import FlowConfig, RefinementFlow
        return RefinementFlow(
            LmsEqualizerDesign,
            input_types={"x": DType.from_spec("<10,8,tc,sa,ro>",
                                              name="x_t")},
            input_ranges={"x": (-1.5, 1.5)},
            config=FlowConfig(n_samples=400),
            **kw)

    def test_lint_predicts_msb_explosion(self):
        report = self._flow().lint()
        assert any(f.rule_id == "FX001" for f in report.errors)

    def test_lint_clean_with_user_ranges(self):
        report = self._flow(user_ranges={"b": (-0.2, 0.2)}).lint()
        assert report.errors == []

    def test_run_surfaces_lint_diagnostics(self):
        result = self._flow(user_ranges={"b": (-0.2, 0.2)}).run(strict=False)
        events = result.diagnostics.by_category("lint")
        assert events == []        # annotated design lints clean

    def test_run_reports_findings_for_bare_design(self):
        result = self._flow().run(strict=False)
        events = result.diagnostics.by_category("lint")
        assert any("FX001" in e.message for e in events)

    def test_lint_can_be_disabled(self):
        flow = self._flow()
        flow.cfg.lint_design = False
        result = flow.run(strict=False)
        assert result.diagnostics.by_category("lint") == []
