"""Unit tests for the LSB refinement rules (paper Section 5.2)."""

import math

import pytest

from repro.core.errors import RefinementError
from repro.core.interval import Interval
from repro.refine.lsbrules import (LsbPolicy, audit_precision, decide_lsb,
                                   detect_divergence, lsb_from_sigma)
from repro.refine.monitors import ErrorSummary, SignalRecord


def record(ep=(1000, 0.0, 0.0, 0.0), ec=(1000, 0.0, 0.0, 0.0), frac_bits=0,
           val_rms=1.0, forced_error=None, dtype=None, name="s"):
    return SignalRecord(
        name=name, is_register=False, dtype=dtype, role="",
        n_assign=ep[0], stat_min=-1.0, stat_max=1.0, frac_bits=frac_bits,
        prop=Interval(-1, 1),
        err_consumed=ErrorSummary(*ec),
        err_produced=ErrorSummary(*ep),
        val_rms=val_rms,
        forced_error=forced_error,
    )


class TestLsbFromSigma:
    def test_paper_rule(self):
        # 2**l <= k_w * sigma, f = -l.
        # sigma = 0.009 (the <7,5> input noise), k_w = 2:
        # log2(0.018) ~ -5.8 -> l = -6 -> f = 6.
        assert lsb_from_sigma(0.009, 2.0, 24) == 6

    def test_smaller_kw_is_more_conservative(self):
        fs = [lsb_from_sigma(0.009, kw, 24) for kw in (1.0, 2.0, 4.0)]
        assert fs == sorted(fs, reverse=True)
        assert fs[0] >= fs[-1]

    def test_zero_sigma_gives_cap(self):
        assert lsb_from_sigma(0.0, 2.0, 24) == 24

    def test_huge_sigma_gives_zero(self):
        assert lsb_from_sigma(100.0, 2.0, 24) == 0

    def test_cap_applies(self):
        assert lsb_from_sigma(1e-30, 2.0, 16) == 16

    def test_exact_power_of_two(self):
        # k_w * sigma = 2**-6 exactly: l = -6 allowed -> f = 6.
        assert lsb_from_sigma(2.0 ** -7, 2.0, 24) == 6


class TestDecideLsb:
    def test_noisy_signal(self):
        d = decide_lsb(record(ep=(4000, -1e-4, 0.009, 0.02)))
        assert d.lsb == 6
        assert d.mode == "round"
        assert not d.divergent

    def test_error_free_uses_value_grid(self):
        # Slicer output: values exactly +-1 -> 0 fractional bits.
        d = decide_lsb(record(ep=(4000, 0.0, 0.0, 0.0), frac_bits=0))
        assert d.lsb == 0
        assert "error-free" in d.note

    def test_error_free_nonterminating_values_capped(self):
        d = decide_lsb(record(ep=(1, 0.0, 0.0, 0.0), frac_bits=48),
                       LsbPolicy(max_frac_bits=24))
        assert d.lsb == 24

    def test_constant_bias(self):
        d = decide_lsb(record(ep=(100, 0.01, 0.0, 0.01)))
        assert "constant bias" in d.note
        assert d.lsb == lsb_from_sigma(0.01, 2.0, 24)

    def test_no_data(self):
        d = decide_lsb(record(ep=(0, 0.0, 0.0, 0.0)))
        assert d.lsb is None

    def test_divergent_flag(self):
        d = decide_lsb(record(ep=(100, 0.0, 10.0, 50.0)), divergent=True)
        assert d.divergent
        assert d.lsb is None
        assert d.needs_error_annotation

    def test_floor_mode(self):
        d = decide_lsb(record(ep=(100, 0.0, 0.01, 0.02)),
                       LsbPolicy(allow_floor=True))
        assert d.mode == "floor"

    def test_policy_validation(self):
        with pytest.raises(RefinementError):
            LsbPolicy(k_w=0.0)
        with pytest.raises(RefinementError):
            LsbPolicy(max_frac_bits=-1)


class TestDivergence:
    def test_ratio_test(self):
        # max error comparable to the signal itself.
        rec = record(ep=(1000, 0.0, 0.2, 0.9), val_rms=1.0)
        div, reason = detect_divergence(rec)
        assert div
        assert "rms" in reason

    def test_stationary_not_flagged(self):
        rec = record(ep=(1000, 0.0, 0.005, 0.02), val_rms=1.0)
        div, _ = detect_divergence(rec)
        assert not div

    def test_growth_test(self):
        rec = record(ep=(2000, 0.0, 0.010, 0.03), val_rms=1.0)
        half = (1000, 0.0, 0.005, 0.02)
        div, reason = detect_divergence(rec, half_snapshot=half)
        assert div
        assert "grew" in reason

    def test_growth_below_threshold_ok(self):
        rec = record(ep=(2000, 0.0, 0.0055, 0.02), val_rms=1.0)
        half = (1000, 0.0, 0.005, 0.02)
        div, _ = detect_divergence(rec, half_snapshot=half)
        assert not div

    def test_too_few_samples(self):
        rec = record(ep=(10, 0.0, 0.2, 0.9), val_rms=1.0)
        div, _ = detect_divergence(rec)
        assert not div

    def test_annotated_signal_not_flagged(self):
        rec = record(ep=(1000, 0.0, 0.2, 0.9), val_rms=1.0,
                     forced_error=2.0 ** -8)
        div, _ = detect_divergence(rec)
        assert not div


class TestAudit:
    def test_float_signal(self):
        rec = record(ep=(100, 0.0, 0.01, 0.02), ec=(100, 0.0, 0.01, 0.02))
        assert audit_precision(rec) == "float"

    def test_loss(self):
        from repro.core.dtype import DType
        rec = record(ep=(100, 0.0, 0.05, 0.1), ec=(100, 0.0, 0.01, 0.02),
                     dtype=DType("t", 8, 4))
        assert audit_precision(rec) == "loss"

    def test_lossless_quantizer(self):
        from repro.core.dtype import DType
        rec = record(ep=(100, 0.0, 0.0102, 0.02), ec=(100, 0.0, 0.01, 0.02),
                     dtype=DType("t", 8, 4))
        assert audit_precision(rec) == "lossless"

    def test_feedback_gain(self):
        rec = record(ep=(100, 0.0, 0.001, 0.002), ec=(100, 0.0, 0.01, 0.02),
                     forced_error=2.0 ** -8)
        assert audit_precision(rec) == "feedback-gain"

    def test_no_data(self):
        rec = record(ep=(0, 0.0, 0.0, 0.0))
        assert audit_precision(rec) == "no-data"
