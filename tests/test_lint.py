"""Per-rule trigger/clean-twin fixtures for the repro.lint analyzer."""

import pytest

from repro.core.dtype import DType
from repro.lint import (LintConfig, apply_baseline, load_baseline, run_lint,
                        to_json_dict, to_sarif_dict, write_baseline)
from repro.signal import DesignContext, Reg, Sig, cast, select
from repro.signal.ops import gt
from repro.sfg import trace


@pytest.fixture
def ctx():
    with DesignContext("lint-test", seed=0) as c:
        yield c


def _trace(ctx, body):
    with trace(ctx) as t:
        body()
        ctx.tick()
    return t.sfg


def _accumulator(ctx, annotate=False, saturate=False, sat_cast=False):
    acc = Reg("acc")
    x = Sig("x")
    if annotate:
        acc.range(-4.0, 4.0)
    if saturate:
        acc.set_dtype(DType("acc_t", 8, 4, "tc", "saturate", "round"))

    def body():
        x.assign(1.0)
        if sat_cast:
            acc.assign(cast(acc + x,
                            DType("c_t", 8, 4, "tc", "saturate", "round")))
        else:
            acc.assign(acc + x)

    return _trace(ctx, body), acc, x


class TestFX001MsbExplosion:
    def test_trigger(self, ctx):
        sfg, _, _ = _accumulator(ctx)
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"acc"})
        (f,) = rep.by_rule("FX001")
        assert f.severity == "error"
        assert f.signal == "acc"
        assert "acc" in f.cycle
        assert "range(" in f.hint

    def test_clean_with_range_annotation(self, ctx):
        sfg, _, _ = _accumulator(ctx, annotate=True)
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"acc"})
        assert rep.by_rule("FX001") == []

    def test_clean_with_saturating_dtype(self, ctx):
        sfg, _, _ = _accumulator(ctx, saturate=True)
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"acc"})
        assert rep.by_rule("FX001") == []

    def test_clean_with_saturating_cast_on_path(self, ctx):
        sfg, _, _ = _accumulator(ctx, sat_cast=True)
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"acc"})
        assert rep.by_rule("FX001") == []

    def test_site_from_declaration(self, ctx):
        sfg, _, _ = _accumulator(ctx)
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"acc"})
        (f,) = rep.by_rule("FX001")
        assert f.site is not None and f.site[0].endswith("test_lint.py")


class TestFX002DeclaredRangeOverflow:
    def _graph(self, ctx, spec):
        x = Sig("x")
        y = Sig("y")
        y.set_dtype(DType.from_spec(spec, name="y_t"))
        return _trace(ctx, lambda: (x.assign(0.5), y.assign(x * 3.0)))

    def test_trigger_wrap_is_error(self, ctx):
        sfg = self._graph(ctx, "<4,2,tc,wr,ro>")
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"y"})
        (f,) = rep.by_rule("FX002")
        assert f.severity == "error"
        assert "wrap" in f.message

    def test_trigger_error_mode_is_warning(self, ctx):
        sfg = self._graph(ctx, "<4,2,tc,er,ro>")
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"y"})
        (f,) = rep.by_rule("FX002")
        assert f.severity == "warning"

    def test_clean_when_type_covers(self, ctx):
        sfg = self._graph(ctx, "<8,4,tc,wr,ro>")   # [-8, 7.9375] covers
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"y"})
        assert rep.by_rule("FX002") == []

    def test_clean_when_saturating(self, ctx):
        sfg = self._graph(ctx, "<4,2,tc,sa,ro>")
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"y"})
        assert rep.by_rule("FX002") == []

    def test_exploded_cycle_owned_by_fx001(self, ctx):
        acc = Reg("acc")
        x = Sig("x")
        acc.set_dtype(DType.from_spec("<8,4,tc,wr,ro>", name="acc_t"))
        sfg = _trace(ctx, lambda: (x.assign(1.0), acc.assign(acc + x)))
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"acc"})
        assert rep.by_rule("FX001") != []
        assert rep.by_rule("FX002") == []


class TestFX003WordlengthWaste:
    def _graph(self, ctx, spec):
        x = Sig("x")
        z = Sig("z")
        z.set_dtype(DType.from_spec(spec, name="z_t"))
        return _trace(ctx, lambda: (x.assign(0.5), z.assign(x + 0.25)))

    def test_trigger(self, ctx):
        sfg = self._graph(ctx, "<24,4,tc,sa,ro>")
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"z"})
        (f,) = rep.by_rule("FX003")
        assert f.data["dead_bits"] == 18
        assert "from_range" in f.hint

    def test_clean_when_tight(self, ctx):
        sfg = self._graph(ctx, "<6,4,tc,sa,ro>")   # msb=1, exactly needed
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"z"})
        assert rep.by_rule("FX003") == []

    def test_min_dead_bits_option(self, ctx):
        sfg = self._graph(ctx, "<8,4,tc,sa,ro>")   # msb=3, 2 dead bits
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"z"})
        assert len(rep.by_rule("FX003")) == 1
        cfg = LintConfig(options={"FX003": {"min_dead_bits": 4}})
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"z"},
                       config=cfg)
        assert rep.by_rule("FX003") == []


class TestFX004PrecisionHazard:
    def test_double_rounding_cast_chain(self, ctx):
        x = Sig("x")
        y = Sig("y")
        x.set_dtype(DType.from_spec("<8,4,tc,sa,ro>", name="x_t"))
        fine = DType.from_spec("<6,2,tc,sa,ro>", name="a_t")
        coarse = DType.from_spec("<5,1,tc,sa,ro>", name="b_t")
        sfg = _trace(ctx, lambda: (
            x.assign(0.5), y.assign(cast(cast(x, fine), coarse))))
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"y"})
        assert any("rounds twice" in f.message for f in rep.by_rule("FX004"))

    def test_clean_single_cast(self, ctx):
        x = Sig("x")
        y = Sig("y")
        x.set_dtype(DType.from_spec("<8,4,tc,sa,ro>", name="x_t"))
        coarse = DType.from_spec("<5,1,tc,sa,ro>", name="b_t")
        sfg = _trace(ctx, lambda: (x.assign(0.5),
                                   y.assign(cast(x, coarse))))
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"y"})
        assert rep.by_rule("FX004") == []

    def test_clean_truncating_first_cast(self, ctx):
        # Only round-then-round is double rounding; floor-then-round is
        # a deliberate cheap truncation and stays silent.
        x = Sig("x")
        y = Sig("y")
        x.set_dtype(DType.from_spec("<8,4,tc,sa,ro>", name="x_t"))
        fine = DType.from_spec("<6,2,tc,sa,fl>", name="a_t")
        coarse = DType.from_spec("<5,1,tc,sa,ro>", name="b_t")
        sfg = _trace(ctx, lambda: (
            x.assign(0.5), y.assign(cast(cast(x, fine), coarse))))
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"y"})
        assert rep.by_rule("FX004") == []

    def test_excess_discard(self, ctx):
        a = Sig("a")
        b = Sig("b")
        y = Sig("y")
        a.set_dtype(DType.from_spec("<16,14,tc,sa,ro>", name="a_t"))
        b.set_dtype(DType.from_spec("<16,14,tc,sa,ro>", name="b_t"))
        y.set_dtype(DType.from_spec("<6,2,tc,sa,ro>", name="y_t"))
        # a*b is exactly on the 2^-28 grid; y keeps 2 fractional bits.
        sfg = _trace(ctx, lambda: (a.assign(0.5), b.assign(0.25),
                                   y.assign(a * b)))
        rep = run_lint(sfg, input_ranges={"a": (-1, 1), "b": (-1, 1)},
                       outputs={"y"})
        assert any(f.data.get("lost_bits") == 26
                   for f in rep.by_rule("FX004"))


class TestFX005UndrivenReg:
    def test_trigger(self, ctx):
        r = Reg("r")
        x = Sig("x")
        y = Sig("y")
        sfg = _trace(ctx, lambda: (x.assign(1.0), y.assign(x + r)))
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"y"})
        (f,) = rep.by_rule("FX005")
        assert f.signal == "r"

    def test_clean_when_driven(self, ctx):
        r = Reg("r")
        x = Sig("x")
        y = Sig("y")
        sfg = _trace(ctx, lambda: (x.assign(1.0), r.assign(x * 0.5),
                                   y.assign(x + r)))
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"y"})
        assert rep.by_rule("FX005") == []

    def test_clean_when_declared_input(self, ctx):
        r = Reg("r")
        x = Sig("x")
        y = Sig("y")
        sfg = _trace(ctx, lambda: (x.assign(1.0), y.assign(x + r)))
        rep = run_lint(sfg, input_ranges={"x": (-1, 1), "r": (-1, 1)},
                       outputs={"y"})
        assert rep.by_rule("FX005") == []


class TestFX006DeadSignal:
    def test_trigger(self, ctx):
        x = Sig("x")
        dead = Sig("dead")
        sfg = _trace(ctx, lambda: (x.assign(1.0), dead.assign(x * 2.0)))
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)})
        (f,) = rep.by_rule("FX006")
        assert f.signal == "dead"

    def test_clean_when_output(self, ctx):
        x = Sig("x")
        y = Sig("y")
        sfg = _trace(ctx, lambda: (x.assign(1.0), y.assign(x * 2.0)))
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"y"})
        assert rep.by_rule("FX006") == []

    def test_clean_when_output_role(self, ctx):
        x = Sig("x")
        y = Sig("y")
        y.role = "output"
        sfg = _trace(ctx, lambda: (x.assign(1.0), y.assign(x * 2.0)))
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)})
        assert rep.by_rule("FX006") == []


class TestFX007WrapCompare:
    def _graph(self, ctx, spec, gain):
        p = Sig("p")
        x = Sig("x")
        flag = Sig("flag")
        p.set_dtype(DType.from_spec(spec, name="p_t"))
        return _trace(ctx, lambda: (
            x.assign(0.5), p.assign(x * gain),
            flag.assign(select(gt(p, 0.0), 1.0, -1.0))))

    def test_trigger(self, ctx):
        sfg = self._graph(ctx, "<6,4,tc,wr,ro>", 16.0)  # range exceeds
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)},
                       outputs={"flag", "p"})
        (f,) = rep.by_rule("FX007")
        assert f.signal == "p"

    def test_clean_when_provably_fits(self, ctx):
        sfg = self._graph(ctx, "<6,4,tc,wr,ro>", 1.5)   # [-1.5, 1.5] fits
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)},
                       outputs={"flag", "p"})
        assert rep.by_rule("FX007") == []

    def test_clean_when_saturating(self, ctx):
        sfg = self._graph(ctx, "<6,4,tc,sa,ro>", 16.0)
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)},
                       outputs={"flag", "p"})
        assert rep.by_rule("FX007") == []


class TestFX008RedundantCast:
    def test_trigger(self, ctx):
        x = Sig("x")
        y = Sig("y")
        x.set_dtype(DType.from_spec("<8,4,tc,sa,ro>", name="x_t"))
        wide = DType.from_spec("<12,8,tc,sa,ro>", name="w_t")
        sfg = _trace(ctx, lambda: (x.assign(0.5), y.assign(cast(x, wide))))
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"y"})
        (f,) = rep.by_rule("FX008")
        assert f.severity == "info"
        assert f.signal == "y"

    def test_clean_when_cast_narrows(self, ctx):
        x = Sig("x")
        y = Sig("y")
        x.set_dtype(DType.from_spec("<8,4,tc,sa,ro>", name="x_t"))
        narrow = DType.from_spec("<6,2,tc,sa,ro>", name="n_t")
        sfg = _trace(ctx, lambda: (x.assign(0.5),
                                   y.assign(cast(x, narrow))))
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"y"})
        assert rep.by_rule("FX008") == []

    def test_clean_when_operand_grid_unknown(self, ctx):
        x = Sig("x")            # no dtype: grid unknown
        y = Sig("y")
        wide = DType.from_spec("<12,8,tc,sa,ro>", name="w_t")
        sfg = _trace(ctx, lambda: (x.assign(0.5), y.assign(cast(x, wide))))
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"y"})
        assert rep.by_rule("FX008") == []


class TestFX009StateLoopWithoutSaturation:
    def _acc(self, ctx, spec, cast_spec=None):
        acc = Reg("acc")
        x = Sig("x")
        if spec is not None:
            acc.set_dtype(DType.from_spec(spec, name="acc_t"))
        acc.range(-4.0, 4.0)    # keep FX001 out of the picture

        def body():
            x.assign(0.25)
            nxt = acc * 0.5 + x
            if cast_spec is not None:
                nxt = cast(nxt, DType.from_spec(cast_spec, name="c_t"))
            acc.assign(nxt)

        return _trace(ctx, body)

    def test_trigger_wrap_dtype(self, ctx):
        sfg = self._acc(ctx, "<5,3,tc,wr,ro>")
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)},
                       outputs={"acc"})
        (f,) = rep.by_rule("FX009")
        assert f.signal == "acc"
        assert "wrap" in f.message

    def test_trigger_wrap_cast_on_cycle(self, ctx):
        sfg = self._acc(ctx, None, cast_spec="<5,3,tc,wr,ro>")
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)},
                       outputs={"acc"})
        (f,) = rep.by_rule("FX009")
        assert f.signal == "acc"

    def test_clean_when_saturating(self, ctx):
        sfg = self._acc(ctx, "<5,3,tc,sa,ro>")
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)},
                       outputs={"acc"})
        assert rep.by_rule("FX009") == []

    def test_clean_when_untyped(self, ctx):
        sfg = self._acc(ctx, None)
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)},
                       outputs={"acc"})
        assert rep.by_rule("FX009") == []

    def test_clean_when_no_cycle(self, ctx):
        x = Sig("x")
        y = Sig("y")
        y.set_dtype(DType.from_spec("<5,3,tc,wr,ro>", name="y_t"))
        sfg = _trace(ctx, lambda: (x.assign(0.5), y.assign(x * 0.5)))
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"y"})
        assert rep.by_rule("FX009") == []


class TestConfig:
    def _noisy_graph(self, ctx):
        x = Sig("x")
        dead = Sig("dead")
        z = Sig("z")
        z.set_dtype(DType.from_spec("<24,4,tc,sa,ro>", name="z_t"))
        return _trace(ctx, lambda: (x.assign(1.0), dead.assign(x + 1.0),
                                    z.assign(x * 0.5)))

    def test_disable_rule(self, ctx):
        sfg = self._noisy_graph(ctx)
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"z"},
                       config=LintConfig(disabled={"FX006"}))
        assert rep.by_rule("FX006") == []
        assert rep.by_rule("FX003") != []

    def test_enabled_only(self, ctx):
        sfg = self._noisy_graph(ctx)
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"z"},
                       config=LintConfig(enabled_only={"FX006"}))
        assert {f.rule_id for f in rep} == {"FX006"}

    def test_severity_override(self, ctx):
        sfg = self._noisy_graph(ctx)
        rep = run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"z"},
                       config=LintConfig(severities={"FX003": "error"}))
        (f,) = rep.by_rule("FX003")
        assert f.severity == "error"
        assert rep.errors != []

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError):
            LintConfig(severities={"FX003": "fatal"})


class TestReportAndBaseline:
    def _report(self, ctx):
        sfg, _, _ = _accumulator(ctx)
        return run_lint(sfg, input_ranges={"x": (-1, 1)}, outputs={"acc"},
                        design_name="acc-demo")

    def test_report_surface(self, ctx):
        rep = self._report(ctx)
        assert len(rep) == 1
        assert rep.worst_severity() == "error"
        assert "FX001" in rep.table()
        assert "acc-demo" in rep.summary()
        d = rep.to_dict()
        assert d["findings"][0]["rule"] == "FX001"
        assert d["findings"][0]["fingerprint"]

    def test_fingerprint_stable_across_runs(self, ctx):
        rep = self._report(ctx)
        with DesignContext("lint-test-2", seed=9) as c2:
            sfg2, _, _ = _accumulator(c2)
            rep2 = run_lint(sfg2, input_ranges={"x": (-1, 1)},
                            outputs={"acc"}, design_name="acc-demo")
        assert ([f.fingerprint() for f in rep]
                == [f.fingerprint() for f in rep2])

    def test_baseline_roundtrip(self, ctx, tmp_path):
        rep = self._report(ctx)
        path = tmp_path / "baseline.json"
        write_baseline(str(path), rep)
        fingerprints = load_baseline(str(path))
        assert fingerprints == {f.fingerprint() for f in rep}
        clean = apply_baseline(rep, fingerprints)
        assert len(clean) == 0
        assert clean.suppressed == 1
        assert "suppressed" in clean.summary()

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_baseline(str(path))

    def test_json_payload(self, ctx):
        rep = self._report(ctx)
        payload = to_json_dict(rep)
        assert payload["totals"]["errors"] == 1
        assert payload["designs"][0]["design"] == "acc-demo"

    def test_sarif_payload(self, ctx):
        rep = self._report(ctx)
        sarif = to_sarif_dict(rep)
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        assert run["automationDetails"]["id"] == "repro-lint/acc-demo"
        driver = run["tool"]["driver"]
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == sorted(rule_ids) and "FX001" in rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "FX001"
        assert result["level"] == "error"
        assert result["ruleIndex"] == rule_ids.index("FX001")
        loc = result["locations"][0]
        region = loc["physicalLocation"]["region"]
        assert loc["physicalLocation"]["artifactLocation"]["uri"]
        assert region["startLine"] >= 1
        assert loc["logicalLocations"][0]["name"] == "acc"
        assert result["partialFingerprints"]["reproLint/v1"]
