"""Tests for the simulation engine (channels, processors, engine)."""

import pytest

from repro.core.dtype import DType
from repro.core.errors import ChannelEmpty, ChannelFull, SimulationError
from repro.signal import DesignContext, Reg, Sig
from repro.sim import Channel, Engine, FuncProcessor, Processor, Sink, Source


class TestChannel:
    def test_fifo_order(self):
        ch = Channel("c")
        ch.extend([1, 2, 3])
        assert [ch.get(), ch.get(), ch.get()] == [1, 2, 3]

    def test_empty_get_raises(self):
        with pytest.raises(ChannelEmpty):
            Channel("c").get()

    def test_try_get_default(self):
        assert Channel("c").try_get(default=-1) == -1

    def test_peek(self):
        ch = Channel("c")
        ch.put(7)
        assert ch.peek() == 7
        assert len(ch) == 1
        with pytest.raises(ChannelEmpty):
            Channel("x").peek()

    def test_capacity(self):
        ch = Channel("c", capacity=1)
        ch.put(1)
        with pytest.raises(ChannelFull):
            ch.put(2)

    def test_counters(self):
        ch = Channel("c")
        ch.put(1)
        ch.get()
        assert ch.n_put == 1 and ch.n_get == 1
        assert ch.empty

    def test_record(self):
        ch = Channel("c", record=True)
        ch.extend([1, 2])
        ch.get()
        assert ch.recorded == [1, 2]

    def test_record_disabled(self):
        with pytest.raises(ChannelEmpty):
            Channel("c").recorded


class _Doubler(Processor):
    """x -> 2x, one sample per cycle, with a monitored signal."""

    def build(self, ctx):
        self.y = Sig("%s.y" % self.name, DType("T", 8, 4))

    def behavior(self):
        cin = self.inputs["in"]
        cout = self.outputs["out"]
        while True:
            if not cin.empty:
                x = cin.get()
                self.y.assign(x * 2.0)
                cout.put(self.y.fx)
            yield


class TestEngine:
    def _pipeline(self, samples):
        ctx = DesignContext("t", seed=0)
        eng = Engine(ctx)
        src = eng.add(Source("src", samples))
        proc = eng.add(_Doubler("dbl"))
        sink = eng.add(Sink("sink", limit=len(samples)))
        eng.connect(src, "out", proc, "in")
        eng.connect(proc, "out", sink, "in")
        return ctx, eng, sink

    def test_end_to_end(self):
        ctx, eng, sink = self._pipeline([0.5, 1.0, -1.0])
        eng.run(until_done=True, cycles=100)
        assert sink.captured == [1.0, 2.0, -2.0]

    def test_cycle_bound(self):
        ctx, eng, sink = self._pipeline([1.0] * 10)
        n = eng.run(cycles=3)
        assert n == 3
        assert ctx.cycle == 3

    def test_until_done_stops_early(self):
        ctx, eng, sink = self._pipeline([1.0])
        n = eng.run(until_done=True, cycles=100)
        assert n < 100
        assert sink.captured == [2.0]

    def test_signals_created_in_ctx(self):
        ctx, eng, sink = self._pipeline([1.0])
        eng.run(until_done=True, cycles=10)
        assert "dbl.y" in ctx

    def test_monitoring_happens_during_sim(self):
        ctx, eng, sink = self._pipeline([0.5, -0.25])
        eng.run(until_done=True, cycles=10)
        y = ctx.get("dbl.y")
        assert y.range_stat.count == 2
        assert y.range_stat.min == -0.5
        assert y.range_stat.max == 1.0

    def test_run_without_bound_rejected(self):
        ctx, eng, _ = self._pipeline([1.0])
        with pytest.raises(SimulationError):
            eng.run()

    def test_empty_engine_rejected(self):
        with pytest.raises(SimulationError):
            Engine(DesignContext("e")).build()


class TestFuncProcessor:
    def test_per_cycle_callable(self):
        calls = []

        def fn(proc):
            calls.append(proc.name)
            if len(calls) >= 3:
                return False

        ctx = DesignContext("t")
        eng = Engine(ctx, [FuncProcessor("f", fn)])
        eng.run(until_done=True, cycles=10)
        assert calls == ["f", "f", "f"]

    def test_build_fn(self):
        def build(proc, ctx):
            proc.s = Sig("s")

        def fn(proc):
            return False

        ctx = DesignContext("t")
        eng = Engine(ctx, [FuncProcessor("f", fn, build_fn=build)])
        eng.run(until_done=True, cycles=5)
        assert "s" in ctx


class TestRegisterClocking:
    def test_registers_commit_once_per_engine_cycle(self):
        ctx = DesignContext("t")

        class Acc(Processor):
            def build(self, p_ctx):
                self.acc = Reg("acc")

            def behavior(self):
                while True:
                    self.acc.assign(self.acc + 1.0)
                    yield

        eng = Engine(ctx, [Acc("a")])
        eng.run(cycles=5)
        assert ctx.get("acc").fx == 5.0

    def test_step_before_start_raises(self):
        p = _Doubler("d")
        with pytest.raises(SimulationError):
            p.step()

    def test_done_flag(self):
        src = Source("s", [1.0])
        src.connect_output("out", Channel("c"))
        src.start()
        assert src.step() is True
        assert src.step() is False
        assert src.done

    def test_source_requires_channel(self):
        src = Source("s", [1.0])
        src.start()
        with pytest.raises(SimulationError):
            src.step()

    def test_sink_requires_channel(self):
        sink = Sink("s")
        sink.start()
        with pytest.raises(SimulationError):
            sink.step()
