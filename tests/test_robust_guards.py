"""Tests for the guard layer: non-finite policies, watchdogs, stalls."""

import math
import time

import pytest

from repro.core.dtype import DType
from repro.core.errors import (DeadlockError, DesignError, NonFiniteError,
                               SimulationError, WatchdogTimeout)
from repro.core.quantize import quantize_array, quantize_info
from repro.robust.guards import GuardPolicy, Watchdog, guard_summary
from repro.signal import DesignContext, Sig
from repro.sim import DROP, Channel, Engine, FuncProcessor, Processor

T8 = DType("T8", 8, 6, "tc", "saturate", "round")


class TestNonFiniteGuard:
    def test_raise_on_nan(self):
        with DesignContext("t", guard_action="raise"):
            s = Sig("s")
            s.assign(0.5)
            with pytest.raises(NonFiniteError):
                s.assign(float("nan"))

    def test_raise_on_inf(self):
        with DesignContext("t"):       # raise is the default
            s = Sig("s")
            with pytest.raises(NonFiniteError):
                s.assign(float("inf"))

    def test_raise_names_the_signal(self):
        with DesignContext("t"):
            s = Sig("badsig")
            with pytest.raises(NonFiniteError, match="badsig"):
                s.assign(float("nan"))

    def test_record_holds_last_value(self):
        with DesignContext("t", guard_action="record") as ctx:
            s = Sig("s", T8)
            s.assign(0.5)
            s.assign(float("nan"))
        assert s.fx == 0.5
        assert ctx.guard_trip_count == 1
        assert len(ctx.guard_log) == 1
        ev = ctx.guard_log[0]
        assert ev.signal == "s"
        assert math.isnan(ev.fx)
        assert ev.replacement_fx == 0.5

    def test_record_zero_replacement(self):
        with DesignContext("t", guard_action="record",
                           guard_replacement="zero") as ctx:
            s = Sig("s")
            s.assign(0.75)
            s.assign(float("inf"))
        assert s.fx == 0.0
        assert ctx.guard_log[0].replacement_fx == 0.0

    def test_hold_with_no_history_falls_back_to_zero(self):
        with DesignContext("t", guard_action="record") as ctx:
            s = Sig("s")
            s.assign(float("nan"))
        assert s.fx == 0.0
        assert ctx.guard_trip_count == 1

    def test_sanitize_counts_but_does_not_log(self):
        with DesignContext("t", guard_action="sanitize") as ctx:
            s = Sig("s")
            for _ in range(5):
                s.assign(float("nan"))
        assert ctx.guard_trip_count == 5
        assert ctx.guard_log == []

    def test_event_cap(self):
        with DesignContext("t", guard_action="record",
                           guard_max_events=3) as ctx:
            s = Sig("s")
            for _ in range(10):
                s.assign(float("nan"))
        assert ctx.guard_trip_count == 10
        assert len(ctx.guard_log) == 3

    def test_sanitized_value_still_quantized(self):
        # The held replacement flows through quantization normally.
        with DesignContext("t", guard_action="record"):
            s = Sig("s", T8)
            s.assign(0.3)
            q = s.fx
            s.assign(float("nan"))
        assert s.fx == q

    def test_reset_stats_clears_guard_state(self):
        with DesignContext("t", guard_action="record") as ctx:
            s = Sig("s")
            s.assign(float("nan"))
            ctx.reset_stats()
        assert ctx.guard_trip_count == 0
        assert ctx.guard_log == []

    def test_invalid_action_rejected(self):
        with pytest.raises(DesignError):
            DesignContext("t", guard_action="explode")

    def test_invalid_replacement_rejected(self):
        with pytest.raises(DesignError):
            DesignContext("t", guard_replacement="interpolate")

    def test_guard_summary_text(self):
        with DesignContext("t", guard_action="record") as ctx:
            s = Sig("s")
            s.assign(float("nan"))
        assert "s x1" in guard_summary(ctx)
        with DesignContext("t2") as clean:
            pass
        assert guard_summary(clean) == "no guard trips"


class TestGuardPolicy:
    def test_apply_to_context(self):
        with DesignContext("t") as ctx:
            GuardPolicy(action="record", replacement="zero",
                        max_events=7).apply_to(ctx)
        assert ctx.guard_action == "record"
        assert ctx.guard_replacement == "zero"
        assert ctx.guard_max_events == 7

    def test_context_kwargs_roundtrip(self):
        kw = GuardPolicy(action="sanitize").context_kwargs()
        with DesignContext("t", **kw) as ctx:
            pass
        assert ctx.guard_action == "sanitize"

    def test_validation(self):
        with pytest.raises(DesignError):
            GuardPolicy(action="bogus")
        with pytest.raises(DesignError):
            GuardPolicy(replacement="bogus")


class TestQuantizeNonFinite:
    def test_scalar_nan(self):
        with pytest.raises(NonFiniteError):
            quantize_info(float("nan"), 8, 6)

    def test_scalar_inf(self):
        with pytest.raises(NonFiniteError):
            quantize_info(float("-inf"), 8, 6)

    def test_array(self):
        with pytest.raises(NonFiniteError):
            quantize_array([0.0, 0.5, float("nan")], 8, 6)


class TestWatchdog:
    def test_needs_a_budget(self):
        with pytest.raises(DesignError):
            Watchdog()

    def test_rejects_nonpositive(self):
        with pytest.raises(DesignError):
            Watchdog(max_cycles=0)
        with pytest.raises(DesignError):
            Watchdog(max_seconds=-1.0)

    def test_cycle_budget(self):
        wd = Watchdog(max_cycles=10)
        for n in range(1, 10):
            wd.check(n)
        with pytest.raises(WatchdogTimeout) as exc:
            wd.check(10)
        assert exc.value.cycles == 10

    def test_wall_clock_budget(self):
        wd = Watchdog(max_seconds=0.001, clock_stride=1)
        wd.start()
        time.sleep(0.005)
        with pytest.raises(WatchdogTimeout):
            wd.check(1)

    def test_context_tick_integration(self):
        with pytest.raises(WatchdogTimeout):
            with DesignContext("t") as ctx:
                ctx.watchdog = Watchdog(max_cycles=25)
                for _ in range(100):
                    ctx.tick()
        assert ctx.cycle <= 26

    def test_restart_rearms(self):
        wd = Watchdog(max_cycles=5)
        with pytest.raises(WatchdogTimeout):
            wd.check(5)
        wd.start()
        wd.check(4)     # does not raise after re-arm


class _IdleConsumer(Processor):
    """Polls its input channel forever (never finishes by itself)."""

    def build(self, ctx):
        self.got = []

    def behavior(self):
        ch = self.inputs["x"]
        while True:
            v = ch.try_get()
            if v is not None:
                self.got.append(v)
            yield


class _FiniteProducer(Processor):
    def __init__(self, name, n):
        super().__init__(name)
        self.n = n

    def behavior(self):
        ch = self.outputs["y"]
        for i in range(self.n):
            ch.put(float(i))
            yield


def _pipeline(n=20):
    ctx = DesignContext("stall")
    eng = Engine(ctx)
    prod = eng.add(_FiniteProducer("prod", n))
    cons = eng.add(_IdleConsumer("cons"))
    eng.connect(prod, "y", cons, "x")
    return ctx, eng, cons


class TestEngineStall:
    def test_deadlock_detected(self):
        _, eng, _ = _pipeline()
        with pytest.raises(DeadlockError) as exc:
            eng.run(cycles=500, stall_limit=5)
        assert "cons" in exc.value.processors
        assert "prod" not in exc.value.processors

    def test_engine_level_stall_limit(self):
        ctx = DesignContext("stall2")
        eng = Engine(ctx, stall_limit=4)
        prod = eng.add(_FiniteProducer("prod", 10))
        cons = eng.add(_IdleConsumer("cons"))
        eng.connect(prod, "y", cons, "x")
        with pytest.raises(DeadlockError):
            eng.run(cycles=500)

    def test_data_flows_before_deadlock(self):
        _, eng, cons = _pipeline(n=20)
        with pytest.raises(DeadlockError):
            eng.run(cycles=500, stall_limit=5)
        assert cons.got == [float(i) for i in range(20)]

    def test_until_done_drains_without_raising(self):
        _, eng, cons = _pipeline(n=10)
        eng.run(cycles=500, until_done=True, stall_limit=5)
        assert len(cons.got) == 10

    def test_no_stall_limit_runs_to_cycle_bound(self):
        _, eng, _ = _pipeline(n=5)
        assert eng.run(cycles=50) == 50

    def test_watchdog_bounds_run(self):
        ctx = DesignContext("wd-eng")
        eng = Engine(ctx)
        eng.add(FuncProcessor("free", lambda p: None))
        with pytest.raises(WatchdogTimeout):
            eng.run(watchdog=Watchdog(max_cycles=30))
        assert ctx.cycle == 30

    def test_unbounded_run_rejected(self):
        ctx = DesignContext("nobound")
        eng = Engine(ctx)
        eng.add(FuncProcessor("free", lambda p: None))
        with pytest.raises(SimulationError):
            eng.run()


class TestChannelFaults:
    def test_drop_sentinel(self):
        ch = Channel("c")
        ch.set_fault(lambda v: DROP if v < 0 else v)
        ch.extend([1.0, -2.0, 3.0])
        assert ch.n_dropped == 1
        assert ch.n_put == 2
        assert [ch.get(), ch.get()] == [1.0, 3.0]

    def test_rewrite(self):
        ch = Channel("c")
        ch.set_fault(lambda v: v * 2.0)
        ch.put(1.5)
        assert ch.get() == 3.0

    def test_clear(self):
        ch = Channel("c")
        ch.set_fault(lambda v: DROP)
        ch.put(1.0)
        ch.set_fault(None)
        ch.put(2.0)
        assert len(ch) == 1
