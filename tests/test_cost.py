"""Tests for the hardware cost model."""

import pytest

from repro.core.dtype import DType
from repro.refine.cost import CostReport, CostWeights, estimate_cost
from repro.sfg import trace
from repro.signal import DesignContext, Reg, Sig, select
from repro.signal.ops import gt

T8 = DType("T8", 8, 5, "tc", "saturate", "round")


def traced(body):
    ctx = DesignContext("cost", seed=0)
    with ctx:
        with trace(ctx) as t:
            body(ctx)
    return t.sfg


class TestOpCosts:
    def test_adder(self):
        def body(ctx):
            a = Sig("a", T8)
            b = Sig("b", T8)
            y = Sig("y", T8)
            a.assign(0.1)
            b.assign(0.1)
            y.assign(a + b)
        report = estimate_cost(traced(body),
                               {"a": T8, "b": T8, "y": T8},
                               inputs=["a", "b"], outputs=["y"])
        assert report.adder_bits == 9  # one bit of growth
        assert report.multiplier_cells == 0

    def test_multiplier(self):
        def body(ctx):
            a = Sig("a", T8)
            b = Sig("b", T8)
            y = Sig("y", T8)
            a.assign(0.1)
            b.assign(0.1)
            y.assign(a * b)
        report = estimate_cost(traced(body),
                               {"a": T8, "b": T8, "y": T8},
                               inputs=["a", "b"], outputs=["y"])
        assert report.multiplier_cells == 64

    def test_register_and_mux(self):
        def body(ctx):
            a = Sig("a", T8)
            r = Reg("r", T8)
            a.assign(0.1)
            r.assign(select(gt(a, 0.0), a + 0.0, -a))
            ctx.tick()
        report = estimate_cost(traced(body), {"a": T8, "r": T8},
                               inputs=["a"], outputs=["r"])
        assert report.register_bits == 8
        assert report.mux_bits > 0
        assert report.comparator_bits > 0


class TestQuantizationCosts:
    def _report(self, lsbspec, msbspec):
        T_OUT = DType("T_out", 6, 3, "tc", msbspec, lsbspec)

        def body(ctx):
            a = Sig("a", T8)
            y = Sig("y", T_OUT)
            a.assign(0.1)
            y.assign(a * 0.5)
        return estimate_cost(traced(body), {"a": T8, "y": T_OUT},
                             inputs=["a"], outputs=["y"])

    def test_round_needs_increment_adder(self):
        assert self._report("round", "wrap").rounding_bits == 6

    def test_floor_is_free(self):
        assert self._report("floor", "wrap").rounding_bits == 0

    def test_saturation_costs(self):
        assert self._report("floor", "saturate").saturation_bits == 6
        assert self._report("floor", "wrap").saturation_bits == 0

    def test_floor_cheaper_than_round(self):
        round_total = self._report("round", "saturate").total()
        floor_total = self._report("floor", "saturate").total()
        assert floor_total < round_total


class TestTotals:
    def test_weights_scale(self):
        r = CostReport(adder_bits=10, register_bits=5)
        assert r.total(CostWeights(adder=2.0, register=0.0)) == 20.0

    def test_table_mentions_all_resources(self):
        text = CostReport(adder_bits=1).table()
        for key in ("adder", "multiplier", "register", "rounding",
                    "saturation", "weighted total"):
            assert key in text

    def test_wider_types_cost_more(self):
        def body_for(T):
            def body(ctx):
                a = Sig("a", T)
                y = Sig("y", T)
                a.assign(0.1)
                y.assign(a * 0.5 + 0.25)
            return body

        T_small = DType("s", 6, 3)
        T_big = DType("b", 14, 11)
        small = estimate_cost(traced(body_for(T_small)),
                              {"a": T_small, "y": T_small},
                              inputs=["a"], outputs=["y"]).total()
        big = estimate_cost(traced(body_for(T_big)),
                            {"a": T_big, "y": T_big},
                            inputs=["a"], outputs=["y"]).total()
        assert big > small

    def test_by_signal_breakdown(self):
        def body(ctx):
            a = Sig("a", T8)
            r = Reg("r", T8)
            a.assign(0.1)
            r.assign(a + 0.0)
            ctx.tick()
        report = estimate_cost(traced(body), {"a": T8, "r": T8},
                               inputs=["a"], outputs=["r"])
        assert report.by_signal["r"] >= 8  # register bits at least
