"""Unit tests for the timing-loop blocks: Farrow, NCO, TED, loop filter."""

import numpy as np
import pytest

from repro.core.dtype import DType
from repro.dsp import (FARROW_BASIS, FarrowInterpolator, GardnerTed, Nco,
                       PiLoopFilter, WrappedNco)
from repro.signal import DesignContext, Sig


@pytest.fixture
def ctx():
    with DesignContext("loop-test", seed=0) as c:
        yield c


class TestFarrowBasis:
    def test_interpolates_nodes_exactly(self):
        # At mu=0 the output must be d2; at mu=1 it must be d1.
        d = [0.3, -1.2, 0.7, 2.1]
        def horner(mu):
            f = [sum(FARROW_BASIS[j][i] * d[i] for i in range(4))
                 for j in range(4)]
            return ((f[3] * mu + f[2]) * mu + f[1]) * mu + f[0]
        assert horner(0.0) == pytest.approx(d[2])
        assert horner(1.0) == pytest.approx(d[1])

    def test_reproduces_cubics_exactly(self):
        # Lagrange through 4 points is exact for any cubic polynomial.
        poly = lambda t: 0.3 * t ** 3 - 0.5 * t ** 2 + t - 0.2
        d = [poly(2.0), poly(1.0), poly(0.0), poly(-1.0)]
        for mu in (0.1, 0.5, 0.9):
            f = [sum(FARROW_BASIS[j][i] * d[i] for i in range(4))
                 for j in range(4)]
            y = ((f[3] * mu + f[2]) * mu + f[1]) * mu + f[0]
            assert y == pytest.approx(poly(mu))


class TestFarrowBlock:
    def test_sine_interpolation(self, ctx):
        ip = FarrowInterpolator("ip")
        f = lambda t: np.sin(0.3 * t)
        mu = 0.37
        errs = []
        for k in range(30):
            y = ip.step(f(k), mu)
            ctx.tick()
            if k > 6:
                errs.append(abs(y.fx - f((k - 3) + mu)))
        assert max(errs) < 5e-4

    def test_signal_count(self, ctx):
        ip = FarrowInterpolator("ip")
        assert len(ip.signals()) == 27

    def test_mu_signal_operand(self, ctx):
        ip = FarrowInterpolator("ip")
        mu = Sig("mu")
        mu.assign(0.25)
        for k in range(8):
            ip.step(float(k % 3), mu)
            ctx.tick()
        assert np.isfinite(ip.y.fx)


class TestNco:
    def test_strobe_rate(self, ctx):
        nco = Nco("nco")
        strobes = sum(1 for _ in range(1000) if (nco.step(0.5), ctx.tick())[0])
        assert strobes == pytest.approx(500, abs=2)

    def test_phase_stays_in_unit_interval(self, ctx):
        nco = Nco("nco")
        for _ in range(200):
            nco.step(0.37)
            ctx.tick()
            assert 0.0 <= nco.eta.fx < 1.0

    def test_mu_range(self, ctx):
        nco = Nco("nco")
        mus = []
        for _ in range(400):
            if nco.step(0.45):
                mus.append(nco.eta.fx / 0.45)
            ctx.tick()
        # mu = eta/w at underflow is within [0, eta_max/w).
        assert all(0.0 <= m < 2.3 for m in mus)

    def test_mu_held_between_strobes(self, ctx):
        nco = Nco("nco")
        held = []
        for _ in range(10):
            strobe = nco.step(0.3)
            ctx.tick()
            held.append(nco.mu.fx)
        # mu only changes after strobes; consecutive non-strobe cycles hold.
        assert len(set(held)) < len(held)


class TestWrappedNco:
    PHASE_T = DType("T_eta", 12, 12, "us", "wrap", "round")

    def test_requires_modulo_type(self, ctx):
        with pytest.raises(ValueError):
            WrappedNco("n", DType("bad", 12, 10, "us", "wrap"))
        with pytest.raises(ValueError):
            WrappedNco("n2", DType("bad2", 12, 12, "tc", "wrap"))
        with pytest.raises(ValueError):
            WrappedNco("n3", DType("bad3", 12, 12, "us", "saturate"))

    def test_fx_wraps_fl_runs_off(self, ctx):
        nco = WrappedNco("nco", self.PHASE_T)
        for _ in range(50):
            nco.step(0.5)
            ctx.tick()
        assert 0.0 <= nco.eta.fx < 1.0
        assert nco.eta.fl < -5.0  # float reference never wraps

    def test_strobe_cadence_matches_select_nco(self, ctx):
        wrapped = WrappedNco("w", self.PHASE_T)
        plain = Nco("p")
        for _ in range(300):
            sw = wrapped.step(0.5)
            sp = plain.step(0.5)
            ctx.tick()
            assert sw == sp

    def test_error_annotation_restores_statistics(self, ctx):
        nco = WrappedNco("nco", self.PHASE_T)
        nco.eta.error(2.0 ** -12)
        for _ in range(300):
            nco.step(0.31)
            ctx.tick()
        assert nco.eta.err_produced.max_abs <= 2.0 ** -13 + 1e-12


class TestGardnerTed:
    def test_zero_at_symmetric_transition(self, ctx):
        ted = GardnerTed("ted")
        # prev=-1, now=+1, midpoint 0: error 0.
        ted.step(-1.0, 0.5)   # seed prev
        ctx.tick()
        e = ted.step(1.0, 0.0)
        assert e.fx == pytest.approx(-0.0)

    def test_sign_of_late_sampling(self, ctx):
        ted = GardnerTed("ted")
        ted.step(-1.0, 0.0)
        ctx.tick()
        # Transition -1 -> +1 sampled late: midpoint already positive.
        e = ted.step(1.0, 0.2)
        assert e.fx > 0

    def test_no_transition_no_error(self, ctx):
        ted = GardnerTed("ted")
        ted.step(1.0, 1.0)
        ctx.tick()
        e = ted.step(1.0, 1.0)
        assert e.fx == pytest.approx(0.0)

    def test_signals(self, ctx):
        ted = GardnerTed("ted")
        names = [s.name for s in ted.signals()]
        assert names == ["ted.prev", "ted.mid", "ted.err"]


class TestPiLoopFilter:
    def test_integrator_accumulates(self, ctx):
        lf = PiLoopFilter("lf", kp=0.0, ki=0.1)
        for _ in range(5):
            lf.step(1.0)
            ctx.tick()
        assert lf.i.fx == pytest.approx(0.5)

    def test_proportional_path(self, ctx):
        lf = PiLoopFilter("lf", kp=0.25, ki=0.0)
        lf.step(2.0)
        assert lf.p.fx == 0.5
        assert lf.out.fx == 0.5

    def test_combined(self, ctx):
        lf = PiLoopFilter("lf", kp=0.5, ki=0.1)
        lf.step(1.0)
        ctx.tick()
        lf.step(1.0)
        # out = p + i(committed) = 0.5 + 0.1
        assert lf.out.fx == pytest.approx(0.6)

    def test_signals(self, ctx):
        lf = PiLoopFilter("lf", 0.1, 0.01)
        assert [s.name for s in lf.signals()] == ["lf.p", "lf.i", "lf.out"]
