"""The scenario matrix: grid coverage, digest stability, the committed
artifact contract, and bit-exact journal resume — including a run
killed outright (``kill -9``) mid-matrix.
"""

import copy
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.gallery.matrix import (FULL_AXES, SMOKE_AXES, check_artifact,
                                  load_artifact, matrix_digest,
                                  run_matrix, write_artifact)
from repro.obs import counters

# A fast deterministic sub-grid shared by the tests below.
GRID = dict(designs=("kalman", "iir-lattice"),
            channels=("clean", "awgn"),
            campaigns=("clean", "bitflip-lsb"),
            seeds=(101, 202), n_samples=192)


class TestGrid:
    def test_smoke_axes_meet_issue_floor(self):
        assert len(SMOKE_AXES["channels"]) >= 2
        assert len(SMOKE_AXES["campaigns"]) >= 2
        assert len(SMOKE_AXES["seeds"]) >= 2
        assert set(SMOKE_AXES["channels"]) <= set(FULL_AXES["channels"])
        assert set(SMOKE_AXES["campaigns"]) <= set(FULL_AXES["campaigns"])

    def test_small_matrix_completes_every_cell(self):
        result = run_matrix(analyze=False, **GRID)
        assert len(result.cells) == 2 * 2 * 2 * 2
        assert all(c["completed"] for c in result.cells)
        # The bitflip campaign must actually have fired its fault.
        flips = [c for c in result.cells
                 if c["campaign"] == "bitflip-lsb"]
        assert flips and all(c["fault_fired"] for c in flips)
        clean = [c for c in result.cells if c["campaign"] == "clean"]
        assert clean and not any(c["fault_fired"] for c in clean)

    def test_digest_deterministic_across_runs(self):
        a = run_matrix(analyze=False, **GRID)
        b = run_matrix(analyze=False, **GRID)
        assert a.digest() == b.digest()
        assert [c["sqnr_db"] for c in a.cells] == \
               [c["sqnr_db"] for c in b.cells]

    def test_digest_structural_only(self):
        result = run_matrix(analyze=False, **GRID)
        cells = copy.deepcopy(result.cells)
        cells[0]["sqnr_db"] = 99.99          # measured float: no change
        assert matrix_digest(cells, {}) == \
            matrix_digest(result.cells, {})
        cells[0]["completed"] = False        # structural fact: change
        assert matrix_digest(cells, {}) != \
            matrix_digest(result.cells, {})

    def test_unknown_axis_values_rejected(self):
        with pytest.raises(KeyError, match="unknown gallery design"):
            run_matrix(designs=("nope",), analyze=False)
        with pytest.raises(KeyError, match="unknown channel"):
            run_matrix(channels=("nope",), analyze=False)
        with pytest.raises(KeyError, match="unknown fault campaign"):
            run_matrix(campaigns=("nope",), analyze=False)


class TestArtifact:
    def test_roundtrip_and_check_ok(self, tmp_path):
        result = run_matrix(analyze=False, **GRID)
        path = tmp_path / "m.json"
        payload = write_artifact(result, str(path))
        loaded = load_artifact(str(path))
        assert loaded == payload
        assert loaded["schema"] == "repro.gallery.matrix/v1"
        assert loaded["counts"]["cells"] == len(result.cells)
        assert check_artifact(result.to_artifact(), loaded) == []

    def test_check_flags_structural_tamper(self, tmp_path):
        result = run_matrix(analyze=False, **GRID)
        committed = result.to_artifact()
        tampered = copy.deepcopy(committed)
        tampered["digest"] = "0" * len(committed["digest"])
        problems = check_artifact(result.to_artifact(), tampered)
        assert problems and "digest mismatch" in problems[0]

    def test_check_flags_sqnr_drift_but_tolerates_noise(self):
        result = run_matrix(analyze=False, **GRID)
        committed = result.to_artifact()
        drifted = copy.deepcopy(committed)
        for c in drifted["cells"]:
            if c["campaign"] == "clean" and c["sqnr_db"] is not None:
                c["sqnr_db"] = round(c["sqnr_db"] + 0.4, 2)
        assert check_artifact(drifted, committed) == []
        for c in drifted["cells"]:
            if c["campaign"] == "clean" and c["sqnr_db"] is not None:
                c["sqnr_db"] = round(c["sqnr_db"] + 5.0, 2)
        problems = check_artifact(drifted, committed)
        assert problems and "drifted" in problems[0]

    def test_committed_artifact_is_current_schema(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        committed = load_artifact(os.path.join(root,
                                               "GALLERY_MATRIX.json"))
        assert committed["schema"] == "repro.gallery.matrix/v1"
        assert committed["counts"]["designs"] >= 6
        for rep in committed["designs"].values():
            assert rep["meets_target"]
            assert rep["lint_clean"]
            assert rep["verify"]      # a recorded verdict per design


class TestJournalResume:
    def test_rerun_with_journal_is_bit_identical(self, tmp_path):
        journal = tmp_path / "m.jsonl"
        first = run_matrix(analyze=False, journal=str(journal), **GRID)
        counters.reset()
        second = run_matrix(analyze=False, journal=str(journal), **GRID)
        assert counters.get("journal.replays") == len(first.cells)
        assert first.digest() == second.digest()
        assert [c["sqnr_db"] for c in first.cells] == \
               [c["sqnr_db"] for c in second.cells]

    def test_killed_matrix_resumes_bit_identical(self, tmp_path):
        """SIGKILL the matrix mid-run; the journal resumes it to the
        same digest and per-cell SQNRs as an uninterrupted run."""
        helper = tmp_path / "matrix_helper.py"
        helper.write_text(HELPER)
        journal = tmp_path / "m.jsonl"

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_PARALLEL"] = "0"
        child = subprocess.Popen(
            [sys.executable, str(helper), str(journal)], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    pytest.fail("matrix finished before it could be "
                                "killed; slow the helper down")
                if journal.exists() and \
                        journal.read_text().count('"outcome"') >= 2:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("journal never accumulated two outcomes")
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait()

        import importlib.util
        spec = importlib.util.spec_from_file_location("matrix_helper",
                                                      str(helper))
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        counters.reset()
        resumed = mod.matrix(str(journal))
        assert counters.get("journal.replays") >= 2

        fresh = mod.matrix(None)
        assert resumed["digest"] == fresh["digest"]
        assert resumed["sqnr"] == fresh["sqnr"]


# The child process the SIGKILL test tears down: the same sub-grid the
# resumed/fresh runs execute, slowed enough to be killable mid-matrix.
HELPER = '''
import sys

from repro.gallery.matrix import run_matrix


def matrix(journal):
    result = run_matrix(designs=("kalman", "goertzel"),
                        channels=("clean", "awgn"),
                        campaigns=("clean", "bitflip-lsb"),
                        seeds=(101, 202), n_samples=1500,
                        analyze=False, workers=0, journal=journal)
    return {"digest": result.digest(),
            "sqnr": [c["sqnr_db"] for c in result.cells]}


if __name__ == "__main__":
    matrix(sys.argv[1])
'''


@pytest.mark.slow
class TestFullMatrix:
    def test_full_grid_meets_every_target(self):
        result = run_matrix(smoke=False)
        axes = result.axes
        expected = (len(axes["designs"]) * len(axes["channels"])
                    * len(axes["campaigns"]) * len(axes["seeds"]))
        assert len(result.cells) == expected
        assert result.all_targets_met
        for rep in result.design_reports.values():
            assert rep["lint_clean"]
