"""The design gallery: registry contract, reference fidelity, SQNR
targets, lint cleanliness and the verify pre-flight.

Each registered design promises four things the matrix artifact later
pins: its float reference model matches the unannotated simulation to
machine precision, its annotated run meets the documented SQNR target,
lint reports no error-severity findings, and the registry's recorded
verify verdicts are reproduced live.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.dtype import DType
from repro.gallery import (gallery, get_design, lint_entry,
                           reference_check, single_run, verify_entry)
from repro.gallery.matrix import CHANNEL_MODELS

ENTRIES = gallery()
NAMES = sorted(ENTRIES)


class TestRegistry:
    def test_at_least_six_designs(self):
        assert len(ENTRIES) >= 6

    def test_names_unique_and_wellformed(self):
        assert len(set(NAMES)) == len(NAMES)
        for name, e in ENTRIES.items():
            assert e.name == name
            assert e.inputs and e.output
            assert e.description
            assert e.sqnr_target_db > 0

    def test_every_input_has_envelope_and_dtype(self):
        for e in ENTRIES.values():
            for inp in e.inputs:
                lo, hi = e.envelope[inp]
                assert lo < hi
                assert inp in e.dtypes

    def test_every_design_declares_verify_position(self):
        # Either recorded checks or an honest skip reason — never
        # silence.
        for e in ENTRIES.values():
            assert e.verify_checks or e.verify_skip_reason

    def test_get_design_error_lists_names(self):
        with pytest.raises(KeyError, match="kalman"):
            get_design("no-such-design")


@pytest.mark.parametrize("name", NAMES)
class TestPerDesign:
    def test_reference_model_agrees(self, name):
        # Unannotated simulation vs. the pure-float reference model.
        assert reference_check(ENTRIES[name], n=256) <= 1e-9

    def test_meets_sqnr_target_clean(self, name):
        e = ENTRIES[name]
        out = single_run(e, n_samples=1024)
        assert out.completed
        assert out.sqnr_db() >= e.sqnr_target_db

    def test_lint_error_clean(self, name):
        report = lint_entry(ENTRIES[name])
        errors = [f for f in report if f.severity == "error"]
        assert not errors, [f.message for f in errors]

    def test_verify_matches_recorded_verdicts(self, name):
        e = ENTRIES[name]
        verdicts = verify_entry(e)
        assert verdicts
        if not e.verify_checks:
            # Honest skip: a synthesized UNKNOWN carrying the reason.
            assert verdicts[0].status == "UNKNOWN"
            assert e.verify_skip_reason in verdicts[0].reason
            return
        got = {(v.property, v.k): v.status for v in verdicts}
        for prop, k, expected in e.verify_checks:
            assert got[(prop, k)] == expected


class TestChannelStimulus:
    def test_channel_changes_stimulus_deterministically(self):
        e = ENTRIES["goertzel"]
        clean = e.cls.samples(7, 64)
        awgn1 = e.cls.samples(7, 64, channel=CHANNEL_MODELS["awgn"])
        awgn2 = e.cls.samples(7, 64, channel=CHANNEL_MODELS["awgn"])
        assert not np.allclose(clean, awgn1)
        np.testing.assert_array_equal(awgn1, awgn2)

    def test_stimulus_on_input_grid(self):
        # Traced constants must be dyadic for the verify encoder: the
        # base class snaps every stimulus row to the 2^-8 grid.
        for e in ENTRIES.values():
            xs = e.cls.samples(11, 32)
            np.testing.assert_array_equal(xs * 256.0,
                                          np.round(xs * 256.0))


class TestEngines:
    def test_compiled_matches_interpreted(self):
        e = ENTRIES["iir-lattice"]
        a = single_run(e, n_samples=256, engine="compiled")
        b = single_run(e, n_samples=256, engine="interpreted")
        np.testing.assert_array_equal(a.output, b.output)


class TestLintTrigger:
    def test_broken_twin_triggers_error(self):
        """A deliberately narrow wrapping state dtype must raise an
        error-severity finding — proving the gallery's lint gate can
        fail, not just that it happens to pass."""
        e = ENTRIES["goertzel"]
        bad = dict(e.dtypes)
        # The resonator state swings to ~5x the input: <8,7> wrap
        # (range [-1, 1)) silently corrupts it -> FX002 error.
        bad["gz.s"] = DType("TBAD", 8, 7, "tc", "wrap", "round")
        twin = dataclasses.replace(e, dtypes=bad)
        report = lint_entry(twin)
        errors = [f for f in report if f.severity == "error"]
        assert errors
        assert any(f.rule_id in ("FX001", "FX002") for f in errors)
