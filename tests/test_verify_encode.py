"""Exactness of the bit-vector encoding (repro.verify.encode).

The central claim of the verifier is that the symbolic encoding and the
interpreted engine compute the *same* integers; these tests pit
:class:`StepEncoder` against the concrete kernels
(:func:`repro.core.word.shift_round_code`,
:meth:`repro.core.dtype.DType.quantize_code`) on randomized codes.
"""

import math
import random

import pytest

from repro.core import word
from repro.core.dtype import DType
from repro.signal import DesignContext, Reg, Sig
from repro.sfg import trace
from repro.verify import bv
from repro.verify.encode import (EncodingUnsupported, Envelope,
                                 StepEncoder, VerifyError, Wire)
from repro.verify.gallery import FirOkDesign
from repro.verify.properties import trace_design

_T_IN = DType("TIN", 5, 3, "tc", "saturate", "round")


@pytest.fixture(scope="module")
def fir_encoder():
    traced = trace_design(FirOkDesign)
    return StepEncoder(traced.sfg, traced.inputs,
                       Envelope({"x": (-1.0, 1.0)}))


class TestEnvelope:
    def test_two_and_three_tuple(self):
        env = Envelope({"x": (-1.0, 1.0), "y": (-0.5, 0.5, 6)})
        assert env.bound("x") == (-1.0, 1.0, None)
        assert env.bound("y") == (-0.5, 0.5, 6)

    def test_unknown_input_raises(self):
        with pytest.raises(VerifyError):
            Envelope({"x": (-1, 1)}).bound("y")

    def test_bad_bounds_raise(self):
        with pytest.raises(VerifyError):
            Envelope({"x": (1.0, -1.0)})
        with pytest.raises(VerifyError):
            Envelope({"x": (0.0, float("inf"))})


class TestExactWire:
    def test_dyadic_reconstruction(self, fir_encoder):
        rng = random.Random(3)
        for _ in range(200):
            value = rng.randint(-4000, 4000) * 2.0 ** -rng.randint(0, 12)
            w = fir_encoder.exact_wire(value)
            assert w.code.op == "const"
            assert w.code.lo * 2.0 ** -w.f == value

    def test_zero(self, fir_encoder):
        w = fir_encoder.exact_wire(0.0)
        assert (w.code.lo, w.f) == (0, 0)

    def test_nonfinite_refused(self, fir_encoder):
        with pytest.raises(EncodingUnsupported):
            fir_encoder.exact_wire(float("nan"))


class TestInputSpec:
    def test_codes_on_dtype_grid(self, fir_encoder):
        spec = fir_encoder.input_specs["x"]
        # <5,3> saturating input over [-1, 1]: codes -8..8 on f=3.
        assert (spec.f, spec.lo_code, spec.hi_code) == (3, -8, 8)

    def test_envelope_intersects_dtype_range(self):
        traced = trace_design(FirOkDesign)
        enc = StepEncoder(traced.sfg, traced.inputs,
                          Envelope({"x": (-100.0, 100.0)}))
        spec = enc.input_specs["x"]
        # clipped to the <5,3> representable range.
        assert (spec.lo_code, spec.hi_code) == (_T_IN.code_min,
                                                _T_IN.code_max)

    def test_input_var_domain(self, fir_encoder):
        w = fir_encoder.input_var("x", 2)
        assert w.code.args[0] == "x@2"
        assert (w.code.lo, w.code.hi) == (-8, 8)


class TestShiftRound:
    @pytest.mark.parametrize("lsbspec", ["round", "floor", "ceil",
                                         "trunc"])
    def test_matches_concrete_kernel(self, fir_encoder, lsbspec):
        rng = random.Random(11)
        for _ in range(300):
            code = rng.randint(-3000, 3000)
            delta = rng.randint(-3, 10)
            sym = fir_encoder._shift_round(
                bv.var("c", -3000, 3000), delta, lsbspec, "test")
            got = bv.Evaluator([sym]).run({"c": code})[sym]
            assert got == word.shift_round_code(code, delta, lsbspec), \
                (code, delta, lsbspec)


class TestQuantizeWire:
    _DTYPES = [
        DType("A", n, f, vtype, msbspec, lsbspec)
        for n, f in ((4, 2), (5, 3), (6, 0), (8, 4))
        for vtype in ("tc", "us")
        for msbspec in ("saturate", "wrap")
        for lsbspec in ("round", "floor", "ceil", "trunc")
    ]

    @pytest.mark.parametrize("dtype", _DTYPES,
                             ids=[d.spec() for d in _DTYPES])
    def test_matches_quantize_code(self, fir_encoder, dtype):
        rng = random.Random(hash(dtype.spec()) & 0xFFFF)
        c = bv.var("c", -5000, 5000)
        for _ in range(120):
            f_in = rng.randint(0, 8)
            code = rng.randint(-5000, 5000)
            out, over = fir_encoder.quantize_wire(Wire(c, f_in), dtype,
                                                  "test")
            view = bv.Evaluator([out.code]).run({"c": code})
            want_code, want_over = dtype.quantize_code(code, f_in)
            assert view[out.code] == want_code, (code, f_in, dtype.spec())
            if over is bv.TRUE:
                got_over = True
            elif over is bv.FALSE:
                got_over = False
            else:
                got_over = bool(bv.Evaluator([over]).run({"c": code})[over])
            assert got_over == want_over, (code, f_in, dtype.spec())
            assert out.f == dtype.f

    def test_saturate_clamps_wrap_wraps(self, fir_encoder):
        sat = DType("S", 4, 0, "tc", "saturate", "round")
        wrap = DType("W", 4, 0, "tc", "wrap", "round")
        w = Wire(bv.var("c", -100, 100), 0)
        out_s, _ = fir_encoder.quantize_wire(w, sat, "s")
        out_w, _ = fir_encoder.quantize_wire(w, wrap, "w")
        vs = bv.Evaluator([out_s.code]).run({"c": 100})[out_s.code]
        vw = bv.Evaluator([out_w.code]).run({"c": 100})[out_w.code]
        assert vs == sat.code_max == 7
        assert vw == ((100 + 8) % 16) - 8 == 4


class TestStructureRefusals:
    def test_combinational_cycle_refused(self):
        with DesignContext("enc-comb", seed=0,
                           overflow_action="record",
                           guard_action="sanitize") as ctx:
            a = Sig("a")
            b = Sig("b")
            with trace(ctx) as t:
                a.assign(b + 1.0)
                b.assign(a * 0.5)
                ctx.tick()
        with pytest.raises(VerifyError):
            StepEncoder(t.sfg, ())

    def test_register_loop_accepted(self):
        with DesignContext("enc-reg", seed=0,
                           overflow_action="record",
                           guard_action="sanitize") as ctx:
            acc = Reg("acc", dtype=_T_IN)
            x = Sig("x", dtype=_T_IN)
            with trace(ctx) as t:
                x.assign(0.25)
                acc.assign(acc * 0.5 + x)
                ctx.tick()
        enc = StepEncoder(t.sfg, ("x",), Envelope({"x": (-1, 1)}))
        assert "acc" in enc.states

    def test_magnitude_gate_raises(self, fir_encoder):
        with pytest.raises(EncodingUnsupported):
            fir_encoder._gate(bv.var("huge", -(1 << 60), 1 << 60),
                              "test")


class TestStep:
    def test_one_step_matches_hand_computation(self):
        traced = trace_design(FirOkDesign)
        enc = StepEncoder(traced.sfg, traced.inputs,
                          Envelope({"x": (-1.0, 1.0)}))
        state = enc.initial_state()
        ins = {"x": enc.input_var("x", 0)}
        events = []
        state2, sigs = enc.step(state, ins, events, step_index=0)
        # power-on registers are zero, so y = 0 regardless of x.
        y = sigs["y"]
        view = bv.Evaluator([y.code]).run({"x@0": 5})
        assert view[y.code] == 0
        # the new d0 holds the (already on-grid) stimulus.
        d0 = state2["d0"]
        assert bv.Evaluator([d0.code]).run({"x@0": 5})[d0.code] == 5
        assert events and all(e.step == 0 for e in events)

    def test_unquantized_step_has_no_events(self):
        traced = trace_design(FirOkDesign)
        enc = StepEncoder(traced.sfg, traced.inputs,
                          Envelope({"x": (-1.0, 1.0)}))
        events = []
        enc.step(enc.initial_state(), {"x": enc.input_var("x", 0)},
                 events, step_index=0, quantized=False)
        assert events == []
