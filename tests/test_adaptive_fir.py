"""Tests for the fully adaptive LMS equalizer extension."""

import pytest

from repro.core.dtype import DType
from repro.dsp.adaptive_fir import AdaptiveLmsDesign
from repro.refine import FlowConfig, RefinementFlow
from repro.signal import DesignContext

T_IN = DType("T_in", 8, 6, "tc", "saturate", "round")


class TestConvergence:
    def test_float_equalizer_opens_the_eye(self):
        d = AdaptiveLmsDesign()
        ctx = DesignContext("conv", seed=0)
        with ctx:
            d.build(ctx)
            d.run(ctx, 4000)
        assert d.error_rate() < 0.01

    def test_unequalized_channel_fails(self):
        # Harsher channel with adaptation off (mu = 0): the eye closes.
        d = AdaptiveLmsDesign(mu=0.0, channel=(0.5, 1.0, 0.6))
        ctx = DesignContext("noadapt", seed=0)
        with ctx:
            d.build(ctx)
            d.run(ctx, 3000)
        assert d.error_rate() > 0.02

    def test_resumable_runs(self):
        d = AdaptiveLmsDesign()
        ctx = DesignContext("resume", seed=0)
        with ctx:
            d.build(ctx)
            d.run(ctx, 2000)
            d.run(ctx, 2000)
        assert len(d.decisions) == 4000
        assert d.error_rate() < 0.01


class TestRefinement:
    @pytest.fixture(scope="class")
    def flow(self):
        return RefinementFlow(
            AdaptiveLmsDesign,
            input_types={"x": T_IN},
            input_ranges={"x": (-1.8, 1.8)},
            user_ranges={"c": (-2.0, 2.0), "v": (-4.0, 4.0),
                         "e": (-4.0, 4.0)},
            config=FlowConfig(n_samples=4000, auto_range=False, seed=6),
        )

    def test_whole_tap_array_explodes(self, flow):
        msb = flow.run_msb_phase()
        exploded = set(msb.iterations[0].exploded)
        # Every adaptive coefficient is a feedback signal.
        assert {"c[%d]" % i for i in range(5)} <= exploded
        assert msb.resolved

    def test_array_annotation_expands(self, flow):
        msb = flow.run_msb_phase()
        added = msb.iterations[0].added_ranges
        assert "c" in added  # the array-wide annotation was used
        final = msb.final.decisions
        for i in range(5):
            assert final["c[%d]" % i].mode == "saturate"
            # range (-2, 2): +2.0 itself needs msb 2 in two's complement.
            assert final["c[%d]" % i].msb == 2

    def test_full_flow_keeps_equalizer_working(self, flow):
        res = flow.run()
        assert res.msb.resolved and res.lsb.resolved
        assert res.verification.total_overflows == 0

        # Re-run fully quantized and check decisions.
        from repro.refine import Annotations
        all_types = dict(res.types)
        all_types["x"] = T_IN
        ctx = DesignContext("fixed-check", seed=1)
        with ctx:
            d = AdaptiveLmsDesign()
            d.build(ctx)
            Annotations(dtypes=all_types).apply(ctx)
            d.run(ctx, 4000)
        assert d.error_rate() < 0.02
