"""Property-based tests for signal-layer invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dtype import DType
from repro.signal import DesignContext, Sig, select
from repro.signal.ops import gt

values = st.floats(min_value=-100.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)
small_values = st.floats(min_value=-3.0, max_value=3.0,
                         allow_nan=False, allow_infinity=False)


class TestAssignmentInvariants:
    @given(st.lists(values, min_size=1, max_size=30),
           st.integers(min_value=2, max_value=16),
           st.integers(min_value=0, max_value=12))
    @settings(max_examples=60)
    def test_fx_always_on_grid_and_in_range(self, vs, n, f):
        dt = DType("t", n, f, "tc", "saturate", "round")
        with DesignContext("prop", seed=0):
            s = Sig("s", dt)
            for v in vs:
                s.assign(v)
                assert dt.min_value <= s.fx <= dt.max_value
                code = s.fx * (2.0 ** f)
                assert code == int(code)

    @given(st.lists(values, min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_range_stat_brackets_all_inputs(self, vs):
        with DesignContext("prop", seed=0):
            s = Sig("s")
            for v in vs:
                s.assign(v)
            assert s.range_stat.count == len(vs)
            assert s.range_stat.min == min(vs)
            assert s.range_stat.max == max(vs)

    @given(st.lists(small_values, min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_prop_interval_contains_observed_range(self, vs):
        # Soundness of the online propagation versus what happened.
        with DesignContext("prop", seed=0):
            x = Sig("x")
            y = Sig("y")
            x.range(-3.0, 3.0)
            for v in vs:
                x.assign(v)
                y.assign(x * 0.5 + 0.25)
            iv = y.prop_interval()
            assert iv.lo <= y.range_stat.min + 1e-12
            assert iv.hi >= y.range_stat.max - 1e-12

    @given(st.lists(small_values, min_size=2, max_size=30),
           st.integers(min_value=2, max_value=10))
    @settings(max_examples=60)
    def test_float_signal_has_zero_produced_error(self, vs, f):
        dt = DType("t", 12, f, "tc", "saturate", "round")
        with DesignContext("prop", seed=0):
            x = Sig("x", dt)
            y = Sig("y")
            for v in vs:
                x.assign(v)
                y.assign(x * 1.5)
                # Float signals: consumed == produced exactly.
                assert y.err_consumed.max_abs == y.err_produced.max_abs

    @given(st.lists(small_values, min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_uniform_control_keeps_select_error_free(self, vs):
        # Whatever the inputs, a constant-branch select driven by fixed
        # values produces identical fx/fl (no spurious error).
        dt = DType("t", 6, 3, "tc", "saturate", "round")
        with DesignContext("prop", seed=0):
            x = Sig("x", dt)
            y = Sig("y")
            for v in vs:
                x.assign(v)
                y.assign(select(gt(x, 0.0), 1.0, -1.0))
                assert y.fx == y.fl
                assert y.err_produced.max_abs == 0.0


class TestErrorAnnotationInvariants:
    @given(st.integers(min_value=1, max_value=16),
           st.lists(small_values, min_size=5, max_size=50))
    @settings(max_examples=40)
    def test_forced_error_bounded_by_half_q(self, fbits, vs):
        q = 2.0 ** -fbits
        with DesignContext("prop", seed=1):
            s = Sig("s")
            s.error(q)
            for v in vs:
                s.assign(v)
            assert s.err_produced.max_abs <= q / 2 + 1e-15
            # The reference sticks to the fixed value within half an LSB.
            assert abs(s.fl - s.fx) <= q / 2 + 1e-15


class TestSqnrInvariants:
    @given(st.integers(min_value=4, max_value=10))
    @settings(max_examples=20)
    def test_sqnr_improves_with_wordlength(self, f):
        import numpy as np
        rng = np.random.default_rng(0)
        vs = rng.uniform(-1, 1, size=400)

        def sqnr_for(frac):
            dt = DType("t", frac + 2, frac, "tc", "saturate", "round")
            with DesignContext("prop-%d" % frac, seed=0):
                s = Sig("s", dt)
                for v in vs:
                    s.assign(float(v))
                return s.sqnr_db()

        assert sqnr_for(f + 2) > sqnr_for(f)
