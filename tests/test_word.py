"""Unit tests for repro.core.word (integer code helpers)."""

import math

import pytest

from repro.core import word
from repro.core.errors import DTypeError


class TestIntBounds:
    def test_signed_bounds(self):
        assert word.int_min(8) == -128
        assert word.int_max(8) == 127

    def test_unsigned_bounds(self):
        assert word.int_min(8, signed=False) == 0
        assert word.int_max(8, signed=False) == 255

    def test_one_bit(self):
        assert word.int_min(1) == -1
        assert word.int_max(1) == 0
        assert word.int_min(1, signed=False) == 0
        assert word.int_max(1, signed=False) == 1

    @pytest.mark.parametrize("n", [0, -1])
    def test_invalid_wordlength(self, n):
        with pytest.raises(DTypeError):
            word.int_min(n)
        with pytest.raises(DTypeError):
            word.int_max(n)


class TestWrap:
    def test_in_range_unchanged(self):
        assert word.wrap_code(100, 8) == 100
        assert word.wrap_code(-100, 8) == -100

    def test_positive_overflow_wraps_negative(self):
        assert word.wrap_code(128, 8) == -128
        assert word.wrap_code(129, 8) == -127

    def test_negative_overflow_wraps_positive(self):
        assert word.wrap_code(-129, 8) == 127

    def test_full_period(self):
        assert word.wrap_code(256, 8) == 0
        assert word.wrap_code(-256, 8) == 0

    def test_unsigned_wrap(self):
        assert word.wrap_code(256, 8, signed=False) == 0
        assert word.wrap_code(257, 8, signed=False) == 1
        assert word.wrap_code(-1, 8, signed=False) == 255

    @pytest.mark.parametrize("code", range(-8, 8))
    def test_idempotent_in_range(self, code):
        assert word.wrap_code(code, 4) == code


class TestSaturate:
    def test_clamps_high(self):
        assert word.saturate_code(1000, 8) == 127

    def test_clamps_low(self):
        assert word.saturate_code(-1000, 8) == -128

    def test_in_range_unchanged(self):
        assert word.saturate_code(5, 8) == 5

    def test_unsigned(self):
        assert word.saturate_code(-3, 8, signed=False) == 0
        assert word.saturate_code(300, 8, signed=False) == 255


class TestFits:
    def test_limits(self):
        assert word.fits(127, 8)
        assert word.fits(-128, 8)
        assert not word.fits(128, 8)
        assert not word.fits(-129, 8)


class TestBitLength:
    def test_signed(self):
        assert word.bit_length_signed(0) == 1
        assert word.bit_length_signed(1) == 2
        assert word.bit_length_signed(-1) == 1
        assert word.bit_length_signed(127) == 8
        assert word.bit_length_signed(-128) == 8
        assert word.bit_length_signed(128) == 9

    def test_unsigned(self):
        assert word.bit_length_unsigned(0) == 1
        assert word.bit_length_unsigned(255) == 8
        assert word.bit_length_unsigned(256) == 9
        with pytest.raises(DTypeError):
            word.bit_length_unsigned(-1)


class TestRequiredMsb:
    """The paper's m(vmin, vmax) function."""

    def test_paper_input_range(self):
        # x.range(-1.5, 1.5) -> msb 1 (LMS equalizer example).
        assert word.required_msb(-1.5, 1.5) == 1

    def test_slicer_output(self):
        # y in {-1, +1}: +1 needs weight-1 data bit -> msb 1.
        assert word.required_msb(-1.0, 1.0) == 1

    def test_exact_negative_power_fits(self):
        # -2**m is representable in two's complement.
        assert word.required_msb(-2.0, 0.0) == 1
        assert word.required_msb(-1.0, 0.0) == 0

    def test_exact_positive_power_needs_extra(self):
        # +2**m is NOT representable: the max code is 2**m - eps.
        assert word.required_msb(0.0, 2.0) == 2
        assert word.required_msb(0.0, 1.0) == 1

    def test_fractional_only(self):
        assert word.required_msb(-0.25, 0.25) == -1

    def test_degenerate_zero(self):
        assert word.required_msb(0.0, 0.0) is None

    def test_unbounded(self):
        assert word.required_msb(-math.inf, 1.0) == math.inf

    def test_unsigned(self):
        assert word.required_msb(0.0, 3.0, signed=False) == 2
        with pytest.raises(DTypeError):
            word.required_msb(-1.0, 1.0, signed=False)

    def test_invalid(self):
        with pytest.raises(ValueError):
            word.required_msb(1.0, -1.0)
        with pytest.raises(ValueError):
            word.required_msb(math.nan, 1.0)

    @pytest.mark.parametrize("lo,hi,m", [
        (-0.2, 0.2, -2),
        (-4.0, 3.9, 2),
        (-3.3, 1.0, 2),
        (0.0, 0.49, -1),
        (-100.0, 100.0, 7),
    ])
    def test_table(self, lo, hi, m):
        assert word.required_msb(lo, hi) == m

    @pytest.mark.parametrize("lo,hi", [(-1.5, 1.5), (-0.2, 0.2),
                                       (-7.1, 3.0), (0.0, 10.0)])
    def test_is_minimal(self, lo, hi):
        m = word.required_msb(lo, hi)
        assert -(2.0 ** m) <= lo and hi < 2.0 ** m
        assert not (-(2.0 ** (m - 1)) <= lo and hi < 2.0 ** (m - 1))


class TestWordlengthConversions:
    def test_roundtrip(self):
        for msb in range(-3, 5):
            for f in range(0, 8):
                try:
                    n = word.wordlength_for_msb(msb, f)
                except DTypeError:
                    continue
                assert word.msb_of_wordlength(n, f) == msb

    def test_paper_type(self):
        # <7,5,tc>: msb position 1 (range [-2, 2-2^-5]).
        assert word.msb_of_wordlength(7, 5, signed=True) == 1
        assert word.wordlength_for_msb(1, 5, signed=True) == 7

    def test_unsigned(self):
        assert word.wordlength_for_msb(2, 5, signed=False) == 7
        assert word.msb_of_wordlength(7, 5, signed=False) == 2

    def test_empty_word(self):
        with pytest.raises(DTypeError):
            word.wordlength_for_msb(-6, 5, signed=True)


class TestBits:
    def test_to_bits(self):
        assert word.to_bits(5, 8) == "00000101"
        assert word.to_bits(-1, 8) == "11111111"
        assert word.to_bits(-128, 8) == "10000000"

    def test_to_bits_unsigned(self):
        assert word.to_bits(255, 8, signed=False) == "11111111"

    def test_roundtrip(self):
        for code in range(-8, 8):
            assert word.from_bits(word.to_bits(code, 4)) == code

    def test_from_bits_unsigned(self):
        assert word.from_bits("1111", signed=False) == 15

    def test_overflowing_code_rejected(self):
        with pytest.raises(DTypeError):
            word.to_bits(128, 8)

    def test_bad_string(self):
        with pytest.raises(DTypeError):
            word.from_bits("10a1")
        with pytest.raises(DTypeError):
            word.from_bits("")
