"""Tests for the refinement flow driver (paper Figure 4)."""

import numpy as np
import pytest

from repro.core.dtype import DType
from repro.refine import (Annotations, Design, FlowConfig, LsbPolicy,
                          RefinementFlow, expand_names)
from repro.signal import DesignContext, Reg, Sig, SigArray

T_IN = DType("T_in", 8, 6, "tc", "saturate", "round")


class ScaleDesign(Design):
    """Feed-forward toy: y = 0.5*x + 0.25 (no feedback)."""

    name = "scale"
    inputs = ("x",)
    output = "y"

    def build(self, ctx):
        self.x = Sig("x")
        self.y = Sig("y")
        rng = np.random.default_rng(3)
        self._stim = iter(rng.uniform(-1, 1, size=100000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.y.assign(self.x * 0.5 + 0.25)
            ctx.tick()


class LeakyAccDesign(Design):
    """acc = 0.9*acc + x: feedback, bounded in simulation but the
    quasi-analytical range still converges (gain < 1)."""

    name = "leaky"
    inputs = ("x",)
    output = "acc"

    def build(self, ctx):
        self.x = Sig("x")
        self.acc = Reg("acc")
        rng = np.random.default_rng(4)
        self._stim = iter(rng.uniform(-1, 1, size=100000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.acc.assign(self.acc * 0.9 + self.x)
            ctx.tick()


class PureAccDesign(Design):
    """Adaptive gain ``acc += 0.05*(x - acc*x)``: the simulated value
    converges toward 1, but the propagated interval width multiplies by
    ``(1 + 0.05*|x|)`` every step — exponential MSB explosion, exactly
    the paper's adaptive-feedback case."""

    name = "acc"
    inputs = ("x",)
    output = "acc"

    def build(self, ctx):
        self.x = Sig("x")
        self.acc = Reg("acc")
        rng = np.random.default_rng(5)
        self._stim = iter(rng.uniform(0.5, 1.0, size=200000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            err = self.x - self.acc * self.x
            self.acc.assign(self.acc + err * 0.05)
            ctx.tick()


class WrapPhaseDesign(Design):
    """Modulo-1 phase accumulator with a wrap type: the float reference
    runs off linearly, so the error statistics of ``phase`` diverge (the
    mechanism behind the paper's NCO finding)."""

    name = "wrapphase"
    inputs = ("x",)
    output = "phase"

    PHASE_T = DType("T_phase", 10, 10, "us", "wrap", "round")

    def build(self, ctx):
        self.x = Sig("x")
        self.phase = Reg("phase", self.PHASE_T)
        rng = np.random.default_rng(6)
        self._stim = iter(rng.uniform(0.20, 0.30, size=100000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.phase.assign(self.phase + self.x)
            ctx.tick()


class TestAnnotations:
    def test_apply_by_name(self):
        with DesignContext("t") as ctx:
            s = Sig("a")
            Annotations(ranges={"a": (-1, 2)}).apply(ctx)
            assert s.forced_range.lo == -1

    def test_apply_dtype_and_error(self):
        with DesignContext("t") as ctx:
            s = Sig("a")
            Annotations(dtypes={"a": T_IN}, errors={"a": 0.01}).apply(ctx)
            assert s.dtype == T_IN
            assert s.forced_error == 0.01

    def test_array_expansion(self):
        with DesignContext("t") as ctx:
            arr = SigArray("d", 3)
            Annotations(ranges={"d": (-1, 1)}).apply(ctx)
            assert all(s.forced_range is not None for s in arr)

    def test_missing_target(self):
        from repro.core.errors import DesignError
        with DesignContext("t") as ctx:
            with pytest.raises(DesignError):
                Annotations(ranges={"zz": (-1, 1)}).apply(ctx)

    def test_expand_names(self):
        all_names = ["x", "d[0]", "d[1]", "y"]
        assert expand_names({"d", "x"}, all_names) == {"x", "d[0]", "d[1]"}


class TestFeedForwardFlow:
    def _flow(self, **kw):
        cfg = FlowConfig(n_samples=2000, seed=9)
        return RefinementFlow(ScaleDesign, input_types={"x": T_IN},
                              input_ranges={"x": (-1, 1)}, config=cfg, **kw)

    def test_msb_one_iteration(self):
        msb = self._flow().run_msb_phase()
        assert msb.resolved
        assert msb.n_iterations == 1
        dec = msb.final.decisions["y"]
        # y in [-0.25, 0.75]: msb 0 by both monitors.
        assert dec.msb == 0
        assert dec.case == "a"

    def test_lsb_positions(self):
        flow = self._flow()
        lsb = flow.run_lsb_phase()
        assert lsb.resolved
        d = lsb.final.decisions["y"]
        # y's noise is half the input quantization noise: one more bit.
        x_f = lsb.final.decisions["x"].lsb
        assert d.lsb == x_f + 1

    def test_full_run(self):
        res = self._flow().run()
        assert res.verification.total_overflows == 0
        assert "y" in res.types
        assert res.types["y"].f >= 6
        assert np.isfinite(res.verification.output_sqnr_db)
        assert res.verification.output_sqnr_db > 30.0

    def test_summary_text(self):
        res = self._flow().run()
        text = res.summary()
        assert "MSB phase" in text and "SQNR" in text
        assert "UNRESOLVED" not in text

    def test_types_table(self):
        res = self._flow().run()
        table = res.types_table()
        assert "y" in table and "spec" in table


class TestFeedbackFlows:
    def test_leaky_acc_converges_without_annotation(self):
        cfg = FlowConfig(n_samples=2000, seed=9)
        flow = RefinementFlow(LeakyAccDesign, input_types={"x": T_IN},
                              input_ranges={"x": (-1, 1)}, config=cfg)
        msb = flow.run_msb_phase()
        assert msb.resolved
        # Geometric series: |acc| <= 1/(1-0.9) = 10 -> msb 4 by propagation.
        dec = msb.final.decisions["acc"]
        assert dec.prop_msb == 4

    def test_pure_acc_explodes_then_user_range(self):
        cfg = FlowConfig(n_samples=2000, seed=9, auto_range=False)
        flow = RefinementFlow(PureAccDesign, input_types={"x": T_IN},
                              input_ranges={"x": (0.5, 1)},
                              user_ranges={"acc": (-0.2, 1.2)}, config=cfg)
        msb = flow.run_msb_phase()
        assert msb.n_iterations == 2
        assert msb.resolved
        it1 = msb.iterations[0]
        assert "acc" in it1.exploded
        final = msb.final.decisions["acc"]
        assert final.mode == "saturate"

    def test_pure_acc_auto_range(self):
        cfg = FlowConfig(n_samples=2000, seed=9, auto_range=True)
        flow = RefinementFlow(PureAccDesign, input_types={"x": T_IN},
                              input_ranges={"x": (-1, 1)}, config=cfg)
        msb = flow.run_msb_phase()
        assert msb.resolved
        assert "acc" in msb.annotations

    def test_pure_acc_unresolvable_without_help(self):
        cfg = FlowConfig(n_samples=1000, seed=9, auto_range=False)
        flow = RefinementFlow(PureAccDesign, input_types={"x": T_IN},
                              input_ranges={"x": (-1, 1)}, config=cfg)
        msb = flow.run_msb_phase()
        assert not msb.resolved

    def test_synthesize_raises_on_unresolved_msb(self):
        from repro.core.errors import RefinementError
        cfg = FlowConfig(n_samples=1000, seed=9, auto_range=False)
        flow = RefinementFlow(PureAccDesign, input_types={"x": T_IN},
                              input_ranges={"x": (-1, 1)}, config=cfg)
        msb = flow.run_msb_phase()
        lsb = flow.run_lsb_phase(msb.annotations)
        with pytest.raises(RefinementError):
            flow.synthesize_types(msb, lsb)


class TestDivergenceFlow:
    def _flow(self, **kw):
        cfg = kw.pop("config", FlowConfig(n_samples=3000, seed=9,
                                          auto_error=True))
        return RefinementFlow(
            WrapPhaseDesign, input_types={"x": T_IN},
            input_ranges={"x": (0.20, 0.30)},
            preset_types={"phase": WrapPhaseDesign.PHASE_T},
            config=cfg, **kw)

    def test_wrap_phase_diverges_then_error_annotation(self):
        lsb = self._flow().run_lsb_phase()
        assert lsb.n_iterations == 2
        assert lsb.resolved
        assert "phase" in lsb.iterations[0].divergent
        assert "phase" in lsb.annotations

    def test_user_error_wins(self):
        flow = self._flow(user_errors={"phase": 2.0 ** -10})
        lsb = flow.run_lsb_phase()
        assert lsb.annotations["phase"] == 2.0 ** -10

    def test_unresolvable_without_help(self):
        cfg = FlowConfig(n_samples=3000, seed=9, auto_error=False)
        lsb = self._flow(config=cfg).run_lsb_phase()
        assert not lsb.resolved

    def test_wrap_events_separated_in_verification(self):
        res = self._flow().run()
        assert res.verification.total_overflows == 0
        assert res.verification.wrap_events.get("phase", 0) > 0


class TestDeterminism:
    def test_two_runs_identical(self):
        cfg = FlowConfig(n_samples=1500, seed=11)
        r1 = RefinementFlow(ScaleDesign, input_types={"x": T_IN},
                            input_ranges={"x": (-1, 1)}, config=cfg).run()
        r2 = RefinementFlow(ScaleDesign, input_types={"x": T_IN},
                            input_ranges={"x": (-1, 1)}, config=cfg).run()
        assert {k: t.spec() for k, t in r1.types.items()} == \
               {k: t.spec() for k, t in r2.types.items()}
        assert r1.verification.output_sqnr_db == r2.verification.output_sqnr_db


class TestVerifyPreflight:
    """Opt-in bounded-proof pre-flight (FlowConfig.verify_design)."""

    def _flow(self, factory, **kw):
        from repro.verify.gallery import FirOkDesign
        cfg = kw.pop("config",
                     FlowConfig(n_samples=200, seed=9,
                                verify_design=True, verify_k=2,
                                verify_backend="enumeration"))
        return RefinementFlow(factory or FirOkDesign,
                              input_ranges={"x": (-1.0, 1.0)},
                              config=cfg, **kw)

    def test_verify_static_report(self):
        from repro.verify.gallery import FirOkDesign
        rep = self._flow(FirOkDesign).verify_static()
        assert rep.all_proved
        assert {v.property for v in rep} == {"no-overflow",
                                             "no-limit-cycle"}

    def test_run_surfaces_dg_codes(self):
        from repro.verify.gallery import AccRoundWrapDesign
        res = self._flow(AccRoundWrapDesign).run(strict=False)
        codes = {e.code for e in res.diagnostics
                 if e.category.startswith("verify-")}
        assert "DG210" in codes          # overflow freedom proved
        assert "DG211" in codes          # the limit cycle, found
        (cex,) = [e for e in res.diagnostics
                  if e.category == "verify-counterexample"]
        assert cex.severity == "error" and cex.signal == "w"

    def test_missing_envelope_is_unknown_not_fatal(self):
        from repro.verify.gallery import FirOkDesign
        cfg = FlowConfig(n_samples=200, seed=9, verify_design=True,
                         verify_k=2, verify_backend="enumeration")
        flow = RefinementFlow(FirOkDesign, config=cfg)
        rep = flow.verify_static()
        statuses = {v.property: v.status for v in rep}
        assert statuses["no-overflow"] == "UNKNOWN"
        assert statuses["no-limit-cycle"] == "PROVED"

    def test_off_by_default(self):
        assert FlowConfig().verify_design is False
