"""Core `repro.service` behaviour: jobs, dedupe, store, streaming.

The headline contracts under test:

* two identical submissions — sequential or concurrent — run the
  simulation exactly once (asserted via ``service.dedupe_hits``) and
  return bit-identical outcomes;
* the content store serves across service restarts, bit-exactly;
* failures inside a design surface as ``failed`` jobs, never as
  exceptions out of the scheduler;
* `SimCache.stats()` and `ContentStore.stats()` expose the measurable
  snapshot the ISSUE demands.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.dtype import DType
from repro.core.errors import DesignError, JobNotFound, ServiceError
from repro.obs import counters as obs_counters
from repro.parallel.runner import SimCache, SimConfig, SimOutcome
from repro.refine import Design
from repro.service import (ContentStore, JobId, RefinementService,
                           TenantPolicy)
from repro.service.jobs import Job
from repro.signal import Reg, Sig

T_IN = DType("T_in", 9, 7, "tc", "saturate", "round")
T_ACC = DType("T_acc", 12, 9, "tc", "saturate", "round")
TYPES = {"x": T_IN, "p": T_ACC, "acc": T_ACC, "y": T_ACC}


class Leaky(Design):
    name = "svc-leaky"
    inputs = ("x",)
    output = "y"

    def __init__(self, seed=2024):
        self.seed = seed

    def build(self, ctx):
        self.x = Sig("x")
        self.p = Sig("p")
        self.acc = Reg("acc")
        self.y = Sig("y")
        rng = np.random.default_rng(self.seed)
        self._stim = iter(rng.uniform(-1, 1, 65536).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.p.assign(self.x * 0.5)
            self.acc.assign(self.acc * 0.75 + self.p)
            self.y.assign(self.acc + self.x * 0.125)
            ctx.tick()


class Exploding(Design):
    name = "svc-boom"
    inputs = ("x",)
    output = "y"

    def build(self, ctx):
        self.x = Sig("x")
        self.y = Sig("y")

    def run(self, ctx, n):
        raise DesignError("designed to fail")


def leaky_factory():
    return Leaky()


def boom_factory():
    return Exploding()


leaky_factory.fingerprint = "svc-leaky-v1"
boom_factory.fingerprint = "svc-boom-v1"


def cfg(i=0, n=96):
    return SimConfig(label="job%d" % i, dtypes=TYPES, n_samples=n,
                     seed=500 + i)


def boom_cfg(i=0):
    return SimConfig(label="boom%d" % i, dtypes={"x": T_IN, "y": T_ACC},
                     n_samples=16, seed=700 + i)


class TestJobBasics:
    def test_submit_result_roundtrip(self):
        with RefinementService() as svc:
            jid = svc.submit(leaky_factory, cfg())
            assert isinstance(jid, JobId)
            out = svc.result(jid)
            assert out.completed and out.label == "job0"
            assert svc.status(jid).state == "completed"

    def test_job_ids_are_per_tenant_sequences(self):
        with RefinementService() as svc:
            a1 = svc.submit(leaky_factory, cfg(0), tenant="a")
            a2 = svc.submit(leaky_factory, cfg(1), tenant="a")
            b1 = svc.submit(leaky_factory, cfg(2), tenant="b")
            assert (a1.value, a2.value, b1.value) == ("a/1", "a/2", "b/1")

    def test_unknown_job_raises(self):
        with RefinementService() as svc:
            with pytest.raises(JobNotFound):
                svc.status("nobody/9")

    def test_submit_after_close_raises(self):
        svc = RefinementService()
        svc.close()
        with pytest.raises(ServiceError):
            svc.submit(leaky_factory, cfg())

    def test_design_error_becomes_failed_job(self):
        with RefinementService() as svc:
            jid = svc.submit(boom_factory, boom_cfg())
            out = svc.result(jid)
            assert out.error is not None
            st = svc.status(jid)
            assert st.state == "failed" and "designed to fail" in st.error

    def test_stream_replays_lifecycle(self):
        with RefinementService() as svc:
            jid = svc.submit(leaky_factory, cfg())
            names = [ev["event"] for ev in svc.stream(jid)]
            assert names[0] == "job.accepted"
            assert names[-1] == "job.completed"
            assert "job.running" in names

    def test_deadline_propagates_into_config(self):
        with RefinementService() as svc:
            jid = svc.submit(leaky_factory, cfg(), deadline_seconds=7.5)
            job = svc._job(jid)
            assert job.config.deadline_seconds == 7.5
            assert job.config.catch_errors    # forced on
            svc.result(jid)


class TestDedupe:
    def test_sequential_identical_submissions_run_once(self):
        obs_counters.reset()
        with RefinementService() as svc:
            j1 = svc.submit(leaky_factory, cfg(), tenant="a")
            o1 = svc.result(j1)
            j2 = svc.submit(leaky_factory, cfg(), tenant="b")
            o2 = svc.result(j2)
        assert obs_counters.get("service.dedupe_hits") == 1
        assert o1.output == o2.output
        assert o1.sqnr_db() == o2.sqnr_db()

    def test_inflight_coalescing_runs_once(self):
        obs_counters.reset()
        with RefinementService() as svc:
            j1 = svc.submit(leaky_factory, cfg())
            j2 = svc.submit(leaky_factory, cfg())
            j3 = svc.submit(leaky_factory, cfg())
            outs = [svc.result(j) for j in (j1, j2, j3)]
        assert obs_counters.get("service.dedupe_hits") == 2
        assert obs_counters.get("service.coalesced") == 2
        assert outs[0].output == outs[1].output == outs[2].output
        assert svc.status(j2).coalesced and svc.status(j3).coalesced

    def test_concurrent_duplicate_submissions_run_once(self):
        """The acceptance criterion: two threads race the same work;
        exactly one simulation runs and both get bit-identical
        results."""
        obs_counters.reset()
        with RefinementService(async_mode=True) as svc:
            results = {}
            barrier = threading.Barrier(2)

            def submit(tag):
                barrier.wait()
                jid = svc.submit(leaky_factory, cfg(), tenant=tag)
                results[tag] = svc.result(jid, timeout=60)

            threads = [threading.Thread(target=submit, args=(t,))
                       for t in ("t1", "t2")]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
        assert results["t1"].completed and results["t2"].completed
        assert results["t1"].output == results["t2"].output
        assert obs_counters.get("service.dedupe_hits") == 1

    def test_failed_outcomes_are_not_deduped(self):
        obs_counters.reset()
        with RefinementService() as svc:
            o1 = svc.result(svc.submit(boom_factory, boom_cfg()))
            o2 = svc.result(svc.submit(boom_factory, boom_cfg()))
        assert o1.error is not None and o2.error is not None
        # Second submission re-ran (errors may be environment-shaped).
        assert obs_counters.get("service.dedupe_hits") == 0


class TestResultTimeout:
    def test_timeout_is_absolute_not_per_event(self):
        """``result(timeout=...)`` must honour one absolute deadline.
        Every job event calls ``notify_all``, and the wait used to
        restart the full timeout on each wake-up — a chatty unfinished
        job could block the caller for timeout x n_events."""
        with RefinementService(async_mode=True) as svc:
            job = Job(JobId("t", 1), "t", "k" * 64, cfg(), leaky_factory)
            svc._jobs[job.id.value] = job   # never scheduled, never done
            stop = threading.Event()

            def chatter():
                end = time.monotonic() + 2.0
                while not stop.is_set() and time.monotonic() < end:
                    with job.cond:
                        job.push("job.chatter")
                        job.cond.notify_all()
                    time.sleep(0.02)

            t = threading.Thread(target=chatter, daemon=True)
            t.start()
            t0 = time.monotonic()
            try:
                with pytest.raises(ServiceError):
                    svc.result(job.id, timeout=0.2)
            finally:
                stop.set()
                t.join(5.0)
            assert time.monotonic() - t0 < 1.5


class TestContentStore:
    def test_two_tier_lookup_promotes_journal_hits(self, tmp_path):
        store = ContentStore(str(tmp_path))
        out = SimOutcome(label="a", records={"v": 1.5}, output="v")
        assert store.put("k1", out)
        assert "k1" in store and len(store) == 1
        # Drop the hot tier; the journal tier must serve and re-promote.
        store.cache.clear()
        got = store.get("k1")
        assert got is not None and got.records == {"v": 1.5}
        assert "k1" in store.cache
        store.close()

    def test_errored_outcomes_never_stored(self, tmp_path):
        store = ContentStore(str(tmp_path))
        bad = SimOutcome(label="a", records={}, output=None,
                         error="boom", error_kind="error")
        assert not store.put("k1", bad)
        assert store.get("k1") is None
        store.close()

    def test_survives_reopen_bit_exactly(self, tmp_path):
        out = SimOutcome(label="a", records={"v": 0.123456789}, output="v")
        with ContentStore(str(tmp_path)) as store:
            store.put("k1", out)
        with ContentStore(str(tmp_path)) as store2:
            got = store2.get("k1")
            assert got is not None and got.records == out.records

    def test_stats_snapshot(self, tmp_path):
        store = ContentStore(str(tmp_path))
        out = SimOutcome(label="a", records={"v": 1.0}, output="v")
        store.put("k1", out)
        store.get("k1")
        store.get("missing")
        s = store.stats()
        assert s["lookups"] == 2 and s["dedupe_hits"] == 1
        assert s["entries"] == 1
        assert s["cache"]["hits"] == 1
        assert s["journal"]["entries"] == 1
        store.close()


class TestSimCacheStats:
    def test_stats_tracks_hits_misses_and_rate(self):
        obs_counters.reset()
        cache = SimCache(max_entries=8)
        out = SimOutcome(label="a", records={"v": 1.0}, output="v")
        cache.put("k", out)
        assert cache.get("k") is not None
        assert cache.get("nope") is None
        s = cache.stats()
        assert s == {"entries": 1, "max_entries": 8, "hits": 1,
                     "misses": 1, "n_corrupt": 0, "hit_rate": 0.5}
        assert obs_counters.get("cache.hits") == 1
        assert obs_counters.get("cache.misses") == 1

    def test_never_consulted_has_zero_rate(self):
        assert SimCache().stats()["hit_rate"] == 0.0


class TestBatchAndStats:
    def test_run_batch_preserves_config_order(self):
        with RefinementService() as svc:
            configs = [cfg(i) for i in range(4)]
            outs = svc.run_batch(leaky_factory, configs)
            assert [o.label for o in outs] == [c.label for c in configs]
            assert all(o.completed for o in outs)

    def test_service_stats_merges_layers(self):
        with RefinementService() as svc:
            svc.result(svc.submit(leaky_factory, cfg(), tenant="a"))
            s = svc.stats()
            assert s["jobs"] == {"completed": 1}
            assert s["queued"] == 0
            assert "a" in s["tenants"]
            assert s["store"]["entries"] == 1

    def test_async_mode_batch(self):
        with RefinementService(async_mode=True) as svc:
            ids = [svc.submit(leaky_factory, cfg(i)) for i in range(3)]
            outs = [svc.result(j, timeout=60) for j in ids]
            assert all(o.completed for o in outs)

    def test_service_emits_dg_codes_on_dedupe(self):
        with RefinementService() as svc:
            svc.result(svc.submit(leaky_factory, cfg()))
            svc.result(svc.submit(leaky_factory, cfg()))
            codes = {e.code for e in svc.diagnostics.events}
            assert "DG214" in codes    # service-dedupe
