"""Property-based equivalence of the compiled and interpreted engines.

The compiled engine (:mod:`repro.compile`) is pure acceleration: for
every design, every dtype assignment and every batch composition, its
outcomes must equal the interpreted engine's **to the last bit** — all
monitor statistics (range, error Welford moments, value stats), the
propagated intervals, overflow counts and SQNR — or it must fall back
and produce them through the interpreted path anyway.  Hypothesis
drives random per-signal dtype maps (all rounding and overflow modes,
signed and unsigned, n up to 28) over the gallery designs, plus the
batch-axis edge cases: a batch of one, ragged parameter grids that
split into several compile groups, and designs that trip the NaN guard
or value-dependent control flow mid-run.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile import CompileFallback  # noqa: F401  (import check)
from repro.core.dtype import DType
from repro.dsp.biquad import BiquadDesign
from repro.dsp.cordic import CordicDesign
from repro.dsp.lms import LmsEqualizerDesign
from repro.dsp.timing_recovery import TimingRecoveryDesign
from repro.obs import counters
from repro.parallel.runner import SimConfig, run_simulations
from repro.refine.flow import Design
from repro.signal import Sig

# -- comparator ---------------------------------------------------------------


def assert_records_equal(a, b):
    """Field-wise SignalRecord equality, NaN == NaN.

    (The frozen dataclass ``__eq__`` is false on NaN statistics — e.g.
    ``stat_min`` of a never-assigned monitor — so compare per field.)
    """
    assert set(a) == set(b)
    for name in a:
        ra, rb = a[name], b[name]
        for fname in ra.__dataclass_fields__:
            va = getattr(ra, fname)
            vb = getattr(rb, fname)
            if (isinstance(va, float) and isinstance(vb, float)
                    and math.isnan(va) and math.isnan(vb)):
                continue
            assert va == vb, (name, fname, va, vb)


def assert_engines_agree(design_factory, configs, **kw):
    interp = run_simulations(design_factory, configs, workers=0,
                             engine="interpreted", **kw)
    compiled = run_simulations(design_factory, configs, workers=0,
                               engine="compiled", **kw)
    for a, b in zip(interp, compiled):
        assert a.label == b.label
        assert a.output == b.output
        assert a.error == b.error
        assert a.guard_trips == b.guard_trips
        assert_records_equal(a.records, b.records)
    return interp, compiled


# -- dtype-map strategies -----------------------------------------------------

LMS_SIGNALS = ("x", "y", "w", "b", "s", "v[0]", "v[1]", "v[2]", "v[3]",
               "c[0]", "c[1]", "c[2]", "d[0]", "d[1]", "d[2]")
BIQUAD_SIGNALS = ("x", "bq.w", "bq.w1", "bq.w2", "bq.y")
CORDIC_SIGNALS = ("xi", "yi", "zi", "cr.x[4]", "cr.y[4]", "cr.z[4]",
                  "cr.xo", "cr.yo")


def dtype_st():
    return st.builds(
        lambda n, df, vtype, msb, lsb: DType("T", n, min(df, n - 1)
                                             if n > 1 else 0,
                                             vtype=vtype, msbspec=msb,
                                             lsbspec=lsb),
        st.integers(min_value=2, max_value=28),
        st.integers(min_value=0, max_value=27),
        st.sampled_from(["tc", "us"]),
        st.sampled_from(["saturate", "wrap", "error"]),
        st.sampled_from(["round", "floor", "ceil", "trunc"]))


def dtype_map_st(signals):
    return st.dictionaries(st.sampled_from(list(signals)), dtype_st(),
                           max_size=4)


# -- per-design equivalence ---------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(dtypes=dtype_map_st(LMS_SIGNALS),
       seed=st.integers(min_value=0, max_value=2**31))
def test_lms_equivalence(dtypes, seed):
    cfg = SimConfig(label="lms", dtypes=dtypes, n_samples=120, seed=seed)
    assert_engines_agree(LmsEqualizerDesign, [cfg])


@settings(max_examples=15, deadline=None)
@given(dtypes=dtype_map_st(BIQUAD_SIGNALS),
       seed=st.integers(min_value=0, max_value=2**31))
def test_biquad_equivalence(dtypes, seed):
    cfg = SimConfig(label="bq", dtypes=dtypes, n_samples=150, seed=seed)
    assert_engines_agree(BiquadDesign, [cfg])


@settings(max_examples=10, deadline=None)
@given(dtypes=dtype_map_st(CORDIC_SIGNALS),
       seed=st.integers(min_value=0, max_value=2**31))
def test_cordic_equivalence(dtypes, seed):
    cfg = SimConfig(label="cordic", dtypes=dtypes, n_samples=80, seed=seed)
    assert_engines_agree(CordicDesign, [cfg])


def test_timing_recovery_equivalence_via_fallback():
    # The NCO strobe is value-dependent control flow (``bool(expr)``),
    # which the value-branch guard turns into a deterministic fallback:
    # the compiled call must still return interpreted-identical results.
    counters.reset()
    cfg = SimConfig(label="trec", n_samples=400)
    assert_engines_agree(TimingRecoveryDesign, [cfg])
    assert counters.get("compile.fallbacks") == 1
    assert counters.get("compile.batches") == 0


# -- batch-axis edge cases ----------------------------------------------------


def test_batch_of_one():
    counters.reset()
    cfg = SimConfig(label="solo", n_samples=200,
                    dtypes={"x": DType("T_x", 7, 5)})
    assert_engines_agree(LmsEqualizerDesign, [cfg])
    assert counters.get("compile.batches") == 1
    assert counters.get("compile.lanes") == 1


@settings(max_examples=8, deadline=None)
@given(maps=st.lists(dtype_map_st(LMS_SIGNALS), min_size=1, max_size=6),
       seeds=st.lists(st.sampled_from([1, 2, 3]), min_size=1, max_size=3),
       lengths=st.lists(st.sampled_from([60, 90]), min_size=1, max_size=2))
def test_ragged_parameter_grid(maps, seeds, lengths):
    # A ragged grid — differing seeds and sample counts — must split
    # into one compile group per (n_samples, seed, ...) key and still
    # come back bit-identical, in config order.
    configs = [SimConfig(label="g%d-%d-%d" % (i, s, n), dtypes=m,
                         n_samples=n, seed=s)
               for i, m in enumerate(maps)
               for s in seeds for n in lengths]
    counters.reset()
    assert_engines_agree(LmsEqualizerDesign, configs)
    n_groups = len({(c.n_samples, c.seed) for c in configs})
    assert (counters.get("compile.batches")
            + counters.get("compile.fallbacks")) == n_groups


class NanProneDesign(Design):
    """Divides by a signal that decays toward zero: inf appears mid-run.

    The interpreted engine's non-finite guard fires per assignment; the
    compiled engine only detects non-finite values at end of sample and
    must fall back rather than approximate the guard semantics.
    """

    def build(self, ctx):
        self.d = Sig("d", init=1.0)
        self.q = Sig("q")
        self.output = "q"

    def run(self, ctx, n):
        for _ in range(n):
            self.d.assign(self.d * 0.5)
            self.q.assign(1.0 / self.d)
            ctx.tick()


def test_nan_guard_interaction_falls_back():
    # 1/2**-k overflows to inf around k=1024 (stopping short of the
    # k~1075 point where d underflows to 0.0 and both engines raise);
    # with guard_action="record" the interpreted run completes
    # (sanitized).  The compiled engine must fall back (division risk /
    # non-finite values) and match exactly.
    counters.reset()
    cfg = SimConfig(label="nan", n_samples=1060, guard_action="record")
    interp, compiled = assert_engines_agree(NanProneDesign, [cfg])
    assert interp[0].guard_trips > 0
    assert counters.get("compile.fallbacks") == 1


class BranchyDesign(Design):
    """Value-dependent branch on a signal: must fall back, not diverge."""

    def build(self, ctx):
        self.x = Sig("x")
        self.y = Sig("y")
        self.output = "y"

    def run(self, ctx, n):
        rng = ctx.rng
        for _ in range(n):
            self.x.assign(float(rng.uniform(-1, 1)))
            if self.x > 0.0:
                self.y.assign(self.x * 2.0)
            else:
                self.y.assign(-self.x)
            ctx.tick()


def test_value_branch_falls_back():
    counters.reset()
    cfg = SimConfig(label="branchy", n_samples=300)
    assert_engines_agree(BranchyDesign, [cfg])
    assert counters.get("compile.fallbacks") == 1


def test_mixed_eligibility_composes():
    # Deadline-carrying configs are ineligible and take the interpreted
    # path; the rest compile.  Results arrive in config order either way.
    counters.reset()
    configs = [SimConfig(label="c0", n_samples=100),
               SimConfig(label="c1", n_samples=100,
                         deadline_seconds=30.0, catch_errors=True),
               SimConfig(label="c2", n_samples=100,
                         dtypes={"x": DType("T_x", 9, 7)})]
    assert_engines_agree(LmsEqualizerDesign, configs)
    assert counters.get("compile.ineligible") == 1
    assert counters.get("compile.lanes") == 2


@pytest.mark.parametrize("design", [LmsEqualizerDesign, BiquadDesign,
                                    CordicDesign])
def test_gallery_compiles_without_fallback(design):
    counters.reset()
    cfg = SimConfig(label="gallery", n_samples=64)
    assert_engines_agree(design, [cfg])
    assert counters.get("compile.fallbacks") == 0
    assert counters.get("compile.batches") == 1
