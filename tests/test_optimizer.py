"""Tests for the greedy wordlength optimizer."""

import pytest

from repro.core.dtype import DType
from repro.refine import FlowConfig, RefinementFlow
from repro.refine.optimizer import optimize_wordlengths
from tests.test_flow import ScaleDesign, T_IN
from tests.test_sensitivity import TwoPathDesign

T_IN2 = DType("T_in", 9, 7, "tc", "saturate", "round")


@pytest.fixture(scope="module")
def refined_two_path():
    flow = RefinementFlow(TwoPathDesign, input_types={"x": T_IN2},
                          input_ranges={"x": (-1, 1)},
                          config=FlowConfig(n_samples=1500, seed=4))
    return flow.run()


class TestReclaim:
    def test_reclaims_bits_while_meeting_target(self, refined_two_path):
        res = refined_two_path
        target = res.verification.output_sqnr_db - 6.0
        opt = optimize_wordlengths(TwoPathDesign, res.types,
                                   {"x": T_IN2}, target_db=target,
                                   n_samples=1500, seed=4)
        assert opt.sqnr_db >= target
        assert opt.bits_saved(res.types) > 0
        assert all(op == "drop" for op, *_ in opt.moves)

    def test_reclaims_from_insensitive_path_first(self, refined_two_path):
        res = refined_two_path
        target = res.verification.output_sqnr_db - 3.0
        opt = optimize_wordlengths(TwoPathDesign, res.types,
                                   {"x": T_IN2}, target_db=target,
                                   n_samples=1500, seed=4)
        dropped = [name for op, name, *_ in opt.moves if op == "drop"]
        assert dropped, "expected at least one reclaimed bit"
        # The 0.01-weighted path gives up bits before the dominant one.
        assert dropped[0] == "small"

    def test_tight_target_changes_nothing_much(self, refined_two_path):
        res = refined_two_path
        # Target just barely below current: few or no drops possible.
        target = res.verification.output_sqnr_db - 0.05
        opt = optimize_wordlengths(TwoPathDesign, res.types,
                                   {"x": T_IN2}, target_db=target,
                                   n_samples=1500, seed=4)
        assert opt.sqnr_db >= target


class TestRepair:
    def test_repairs_an_undersized_map(self):
        flow = RefinementFlow(ScaleDesign, input_types={"x": T_IN},
                              input_ranges={"x": (-1, 1)},
                              config=FlowConfig(n_samples=1500, seed=9))
        res = flow.run()
        # Cripple the map: strip y down hard.
        bad = dict(res.types)
        y = bad["y"]
        bad["y"] = y.with_(n=y.n - 4, f=y.f - 4)
        target = res.verification.output_sqnr_db - 1.0
        opt = optimize_wordlengths(ScaleDesign, bad, {"x": T_IN},
                                   target_db=target, n_samples=1500,
                                   seed=9)
        assert opt.sqnr_db >= target
        assert any(op == "add" and name == "y"
                   for op, name, *_ in opt.moves)

    def test_counts_simulations(self, refined_two_path):
        res = refined_two_path
        opt = optimize_wordlengths(TwoPathDesign, res.types,
                                   {"x": T_IN2},
                                   target_db=res.verification.output_sqnr_db
                                   - 3.0,
                                   n_samples=800, seed=4)
        assert opt.n_simulations >= 1 + len(opt.moves)

    def test_original_map_not_mutated(self, refined_two_path):
        res = refined_two_path
        before = {k: v.spec() for k, v in res.types.items()}
        optimize_wordlengths(TwoPathDesign, res.types, {"x": T_IN2},
                             target_db=res.verification.output_sqnr_db
                             - 4.0, n_samples=800, seed=4)
        after = {k: v.spec() for k, v in res.types.items()}
        assert before == after
