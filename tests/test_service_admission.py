"""Admission-control edges: quotas, shedding, breakers, coalescing.

Covers the ISSUE's satellite checklist explicitly: quota exhaustion
and refill, queue-full shedding order (new submissions shed, accepted
jobs never evicted; dequeue fair across tenants, FIFO within), breaker
trip -> half-open -> close on the backoff schedule, and duplicate
coalescing where one of the waiters cancels.

Everything runs against an injected ``_FakeClock`` — no sleeps.
"""

import numpy as np
import pytest

from repro.core.dtype import DType
from repro.core.errors import (CircuitOpen, JobCancelled, QueueFull,
                               QuotaExceeded)
from repro.obs import counters as obs_counters
from repro.parallel import PoolPolicy, SimConfig
from repro.refine import Design
from repro.robust.faults import WorkerCrash
from repro.robust.retry import BackoffPolicy
from repro.service import (AdmissionController, CircuitBreaker,
                           RefinementService, TenantPolicy, TokenBucket)
from repro.service.admission import _FakeClock
from repro.signal import Reg, Sig

T_IN = DType("T_in", 9, 7, "tc", "saturate", "round")
T_ACC = DType("T_acc", 12, 9, "tc", "saturate", "round")
TYPES = {"x": T_IN, "acc": T_ACC, "y": T_ACC}

# Quick retries: the default pool backoff would sleep for real.
FAST = PoolPolicy(max_retries=1,
                  backoff=BackoffPolicy(base=0.01, cap=0.05, jitter=0.0))


class Probe(Design):
    name = "adm-probe"
    inputs = ("x",)
    output = "y"

    def build(self, ctx):
        self.x = Sig("x")
        self.acc = Reg("acc")
        self.y = Sig("y")
        rng = np.random.default_rng(7)
        self._stim = iter(rng.uniform(-1, 1, 65536).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.acc.assign(self.acc * 0.5 + self.x * 0.5)
            self.y.assign(self.acc)
            ctx.tick()


def probe_factory():
    return Probe()


probe_factory.fingerprint = "adm-probe-v1"


def cfg(i, n=64):
    return SimConfig(label="adm%d" % i, dtypes=TYPES, n_samples=n,
                     seed=900 + i)


def crash_cfg(i):
    return SimConfig(label="poison%d" % i, dtypes=TYPES, n_samples=64,
                     seed=950 + i, faults=(WorkerCrash("y", at=5),),
                     catch_errors=True)


class TestTokenBucket:
    def test_burst_then_exhaust_then_refill(self):
        clock = _FakeClock()
        b = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [b.try_take() for _ in range(4)] == [True, True, True,
                                                   False]
        assert b.retry_after() == pytest.approx(0.5)
        clock.advance(0.5)
        assert b.try_take() and not b.try_take()

    def test_refill_caps_at_burst(self):
        clock = _FakeClock()
        b = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert b.tokens == 2.0

    def test_give_back_restores_tokens(self):
        b = TokenBucket(rate=1.0, burst=1, clock=_FakeClock())
        assert b.try_take() and not b.try_take()
        b.give_back()
        assert b.try_take()

    def test_unmetered_never_rejects(self):
        b = TokenBucket(rate=None, burst=1, clock=_FakeClock())
        assert all(b.try_take() for _ in range(100))
        assert b.retry_after() == 0.0


class TestCircuitBreaker:
    def _breaker(self, clock, threshold=2, base=10.0):
        return CircuitBreaker(
            trip_threshold=threshold, clock=clock,
            backoff=BackoffPolicy(base=base, factor=2.0, cap=300.0,
                                  jitter=0.0))

    def test_trip_half_open_close_cycle(self):
        clock = _FakeClock()
        cb = self._breaker(clock)
        cb.record_quarantine()
        assert cb.state == "closed"
        cb.record_quarantine()
        assert cb.state == "open" and not cb.allow()
        assert cb.retry_after() == pytest.approx(10.0)
        clock.advance(10.0)
        assert cb.allow() and cb.state == "half-open"
        assert not cb.allow()       # exactly one probe
        cb.record_success()
        assert cb.state == "closed" and cb.allow()

    def test_half_open_failure_reopens_with_longer_wait(self):
        clock = _FakeClock()
        cb = self._breaker(clock)
        cb.record_quarantine()
        cb.record_quarantine()      # trip 1: delay 10
        clock.advance(10.0)
        assert cb.allow()           # the probe
        cb.record_quarantine()      # probe poisoned -> trip 2
        assert cb.state == "open"
        assert cb.retry_after() == pytest.approx(20.0)
        clock.advance(19.0)
        assert not cb.allow()
        clock.advance(1.0)
        assert cb.allow()

    def test_success_resets_consecutive_count(self):
        cb = self._breaker(_FakeClock(), threshold=3)
        cb.record_quarantine()
        cb.record_quarantine()
        cb.record_success()
        cb.record_quarantine()
        cb.record_quarantine()
        assert cb.state == "closed"


class TestProbeSlotRelease:
    """The half-open probe slot must be released whenever its verdict
    can never arrive — a later admission gate shed the submission, the
    probe deduped, or it was cancelled — or the tenant is locked out
    forever (every later ``allow()`` returns False)."""

    def _policy(self, **kw):
        kw.setdefault("trip_threshold", 1)
        kw.setdefault("breaker_backoff",
                      BackoffPolicy(base=10.0, factor=2.0, cap=300.0,
                                    jitter=0.0))
        return TenantPolicy(**kw)

    def test_quota_shed_releases_probe(self):
        clock = _FakeClock()
        ctl = AdmissionController(
            tenants={"t": self._policy(rate=1.0, burst=1)}, clock=clock)
        lane = ctl.lane("t")
        lane.breaker.record_quarantine()
        assert lane.breaker.state == "open"
        clock.advance(10.0)             # half-open window reached
        lane.bucket.try_take()          # quota empty at probe time
        with pytest.raises(QuotaExceeded):
            ctl.admit("t")              # breaker passed, quota shed
        assert lane.breaker.state == "half-open"
        clock.advance(1.0)              # one token refills
        ctl.admit("t")                  # slot free: new probe admitted

    def test_queue_full_shed_releases_probe(self):
        clock = _FakeClock()
        ctl = AdmissionController(
            tenants={"t": self._policy(max_queued=1)}, clock=clock)
        lane = ctl.lane("t")
        queued = _StubJob("t", 0)
        ctl.enqueue(queued)             # backlog full
        lane.breaker.record_quarantine()
        clock.advance(10.0)
        with pytest.raises(QueueFull):
            ctl.admit("t")              # breaker passed, queue shed
        assert lane.breaker.state == "half-open"
        assert ctl.discard(queued)
        ctl.admit("t")                  # slot free: new probe admitted

    def test_abort_probe_is_a_noop_when_not_probing(self):
        cb = CircuitBreaker(trip_threshold=1, clock=_FakeClock())
        cb.abort_probe()
        assert cb.state == "closed" and cb.allow()

    def _poisoned_service(self, clock):
        tenants = {"evil": TenantPolicy(
            trip_threshold=2,
            breaker_backoff=BackoffPolicy(base=5.0, factor=2.0,
                                          cap=300.0, jitter=0.0))}
        svc = RefinementService(tenants=tenants, clock=clock, workers=2,
                                pool_policy=FAST)
        jobs = [svc.submit(probe_factory, crash_cfg(i), tenant="evil")
                for i in range(2)]
        for out in (svc.result(j) for j in jobs):
            assert out.error_kind == "crash"
        assert svc.admission.lane("evil").breaker.state == "open"
        clock.advance(5.0)              # half-open window reached
        return svc

    def test_store_hit_probe_settles_breaker(self):
        clock = _FakeClock()
        with self._poisoned_service(clock) as svc:
            # Another tenant already computed cfg(5): evil's probe will
            # dedupe against the store instead of being dispatched.
            svc.result(svc.submit(probe_factory, cfg(5), tenant="good"))
            probe = svc.submit(probe_factory, cfg(5), tenant="evil")
            assert svc.result(probe).completed
            assert svc.admission.lane("evil").breaker.state == "closed"
            ok = svc.submit(probe_factory, cfg(6), tenant="evil")
            assert svc.result(ok).completed

    def test_coalesced_probe_settles_on_own_lane(self):
        clock = _FakeClock()
        with self._poisoned_service(clock) as svc:
            primary = svc.submit(probe_factory, cfg(7), tenant="good")
            probe = svc.submit(probe_factory, cfg(7), tenant="evil")
            assert svc.status(probe).coalesced
            assert svc.result(primary).completed
            assert svc.result(probe).completed
            assert svc.admission.lane("evil").breaker.state == "closed"
            ok = svc.submit(probe_factory, cfg(8), tenant="evil")
            assert svc.result(ok).completed

    def test_cancelled_probe_releases_slot(self):
        clock = _FakeClock()
        with self._poisoned_service(clock) as svc:
            probe = svc.submit(probe_factory, cfg(9), tenant="evil")
            assert svc.cancel(probe)
            again = svc.submit(probe_factory, cfg(9), tenant="evil")
            assert svc.result(again).completed
            assert svc.admission.lane("evil").breaker.state == "closed"


class _StubJob:
    def __init__(self, tenant, n):
        self.tenant = tenant
        self.label = "%s#%d" % (tenant, n)
        self.done = False


class TestBacklogFairness:
    def test_take_is_fair_across_fifo_within(self):
        ctl = AdmissionController(clock=_FakeClock())
        a1, a2, a3 = (_StubJob("a", i) for i in range(3))
        b1, b2 = (_StubJob("b", i) for i in range(2))
        for job in (a1, a2, a3, b1, b2):
            ctl.enqueue(job)
        got = [j.label for j in ctl.take()]
        assert got == ["a#0", "b#0", "a#1", "b#1", "a#2"]
        assert ctl.n_queued == 0

    def test_take_skips_cancelled_jobs(self):
        ctl = AdmissionController(clock=_FakeClock())
        jobs = [_StubJob("a", i) for i in range(3)]
        for j in jobs:
            ctl.enqueue(j)
        jobs[1].done = True
        assert [j.label for j in ctl.take()] == ["a#0", "a#2"]

    def test_tenant_queue_full_sheds_the_new_submission(self):
        ctl = AdmissionController(
            tenants={"a": TenantPolicy(max_queued=2)},
            clock=_FakeClock())
        for i in range(2):
            ctl.admit("a")
            ctl.enqueue(_StubJob("a", i))
        with pytest.raises(QueueFull):
            ctl.admit("a")
        # The accepted jobs were never evicted to make room.
        assert [j.label for j in ctl.take()] == ["a#0", "a#1"]

    def test_global_bound_spans_tenants(self):
        ctl = AdmissionController(max_queued_total=2, clock=_FakeClock())
        ctl.admit("a")
        ctl.enqueue(_StubJob("a", 0))
        ctl.admit("b")
        ctl.enqueue(_StubJob("b", 0))
        with pytest.raises(QueueFull):
            ctl.admit("c")

    def test_discard_then_enqueue_keeps_rotation_fair(self):
        """Emptying a lane via discard() must drop the tenant from the
        round-robin roster; a stale entry would give it two slots (two
        jobs per sweep) after its next enqueue."""
        ctl = AdmissionController(clock=_FakeClock())
        a0, a1, a2 = (_StubJob("a", i) for i in range(3))
        b0 = _StubJob("b", 0)
        ctl.enqueue(a0)
        assert ctl.discard(a0)
        for job in (a1, a2, b0):
            ctl.enqueue(job)
        assert [j.label for j in ctl.take()] == ["a#1", "b#0", "a#2"]

    def test_discard_removes_only_queued(self):
        ctl = AdmissionController(clock=_FakeClock())
        job = _StubJob("a", 0)
        ctl.enqueue(job)
        assert ctl.discard(job) and ctl.n_queued == 0
        assert not ctl.discard(job)


class TestServiceQuota:
    def test_quota_rejection_is_deterministic_and_isolated(self):
        """The acceptance criterion: a tenant over quota is rejected
        with a retry-after hint while a second tenant is unaffected."""
        obs_counters.reset()
        clock = _FakeClock()
        tenants = {"alice": TenantPolicy(rate=1.0, burst=2)}
        with RefinementService(tenants=tenants, clock=clock) as svc:
            a1 = svc.submit(probe_factory, cfg(0), tenant="alice")
            a2 = svc.submit(probe_factory, cfg(1), tenant="alice")
            with pytest.raises(QuotaExceeded) as exc:
                svc.submit(probe_factory, cfg(2), tenant="alice")
            assert exc.value.tenant == "alice"
            assert exc.value.retry_after == pytest.approx(1.0)
            # bob (unmetered default policy) is untouched by alice's
            # exhaustion.
            b1 = svc.submit(probe_factory, cfg(3), tenant="bob")
            assert svc.result(b1).completed
            # One refill interval later alice is admitted again.
            clock.advance(1.0)
            a3 = svc.submit(probe_factory, cfg(2), tenant="alice")
            for j in (a1, a2, a3):
                assert svc.result(j).completed
            codes = {e.code for e in svc.diagnostics.events}
            assert "DG213" in codes     # service-reject
        assert obs_counters.get("service.rejected_quota") == 1

    def test_rejected_submission_creates_no_job(self):
        clock = _FakeClock()
        tenants = {"a": TenantPolicy(rate=1.0, burst=1)}
        with RefinementService(tenants=tenants, clock=clock) as svc:
            svc.submit(probe_factory, cfg(0), tenant="a")
            with pytest.raises(QuotaExceeded):
                svc.submit(probe_factory, cfg(1), tenant="a")
            assert len(svc.jobs()) == 1


class TestServiceBreaker:
    def test_poison_tenant_trips_then_recovers(self):
        """Two quarantined jobs trip the breaker; the half-open window
        admits exactly one probe; a healthy probe closes it."""
        obs_counters.reset()
        clock = _FakeClock()
        tenants = {"evil": TenantPolicy(
            trip_threshold=2,
            breaker_backoff=BackoffPolicy(base=5.0, factor=2.0,
                                          cap=300.0, jitter=0.0))}
        with RefinementService(tenants=tenants, clock=clock, workers=2,
                               pool_policy=FAST) as svc:
            j1 = svc.submit(probe_factory, crash_cfg(0), tenant="evil")
            j2 = svc.submit(probe_factory, crash_cfg(1), tenant="evil")
            o1, o2 = svc.result(j1), svc.result(j2)
            assert o1.error_kind == "crash" and o2.error_kind == "crash"
            assert svc.admission.lane("evil").breaker.state == "open"
            with pytest.raises(CircuitOpen) as exc:
                svc.submit(probe_factory, cfg(0), tenant="evil")
            assert exc.value.retry_after == pytest.approx(5.0)
            # Other tenants never see evil's breaker.
            ok = svc.submit(probe_factory, cfg(1), tenant="good")
            assert svc.result(ok).completed
            # Half-open: one probe passes, a second is still rejected.
            clock.advance(5.0)
            probe = svc.submit(probe_factory, cfg(2), tenant="evil")
            with pytest.raises(CircuitOpen):
                svc.submit(probe_factory, cfg(3), tenant="evil")
            assert svc.result(probe).completed
            assert svc.admission.lane("evil").breaker.state == "closed"
            svc.submit(probe_factory, cfg(3), tenant="evil")
            codes = {e.code for e in svc.diagnostics.events}
            assert "DG215" in codes     # service-breaker
            assert "DG217" in codes     # service-quarantine
        assert obs_counters.get("service.breaker_trips") == 1
        assert obs_counters.get("service.quarantined") == 2


class TestCoalescingCancel:
    def test_waiter_cancel_leaves_primary_running(self):
        obs_counters.reset()
        with RefinementService() as svc:
            j1 = svc.submit(probe_factory, cfg(0))
            j2 = svc.submit(probe_factory, cfg(0))    # coalesces
            assert svc.status(j2).coalesced
            assert svc.cancel(j2)
            out = svc.result(j1)
            assert out.completed
            assert svc.status(j2).state == "cancelled"
            with pytest.raises(JobCancelled):
                svc.result(j2)
            codes = {e.code for e in svc.diagnostics.events}
            assert "DG218" in codes     # service-cancel
        assert obs_counters.get("service.cancelled") == 1

    def test_primary_cancel_promotes_a_waiter(self):
        with RefinementService() as svc:
            j1 = svc.submit(probe_factory, cfg(0))
            j2 = svc.submit(probe_factory, cfg(0))
            assert svc.cancel(j1)
            out = svc.result(j2)
            assert out.completed and out.label == "adm0"
            assert svc.status(j1).state == "cancelled"
            assert not svc.status(j2).coalesced   # promoted to primary

    def test_sole_queued_cancel(self):
        with RefinementService() as svc:
            jid = svc.submit(probe_factory, cfg(0))
            assert svc.cancel(jid)
            assert not svc.cancel(jid)      # already terminal
            assert svc.status(jid).state == "cancelled"

    def test_completed_job_cannot_be_cancelled(self):
        with RefinementService() as svc:
            jid = svc.submit(probe_factory, cfg(0))
            svc.result(jid)
            assert not svc.cancel(jid)
