"""Tests for the two baseline refinement methods."""

import math

import numpy as np
import pytest

from repro.baselines import (AnalyticalRefiner, SimulationBasedOptimizer,
                             propagate_error_bounds)
from repro.core.dtype import DType
from repro.core.interval import Interval
from repro.refine import Design, FlowConfig, RefinementFlow
from repro.sfg import SFG
from repro.signal import Sig

T_IN = DType("T_in", 8, 6, "tc", "saturate", "round")


class TinyFirDesign(Design):
    """y = 0.5*x + 0.25*x[-1] with the delay in a register."""

    name = "tinyfir"
    inputs = ("x",)
    output = "y"

    def build(self, ctx):
        from repro.signal import Reg
        self.x = Sig("x")
        self.prev = Reg("prev")
        self.m = Sig("m")
        self.y = Sig("y")
        rng = np.random.default_rng(8)
        self._stim = iter(rng.uniform(-1, 1, size=100000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.m.assign(self.x * 0.5)
            self.y.assign(self.m + self.prev * 0.25)
            self.prev.assign(self.x + 0.0)
            ctx.tick()


class TestSimulationBased:
    @pytest.fixture(scope="class")
    def result(self):
        opt = SimulationBasedOptimizer(TinyFirDesign,
                                       input_types={"x": T_IN},
                                       sqnr_target_db=35.0,
                                       n_samples=1500, f_max=12)
        return opt.run()

    def test_meets_target(self, result):
        assert result.output_sqnr_db >= result.sqnr_target_db

    def test_costs_many_simulations(self, result):
        # 1 range run + 1 uniform + ~log2(f_max) per signal + 1 final.
        assert result.n_simulations >= 2 + 2 * 3

    def test_types_cover_all_non_inputs(self, result):
        assert set(result.types) == {"m", "y", "prev"}

    def test_msb_has_safety_bit(self, result):
        # y in [-0.75, 0.75] -> observed msb 0, +1 safety = 1.
        assert result.types["y"].msb == 1

    def test_total_bits_positive(self, result):
        assert result.total_bits() > 0

    def test_history_recorded(self, result):
        assert result.history[0][0].startswith("uniform")


class TestAnalytical:
    @pytest.fixture(scope="class")
    def result(self):
        ref = AnalyticalRefiner(TinyFirDesign, input_types={"x": T_IN},
                                input_ranges={"x": (-1, 1)})
        return ref.run()

    def test_ranges_are_worst_case(self, result):
        assert result.ranges["y"].contains(Interval(-0.75, 0.75))

    def test_types_derived(self, result):
        assert "y" in result.types and "m" in result.types
        assert result.types["m"].msb == word_msb(-0.5, 0.5)

    def test_error_bounds_scale_with_structure(self, result):
        # m = 0.5*x: error bound is half the input's bound.
        assert result.error_bounds["m"] == pytest.approx(
            0.5 * 0.5 * T_IN.eps)

    def test_no_explosion_on_feedforward(self, result):
        assert result.exploded == []

    def test_msb_at_least_as_conservative_as_simulation(self, result):
        # The paper's criticism of the pure analytical method: the MSB
        # side overestimates versus what simulation observes.
        flow = RefinementFlow(TinyFirDesign, input_types={"x": T_IN},
                              input_ranges={"x": (-1, 1)},
                              config=FlowConfig(n_samples=1500, seed=5))
        msb = flow.run_msb_phase()
        for name in ("m", "y", "prev"):
            stat = msb.final.decisions[name].stat_msb
            assert result.types[name].msb >= stat


def word_msb(lo, hi):
    from repro.core import word
    return word.required_msb(lo, hi)


class TestErrorBoundPropagation:
    def _graph(self):
        g = SFG()
        x = g.sig_node("x")
        m = g.op_node("mul", [x, g.const_node(0.5)])
        g.assign_edge(m, "y")
        return g

    def test_scaling(self):
        g = self._graph()
        ranges = {"x": Interval(-1, 1), "y": Interval(-0.5, 0.5)}
        bounds = propagate_error_bounds(g, ranges, {"x": 0.01})
        assert bounds["y"] == pytest.approx(0.005, rel=0.02)

    def test_add_accumulates(self):
        g = SFG()
        a = g.sig_node("a")
        b = g.sig_node("b")
        s = g.op_node("add", [a, b])
        g.assign_edge(s, "y")
        bounds = propagate_error_bounds(
            g, {"a": Interval(-1, 1), "b": Interval(-1, 1),
                "y": Interval(-2, 2)},
            {"a": 0.01, "b": 0.02})
        assert bounds["y"] == pytest.approx(0.03)

    def test_division_by_zero_range_is_inf(self):
        g = SFG()
        a = g.sig_node("a")
        b = g.sig_node("b")
        d = g.op_node("div", [a, b])
        g.assign_edge(d, "y")
        bounds = propagate_error_bounds(
            g, {"a": Interval(1, 2), "b": Interval(-1, 1),
                "y": Interval.full()},
            {"a": 0.01, "b": 0.01})
        assert math.isinf(bounds["y"])

    def test_feedback_amplification_cut(self):
        # acc = 2*acc + x: error bound doubles per round -> cut to inf.
        g = SFG()
        acc = g.sig_node("acc", is_register=True)
        x = g.sig_node("x")
        m = g.op_node("mul", [acc, g.const_node(2.0)])
        s = g.op_node("add", [m, x])
        g.assign_edge(s, "acc", is_register=True)
        bounds = propagate_error_bounds(
            g, {"x": Interval(-1, 1), "acc": Interval(-10, 10)},
            {"x": 0.01})
        assert math.isinf(bounds["acc"])
