"""Tests for report formatting and signal-record collection."""

import math

import pytest

from repro.core.dtype import DType
from repro.core.interval import Interval
from repro.refine import collect, format_table, format_types_table
from repro.refine.monitors import ErrorSummary, SignalRecord
from repro.signal import DesignContext, Reg, Sig


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbbb"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert lines[0].index("bbbb") == lines[1].index("---", 3) or True
        assert "a" in lines[0] and "yy" in lines[2] or "yy" in lines[3]

    def test_title(self):
        text = format_table(["h"], [["v"]], title="T")
        assert text.splitlines()[0] == "T"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_types_table(self):
        types = {"x": DType("x_t", 8, 5), "y": DType("y_t", 2, 0)}
        text = format_types_table(types)
        assert "<8,5,tc,sa,ro>" in text
        assert "y" in text


class TestSignalRecord:
    def _record_for(self, build):
        ctx = DesignContext("rec", seed=0)
        with ctx:
            build(ctx)
        return collect(ctx)

    def test_from_float_signal(self):
        def build(ctx):
            s = Sig("s")
            s.assign(1.0)
            s.assign(-2.0)
        rec = self._record_for(build)["s"]
        assert rec.n_assign == 2
        assert rec.stat_min == -2.0 and rec.stat_max == 1.0
        assert rec.stat_msb() == 1
        assert not rec.is_register
        assert rec.dtype is None

    def test_register_flag(self):
        def build(ctx):
            Reg("r")
        assert self._record_for(build)["r"].is_register

    def test_unobserved(self):
        def build(ctx):
            Sig("s")
        rec = self._record_for(build)["s"]
        assert not rec.observed
        assert math.isnan(rec.stat_min)
        assert rec.stat_msb() is None
        assert math.isnan(rec.sqnr_db())

    def test_prop_msb_and_explosion(self):
        rec = SignalRecord(
            name="s", is_register=False, dtype=None, role="",
            n_assign=1, stat_min=-1.0, stat_max=1.0, frac_bits=0,
            prop=Interval(-math.inf, math.inf),
            err_consumed=ErrorSummary(0, 0, 0, 0),
            err_produced=ErrorSummary(0, 0, 0, 0))
        assert rec.prop_exploded
        assert rec.prop_msb() == math.inf

    def test_empty_prop(self):
        rec = SignalRecord(
            name="s", is_register=False, dtype=None, role="",
            n_assign=1, stat_min=0.0, stat_max=0.0, frac_bits=0)
        assert rec.prop_msb() is None
        assert not rec.prop_exploded

    def test_sqnr_from_record(self):
        def build(ctx):
            s = Sig("s", DType("t", 8, 5))
            import numpy as np
            for v in np.random.default_rng(1).uniform(-1, 1, 500):
                s.assign(float(v))
        rec = self._record_for(build)["s"]
        assert 25.0 < rec.sqnr_db() < 45.0

    def test_error_summary_rms(self):
        es = ErrorSummary(10, 3.0, 4.0, 5.0)
        assert es.rms == pytest.approx(5.0)

    def test_collect_preserves_order(self):
        ctx = DesignContext("order", seed=0)
        with ctx:
            Sig("z")
            Sig("a")
            Sig("m")
        assert list(collect(ctx)) == ["z", "a", "m"]

    def test_annotations_captured(self):
        ctx = DesignContext("ann", seed=0)
        with ctx:
            s = Sig("s")
            s.range(-1, 1)
            s.error(0.25)
            s.assign(0.0)
        rec = collect(ctx)["s"]
        assert rec.forced_range == Interval(-1, 1)
        assert rec.forced_error == 0.25
