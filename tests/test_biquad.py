"""Tests for the biquad section and limit-cycle analysis."""

import math

import numpy as np
import pytest

from repro.core.dtype import DType
from repro.dsp.biquad import (Biquad, BiquadDesign, LimitCycle,
                              detect_limit_cycle, lowpass_coefficients,
                              zero_input_response)
from repro.signal import DesignContext


@pytest.fixture
def ctx():
    with DesignContext("bq-test", seed=0) as c:
        yield c


class TestCoefficients:
    def test_dc_gain_is_unity(self):
        b0, b1, b2, a1, a2 = lowpass_coefficients(0.1, 0.7071)
        dc = (b0 + b1 + b2) / (1.0 + a1 + a2)
        assert dc == pytest.approx(1.0)

    def test_stable_poles(self):
        for fc in (0.01, 0.1, 0.3, 0.45):
            _b0, _b1, _b2, a1, a2 = lowpass_coefficients(fc, 2.0)
            roots = np.roots([1.0, a1, a2])
            assert all(abs(r) < 1.0 for r in roots)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            lowpass_coefficients(0.0)
        with pytest.raises(ValueError):
            lowpass_coefficients(0.5)
        with pytest.raises(ValueError):
            lowpass_coefficients(0.1, q=0.0)


class TestBiquadBlock:
    def test_matches_scipy_reference(self, ctx):
        from scipy.signal import lfilter
        coef = lowpass_coefficients(0.12, 1.0)
        b = coef[:3]
        a = (1.0,) + coef[3:]
        bq = Biquad("bq", coef)
        x = np.random.default_rng(1).uniform(-1, 1, size=128)
        got = []
        for v in x:
            bq.step(float(v))
            got.append(bq.y.fx)
            ctx.tick()
        np.testing.assert_allclose(got, lfilter(b, a, x), atol=1e-10)

    def test_impulse_decays_when_float(self, ctx):
        bq = Biquad("bq", lowpass_coefficients(0.1, 0.8))
        bq.step(1.0)
        ctx.tick()
        tail = []
        for _ in range(300):
            bq.step(0.0)
            tail.append(abs(bq.y.fx))
            ctx.tick()
        assert tail[-1] < 1e-6

    def test_signal_names(self, ctx):
        bq = Biquad("f0", lowpass_coefficients(0.1))
        assert [s.name for s in bq.signals()] == ["f0.w", "f0.w1", "f0.w2",
                                                  "f0.y"]


class TestLimitCycleDetector:
    def test_zero_tail_is_none(self):
        assert detect_limit_cycle([1.0, 0.5, 0.0, 0.0, 0.0, 0.0]) is None

    def test_constant_tail_period_one(self):
        lc = detect_limit_cycle([0.0] * 10 + [0.25] * 50)
        assert lc == LimitCycle(1, 0.25)

    def test_alternating_tail_period_two(self):
        tail = [0.25, -0.25] * 40
        lc = detect_limit_cycle([0.0] * 10 + tail)
        assert lc.period == 2

    def test_decaying_response_is_none(self):
        decay = [0.9 ** k for k in range(200)]
        assert detect_limit_cycle(decay) is None

    def test_aperiodic_nonzero(self):
        rng = np.random.default_rng(0)
        noise = rng.uniform(0.5, 1.0, size=200).tolist()
        lc = detect_limit_cycle(noise, max_period=8)
        assert lc is not None and lc.period is None

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            detect_limit_cycle([])


class TestQuantizedLimitCycles:
    """The paper's Section 4.2 caveat, demonstrated."""

    COEF = lowpass_coefficients(0.02, q=5.0)  # poles near the unit circle

    def _response(self, frac_bits):
        ctx = DesignContext("lc-%s" % frac_bits, seed=0)
        with ctx:
            bq = Biquad("bq", self.COEF)
            if frac_bits is not None:
                dt = DType("t", frac_bits + 4, frac_bits, "tc",
                           "saturate", "round")
                for s in bq.signals():
                    s.set_dtype(dt)
            return zero_input_response(bq, ctx, n_excite=64,
                                       n_observe=1200)

    def test_float_section_decays(self):
        assert detect_limit_cycle(self._response(None),
                                  settle_fraction=0.7) is None

    @pytest.mark.parametrize("f", [6, 8, 10])
    def test_rounded_section_sustains_cycle(self, f):
        lc = detect_limit_cycle(self._response(f), settle_fraction=0.7)
        assert lc is not None
        assert lc.amplitude > 0

    def test_amplitude_scales_with_lsb(self):
        amp = {}
        for f in (6, 8, 10):
            lc = detect_limit_cycle(self._response(f), settle_fraction=0.7)
            amp[f] = lc.amplitude
        assert amp[6] > amp[8] > amp[10]
        # Granular cycles scale roughly with the LSB weight.
        assert amp[6] / amp[10] == pytest.approx(2.0 ** 4, rel=0.5)


class TestBiquadDesign:
    def test_flow_refines_biquad(self):
        from repro.refine import FlowConfig, RefinementFlow
        flow = RefinementFlow(
            BiquadDesign,
            input_types={"x": DType("T_in", 9, 7)},
            input_ranges={"x": (-1.0, 1.0)},
            config=FlowConfig(n_samples=2000, seed=2),
        )
        res = flow.run()
        assert res.msb.resolved and res.lsb.resolved
        assert "bq.w" in res.types
        assert res.verification.total_overflows == 0
