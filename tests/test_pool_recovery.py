"""Crash tolerance of the parallel batch layer, end to end.

A batch containing a crashing job and a hanging job must complete every
healthy job in parallel, quarantine the crasher with a diagnosable
outcome, abort the hanger at its deadline — and a batch killed outright
(``kill -9``) must resume from its write-ahead journal to a
bit-identical result.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.dtype import DType
from repro.core.errors import DeadlineExceeded, WorkerCrashError
from repro.dsp.lms import LmsEqualizerDesign
from repro.obs import counters
from repro.parallel import PoolPolicy, SimConfig, run_simulations
from repro.robust.diagnostics import Diagnostics
from repro.robust.faults import (BitFlip, FaultCampaign, WorkerCrash,
                                 WorkerHang)
from repro.robust.retry import BackoffPolicy

T_IN = DType("T_in", 9, 7, "tc", "saturate", "round")

# Quick retries in tests: default backoff would sleep up to a second.
FAST = PoolPolicy(max_retries=1,
                  backoff=BackoffPolicy(base=0.01, cap=0.05, jitter=0.0))


def lms_factory():
    return LmsEqualizerDesign(seed=2024)


lms_factory.fingerprint = "test-pool-recovery-lms"


def _ok_configs(n, n_samples=60):
    return [SimConfig(label="ok%d" % i, dtypes={"x": T_IN},
                      n_samples=n_samples, seed=i) for i in range(n)]


class TestPoisonJobQuarantine:
    def test_crasher_quarantined_others_keep_results(self):
        """Regression: a pool break must not discard completed jobs or
        re-run the whole batch serially (the old fallback)."""
        counters.reset()
        diag = Diagnostics()
        configs = _ok_configs(3)
        configs.append(SimConfig(label="boom", dtypes={"x": T_IN},
                                 n_samples=60, seed=9,
                                 faults=(WorkerCrash("y", at=10),),
                                 catch_errors=True))
        outcomes = run_simulations(lms_factory, configs, workers=2,
                                   diagnostics=diag, pool_policy=FAST)
        # Healthy jobs: bit-identical to an undisturbed serial run.
        serial = run_simulations(lms_factory, _ok_configs(3), workers=1)
        for got, want in zip(outcomes[:3], serial):
            assert got.completed
            assert got.sqnr_db() == want.sqnr_db()
        # The poison job was quarantined after an actual worker death —
        # error_kind "crash" proves it was never re-run in-process (an
        # in-process run would degrade to a caught SimulationError,
        # error_kind "error").
        boom = outcomes[3]
        assert not boom.completed and boom.error_kind == "crash"
        assert counters.get("parallel.quarantined") == 1
        assert counters.get("parallel.retries") == 1
        assert counters.get("parallel.pool_respawns") >= 1
        codes = [e.code for e in diag.events]
        assert "DG202" in codes and "DG204" in codes

    def test_crasher_raises_without_catch_errors(self):
        counters.reset()
        configs = _ok_configs(2)
        configs.append(SimConfig(label="boom", dtypes={"x": T_IN},
                                 n_samples=60, seed=9,
                                 faults=(WorkerCrash("y", at=10),)))
        with pytest.raises(WorkerCrashError):
            run_simulations(lms_factory, configs, workers=2,
                            pool_policy=FAST)
        assert counters.get("parallel.quarantined") == 1

    def test_unpicklable_job_falls_back_in_process(self):
        from repro.robust.faults import Fault

        class UnpicklableNoop(Fault):
            kind = "noop"

            def __init__(self):
                self.fn = lambda v: v     # lambdas cannot cross the pipe

            def describe(self):
                return "noop"

        counters.reset()
        configs = _ok_configs(2)
        configs.append(SimConfig(label="local", dtypes={"x": T_IN},
                                 n_samples=60, seed=5,
                                 faults=(UnpicklableNoop(),)))
        outcomes = run_simulations(lms_factory, configs, workers=2,
                                   pool_policy=FAST)
        assert all(o.completed for o in outcomes)
        assert counters.get("parallel.pickling_fallbacks") == 1
        assert counters.get("parallel.quarantined") == 0


class TestDeadlines:
    def test_hanging_job_aborted_at_deadline_others_fine(self):
        counters.reset()
        diag = Diagnostics()
        configs = _ok_configs(3)
        configs.append(SimConfig(label="hang", dtypes={"x": T_IN},
                                 n_samples=60, seed=8,
                                 faults=(WorkerHang("y", at=10,
                                                    seconds=60.0),),
                                 catch_errors=True, deadline_seconds=0.5))
        t0 = time.monotonic()
        outcomes = run_simulations(lms_factory, configs, workers=2,
                                   diagnostics=diag, pool_policy=FAST)
        assert time.monotonic() - t0 < 30.0   # nowhere near the 60s hang
        assert all(o.completed for o in outcomes[:3])
        hang = outcomes[3]
        assert not hang.completed and hang.error_kind == "deadline"
        assert "deadline" in hang.error
        assert counters.get("parallel.deadline_hits") == 1
        assert "DG201" in [e.code for e in diag.events]

    def test_serial_deadline_caught(self):
        counters.reset()
        cfg = SimConfig(label="hang", dtypes={"x": T_IN}, n_samples=60,
                        seed=8, faults=(WorkerHang("y", at=10,
                                                   seconds=60.0),),
                        catch_errors=True, deadline_seconds=0.5)
        out = run_simulations(lms_factory, [cfg], workers=1)[0]
        assert out.error_kind == "deadline"
        assert counters.get("parallel.deadline_hits") == 1

    def test_serial_deadline_raises_without_catch_errors(self):
        cfg = SimConfig(label="hang", dtypes={"x": T_IN}, n_samples=60,
                        seed=8, faults=(WorkerHang("y", at=10,
                                                   seconds=60.0),),
                        deadline_seconds=0.5)
        with pytest.raises(DeadlineExceeded):
            run_simulations(lms_factory, [cfg], workers=1)

    def test_no_deadline_runs_unbounded(self):
        out = run_simulations(lms_factory, _ok_configs(1), workers=1)[0]
        assert out.completed and out.error_kind is None


class TestCampaignWithInfrastructureFaults:
    def test_campaign_survives_crash_and_hang(self):
        """Satellite check: a campaign whose fault list includes
        worker_crash and worker_hang still completes, with quarantine /
        deadline diagnostics and every other fault measured."""
        counters.reset()
        diag = Diagnostics()
        types = {"y": DType("T_w", 12, 10, "tc", "saturate", "round")}
        campaign = FaultCampaign(lms_factory, {**types, "x": T_IN},
                                 n_samples=80, seed=7,
                                 deadline_seconds=2.0)
        faults = [BitFlip("y", bit=0, at=30),
                  WorkerCrash("y", at=20),
                  WorkerHang("y", at=20, seconds=60.0)]
        result = campaign.run(faults, workers=2, diagnostics=diag,
                              pool_policy=FAST)
        assert len(result.outcomes) == 3
        flip, crash, hang = result.outcomes
        assert flip.completed and flip.triggered
        assert not crash.completed and "quarantined" in crash.error
        assert not hang.completed and "deadline" in hang.error
        codes = [e.code for e in diag.events]
        assert "DG201" in codes and "DG202" in codes

    def test_campaign_journal_resume_bit_identical(self, tmp_path):
        types = {"y": DType("T_w", 12, 10, "tc", "saturate", "round")}
        campaign = FaultCampaign(lms_factory, {**types, "x": T_IN},
                                 n_samples=80, seed=7)
        faults = [BitFlip("y", bit=0, at=30), BitFlip("y", bit=11, at=30)]
        path = tmp_path / "campaign.jsonl"
        first = campaign.run(faults, workers=1, journal=str(path))
        counters.reset()
        second = campaign.run(faults, workers=1, journal=str(path))
        assert counters.get("journal.replays") == 3   # baseline + 2 faults
        assert first.baseline_sqnr_db == second.baseline_sqnr_db
        for a, b in zip(first.outcomes, second.outcomes):
            assert (a.sqnr_db, a.degradation_db) == \
                (b.sqnr_db, b.degradation_db)


HELPER = '''
import sys
from repro.core.dtype import DType
from repro.dsp.lms import LmsEqualizerDesign
from repro.refine.optimizer import optimize_wordlengths

T_IN = DType("T_in", 9, 7, "tc", "saturate", "round")
T_W = DType("T_w", 10, 8, "tc", "saturate", "round")


def factory():
    return LmsEqualizerDesign(seed=2024)


# Shared across the killed child and the resuming parent: journal keys
# must match between processes.
factory.fingerprint = "resume-test-lms"


def search(journal):
    return optimize_wordlengths(
        factory, {"y": T_W, "w": T_W, "d": T_W}, {"x": T_IN},
        target_db=40.0, n_samples=500, seed=7, max_moves=8,
        workers=1, journal=journal)


if __name__ == "__main__":
    search(sys.argv[1])
'''


class TestKillAndResume:
    def test_killed_search_resumes_bit_identical(self, tmp_path):
        """Start a wordlength search in a child process, SIGKILL it
        mid-search, resume from the journal: same result as an
        uninterrupted run, and the journaled probes are not re-run."""
        helper = tmp_path / "resume_helper.py"
        helper.write_text(HELPER)
        journal = tmp_path / "search.jsonl"

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_PARALLEL"] = "0"
        child = subprocess.Popen(
            [sys.executable, str(helper), str(journal)], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            # Wait until at least two probe outcomes hit the disk, then
            # kill without any chance of cleanup.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    pytest.fail("search finished before it could be "
                                "killed; slow the helper down")
                if journal.exists() and \
                        journal.read_text().count('"outcome"') >= 2:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("journal never accumulated two outcomes")
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait()

        # Import the same helper the child ran, so the resumed and the
        # fresh search are the very call that was killed.
        import importlib.util
        spec = importlib.util.spec_from_file_location("resume_helper",
                                                      str(helper))
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        counters.reset()
        resumed = mod.search(str(journal))
        replays = counters.get("journal.replays")
        assert replays >= 2   # the killed child's completed probes

        fresh = mod.search(None)
        assert resumed.types == fresh.types
        assert resumed.sqnr_db == fresh.sqnr_db
        assert resumed.moves == fresh.moves
        # The resumed search re-ran fewer simulations than it replayed.
        assert resumed.n_simulations == fresh.n_simulations


class TestFlowCheckpoint:
    def test_flow_resumes_from_checkpoint(self, tmp_path):
        from repro.refine.flow import FlowConfig, RefinementFlow
        ck = tmp_path / "flow.ckpt"
        flow = RefinementFlow(lms_factory, input_types={"x": T_IN},
                              input_ranges={"x": (-2.0, 2.0)},
                              config=FlowConfig(n_samples=200, seed=7))
        first = flow.run(checkpoint=str(ck))
        counters.reset()
        again = flow.run(checkpoint=str(ck))
        assert counters.get("flow.stage_replays") >= 5
        assert again.types == first.types
        assert again.verification.output_sqnr_db == \
            first.verification.output_sqnr_db
        # Replayed stages surface as DG203 journal diagnostics.
        assert any(e.code == "DG203" for e in again.diagnostics.events)

    def test_foreign_checkpoint_ignored(self, tmp_path):
        from repro.refine.flow import FlowConfig, RefinementFlow
        ck = tmp_path / "flow.ckpt"
        flow_a = RefinementFlow(lms_factory, input_types={"x": T_IN},
                                input_ranges={"x": (-2.0, 2.0)},
                                config=FlowConfig(n_samples=200, seed=7))
        flow_a.run(checkpoint=str(ck))
        # Different seed => different fingerprint => no resume.
        flow_b = RefinementFlow(lms_factory, input_types={"x": T_IN},
                                input_ranges={"x": (-2.0, 2.0)},
                                config=FlowConfig(n_samples=200, seed=8))
        counters.reset()
        result = flow_b.run(checkpoint=str(ck))
        assert counters.get("flow.stage_replays") == 0
        assert any("different flow setup" in e.message
                   for e in result.diagnostics.events)
