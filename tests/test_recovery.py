"""Persistence primitives of the crash-tolerance layer.

The write-ahead :class:`Journal` must replay completed outcomes
bit-exactly, detect and drop a torn tail (the only damage an
append-only file can suffer), and refuse files it cannot have written.
The :class:`Checkpoint` must swap states atomically and never resume a
torn or foreign snapshot.  The :class:`SimCache` must evict by
*recency of use*, not insertion order, so a long-running optimizer
keeps its working set.
"""

import json
import os
import pickle

import pytest

from repro.core.dtype import DType
from repro.core.errors import JournalError
from repro.dsp.lms import LmsEqualizerDesign
from repro.obs import counters
from repro.parallel import SimCache, SimConfig, fingerprint, run_simulations
from repro.robust.recovery import (JOURNAL_FORMAT, JOURNAL_VERSION,
                                   Checkpoint, Journal)

T_IN = DType("T_in", 9, 7, "tc", "saturate", "round")


def lms_factory():
    return LmsEqualizerDesign(seed=2024)


# A stable factory identity: journal keys must match across processes
# and across re-imports of this module.
lms_factory.fingerprint = "test-recovery-lms"


def _outcomes(n, n_samples=60):
    configs = [SimConfig(label="r%d" % i, dtypes={"x": T_IN},
                         n_samples=n_samples, seed=i) for i in range(n)]
    outs = run_simulations(lms_factory, configs, workers=1)
    keys = [fingerprint(lms_factory, cfg) for cfg in configs]
    return keys, outs


def _record_tuple(o):
    return {name: (rec.stat_min, rec.stat_max, rec.err_produced,
                   rec.overflow_count)
            for name, rec in o.records.items()}


class TestJournalRoundTrip:
    def test_write_reopen_replay_bit_identical(self, tmp_path):
        path = tmp_path / "j.jsonl"
        keys, outs = _outcomes(3)
        with Journal(path) as j:
            for k, o in zip(keys, outs):
                assert j.append(k, o)
        again = Journal(path)
        assert len(again) == 3 and again.n_dropped == 0
        for k, o in zip(keys, outs):
            replayed = again.get(k)
            assert replayed.sqnr_db() == o.sqnr_db()
            assert _record_tuple(replayed) == _record_tuple(o)
        assert again.hits == 3

    def test_failed_outcomes_are_not_journaled(self, tmp_path):
        j = Journal(tmp_path / "j.jsonl")
        keys, outs = _outcomes(1)
        from dataclasses import replace
        bad = replace(outs[0], error="boom", error_kind="crash")
        assert not j.append("k-bad", bad)
        assert "k-bad" not in j and len(j) == 0

    def test_runner_appends_as_outcomes_arrive(self, tmp_path):
        counters.reset()
        path = tmp_path / "j.jsonl"
        keys, outs = _outcomes(2)
        j = Journal(path)
        configs = [SimConfig(label="r%d" % i, dtypes={"x": T_IN},
                             n_samples=60, seed=i) for i in range(2)]
        run_simulations(lms_factory, configs, workers=1, journal=j)
        assert counters.get("journal.appends") == 2
        # Second run: everything replays, nothing executes.
        counters.reset()
        replayed = run_simulations(lms_factory, configs, workers=1,
                                   journal=j)
        assert counters.get("journal.replays") == 2
        assert counters.get("journal.appends") == 0
        for a, b in zip(outs, replayed):
            assert a.sqnr_db() == b.sqnr_db()

    def test_journal_accepts_path_argument(self, tmp_path):
        path = tmp_path / "sub" / "j.jsonl"   # parent dir auto-created
        configs = [SimConfig(label="p", dtypes={"x": T_IN}, n_samples=60,
                             seed=3)]
        first = run_simulations(lms_factory, configs, workers=1,
                                journal=str(path))[0]
        second = run_simulations(lms_factory, configs, workers=1,
                                 journal=str(path))[0]
        assert first.sqnr_db() == second.sqnr_db()
        assert path.exists()


class TestJournalTornTail:
    def test_truncated_record_dropped_rest_replays(self, tmp_path):
        counters.reset()
        path = tmp_path / "j.jsonl"
        keys, outs = _outcomes(3)
        with Journal(path) as j:
            for k, o in zip(keys, outs):
                j.append(k, o)
        # Tear the file mid-way through the last record, as a kill -9
        # (or a full disk) would.
        data = path.read_bytes()
        path.write_bytes(data[:-25])
        reopened = Journal(path)
        assert reopened.n_dropped == 1
        assert counters.get("journal.dropped_records") == 1
        assert len(reopened) == 2
        for k, o in zip(keys[:2], outs[:2]):
            assert reopened.get(k).sqnr_db() == o.sqnr_db()
        assert reopened.get(keys[2]) is None
        reopened.close()
        # The torn tail was truncated away on disk: a further reopen is
        # clean and the file append-appendable again.
        clean = Journal(path)
        assert clean.n_dropped == 0 and len(clean) == 2
        clean.append(keys[2], outs[2])
        clean.close()
        assert len(Journal(path)) == 3

    def test_corrupted_payload_hash_mismatch_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        keys, outs = _outcomes(2)
        with Journal(path) as j:
            for k, o in zip(keys, outs):
                j.append(k, o)
        lines = path.read_text().splitlines()
        rec = json.loads(lines[2])
        rec["payload"] = rec["payload"][:-8] + "AAAAAAAA"
        lines[2] = json.dumps(rec, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        reopened = Journal(path)
        assert len(reopened) == 1 and reopened.n_dropped == 1

    def test_torn_header_starts_fresh(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"v": 1, "format": "repro-jou')   # torn header
        j = Journal(path)
        assert len(j) == 0
        keys, outs = _outcomes(1)
        j.append(keys[0], outs[0])
        j.close()
        assert len(Journal(path)) == 1


class TestJournalRejectsForeignFiles:
    def test_not_a_journal(self, tmp_path):
        path = tmp_path / "notes.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(JournalError):
            Journal(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "j.jsonl"
        header = {"v": JOURNAL_VERSION + 1, "format": JOURNAL_FORMAT,
                  "kind": "header", "meta": {}}
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(JournalError):
            Journal(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "j.jsonl"
        header = {"v": 1, "format": "other-tool", "kind": "header"}
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(JournalError):
            Journal(path)


class TestCheckpoint:
    def test_save_load_roundtrip(self, tmp_path):
        ck = Checkpoint(tmp_path / "c.ckpt")
        assert ck.load() is None
        state = {"stage": "msb", "ranges": {"y": (-1.0, 1.0)}}
        ck.save(state)
        assert Checkpoint(ck.path).load() == state

    def test_save_replaces_atomically(self, tmp_path):
        ck = Checkpoint(tmp_path / "c.ckpt")
        ck.save({"n": 1})
        ck.save({"n": 2})
        assert ck.load() == {"n": 2}
        # No temp litter left behind.
        assert os.listdir(tmp_path) == ["c.ckpt"]

    def test_corrupt_checkpoint_returns_none_and_flags(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(b"\x80\x04 not a pickle")
        ck = Checkpoint(path)
        assert ck.load() is None
        assert ck.corrupt

    def test_remove(self, tmp_path):
        ck = Checkpoint(tmp_path / "c.ckpt")
        ck.save({"n": 1})
        ck.remove()
        assert ck.load() is None
        ck.remove()   # idempotent


class TestSimCacheLRU:
    def test_evicts_at_max_entries(self):
        cache = SimCache(max_entries=3)
        keys, outs = _outcomes(4, n_samples=40)
        for k, o in zip(keys[:3], outs[:3]):
            cache.put(k, o)
        assert len(cache) == 3
        cache.put(keys[3], outs[3])
        assert len(cache) == 3
        assert keys[0] not in cache          # oldest evicted
        assert all(k in cache for k in keys[1:])

    def test_get_refreshes_recency(self):
        cache = SimCache(max_entries=3)
        keys, outs = _outcomes(4, n_samples=40)
        for k, o in zip(keys[:3], outs[:3]):
            cache.put(k, o)
        got = cache.get(keys[0])               # refresh the oldest
        assert got is not None and got.sqnr_db() == outs[0].sqnr_db()
        cache.put(keys[3], outs[3])
        assert keys[0] in cache               # survived thanks to the hit
        assert keys[1] not in cache           # true LRU victim

    def test_put_existing_refreshes_recency(self):
        cache = SimCache(max_entries=2)
        keys, outs = _outcomes(3, n_samples=40)
        cache.put(keys[0], outs[0])
        cache.put(keys[1], outs[1])
        cache.put(keys[0], outs[0])           # re-put refreshes
        cache.put(keys[2], outs[2])
        assert keys[0] in cache and keys[1] not in cache

    def test_failed_outcomes_never_cached(self):
        from dataclasses import replace
        cache = SimCache(max_entries=2)
        keys, outs = _outcomes(1, n_samples=40)
        cache.put(keys[0], replace(outs[0], error="x", error_kind="crash"))
        assert len(cache) == 0
