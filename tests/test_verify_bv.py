"""Interval-tracked bit-vector expression layer (repro.verify.bv)."""

import random

import pytest

from repro.verify import bv


class TestIntervals:
    def test_const(self):
        c = bv.const(-5)
        assert (c.op, c.lo, c.hi) == ("const", -5, -5)

    def test_var_domain(self):
        x = bv.var("x", -4, 3)
        assert (x.lo, x.hi) == (-4, 3)
        with pytest.raises(ValueError):
            bv.var("x", 3, -4)

    def test_add_sub_mul_neg(self):
        x = bv.var("x", -4, 3)
        y = bv.var("y", 0, 5)
        assert (bv.add(x, y).lo, bv.add(x, y).hi) == (-4, 8)
        assert (bv.sub(x, y).lo, bv.sub(x, y).hi) == (-9, 3)
        m = bv.mul(x, y)
        assert (m.lo, m.hi) == (-20, 15)
        n = bv.neg(x)
        assert (n.lo, n.hi) == (-3, 4)

    def test_shifts(self):
        x = bv.var("x", -4, 3)
        s = bv.shl(x, 2)
        assert (s.lo, s.hi) == (-16, 12)
        a = bv.ashr(x, 1)
        assert (a.lo, a.hi) == (-2, 1)

    def test_ashr_is_floor_division(self):
        x = bv.var("x", -8, 8)
        node = bv.ashr(x, 1)
        ev = bv.Evaluator([node])
        for v in range(-8, 9):
            assert ev.run({"x": v})[node] == v >> 1

    def test_ite_hull(self):
        c = bv.lt(bv.var("x", -4, 3), bv.const(0))
        t = bv.ite(c, bv.const(10), bv.const(-2))
        assert (t.lo, t.hi) == (-2, 10)

    def test_constant_folding(self):
        e = bv.add(bv.const(3), bv.const(4))
        assert e.op == "const" and e.lo == 7
        assert bv.mul(bv.const(-2), bv.const(5)).lo == -10
        assert bv.shl(bv.const(3), 2).lo == 12


class TestWrap:
    def test_in_range_folds_to_identity(self):
        x = bv.var("x", -8, 7)
        assert bv.wrap(x, 4) is x

    def test_out_of_range_wraps(self):
        x = bv.var("x", -20, 20)
        w = bv.wrap(x, 4)
        assert (w.lo, w.hi) == (-8, 7)
        ev = bv.Evaluator([w])
        for v in (-20, -9, -8, 0, 7, 8, 20):
            got = ev.run({"x": v})[w]
            expect = ((v + 8) % 16) - 8
            assert got == expect

    def test_unsigned_wrap(self):
        x = bv.var("x", -3, 20)
        w = bv.wrap(x, 4, signed=False)
        assert (w.lo, w.hi) == (0, 15)
        ev = bv.Evaluator([w])
        assert ev.run({"x": -3})[w] == 13
        assert ev.run({"x": 17})[w] == 1


class TestBool:
    def test_comparison_folds_on_disjoint_intervals(self):
        a = bv.var("a", 0, 3)
        b = bv.var("b", 10, 12)
        assert bv.lt(a, b) is bv.TRUE
        assert bv.gt(a, b) is bv.FALSE
        assert bv.eq(a, b) is bv.FALSE

    def test_band_bor_shortcuts(self):
        c = bv.lt(bv.var("a", 0, 3), bv.const(2))
        assert bv.band(bv.TRUE, c) is c
        assert bv.band(bv.FALSE, c) is bv.FALSE
        assert bv.bor(bv.FALSE, c) is c
        assert bv.bor(bv.TRUE, c) is bv.TRUE
        assert bv.bnot(bv.TRUE) is bv.FALSE

    def test_any_all_reduce(self):
        conds = [bv.lt(bv.var("v%d" % i, 0, 1), bv.const(1))
                 for i in range(5)]
        assert bv.any_of([]) is bv.FALSE
        assert bv.all_of([]) is bv.TRUE
        assert bv.any_of(conds + [bv.TRUE]) is bv.TRUE
        assert bv.all_of(conds + [bv.FALSE]) is bv.FALSE


class TestEvaluator:
    def test_doc_example(self):
        x = bv.var("x", -4, 3)
        e = bv.add(bv.mul(x, bv.const(3)), bv.const(1))
        assert (e.lo, e.hi) == (-11, 10)
        assert bv.Evaluator([e]).run({"x": -2})[e] == -5

    def test_covers_all_reachable_nodes(self):
        x = bv.var("x", 0, 7)
        inner = bv.mul(x, bv.const(2))
        outer = bv.sub(inner, bv.const(1))
        view = bv.Evaluator([outer]).run({"x": 3})
        assert view[inner] == 6 and view[outer] == 5

    def test_missing_variable_raises(self):
        x = bv.var("x", 0, 7)
        with pytest.raises(KeyError):
            bv.Evaluator([x]).run({})

    def test_randomized_against_python_ints(self):
        rng = random.Random(7)
        x = bv.var("x", -50, 50)
        y = bv.var("y", -50, 50)
        expr = bv.add(bv.mul(x, y), bv.neg(bv.sub(x, bv.const(3))))
        ev = bv.Evaluator([expr])
        for _ in range(200):
            vx = rng.randint(-50, 50)
            vy = rng.randint(-50, 50)
            assert ev.run({"x": vx, "y": vy})[expr] == \
                vx * vy + -(vx - 3)

    def test_interval_soundness_randomized(self):
        rng = random.Random(13)
        x = bv.var("x", -9, 9)
        y = bv.var("y", -5, 12)
        exprs = [bv.add(x, y), bv.sub(x, y), bv.mul(x, y),
                 bv.shl(x, 3), bv.ashr(y, 2),
                 bv.ite(bv.lt(x, y), x, bv.neg(y)),
                 bv.wrap(bv.mul(x, y), 4)]
        ev = bv.Evaluator(exprs)
        for _ in range(300):
            env = {"x": rng.randint(-9, 9), "y": rng.randint(-5, 12)}
            view = ev.run(env)
            for e in exprs:
                assert e.lo <= view[e] <= e.hi


class TestStructure:
    def test_collect_nodes_postorder(self):
        x = bv.var("x", 0, 1)
        e = bv.add(x, bv.const(1))
        nodes = bv.collect_nodes([e])
        assert nodes.index(x) < nodes.index(e)

    def test_variables_of(self):
        x = bv.var("x", 0, 1)
        y = bv.var("y", 0, 1)
        c = bv.band(bv.lt(x, bv.const(1)), bv.eq(y, bv.const(0)))
        assert bv.variables_of([c]) == ["x", "y"]

    def test_width_bits(self):
        assert bv.width_bits(bv.const(0)) >= 1
        assert bv.width_bits(bv.var("x", -8, 7)) >= 4

    def test_deep_chain_no_recursion_error(self):
        e = bv.var("x", 0, 1)
        for _ in range(5000):
            e = bv.add(e, bv.const(1))
        view = bv.Evaluator([e]).run({"x": 0})
        assert view[e] == 5000
