"""Tests for repro.obs — tracing, metrics, profiling, export, CLI."""

import json
import multiprocessing
import os
import subprocess
import sys

import numpy as np
import pytest

from repro import obs
from repro.core.dtype import DType
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.events import Recorder, new_span_id, read_jsonl, write_jsonl
from repro.obs.trace import _NULL
from repro.parallel.runner import SimConfig, run_simulations
from repro.refine import Design, FlowConfig, RefinementFlow
from repro.signal import DesignContext, Sig

T8 = DType("T8", 8, 6, "tc", "saturate", "round")


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with observability fully disabled."""
    obs_trace.disable()
    obs_metrics.disable()
    yield
    obs_trace.disable()
    obs_metrics.disable()


class ScaleDesign(Design):
    name = "scale"
    inputs = ("x",)
    output = "y"

    def build(self, ctx):
        self.x = Sig("x")
        self.y = Sig("y")
        rng = np.random.default_rng(3)
        self._stim = iter(rng.uniform(-1, 1, size=100000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.y.assign(self.x * 0.5 + 0.25)
            ctx.tick()


def _scale_factory():
    return ScaleDesign()


# -- trace -------------------------------------------------------------------

class TestTrace:
    def test_disabled_span_is_shared_noop(self):
        assert obs_trace.span("a") is obs_trace.span("b") is _NULL
        with obs_trace.span("a", x=1) as sp:
            sp.set(y=2).event("nothing")   # all no-ops, no recorder

    def test_span_nesting_and_attrs(self):
        rec = obs_trace.enable()
        with obs_trace.span("outer", a=1) as outer:
            with obs_trace.span("inner") as inner:
                inner.set(b=2)
                obs_trace.event("ping", c=3)
        events = rec.events
        assert [e["kind"] for e in events] == [
            "span_start", "span_start", "event", "span_end", "span_end"]
        start_outer, start_inner, ping, end_inner, end_outer = events
        assert start_inner["parent"] == start_outer["span"]
        assert ping["span"] == start_inner["span"]
        assert end_inner["b"] == 2
        assert end_outer["a"] == 1
        assert end_outer["status"] == "ok"
        assert end_outer["dur"] >= end_inner["dur"] >= 0.0

    def test_span_error_status(self):
        rec = obs_trace.enable()
        with pytest.raises(ValueError):
            with obs_trace.span("boom"):
                raise ValueError("nope")
        end = rec.events[-1]
        assert end["status"] == "error"
        assert "ValueError: nope" == end["exc"]

    def test_enable_is_idempotent_disable_returns_recorder(self):
        rec = obs_trace.enable()
        assert obs_trace.enable() is rec
        assert obs_trace.disable() is rec
        assert obs_trace.disable() is None
        assert not obs_trace.enabled()

    def test_span_ids_unique(self):
        ids = {new_span_id() for _ in range(100)}
        assert len(ids) == 100

    def test_recorder_capacity_drops_and_counts(self):
        rec = Recorder(capacity=3)
        for i in range(5):
            rec.record({"i": i})
        assert len(rec.events) == 3
        assert rec.dropped == 2


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        rec = obs_trace.enable()
        with obs_trace.span("s", n=1):
            obs_trace.event("e", msg="hello")
        path = tmp_path / "t.jsonl"
        rec.to_jsonl(str(path))
        meta, events = read_jsonl(str(path))
        assert meta.get("kind") == "meta"
        assert len(events) == len(rec.events)
        assert events[0]["name"] == "s"

    def test_write_unserializable_falls_back_to_repr(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl([{"ts": 0, "kind": "event", "obj": object()}],
                    str(path))
        _meta, events = read_jsonl(str(path))
        assert "object object" in events[0]["obj"]


# -- metrics -----------------------------------------------------------------

class TestMetrics:
    def test_default_record_untouched_when_disabled(self):
        from repro.signal.signal import Sig as SigCls
        before = SigCls._record
        obs_metrics.enable()
        assert SigCls._record is not before
        obs_metrics.disable()
        assert SigCls._record is before

    def test_counters(self):
        obs_metrics.enable()
        ctx = DesignContext("m", overflow_action="record")
        with ctx:
            s = Sig("s", T8)
            for v in (0.3, 9.0, -9.0, 0.1):   # two saturations
                s.assign(v)
                ctx.tick()
        obs_metrics.disable()
        snap = obs_metrics.snapshot(ctx)
        m = snap["s"]
        assert m.n == 4
        assert m.saturate == 2
        assert m.overflow == 0 and m.wrap == 0
        assert m.out_of_range == 2
        assert m.round_err_max >= m.round_err_mean > 0.0

    def test_simulation_unchanged_by_metrics(self):
        def run():
            ctx = DesignContext("m", seed=5, overflow_action="record")
            with ctx:
                s = Sig("s", T8)
                vals = np.random.default_rng(5).uniform(-3, 3, 200)
                for v in vals:
                    s.assign(float(v))
                    ctx.tick()
            return s.fx, s.overflow_count, s.range_stat.min

        plain = run()
        obs_metrics.enable()
        metered = run()
        obs_metrics.disable()
        assert plain == metered

    def test_emit_records_metric_events(self):
        rec = obs_trace.enable()
        obs_metrics.enable()
        ctx = DesignContext("m", overflow_action="record")
        with ctx:
            s = Sig("s", T8)
            s.assign(0.5)
            ctx.tick()
        obs_metrics.emit(ctx, label="unit")
        obs_metrics.disable()
        metric = [e for e in rec.events if e["kind"] == "metric"]
        assert len(metric) == 1
        assert metric[0]["signal"] == "s"
        assert metric[0]["label"] == "unit"
        assert metric[0]["n"] == 1

    def test_collecting_context_manager(self):
        with obs_metrics.collecting():
            ctx = DesignContext("m", overflow_action="record")
            with ctx:
                s = Sig("s", T8)
                s.assign(0.25)
                ctx.tick()
        assert not obs_metrics.enabled()
        assert obs_metrics.snapshot(ctx)["s"].n == 1


# -- profile -----------------------------------------------------------------

class TestProfile:
    def test_buckets_and_restore(self):
        from repro.signal.signal import Sig as SigCls
        before = SigCls._record
        with obs.profile() as prof:
            ctx = DesignContext("p", overflow_action="record")
            with ctx:
                a = Sig("a", T8)
                b = Sig("b", T8)
                for i in range(50):
                    a.assign(0.01 * i)
                    b.assign(a + a)
                    ctx.tick()
        assert SigCls._record is before
        rep = prof.report
        assert rep.n_assign == 100
        assert rep.n_kernel > 0
        assert rep.wall_s > 0.0
        assert set(rep.buckets()) == {"quantize_kernel", "monitor_record",
                                      "interval_propagation",
                                      "python_overhead"}
        assert "quantize_kernel" in rep.table()
        # kernels restored: no timing wrapper left on the signals
        assert not hasattr(a._kernel, "_obs_prof")

    def test_sessions_do_not_nest(self):
        with obs.profile():
            with pytest.raises(RuntimeError):
                with obs.profile():
                    pass


# -- flow + parallel integration --------------------------------------------

class TestFlowIntegration:
    def _flow(self):
        cfg = FlowConfig(n_samples=400, seed=9)
        return RefinementFlow(ScaleDesign, input_types={"x": T8},
                              input_ranges={"x": (-1, 1)}, config=cfg)

    def test_traced_run_produces_span_tree(self):
        rec = obs_trace.enable()
        obs_metrics.enable()
        self._flow().run()
        obs_metrics.disable()
        obs_trace.disable()
        names = {e["name"] for e in rec.events
                 if e["kind"] == "span_start"}
        for expected in ("refine.run", "refine.baseline",
                         "refine.msb_phase", "refine.msb.iteration",
                         "refine.lsb_phase", "refine.lsb.iteration",
                         "refine.simulate", "refine.verify", "lint.run",
                         "lint.rule"):
            assert expected in names, expected
        progress = [e for e in rec.events if e["name"] == "refine.progress"]
        assert {p["phase"] for p in progress} == {"msb", "lsb"}
        assert any("sqnr_db" in p for p in progress)
        # metrics emitted per simulation, per signal
        assert any(e["kind"] == "metric" for e in rec.events)
        # span stack fully unwound
        assert obs_trace.current_span_id() is None

    def test_untraced_run_identical_result(self):
        r1 = self._flow().run()
        obs_trace.enable()
        obs_metrics.enable()
        r2 = self._flow().run()
        obs_metrics.disable()
        obs_trace.disable()
        assert r1.verification.output_sqnr_db == \
            r2.verification.output_sqnr_db
        assert {k: v.spec() for k, v in r1.types.items()} == \
            {k: v.spec() for k, v in r2.types.items()}


class TestParallelShipping:
    def _configs(self, n):
        return [SimConfig(label="job-%d" % i, dtypes={"x": T8, "y": T8},
                          n_samples=200, seed=100 + i) for i in range(n)]

    def test_serial_jobs_record_directly(self):
        rec = obs_trace.enable()
        outcomes = run_simulations(_scale_factory, self._configs(2),
                                   workers=1)
        obs_trace.disable()
        assert all(o.completed for o in outcomes)
        assert all(o.obs_events == () for o in outcomes)
        jobs = [e for e in rec.events if e["kind"] == "span_start"
                and e["name"] == "parallel.job"]
        assert len(jobs) == 2

    @pytest.mark.skipif(os.environ.get("REPRO_PARALLEL") == "0",
                        reason="parallel disabled in environment")
    def test_pool_ships_worker_events_home(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        rec = obs_trace.enable()
        with obs_trace.span("batch-parent"):
            outcomes = run_simulations(_scale_factory, self._configs(3),
                                       workers=2)
        obs_trace.disable()
        assert all(o.completed for o in outcomes)
        starts = [e for e in rec.events if e["kind"] == "span_start"]
        batch = [e for e in starts if e["name"] == "parallel.batch"]
        jobs = [e for e in starts if e["name"] == "parallel.job"]
        assert len(batch) == 1 and len(jobs) == 3
        # all worker spans chain to the parent-side batch span
        assert all(j["parent"] == batch[0]["span"] for j in jobs)
        # worker-minted span ids embed the worker pid, not the parent's
        parent_pid = "%x" % os.getpid()
        assert all(not j["span"].startswith(parent_pid + ".")
                   for j in jobs)
        # every shipped span also closed
        ends = {e["span"] for e in rec.events if e["kind"] == "span_end"}
        assert all(j["span"] in ends for j in jobs)

    def test_pool_without_tracing_ships_nothing(self):
        outcomes = run_simulations(_scale_factory, self._configs(2),
                                   workers=2)
        assert all(o.obs_events == () for o in outcomes)


# -- export + CLI ------------------------------------------------------------

def _capture_trace():
    rec = obs_trace.enable()
    with obs_trace.span("root", design="unit"):
        with obs_trace.span("child") as sp:
            sp.event("tick", n=1)
    obs_trace.disable()
    return rec


class TestExport:
    def test_build_spans_tree(self):
        rec = _capture_trace()
        roots, orphans = obs.build_spans(rec.events)
        assert len(roots) == 1 and not orphans
        root = roots[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child"]
        assert root.dur is not None

    def test_summarize(self):
        rec = _capture_trace()
        s = obs.summarize(rec.events)
        assert s["spans"] == 2
        assert s["root_spans"] == 1
        assert s["error_spans"] == 0
        assert s["events"] == len(rec.events)

    def test_render_text(self):
        rec = _capture_trace()
        text = obs.render_text(rec.events)
        assert "root" in text and "child" in text and "tick" in text

    def test_render_html_self_contained(self):
        rec = _capture_trace()
        html = obs.render_html(rec.events, title="Unit")
        assert html.startswith("<!doctype html>")
        assert "Unit" in html and "root" in html
        # self-contained: no external scripts, styles or fetches
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html

    def test_orphan_spans_still_rendered(self):
        # span_end without a start (e.g. truncated capture) must not
        # crash the renderers.
        events = [{"ts": 1.0, "kind": "span_end", "name": "lost",
                   "span": "1.1", "parent": None, "dur": 0.5,
                   "status": "ok"}]
        assert "lost" in obs.render_text(events)
        assert "lost" in obs.render_html(events)


class TestCli:
    def _write_trace(self, tmp_path):
        rec = _capture_trace()
        path = tmp_path / "trace.jsonl"
        rec.to_jsonl(str(path))
        return path

    def _run(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))), "src")
        return subprocess.run([sys.executable, "-m", "repro.obs",
                               *args], capture_output=True, text=True,
                              env=env)

    def test_report_text(self, tmp_path):
        path = self._write_trace(tmp_path)
        out = self._run("report", str(path))
        assert out.returncode == 0, out.stderr
        assert "root" in out.stdout

    def test_report_html(self, tmp_path):
        path = self._write_trace(tmp_path)
        html = tmp_path / "out.html"
        out = self._run("report", str(path), "--format", "html",
                        "--out", str(html))
        assert out.returncode == 0, out.stderr
        assert html.read_text().startswith("<!doctype html>")

    def test_summary_json(self, tmp_path):
        path = self._write_trace(tmp_path)
        out = self._run("summary", str(path))
        assert out.returncode == 0, out.stderr
        data = json.loads(out.stdout)
        assert data["spans"] == 2

    def test_missing_trace_exits_2(self, tmp_path):
        out = self._run("report", str(tmp_path / "nope.jsonl"))
        assert out.returncode == 2
