"""Tests for flow-level robustness: auto-range evidence, the baseline
regression, graceful degradation and guarded simulations."""

import math

import numpy as np
import pytest

from repro.core.dtype import DType
from repro.core.errors import (NonFiniteError, RefinementError,
                               WatchdogTimeout)
from repro.refine import Annotations, Design, FlowConfig, RefinementFlow
from repro.refine.export import result_to_dict
from repro.refine.flow import _auto_range
from repro.refine.monitors import collect
from repro.robust.retry import EscalationPolicy
from repro.signal import DesignContext, Reg, Sig

T_IN = DType("T_in", 8, 6, "tc", "saturate", "round")


class ScaleDesign(Design):
    name = "scale"
    inputs = ("x",)
    output = "y"

    def build(self, ctx):
        self.x = Sig("x")
        self.y = Sig("y")
        rng = np.random.default_rng(3)
        self._stim = iter(rng.uniform(-1, 1, size=100000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.y.assign(self.x * 0.5 + 0.25)
            ctx.tick()


class PureAccDesign(Design):
    """Adaptive feedback whose propagated range explodes (paper case)."""

    name = "acc"
    inputs = ("x",)
    output = "acc"

    def build(self, ctx):
        self.x = Sig("x")
        self.acc = Reg("acc")
        rng = np.random.default_rng(5)
        self._stim = iter(rng.uniform(0.5, 1.0, size=200000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            err = self.x - self.acc * self.x
            self.acc.assign(self.acc + err * 0.05)
            ctx.tick()


class WrapPhaseDesign(Design):
    """Modulo-1 phase accumulator: error statistics of ``phase`` diverge,
    so the LSB phase derives an error() annotation for it."""

    name = "wrapphase"
    inputs = ("x",)
    output = "phase"

    PHASE_T = DType("T_phase", 10, 10, "us", "wrap", "round")

    def build(self, ctx):
        self.x = Sig("x")
        self.phase = Reg("phase", self.PHASE_T)
        rng = np.random.default_rng(6)
        self._stim = iter(rng.uniform(0.20, 0.30, size=100000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.phase.assign(self.phase + self.x)
            ctx.tick()


class NanBurstDesign(Design):
    """Feeds a NaN into ``y`` on one sample mid-run."""

    name = "nanburst"
    inputs = ("x",)
    output = "y"

    def build(self, ctx):
        self.x = Sig("x")
        self.y = Sig("y")
        rng = np.random.default_rng(8)
        self._stim = iter(rng.uniform(-1, 1, size=100000).tolist())
        self._i = 0

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            if self._i == 40:
                self.y.assign(float("nan"))
            else:
                self.y.assign(self.x * 0.5)
            self._i += 1
            ctx.tick()


def _flow(design, **kw):
    cfg = kw.pop("config", FlowConfig(n_samples=1000, seed=9))
    return RefinementFlow(design, input_types={"x": T_IN},
                          input_ranges={"x": (-1, 1)}, config=cfg, **kw)


class TestAutoRangeEvidence:
    def _record(self, assigns):
        with DesignContext("t") as ctx:
            s = Sig("s")
            for v in assigns:
                s.assign(v)
        return collect(ctx)["s"]

    def test_unobserved_returns_none(self):
        rec = self._record([])
        assert not rec.observed
        assert _auto_range(rec, 2.0) is None

    def test_zero_constant_keeps_historic_fallback(self):
        rec = self._record([0.0, 0.0, 0.0])
        assert _auto_range(rec, 2.0) == (-1.0, 1.0)

    def test_observed_range_scaled_by_margin(self):
        rec = self._record([0.25, -0.5, 0.1])
        assert _auto_range(rec, 2.0) == (-1.0, 1.0)
        assert _auto_range(rec, 4.0) == (-2.0, 2.0)


class TestBaselineSqnr:
    """baseline_sqnr must reflect an inputs-only simulation — not the
    LSB-phase records, which include derived error() annotations."""

    def test_matches_manual_inputs_only_sim(self):
        cfg = FlowConfig(n_samples=1000, seed=9)
        flow = _flow(ScaleDesign, config=cfg)
        res = flow.run()
        ctx = DesignContext("manual", seed=cfg.seed,
                            overflow_action="record")
        with ctx:
            d = ScaleDesign()
            d.build(ctx)
            Annotations(dtypes={"x": T_IN}).apply(ctx)
            d.run(ctx, cfg.n_samples)
        expected = collect(ctx)["y"].sqnr_db()
        assert res.baseline_sqnr_db == pytest.approx(expected)

    def test_excludes_flow_derived_error_annotations(self):
        # The LSB phase derives an error() for the divergent wrap-typed
        # phase register; the baseline must NOT include it.
        cfg = FlowConfig(n_samples=2000, seed=9, auto_error=True)
        flow = RefinementFlow(
            WrapPhaseDesign, input_types={"x": T_IN},
            input_ranges={"x": (0.20, 0.30)},
            preset_types={"phase": WrapPhaseDesign.PHASE_T}, config=cfg)
        res = flow.run()
        assert "phase" in res.lsb.annotations
        ctx = DesignContext("manual", seed=cfg.seed,
                            overflow_action="record")
        with ctx:
            d = WrapPhaseDesign()
            d.build(ctx)
            Annotations(dtypes={"x": T_IN,
                                "phase": WrapPhaseDesign.PHASE_T}).apply(ctx)
            d.run(ctx, cfg.n_samples)
        expected = collect(ctx)["phase"].sqnr_db()
        assert res.baseline_sqnr_db == pytest.approx(expected)

    def test_user_error_on_preset_signal_is_included(self):
        # A user error() on a preset-typed signal is part of the
        # a-priori partial type definition, so the baseline keeps it.
        cfg = FlowConfig(n_samples=1500, seed=9, auto_error=False)
        kw = dict(input_types={"x": T_IN}, input_ranges={"x": (0.20, 0.30)},
                  preset_types={"phase": WrapPhaseDesign.PHASE_T},
                  config=cfg)
        with_err = RefinementFlow(WrapPhaseDesign,
                                  user_errors={"phase": 2.0 ** -10}, **kw)
        without = RefinementFlow(WrapPhaseDesign, **kw)
        b_err = with_err.baseline_sqnr()
        b_raw = without.baseline_sqnr()
        # The decoupled reference turns the diverging error into a bounded
        # one: dramatically better SQNR than the raw wrap drift.
        assert b_err > b_raw + 20.0

    def test_no_output_yields_nan(self):
        class NoOut(ScaleDesign):
            output = None

        flow = _flow(NoOut)
        assert math.isnan(flow.baseline_sqnr())


class TestGracefulDegradation:
    def _unresolvable(self, **kw):
        cfg = FlowConfig(n_samples=600, seed=9, auto_range=False, **kw)
        return _flow(PureAccDesign, config=cfg)

    def test_strict_raises(self):
        with pytest.raises(RefinementError):
            self._unresolvable().run(strict=True)

    def test_graceful_returns_fallback_types(self):
        policy = EscalationPolicy(max_rounds=1, force_auto_range=False)
        res = self._unresolvable(escalation=policy).run(strict=False)
        assert "acc" in res.fallbacks
        dt = res.types["acc"]
        assert dt is res.fallbacks["acc"]
        assert dt.msbspec == "saturate"
        # Wide enough for everything the simulation observed (acc -> ~1).
        assert dt.max_value >= 1.0
        assert res.diagnostics is not None
        assert res.diagnostics.fallback_signals == ["acc"]
        assert any(e.category == "escalation"
                   for e in res.diagnostics.warnings)
        assert "LOW CONFIDENCE" in res.summary()

    def test_default_escalation_resolves_without_fallback(self):
        # The default ladder forces auto_range on retry; the explosion
        # resolves and no fallback type is needed.
        res = self._unresolvable().run(strict=False)
        assert res.fallbacks == {}
        assert res.msb.resolved
        assert res.diagnostics.by_category("escalation")
        assert "acc" in res.types

    def test_graceful_noop_on_clean_design(self):
        res = _flow(ScaleDesign).run(strict=False)
        assert res.fallbacks == {}
        assert not res.diagnostics.by_category("escalation")
        assert res.verification.output_sqnr_db > 30.0

    def test_graceful_is_deterministic(self):
        policy = EscalationPolicy(max_rounds=1, force_auto_range=False)
        r1 = self._unresolvable(escalation=policy).run(strict=False)
        r2 = self._unresolvable(escalation=policy).run(strict=False)
        assert {k: t.spec() for k, t in r1.types.items()} == \
               {k: t.spec() for k, t in r2.types.items()}

    def test_export_carries_diagnostics_and_fallbacks(self):
        policy = EscalationPolicy(max_rounds=1, force_auto_range=False)
        res = self._unresolvable(escalation=policy).run(strict=False)
        d = result_to_dict(res)
        assert "acc" in d["fallbacks"]
        assert d["diagnostics"]["events"]
        clean = _flow(ScaleDesign).run()
        assert "fallbacks" not in result_to_dict(clean)


class TestGuardedFlow:
    def test_default_guard_raises_on_nan(self):
        with pytest.raises(NonFiniteError):
            _flow(NanBurstDesign).run()

    def test_record_guard_completes_with_diagnostics(self):
        cfg = FlowConfig(n_samples=1000, seed=9, guard_action="record")
        res = _flow(NanBurstDesign, config=cfg).run()
        guard_events = res.diagnostics.by_category("guard")
        assert guard_events
        assert all(e.signal == "y" for e in guard_events)
        # One trip per simulation (baseline, msb, lsb, verify at least).
        assert res.diagnostics.guard_trips >= 4
        assert np.isfinite(res.verification.output_sqnr_db)

    def test_watchdog_bounds_flow_simulation(self):
        cfg = FlowConfig(n_samples=5000, seed=9, max_watchdog_cycles=200)
        with pytest.raises(WatchdogTimeout):
            _flow(ScaleDesign, config=cfg).run()
