"""Tests for the RefinementResult.diagnostics stream.

Covers the satellite contract of the observability PR: events arrive in
a stable order, severity filtering works, and every diagnostic carries a
stable machine-readable code — ``DG...`` for flow-level categories and
the ``FX...`` rule id for lint findings — so downstream tooling can
filter without parsing messages.
"""

import math

import numpy as np
import pytest

from repro.core.dtype import DType
from repro.core.errors import WatchdogTimeout
from repro.refine import Design, FlowConfig, RefinementFlow
from repro.robust.diagnostics import (CATEGORY_CODES, DiagEvent,
                                      Diagnostics)
from repro.robust.retry import EscalationPolicy, escalate_msb
from repro.signal import Reg, Sig

T_IN = DType("T_in", 8, 6, "tc", "saturate", "round")


class LeakyDesign(Design):
    """acc = 0.9*acc + x — has an untyped register, so lint fires."""

    name = "leaky"
    inputs = ("x",)
    output = "acc"

    def build(self, ctx):
        self.x = Sig("x")
        self.acc = Reg("acc")
        rng = np.random.default_rng(4)
        self._stim = iter(rng.uniform(-1, 1, size=200000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.acc.assign(self.acc * 0.9 + self.x)
            ctx.tick()


class NanDesign(Design):
    """Injects one NaN so the guard layer produces diagnostics."""

    name = "nanny"
    inputs = ("x",)
    output = "y"

    def build(self, ctx):
        self.x = Sig("x")
        self.y = Sig("y")
        rng = np.random.default_rng(7)
        self._stim = iter(rng.uniform(-1, 1, size=200000).tolist())
        self._n = 0

    def run(self, ctx, n):
        for _ in range(n):
            self._n += 1
            v = math.nan if self._n == 37 else next(self._stim)
            self.x.assign(v)
            self.y.assign(self.x * 0.5)
            ctx.tick()


def _flow(design, n_samples=800, **cfg_kw):
    cfg = FlowConfig(n_samples=n_samples, seed=11, **cfg_kw)
    return RefinementFlow(design, input_types={"x": T_IN},
                          input_ranges={"x": (-1, 1)}, config=cfg)


class TestStableCodes:
    def test_category_codes_frozen(self):
        # The code table is a public contract: these exact pairs must
        # never change (appending new categories is fine).
        assert CATEGORY_CODES == {
            "guard": "DG001",
            "watchdog": "DG002",
            "auto-range": "DG101",
            "escalation": "DG102",
            "fallback": "DG103",
            "baseline": "DG104",
            "verification": "DG105",
            "deadline": "DG201",
            "quarantine": "DG202",
            "journal": "DG203",
            "retry": "DG204",
            "journal-degraded": "DG205",
            "cache-corrupt": "DG206",
            "chaos": "DG207",
            "journal-compact": "DG208",
            "compile-fallback": "DG209",
            "verify-proved": "DG210",
            "verify-counterexample": "DG211",
            "verify-unknown": "DG212",
            "service-reject": "DG213",
            "service-dedupe": "DG214",
            "service-breaker": "DG215",
            "service-recover": "DG216",
            "service-quarantine": "DG217",
            "service-cancel": "DG218",
        }

    @pytest.mark.parametrize("category,code", sorted(CATEGORY_CODES.items()))
    def test_event_code_from_category(self, category, code):
        assert DiagEvent(category, "info", None, "m").code == code

    def test_lint_rule_id_wins(self):
        ev = DiagEvent("lint", "warning", "acc", "untyped",
                       {"rule": "FX004"})
        assert ev.code == "FX004"

    def test_unknown_category_gets_generic_code(self):
        assert DiagEvent("novel", "info", None, "m").code == "DG000"

    def test_describe_and_to_dict_carry_code(self):
        d = Diagnostics()
        d.add("guard", "warning", "acc", "sanitized", count=3)
        ev = d.events[0]
        assert "DG001" in ev.describe()
        assert d.to_dict()["events"][0]["code"] == "DG001"


class TestOrderingAndFiltering:
    def test_insertion_order_preserved(self):
        d = Diagnostics()
        d.add("baseline", "info", None, "first")
        d.add("guard", "warning", "x", "second")
        d.add("fallback", "error", "y", "third")
        assert [e.message for e in d] == ["first", "second", "third"]

    def test_severity_filtering(self):
        d = Diagnostics()
        d.add("baseline", "info", None, "a")
        d.add("guard", "warning", "x", "b")
        d.add("guard", "warning", "y", "c")
        d.add("fallback", "error", "z", "d")
        assert [e.message for e in d.warnings] == ["b", "c"]
        assert [e.message for e in d.errors] == ["d"]
        assert len(d.by_severity("info")) == 1

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostics().add("guard", "fatal", None, "boom")

    def test_lint_precedes_phase_events_in_run(self):
        # lint runs before the baseline simulation, so its diagnostics
        # must come first in the stream of a full run.
        res = _flow(NanDesign, guard_action="record").run(strict=False)
        cats = [e.category for e in res.diagnostics]
        assert "lint" in cats and "guard" in cats
        assert cats.index("lint") < cats.index("guard")

    def test_guard_events_surface_with_code(self):
        res = _flow(NanDesign, guard_action="record").run(strict=False)
        guards = res.diagnostics.by_category("guard")
        assert guards, "NaN injection must produce guard diagnostics"
        assert all(e.code == "DG001" for e in guards)
        assert any(e.signal == "x" for e in guards)
        assert res.diagnostics.guard_trips >= 1

    def test_lint_events_carry_rule_codes(self):
        res = _flow(LeakyDesign).run(strict=False)
        lint = res.diagnostics.by_category("lint")
        assert lint, "untyped register must produce lint findings"
        assert all(e.code.startswith("FX") for e in lint)


class TestWatchdogDiagnostics:
    def test_strict_run_still_raises(self):
        # The strict flow keeps the historical contract: a blown
        # watchdog budget aborts the run.
        flow = _flow(LeakyDesign, n_samples=800, max_watchdog_cycles=100)
        with pytest.raises(WatchdogTimeout):
            flow.run_msb_phase()

    def test_graceful_escalation_halves_samples(self):
        # 800 samples against a 250-cycle budget: two halvings land at
        # 200 samples, which fits — the phase must complete and the
        # stream must carry DG002 watchdog diagnostics for each retry.
        flow = _flow(LeakyDesign, n_samples=800, max_watchdog_cycles=250)
        diag = Diagnostics()
        phase = escalate_msb(flow, diag, EscalationPolicy(max_rounds=2))
        assert phase.resolved
        wd = diag.by_category("watchdog")
        assert len(wd) == 2
        assert all(e.code == "DG002" for e in wd)
        assert all(e.severity == "warning" for e in wd)
        assert [e.data["n_samples"] for e in wd] == [400, 200]

    def test_graceful_gives_up_after_max_rounds(self):
        # A 1-cycle budget can never fit: after max_rounds halvings the
        # escalation re-raises and records an error-severity DG002.
        flow = _flow(LeakyDesign, n_samples=800, max_watchdog_cycles=1)
        diag = Diagnostics()
        with pytest.raises(WatchdogTimeout):
            escalate_msb(flow, diag, EscalationPolicy(max_rounds=1))
        wd = diag.by_category("watchdog")
        assert wd[-1].severity == "error"
        assert wd[-1].code == "DG002"
