"""Tests for the extra overloaded operations (repro.signal.ops)."""

import pytest

from repro.core.dtype import DType
from repro.core.interval import Interval
from repro.signal import (DesignContext, Sig, as_expr, cast, clamp, fabs,
                          fmax, fmin, select)
from repro.signal.ops import ge, gt, le, lt


@pytest.fixture
def ctx():
    with DesignContext("ops-test", seed=0) as c:
        yield c


class TestSelect:
    def test_bool_condition(self, ctx):
        assert select(True, 1.0, -1.0).fx == 1.0
        assert select(False, 1.0, -1.0).fx == -1.0

    def test_expr_condition_uses_fx(self, ctx):
        a = Sig("a", DType("t", 4, 1))
        a.assign(0.24)   # fx 0.0, fl 0.24
        out = select(a, 1.0, -1.0)
        assert out.fx == -1.0 and out.fl == -1.0

    def test_interval_is_branch_union(self, ctx):
        a = Sig("a")
        a.range(-1, 1)
        b = Sig("b")
        b.range(2, 3)
        out = select(True, a + 0, b + 0)
        assert out.ival == Interval(-1, 3)

    def test_nested_selects(self, ctx):
        v = select(True, select(False, 1.0, 2.0), 3.0)
        assert v.fx == 2.0


class TestComparisons:
    def test_values(self, ctx):
        a = Sig("a")
        a.assign(0.5)
        assert gt(a, 0.0).fx == 1.0
        assert gt(a, 1.0).fx == 0.0
        assert ge(a, 0.5).fx == 1.0
        assert lt(a, 1.0).fx == 1.0
        assert le(a, 0.4).fx == 0.0

    def test_uniform_control(self, ctx):
        # fl follows the fixed decision, even when fl differs.
        a = Sig("a", DType("t", 4, 1))
        a.assign(0.24)   # fx 0, fl 0.24
        c = gt(a, 0.1)
        assert c.fx == 0.0 and c.fl == 0.0

    def test_truthiness(self, ctx):
        a = Sig("a")
        a.assign(2.0)
        assert bool(gt(a, 1.0))
        assert not bool(gt(a, 3.0))
        if gt(a, 1.0):
            branch = "yes"
        else:
            branch = "no"
        assert branch == "yes"

    def test_interval_is_unit(self, ctx):
        a = Sig("a")
        a.range(-1, 1)
        assert gt(a, 0.0).ival == Interval(0.0, 1.0)


class TestMinMaxAbsClamp:
    def test_fmin_fmax(self, ctx):
        a = Sig("a")
        b = Sig("b")
        a.assign(0.25)
        b.assign(-0.5)
        assert fmin(a, b).fx == -0.5
        assert fmax(a, b).fx == 0.25

    def test_scalars(self, ctx):
        assert fmin(1.0, 2.0).fx == 1.0
        assert fmax(1.0, 2.0).fx == 2.0

    def test_fabs(self, ctx):
        a = Sig("a")
        a.assign(-0.75)
        assert fabs(a).fx == 0.75

    def test_clamp(self, ctx):
        a = Sig("a")
        for v, want in [(5.0, 1.0), (-5.0, -1.0), (0.3, 0.3)]:
            a.assign(v)
            assert clamp(a, -1.0, 1.0).fx == want

    def test_clamp_interval(self, ctx):
        a = Sig("a")
        a.range(-10, 10)
        out = clamp(a, -1.0, 1.0)
        assert out.ival.lo >= -1.0 and out.ival.hi <= 1.0

    def test_dual_track(self, ctx):
        a = Sig("a", DType("t", 4, 1))
        a.assign(0.24)   # fx 0, fl 0.24
        m = fmax(a, 0.1)
        assert m.fx == 0.1
        assert m.fl == 0.24


class TestCastExtra:
    def test_cast_wrap_keeps_interval(self, ctx):
        a = Sig("a")
        a.range(-100, 100)
        out = cast(a + 0.0, DType("t", 8, 5, msbspec="wrap"))
        assert out.ival == Interval(-100, 100)

    def test_cast_error_mode_saturates_value(self, ctx):
        out = cast(as_expr(100.0), DType("t", 8, 5, msbspec="error"))
        assert out.fx == DType("t", 8, 5).max_value

    def test_shift_operators(self, ctx):
        a = Sig("a")
        a.assign(0.5)
        assert (a << 2).fx == 2.0
        assert (a >> 1).fx == 0.25

    def test_expression_repr(self, ctx):
        e = as_expr(1.0) + 2.0
        assert "Expr" in repr(e)
