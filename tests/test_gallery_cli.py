"""``python -m repro.gallery`` — exit codes and output contracts."""

import json

import pytest

from repro.gallery.cli import main

# Fast CLI matrix sub-grid: two designs, minimum ISSUE axes.
MATRIX_ARGS = ["matrix", "--designs", "kalman,iir-lattice",
               "--channels", "clean,awgn",
               "--campaigns", "clean,bitflip-lsb",
               "--seeds", "101,202", "--samples", "192"]


class TestList:
    def test_lists_every_design(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fft-butterfly", "polyphase-fir", "goertzel",
                     "iir-lattice", "ddc", "kalman", "decim-interp"):
            assert name in out


class TestRun:
    def test_run_ok(self, capsys):
        assert main(["run", "kalman", "--samples", "256"]) == 0
        out = capsys.readouterr().out
        assert "kalman" in out and "ok" in out

    def test_run_json(self, capsys):
        assert main(["run", "goertzel", "--samples", "256",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["design"] == "goertzel"
        assert payload["meets_target"] is True
        assert payload["verify"]

    def test_unknown_design_is_usage_error(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown design" in capsys.readouterr().err


class TestMatrix:
    def test_matrix_writes_artifact_and_checks_clean(self, tmp_path,
                                                     capsys):
        out_path = tmp_path / "m.json"
        assert main(MATRIX_ARGS + ["--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["counts"]["cells"] == 16
        capsys.readouterr()

        assert main(MATRIX_ARGS + ["--check", str(out_path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_matrix_check_fails_on_regression(self, tmp_path, capsys):
        out_path = tmp_path / "m.json"
        assert main(MATRIX_ARGS + ["--out", str(out_path)]) == 0
        tampered = json.loads(out_path.read_text())
        tampered["digest"] = "0" * len(tampered["digest"])
        out_path.write_text(json.dumps(tampered))
        capsys.readouterr()

        assert main(MATRIX_ARGS + ["--check", str(out_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_matrix_journal_flag(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        assert main(MATRIX_ARGS + ["--journal", str(journal)]) == 0
        assert journal.exists()

    def test_bad_axis_value_raises(self):
        with pytest.raises(KeyError):
            main(["matrix", "--designs", "nope"])
