"""The chaos matrix as a pytest suite.

Each cell of :data:`SMOKE_MATRIX` is one deterministic fault scenario
(``entry:site:trigger:seed``) run through the two-phase
inject-then-recover protocol; a cell passes only when every recovery
invariant holds.  The smoke matrix covers all fifteen fault sites and
all six entry points and runs on every PR; the extended matrix rides
behind the ``slow`` marker (``-m slow``) like the other long campaigns.

Fault-free reference runs are memoized per ``(entry, workers)`` inside
:mod:`repro.robust.chaos`, so the parametrized cells share them.
"""

import pytest

from repro.robust.chaos import (FULL_EXTRA, SMOKE_MATRIX, make_scenario,
                                run_scenario, scenario_from_sid)

_SMOKE = [make_scenario(*cell) for cell in SMOKE_MATRIX]
_FULL = [make_scenario(*cell) for cell in FULL_EXTRA]


def _ids(matrix):
    return [s.sid for s in matrix]


@pytest.mark.parametrize("scenario", _SMOKE, ids=_ids(_SMOKE))
def test_smoke_cell_holds_invariants(scenario):
    report = run_scenario(scenario)
    assert report.injections, "fault never fired for %s" % scenario.sid
    assert report.ok, "\n" + report.describe()


@pytest.mark.slow
@pytest.mark.parametrize("scenario", _FULL, ids=_ids(_FULL))
def test_full_cell_holds_invariants(scenario):
    report = run_scenario(scenario)
    assert report.injections, "fault never fired for %s" % scenario.sid
    assert report.ok, "\n" + report.describe()


def test_replay_is_bit_reproducible():
    """Same sid twice: identical injections and identical verdicts."""
    sid = "run_simulations:journal.torn_write:2:1"
    first = run_scenario(scenario_from_sid(sid))
    second = run_scenario(scenario_from_sid(sid))
    assert first.injections == second.injections
    assert [(c.name, c.ok) for c in first.checks] \
        == [(c.name, c.ok) for c in second.checks]
    assert first.phase1 == second.phase1


def test_sid_roundtrip():
    for scenario in _SMOKE:
        assert scenario_from_sid(scenario.sid).sid == scenario.sid


def test_matrix_covers_everything():
    """The smoke matrix alone spans all sites and all entry points."""
    from repro.robust.chaos import ENTRIES, SITES
    assert {s.site for s in _SMOKE} == set(SITES)
    assert {s.entry for s in _SMOKE} == set(ENTRIES)
