"""Unit tests for repro.core.interval (range propagation arithmetic)."""

import math

import pytest

from repro.core.interval import EMPTY, FULL, Interval


class TestConstruction:
    def test_point(self):
        iv = Interval.point(1.5)
        assert iv.lo == iv.hi == 1.5

    def test_single_arg_is_point(self):
        assert Interval(2.0) == Interval(2.0, 2.0)

    def test_empty(self):
        assert Interval().is_empty
        assert EMPTY.is_empty

    def test_full(self):
        assert FULL.lo == -math.inf and FULL.hi == math.inf
        assert not FULL.is_finite

    def test_invalid(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)
        with pytest.raises(ValueError):
            Interval(math.nan, 1.0)

    def test_coerce(self):
        assert Interval.coerce(3) == Interval(3.0, 3.0)
        assert Interval.coerce((1, 2)) == Interval(1.0, 2.0)
        iv = Interval(0, 1)
        assert Interval.coerce(iv) is iv


class TestPredicates:
    def test_width(self):
        assert Interval(-1, 3).width == 4.0
        assert Interval().width == 0.0

    def test_max_abs(self):
        assert Interval(-3, 1).max_abs == 3.0
        assert Interval(1, 2).max_abs == 2.0
        assert Interval().max_abs == 0.0

    def test_contains_value(self):
        iv = Interval(-1, 1)
        assert iv.contains(0.5)
        assert not iv.contains(1.5)

    def test_contains_interval(self):
        assert Interval(-2, 2).contains(Interval(-1, 1))
        assert not Interval(-1, 1).contains(Interval(-2, 0))
        assert Interval(-1, 1).contains(Interval())


class TestLattice:
    def test_union(self):
        assert Interval(0, 1).union(Interval(2, 3)) == Interval(0, 3)
        assert Interval().union(Interval(1, 2)) == Interval(1, 2)
        assert Interval(1, 2).union(Interval()) == Interval(1, 2)

    def test_union_operator(self):
        assert (Interval(0, 1) | Interval(-1, 0)) == Interval(-1, 1)

    def test_intersect(self):
        assert Interval(0, 2).intersect(Interval(1, 3)) == Interval(1, 2)
        assert Interval(0, 1).intersect(Interval(2, 3)).is_empty

    def test_clip_inside(self):
        assert Interval(-0.5, 0.5).clip(Interval(-1, 1)) == Interval(-0.5, 0.5)

    def test_clip_overlapping(self):
        assert Interval(-5, 0.5).clip(Interval(-1, 1)) == Interval(-1, 0.5)

    def test_clip_disjoint_collapses_to_bound(self):
        # Saturation semantics: everything lands on the nearest bound.
        assert Interval(5, 9).clip(Interval(-1, 1)) == Interval(1, 1)
        assert Interval(-9, -5).clip(Interval(-1, 1)) == Interval(-1, -1)


class TestArithmetic:
    def test_add(self):
        assert Interval(0, 1) + Interval(2, 3) == Interval(2, 4)

    def test_add_scalar(self):
        assert Interval(0, 1) + 1 == Interval(1, 2)
        assert 1 + Interval(0, 1) == Interval(1, 2)

    def test_sub(self):
        assert Interval(0, 1) - Interval(2, 3) == Interval(-3, -1)
        assert 1 - Interval(0, 1) == Interval(0, 1)

    def test_mul_mixed_signs(self):
        assert Interval(-1, 2) * Interval(-3, 4) == Interval(-6, 8)

    def test_mul_scalar(self):
        assert Interval(-1, 2) * -2 == Interval(-4, 2)

    def test_mul_zero_times_inf(self):
        # 0 * [-inf, inf] must stay 0 (annihilation convention).
        assert Interval.point(0.0) * FULL == Interval(0, 0)

    def test_div(self):
        assert Interval(1, 2) / Interval(2, 4) == Interval(0.25, 1.0)

    def test_div_crossing_zero_is_unbounded(self):
        assert (Interval(1, 2) / Interval(-1, 1)) == FULL

    def test_neg(self):
        assert -Interval(-1, 2) == Interval(-2, 1)

    def test_abs(self):
        assert abs(Interval(-3, 1)) == Interval(0, 3)
        assert abs(Interval(1, 2)) == Interval(1, 2)
        assert abs(Interval(-2, -1)) == Interval(1, 2)

    def test_shift(self):
        assert (Interval(-1, 1) << 2) == Interval(-4, 4)
        assert (Interval(-4, 4) >> 2) == Interval(-1, 1)

    def test_power_even(self):
        assert Interval(-2, 1).power(2) == Interval(0, 4)

    def test_power_odd(self):
        assert Interval(-2, 1).power(3) == Interval(-8, 1)

    def test_power_zero(self):
        assert Interval(-2, 1).power(0) == Interval(1, 1)

    def test_power_negative_rejected(self):
        with pytest.raises(ValueError):
            Interval(1, 2).power(-1)

    def test_minimum_maximum(self):
        a = Interval(0, 3)
        b = Interval(1, 2)
        assert a.minimum(b) == Interval(0, 2)
        assert a.maximum(b) == Interval(1, 3)

    def test_empty_propagates(self):
        assert (Interval() + Interval(1, 2)).is_empty
        assert (Interval(1, 2) * Interval()).is_empty
        assert (-Interval()).is_empty
        assert abs(Interval()).is_empty


class TestWidening:
    def test_stable_bound_kept(self):
        prev = Interval(-1, 1)
        assert prev.widen_to(Interval(-1, 0.5)) == Interval(-1, 1)

    def test_growing_bound_jumps_to_inf(self):
        prev = Interval(-1, 1)
        w = prev.widen_to(Interval(-1, 1.1))
        assert w.lo == -1 and w.hi == math.inf

    def test_both_grow(self):
        w = Interval(-1, 1).widen_to(Interval(-2, 2))
        assert w == FULL

    def test_from_empty(self):
        assert Interval().widen_to(Interval(0, 1)) == Interval(0, 1)


class TestSoundness:
    """Property-style checks: interval results contain pointwise results."""

    CASES = [(-1.5, 2.0), (0.25, 0.75), (-3.0, -1.0), (0.0, 0.0)]

    @pytest.mark.parametrize("alo,ahi", CASES)
    @pytest.mark.parametrize("blo,bhi", CASES)
    def test_binary_ops_sound(self, alo, ahi, blo, bhi):
        import itertools
        a = Interval(alo, ahi)
        b = Interval(blo, bhi)
        points_a = [alo, (alo + ahi) / 2, ahi]
        points_b = [blo, (blo + bhi) / 2, bhi]
        for pa, pb in itertools.product(points_a, points_b):
            assert (a + b).contains(pa + pb)
            assert (a - b).contains(pa - pb)
            assert (a * b).contains(pa * pb)
            if not b.contains(0.0):
                assert (a / b).contains(pa / pb)
