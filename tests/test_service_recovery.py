"""Crash recovery: the submission journal replays bit-exactly.

A service that dies with accepted-but-unfinished jobs must, on
restart, settle every one of them — from the content store when the
result already exists, by re-running when the factory is known, or by
parking for a quota-free resubmit — and the recovered outcomes must be
bit-identical to an uninterrupted run.  Replay is idempotent: old
records are superseded so a second restart finds nothing.
"""

import numpy as np

from repro.core.dtype import DType
from repro.parallel import SimConfig
from repro.refine import Design
from repro.service import RefinementService, TenantPolicy
from repro.service.admission import _FakeClock
from repro.service.service import _factory_fp
from repro.signal import Reg, Sig

T_IN = DType("T_in", 9, 7, "tc", "saturate", "round")
T_ACC = DType("T_acc", 12, 9, "tc", "saturate", "round")
TYPES = {"x": T_IN, "acc": T_ACC, "y": T_ACC}


class Probe(Design):
    name = "rec-probe"
    inputs = ("x",)
    output = "y"

    def build(self, ctx):
        self.x = Sig("x")
        self.acc = Reg("acc")
        self.y = Sig("y")
        rng = np.random.default_rng(11)
        self._stim = iter(rng.uniform(-1, 1, 65536).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.acc.assign(self.acc * 0.625 + self.x * 0.375)
            self.y.assign(self.acc)
            ctx.tick()


def probe_factory():
    return Probe()


probe_factory.fingerprint = "rec-probe-v1"
FACTORIES = {_factory_fp(probe_factory): probe_factory}


def cfg(i, n=64):
    return SimConfig(label="rec%d" % i, dtypes=TYPES, n_samples=n,
                     seed=1100 + i)


def _strand(root, n_total=3, n_finish=1):
    """Run a service that finishes ``n_finish`` jobs and abandons the
    rest mid-backlog (max_batch=1 keeps result() from draining all)."""
    svc = RefinementService(root=root, max_batch=1)
    ids = [svc.submit(probe_factory, cfg(i)) for i in range(n_total)]
    done = [svc.result(ids[i]) for i in range(n_finish)]
    states = [svc.status(j).state for j in ids]
    assert states == (["completed"] * n_finish
                      + ["queued"] * (n_total - n_finish))
    svc.close()
    return done


def _uninterrupted(tmp_path, n_total=3):
    with RefinementService(root=str(tmp_path / "ref")) as svc:
        return svc.run_batch(probe_factory, [cfg(i) for i in range(n_total)])


class TestJournalReplay:
    def test_requeued_jobs_complete_bit_identically(self, tmp_path):
        root = str(tmp_path / "svc")
        _strand(root)
        reference = _uninterrupted(tmp_path)
        with RefinementService(root=root) as svc:
            stats = svc.recover(factories=FACTORIES)
            assert stats == {"completed": 0, "requeued": 2, "parked": 0}
            svc.drain()
            outs = {s.label: s for s in svc.jobs()
                    if s.state == "completed"}
            assert set(outs) == {"rec1", "rec2"}
            for ref in reference[1:]:
                got = svc.store.get(
                    next(j.key for j in svc.jobs()
                         if j.label == ref.label))
                assert got is not None
                assert got.records == ref.records
                assert got.sqnr_db() == ref.sqnr_db()

    def test_recovery_is_idempotent(self, tmp_path):
        root = str(tmp_path / "svc")
        _strand(root)
        with RefinementService(root=root) as svc:
            first = svc.recover(factories=FACTORIES)
            assert first["requeued"] == 2
            svc.drain()
        # A third process finds nothing left to replay.
        with RefinementService(root=root) as svc:
            again = svc.recover(factories=FACTORIES)
            assert again == {"completed": 0, "requeued": 0, "parked": 0}

    def test_store_hits_complete_without_rerunning(self, tmp_path):
        root = str(tmp_path / "svc")
        _strand(root)
        # An intermediate process computes the stranded configs through
        # fresh submissions (same content keys -> same store slots)...
        with RefinementService(root=root) as svc:
            svc.run_batch(probe_factory, [cfg(1), cfg(2)])
        # ...so the next recovery settles the old records store-only.
        with RefinementService(root=root) as svc:
            stats = svc.recover()     # note: no factories needed
            assert stats == {"completed": 2, "requeued": 0, "parked": 0}

    def test_duplicate_key_records_recover_as_one_computation(
            self, tmp_path):
        """A primary plus a coalesced waiter that both died mid-flight
        leave two ``accepted`` records sharing one content key; replay
        must re-coalesce them (one queue slot, one simulation), not
        compute the key twice."""
        import repro.obs.counters as obs_counters

        root = str(tmp_path / "svc")
        svc = RefinementService(root=root)
        j1 = svc.submit(probe_factory, cfg(0))
        j2 = svc.submit(probe_factory, cfg(0))      # coalesces onto j1
        assert svc.status(j2).coalesced
        svc.close()                                 # both still owed
        obs_counters.reset()
        with RefinementService(root=root) as svc:
            stats = svc.recover(factories=FACTORIES)
            assert stats == {"completed": 0, "requeued": 2, "parked": 0}
            assert svc.admission.n_queued == 1      # one primary only
            svc.drain()
            outs = [s for s in svc.jobs() if s.state == "completed"]
            assert len(outs) == 2
            results = [svc.store.get(s.key) for s in outs]
            assert results[0] is not None
            assert results[0].records == results[1].records
        assert obs_counters.get("service.dedupe_hits") == 1

    def test_parked_records_resubmit_quota_free(self, tmp_path):
        root = str(tmp_path / "svc")
        _strand(root)
        clock = _FakeClock()
        # The restarted service meters the tenant at one job per hour
        # with a burst of 1 — and that single token is spent on an
        # unrelated job before the parked records are resubmitted.
        tenants = {"default": TenantPolicy(rate=1.0 / 3600, burst=1)}
        with RefinementService(root=root, tenants=tenants,
                               clock=clock) as svc:
            stats = svc.recover()
            assert stats["parked"] == 2
            other = svc.submit(probe_factory, cfg(7))
            assert svc.result(other).completed
            # Quota is empty now, yet the parked submissions pass: the
            # original accept already paid.
            j1 = svc.submit(probe_factory, cfg(1))
            j2 = svc.submit(probe_factory, cfg(2))
            assert svc.result(j1).completed
            assert svc.result(j2).completed
            codes = {e.code for e in svc.diagnostics.events}
            assert "DG216" in codes     # service-recover

    def test_parked_then_recovered_not_replayed_again(self, tmp_path):
        root = str(tmp_path / "svc")
        _strand(root, n_total=2, n_finish=1)
        with RefinementService(root=root) as svc:
            assert svc.recover()["parked"] == 1
            svc.result(svc.submit(probe_factory, cfg(1)))
        with RefinementService(root=root) as svc:
            assert svc.recover(factories=FACTORIES) \
                == {"completed": 0, "requeued": 0, "parked": 0}

    def test_fresh_root_recovers_nothing(self, tmp_path):
        with RefinementService(root=str(tmp_path / "new")) as svc:
            assert svc.recover(factories=FACTORIES) \
                == {"completed": 0, "requeued": 0, "parked": 0}

    def test_scratch_service_recover_is_noop(self):
        with RefinementService() as svc:
            assert svc.recover() \
                == {"completed": 0, "requeued": 0, "parked": 0}
