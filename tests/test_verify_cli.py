"""CLI surface of ``python -m repro.verify`` (satellite 5's smoke)."""

import json

import pytest

from repro.verify.cli import main, run_entry_checks
from repro.verify.gallery import gallery


class TestList:
    def test_lists_every_entry(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in gallery():
            assert name in out
        assert "expect PROVED" in out and "expect COUNTEREXAMPLE" in out


class TestUsageErrors:
    def test_no_selection(self, capsys):
        assert main([]) == 2
        assert "no designs selected" in capsys.readouterr().err

    def test_unknown_design(self, capsys):
        assert main(["no-such-design"]) == 2
        assert "unknown designs" in capsys.readouterr().err

    def test_bad_backend_choice(self, capsys):
        with pytest.raises(SystemExit):
            main(["--backend", "quantum", "--all"])


class TestTextRun:
    def test_all_verdicts_match(self, capsys):
        assert main(["--all", "--backend", "enumeration"]) == 0
        out = capsys.readouterr().out
        assert "all 10 verdicts match" in out
        assert "MISMATCH" not in out

    def test_single_design_single_property(self, capsys):
        rc = main(["fir-wrap-bug", "--backend", "enumeration",
                   "--property", "no-overflow"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "COUNTEREXAMPLE no-overflow" in out

    def test_budget_override_causes_mismatch(self, capsys):
        # 10 assignments cannot cover the wrap-bug envelope: the check
        # comes back UNKNOWN instead of the documented COUNTEREXAMPLE,
        # which the CLI must flag as a mismatch (exit 1).
        rc = main(["fir-wrap-bug", "--backend", "enumeration",
                   "--property", "no-overflow",
                   "--max-assignments", "10"])
        assert rc == 1
        assert "MISMATCH" in capsys.readouterr().out


class TestJsonAndSarif:
    def test_json_document(self, capsys):
        assert main(["fir-ok", "--backend", "enumeration",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["mismatches"] == []
        report = doc["reports"][0]
        assert report["design"] == "fir-ok"
        assert {v["status"] for v in report["verdicts"]} == {"PROVED"}
        assert {v["code"] for v in report["verdicts"]} == {"DG210"}

    def test_sarif_document(self, capsys, tmp_path):
        out_path = tmp_path / "verify.sarif"
        assert main(["fir-wrap-bug", "--backend", "enumeration",
                     "--format", "sarif", "--output",
                     str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert {"DG210", "DG211", "DG212"} <= set(rule_ids)
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels["DG211"] == "error"
        assert levels["DG210"] == "note"
        # counterexample payload rides along in the finding data via
        # the json format; sarif carries the message.
        cex_msgs = [r["message"]["text"] for r in run["results"]
                    if r["ruleId"] == "DG211"]
        assert any("overflows at step" in m for m in cex_msgs)


class TestRunEntryChecks:
    def test_respects_property_filter(self):
        entry = gallery()["fir-coarse"]
        report, mismatches = run_entry_checks(
            entry, backend="enumeration",
            properties=("response-error",))
        assert mismatches == []
        assert [v.property for v in report] == ["response-error"]
