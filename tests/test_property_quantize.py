"""Property-based tests (hypothesis) for the fixed-point kernel."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

import repro.core.quantize as q
from repro.core import word
from repro.core.dtype import DType

wordlengths = st.integers(min_value=2, max_value=24)
fracs = st.integers(min_value=0, max_value=20)
values = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
roundings = st.sampled_from(["round", "floor", "ceil", "trunc"])


class TestQuantizeProperties:
    @given(values, wordlengths, fracs, roundings)
    def test_result_is_representable(self, v, n, f, rounding):
        out = q.quantize(v, n, f, rounding=rounding)
        code = out * (2.0 ** f)
        assert code == int(code)
        assert word.fits(int(code), n)

    @given(values, wordlengths, fracs, roundings)
    def test_idempotent(self, v, n, f, rounding):
        once = q.quantize(v, n, f, rounding=rounding)
        assert q.quantize(once, n, f, rounding=rounding) == once

    @given(values, wordlengths, fracs)
    def test_round_error_bounded(self, v, n, f):
        info = q.quantize_info(v, n, f, rounding="round")
        if not info.overflowed:
            assert abs(info.error) <= 2.0 ** -(f + 1) * (1 + 1e-9)

    @given(values, wordlengths, fracs)
    def test_floor_error_sign(self, v, n, f):
        info = q.quantize_info(v, n, f, rounding="floor")
        if not info.overflowed:
            assert -(2.0 ** -f) * (1 + 1e-9) < info.error <= 0.0

    @given(values, wordlengths, fracs)
    def test_saturation_clamps_to_bounds(self, v, n, f):
        out = q.quantize(v, n, f, overflow="saturate")
        assert q.value_min(n, f) <= out <= q.value_max(n, f)

    @given(values, values, wordlengths, fracs)
    def test_monotone_saturating(self, a, b, n, f):
        lo, hi = min(a, b), max(a, b)
        assert (q.quantize(lo, n, f, overflow="saturate")
                <= q.quantize(hi, n, f, overflow="saturate"))

    @given(values, wordlengths, fracs, roundings)
    def test_wrap_congruent_modulo_span(self, v, n, f, rounding):
        # Wrapping preserves the code modulo 2**n.
        raw = q.round_to_code(v, f, rounding)
        out = q.quantize(v, n, f, overflow="wrap", rounding=rounding)
        code = int(round(out * (2.0 ** f)))
        assert (code - raw) % (1 << n) == 0


class TestRequiredMsbProperties:
    ranges = st.tuples(values, values).map(lambda t: (min(t), max(t)))
    # Bounded variant generated in-domain (an assume() on the wide
    # strategy filters out enough inputs to trip the health check).
    small_values = st.floats(min_value=-99999.0, max_value=99999.0,
                             allow_nan=False, allow_infinity=False)
    small_ranges = st.tuples(small_values, small_values).map(
        lambda t: (min(t), max(t)))

    @given(ranges)
    def test_covers_and_minimal(self, bounds):
        lo, hi = bounds
        assume(not (lo == 0.0 and hi == 0.0))
        m = word.required_msb(lo, hi)
        assert -(2.0 ** m) <= lo and hi < 2.0 ** m
        # minimality
        assert not (-(2.0 ** (m - 1)) <= lo and hi < 2.0 ** (m - 1))

    @given(small_ranges, st.integers(min_value=0, max_value=16))
    def test_dtype_from_range_covers(self, bounds, f):
        lo, hi = bounds
        dt = DType.from_range("t", lo, hi, f)
        assert dt.min_value <= lo
        assert dt.max_value >= hi - dt.eps  # hi may need the next grid pt


class TestVectorizedAgreesWithScalar:
    @given(st.lists(values, min_size=1, max_size=32), wordlengths, fracs,
           roundings, st.sampled_from(["wrap", "saturate"]))
    @settings(max_examples=50)
    def test_elementwise_identical(self, vs, n, f, rounding, overflow):
        import numpy as np
        got = q.quantize_array(np.array(vs), n, f, rounding=rounding,
                               overflow=overflow)
        want = [q.quantize(v, n, f, rounding=rounding, overflow=overflow)
                for v in vs]
        assert got.tolist() == want
