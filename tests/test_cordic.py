"""Tests for the CORDIC rotator substrate."""

import math

import numpy as np
import pytest

from repro.core.dtype import DType
from repro.dsp.cordic import (CordicDesign, CordicRotator, cordic_gain,
                              rotate_reference)
from repro.refine import FlowConfig, RefinementFlow
from repro.signal import DesignContext


@pytest.fixture
def ctx():
    with DesignContext("cordic-test", seed=0) as c:
        yield c


class TestGain:
    def test_known_value(self):
        # K converges to ~1.6467602
        assert cordic_gain(16) == pytest.approx(1.6467602, abs=1e-5)

    def test_monotone(self):
        gains = [cordic_gain(n) for n in range(1, 10)]
        assert gains == sorted(gains)

    def test_one_stage(self):
        assert cordic_gain(1) == pytest.approx(math.sqrt(2.0))


class TestRotationAccuracy:
    @pytest.mark.parametrize("angle", [-1.4, -0.7, 0.0, 0.3, 1.0, 1.5])
    def test_matches_reference(self, ctx, angle):
        cr = CordicRotator("cr", n_stages=16)
        xo, yo = cr.step(0.7, -0.2, angle)
        ctx.tick()
        xr, yr = rotate_reference(0.7, -0.2, angle)
        assert xo.fx == pytest.approx(xr, abs=1e-4)
        assert yo.fx == pytest.approx(yr, abs=1e-4)

    def test_accuracy_improves_with_stages(self, ctx):
        errs = []
        for i, n in enumerate((4, 8, 12)):
            cr = CordicRotator("cr%d" % i, n_stages=n)
            xo, yo = cr.step(0.8, 0.1, 0.9)
            ctx.tick()
            xr, yr = rotate_reference(0.8, 0.1, 0.9)
            errs.append(abs(xo.fx - xr) + abs(yo.fx - yr))
        assert errs[0] > errs[1] > errs[2]

    def test_uncompensated_gain(self, ctx):
        cr = CordicRotator("cr", n_stages=12, compensate_gain=False)
        xo, yo = cr.step(0.5, 0.0, 0.0)
        ctx.tick()
        mag = math.hypot(xo.fx, yo.fx)
        assert mag == pytest.approx(0.5 * cordic_gain(12), rel=1e-3)

    def test_preserves_magnitude_when_compensated(self, ctx):
        cr = CordicRotator("cr", n_stages=14)
        xo, yo = cr.step(0.6, 0.3, 1.1)
        ctx.tick()
        assert math.hypot(xo.fx, yo.fx) == pytest.approx(
            math.hypot(0.6, 0.3), abs=1e-3)

    def test_invalid_stage_count(self, ctx):
        with pytest.raises(ValueError):
            CordicRotator("cr", n_stages=0)

    def test_signal_count(self, ctx):
        cr = CordicRotator("cr", n_stages=8)
        assert len(cr.signals()) == 3 * 9 + 2


class TestCordicRefinement:
    @pytest.fixture(scope="class")
    def result(self):
        T_IN = DType("T_in", 10, 8, "tc", "saturate", "round")
        T_ANG = DType("T_ang", 11, 8, "tc", "saturate", "round")
        flow = RefinementFlow(
            lambda: CordicDesign(n_stages=10),
            input_types={"xi": T_IN, "yi": T_IN, "zi": T_ANG},
            input_ranges={"xi": (-1.0, 1.0), "yi": (-1.0, 1.0),
                          "zi": (-1.6, 1.6)},
            config=FlowConfig(n_samples=1500, seed=12),
        )
        return flow.run()

    def test_resolves_in_two_iterations(self, result):
        # Interval arithmetic cannot see the cancellation in the
        # self-correcting angle recursion: the late z-stage ranges are
        # classified as exploded in iteration 1 and resolved by
        # (automatic) range annotations in iteration 2.
        assert result.msb.n_iterations == 2
        assert any(n.startswith("cr.z[") for n in
                   result.msb.iterations[0].exploded)
        assert result.msb.resolved
        assert result.lsb.resolved

    def test_stage_ranges_bounded(self, result):
        # |x_i|, |y_i| <= K*sqrt(2) in reality; interval propagation
        # (uncorrelated worst case) adds at most one more bit.
        for name, dec in result.msb.final.decisions.items():
            if name.startswith("cr.x[") or name.startswith("cr.y["):
                assert dec.msb is not None and dec.msb <= 3
                assert dec.stat_msb <= 1

    def test_angle_chain_shrinks(self, result):
        # The observed residual angle shrinks stage by stage (the
        # statistic-based monitor sees it even though intervals don't).
        z_msbs = [result.msb.final.decisions["cr.z[%d]" % i].stat_msb
                  for i in (0, 4, 9)]
        assert z_msbs[0] > z_msbs[1] > z_msbs[2]

    def test_verification_clean(self, result):
        assert result.verification.total_overflows == 0
        assert result.verification.output_sqnr_db > 25.0
