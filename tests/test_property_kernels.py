"""Bit-exactness of the compiled fast paths vs the reference quantizer.

The compiled scalar kernels (:mod:`repro.core.kernels`) and the
vectorized path (:func:`repro.core.quantize.quantize_array`) exist
purely for speed — they must agree with :func:`quantize_info` (the
straight-line reference implementation) to the last bit, across every
rounding x overflow mode, signed and unsigned, for every representable
wordlength (the float-code paths are exact up to n = 53), and in
particular at the nasty spots: exact format boundaries and half-LSB
ties.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dtype import DType
from repro.core.errors import FixedPointOverflowError, NonFiniteError
from repro.core.kernels import kernel_cache_size, scalar_kernel
from repro.core.quantize import quantize, quantize_array, quantize_info

ROUNDINGS = ("round", "floor", "ceil", "trunc")
OVERFLOWS = ("wrap", "saturate", "error")

formats = st.tuples(
    st.integers(min_value=1, max_value=53),   # n
    st.integers(min_value=-8, max_value=40),  # f (negative = coarse grids)
    st.booleans(),                            # signed
)
values = st.floats(min_value=-1e9, max_value=1e9,
                   allow_nan=False, allow_infinity=False)
roundings = st.sampled_from(ROUNDINGS)
overflows = st.sampled_from(OVERFLOWS)


def _reference(v, n, f, signed, overflow, rounding):
    """quantize_info collapsed to (value, overflowed, raised)."""
    try:
        info = quantize_info(v, n, f, signed=signed, overflow=overflow,
                             rounding=rounding)
        return info.value, info.overflowed, None
    except FixedPointOverflowError:
        return None, None, FixedPointOverflowError


def _assert_kernel_matches(v, n, f, signed, overflow, rounding):
    ref_val, ref_ovf, ref_exc = _reference(v, n, f, signed, overflow,
                                           rounding)
    kernel = scalar_kernel(n, f, signed, overflow, rounding)
    if ref_exc is not None:
        with pytest.raises(FixedPointOverflowError):
            kernel(v)
        return
    qv, ovf = kernel(v)
    assert qv == ref_val, \
        "kernel<%d,%d,%s,%s,%s>(%r) = %r != reference %r" % (
            n, f, signed, overflow, rounding, v, qv, ref_val)
    assert ovf == ref_ovf
    # The signs must match too: 0.0 vs -0.0 both compare equal but
    # differ downstream (1/x, copysign).
    assert math.copysign(1.0, qv) == math.copysign(1.0, ref_val)


class TestScalarKernelBitExact:
    @given(values, formats, overflows, roundings)
    @settings(max_examples=400, deadline=None)
    def test_random_values(self, v, fmt, overflow, rounding):
        n, f, signed = fmt
        _assert_kernel_matches(v, n, f, signed, overflow, rounding)

    @given(formats, overflows, roundings,
           st.integers(min_value=-6, max_value=6))
    @settings(max_examples=400, deadline=None)
    def test_boundary_and_ties(self, fmt, overflow, rounding, k):
        """Exact code grid points, format boundaries, and half-LSB ties."""
        n, f, signed = fmt
        lsb = math.ldexp(1.0, -f)
        lo = -math.ldexp(1.0, n - 1) * lsb if signed else 0.0
        hi = (math.ldexp(1.0, n - 1) - 1) * lsb if signed \
            else (math.ldexp(1.0, n) - 1) * lsb
        probes = [
            lo + k * lsb, hi + k * lsb,            # around the boundaries
            k * lsb, k * lsb + 0.5 * lsb,          # grid points + ties
            lo - 0.5 * lsb, hi + 0.5 * lsb,        # ties at the edges
        ]
        for v in probes:
            if math.isfinite(v) and abs(v) < 1e300:
                _assert_kernel_matches(v, n, f, signed, overflow, rounding)

    @given(values, formats, overflows, roundings)
    @settings(max_examples=200, deadline=None)
    def test_quantize_dispatch_matches(self, v, fmt, overflow, rounding):
        """The public quantize() entry point uses the same kernels."""
        n, f, signed = fmt
        ref_val, _, ref_exc = _reference(v, n, f, signed, overflow, rounding)
        if ref_exc is not None:
            with pytest.raises(FixedPointOverflowError):
                quantize(v, n, f, signed=signed, overflow=overflow,
                         rounding=rounding)
        else:
            assert quantize(v, n, f, signed=signed, overflow=overflow,
                            rounding=rounding) == ref_val

    def test_non_finite_raises(self):
        kernel = scalar_kernel(8, 4)
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(NonFiniteError):
                kernel(bad)

    def test_kernel_cache_reuse(self):
        before = kernel_cache_size()
        k1 = scalar_kernel(17, 11, True, "wrap", "ceil")
        k2 = scalar_kernel(17, 11, True, "wrap", "ceil")
        assert k1 is k2
        assert kernel_cache_size() >= before


class TestVectorPathBitExact:
    @given(st.lists(values, min_size=1, max_size=40),
           formats, st.sampled_from(("wrap", "saturate")), roundings)
    @settings(max_examples=200, deadline=None)
    def test_array_matches_reference(self, vals, fmt, overflow, rounding):
        n, f, signed = fmt
        refs = [quantize_info(v, n, f, signed=signed, overflow=overflow,
                              rounding=rounding).value for v in vals]
        got = quantize_array(np.array(vals), n, f, signed=signed,
                             overflow=overflow, rounding=rounding)
        np.testing.assert_array_equal(got, np.array(refs))

    @given(st.lists(values, min_size=1, max_size=40), formats, roundings)
    @settings(max_examples=100, deadline=None)
    def test_out_buffer_path_identical(self, vals, fmt, rounding):
        n, f, signed = fmt
        arr = np.array(vals)
        plain = quantize_array(arr, n, f, signed=signed, rounding=rounding)
        out = np.empty(arr.shape)
        reused = quantize_array(arr, n, f, signed=signed, rounding=rounding,
                                out=out)
        assert reused is out
        np.testing.assert_array_equal(plain, out)


class TestDTypeFastPaths:
    @given(values, st.integers(min_value=1, max_value=24),
           st.integers(min_value=0, max_value=20), overflows, roundings)
    @settings(max_examples=200, deadline=None)
    def test_dtype_quantize_matches(self, v, n, f, overflow, rounding):
        dt = DType("T", n, f, "tc", overflow, rounding)
        ref_val, _, ref_exc = _reference(v, n, f, True, overflow, rounding)
        if ref_exc is not None:
            with pytest.raises(FixedPointOverflowError):
                dt.quantize(v)
        else:
            assert dt.quantize(v) == ref_val

    def test_saturating_variant_cached(self):
        dt = DType("T", 10, 6, "tc", "wrap", "round")
        assert dt.saturating is dt.saturating
        assert dt.saturating.msbspec == "saturate"
        sat = DType("S", 10, 6, "tc", "saturate", "round")
        assert sat.saturating is sat

    def test_pickle_roundtrip_drops_kernel_caches(self):
        import pickle
        dt = DType("T", 10, 6, "tc", "saturate", "round")
        dt.kernel  # force the caches to exist
        dt.saturating
        clone = pickle.loads(pickle.dumps(dt))
        assert (clone.name, clone.n, clone.f, clone.vtype, clone.msbspec,
                clone.lsbspec) == (dt.name, dt.n, dt.f, dt.vtype,
                                   dt.msbspec, dt.lsbspec)
        assert clone.quantize(0.3) == dt.quantize(0.3)
