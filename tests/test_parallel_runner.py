"""Determinism and behavior of the parallel re-simulation runner.

The fan-out must be invisible in the numbers: a sensitivity sweep or a
fault campaign run through worker processes has to reproduce the serial
results to the last ulp, fault fire counts and guard trips included.
The host machine may have a single CPU, so the parallel runs force
``workers=2`` — the pool really forks either way.
"""

import math
import os

import pytest

from repro.core.dtype import DType
from repro.dsp.lms import LmsEqualizerDesign
from repro.parallel import (SimCache, SimConfig, default_workers,
                            fingerprint, run_simulations)
from repro.refine.flow import FlowConfig, RefinementFlow
from repro.refine.sensitivity import analyze_sensitivity
from repro.robust.faults import FaultCampaign, standard_faults

T_IN = DType("T_in", 9, 7, "tc", "saturate", "round")
T_W = DType("T_w", 12, 10, "tc", "saturate", "round")

TYPES = {"y": T_W, "w": T_W, "c": T_W, "d": T_W}


def lms_factory():
    return LmsEqualizerDesign(seed=2024)


def lms_seeded(seed):
    return LmsEqualizerDesign(seed=seed)


def _entry_tuple(e):
    return (e.name, e.base_f, e.sqnr_base_db, e.sqnr_plus_db,
            e.sqnr_minus_db)


def _outcome_tuple(o):
    return (o.fault, o.kind, o.sqnr_db, o.degradation_db, o.overflows,
            o.guard_trips, o.error, o.triggered)


class TestRunner:
    def test_results_in_config_order(self):
        configs = [SimConfig(label="o%d" % i, dtypes={"x": T_IN, **TYPES},
                             n_samples=50, seed=i, factory_seed=100 + i)
                   for i in range(4)]
        outcomes = run_simulations(lms_factory, configs, workers=1,
                                   seeded_factory=lms_seeded)
        assert [o.label for o in outcomes] == ["o0", "o1", "o2", "o3"]
        # Different stimulus seeds must yield different runs.
        assert outcomes[0].sqnr_db() != outcomes[1].sqnr_db()

    def test_parallel_equals_serial(self):
        configs = [SimConfig(dtypes={"x": T_IN, **TYPES}, n_samples=120,
                             seed=s) for s in (1, 2, 3)]
        serial = run_simulations(lms_factory, configs, workers=1)
        parallel = run_simulations(lms_factory, configs, workers=2)
        for a, b in zip(serial, parallel):
            assert a.sqnr_db() == b.sqnr_db()
            assert a.guard_trips == b.guard_trips
            assert set(a.records) == set(b.records)
            for name in a.records:
                assert a.records[name].err_produced == \
                    b.records[name].err_produced

    def test_serial_fallback_when_parallel_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        configs = [SimConfig(dtypes={"x": T_IN}, n_samples=50, seed=1)]
        outcomes = run_simulations(lms_factory, configs, workers=4)
        assert outcomes[0].completed

    def test_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_cache_hits_and_relabels(self):
        cache = SimCache()
        cfg = SimConfig(label="first", dtypes={"x": T_IN}, n_samples=50,
                        seed=9)
        first = run_simulations(lms_factory, [cfg], workers=1,
                                cache=cache)[0]
        assert cache.misses == 1 and cache.hits == 0 and len(cache) == 1
        relabeled = SimConfig(label="second", dtypes={"x": T_IN},
                              n_samples=50, seed=9)
        second = run_simulations(lms_factory, [relabeled], workers=1,
                                 cache=cache)[0]
        assert cache.hits == 1
        assert second.label == "second"
        assert second.sqnr_db() == first.sqnr_db()

    def test_fingerprint_distinguishes_what_matters(self):
        base = SimConfig(dtypes={"x": T_IN}, n_samples=50, seed=9)
        assert fingerprint(lms_factory, base) == \
            fingerprint(lms_factory, base)
        other_seed = SimConfig(dtypes={"x": T_IN}, n_samples=50, seed=10)
        assert fingerprint(lms_factory, base) != \
            fingerprint(lms_factory, other_seed)
        other_type = SimConfig(dtypes={"x": T_W}, n_samples=50, seed=9)
        assert fingerprint(lms_factory, base) != \
            fingerprint(lms_factory, other_type)

        def other_factory():
            return LmsEqualizerDesign(seed=4711)

        assert fingerprint(lms_factory, base) != \
            fingerprint(other_factory, base)


class TestSensitivityDeterminism:
    @pytest.fixture(scope="class")
    def refined_types(self):
        flow = RefinementFlow(lms_factory, input_types={"x": T_IN},
                              input_ranges={"x": (-2.0, 2.0)},
                              config=FlowConfig(n_samples=250, seed=7))
        return flow.run().types

    def test_parallel_sweep_identical_to_serial(self, refined_types):
        kwargs = dict(n_samples=150, seed=7)
        serial = analyze_sensitivity(lms_factory, refined_types,
                                     {"x": T_IN}, workers=1, **kwargs)
        parallel = analyze_sensitivity(lms_factory, refined_types,
                                       {"x": T_IN}, workers=2, **kwargs)
        assert serial.base_sqnr_db == parallel.base_sqnr_db
        assert len(serial.entries) == len(parallel.entries)
        for a, b in zip(serial.entries, parallel.entries):
            assert _entry_tuple(a) == _entry_tuple(b)

    def test_cached_sweep_identical(self, refined_types):
        cache = SimCache()
        kwargs = dict(n_samples=150, seed=7, cache=cache, workers=1)
        first = analyze_sensitivity(lms_factory, refined_types,
                                    {"x": T_IN}, **kwargs)
        misses = cache.misses
        again = analyze_sensitivity(lms_factory, refined_types,
                                    {"x": T_IN}, **kwargs)
        assert cache.hits == misses  # second sweep is all cache hits
        for a, b in zip(first.entries, again.entries):
            assert _entry_tuple(a) == _entry_tuple(b)


class TestCampaignDeterminism:
    def test_parallel_campaign_identical_to_serial(self):
        types = {**TYPES, "x": T_IN}
        # Bit flips install on scalar signals only (array bases like "c"
        # are not addressable by ctx.get).
        faults = standard_faults({"y": T_W, "w": T_W}, inputs=("x",),
                                 bit_flip_at=30)
        campaign = FaultCampaign(lms_factory, types, n_samples=120, seed=7,
                                 seeded_factory=lms_seeded)
        serial = campaign.run(faults, workers=1)
        parallel = campaign.run(faults, workers=2)
        assert serial.baseline_sqnr_db == parallel.baseline_sqnr_db
        assert len(serial.outcomes) == len(parallel.outcomes)
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert _outcome_tuple(a) == _outcome_tuple(b)
        assert any(o.kind == "seed-perturb" for o in parallel.outcomes)
        assert all(o.completed for o in parallel.outcomes)
