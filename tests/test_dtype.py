"""Unit tests for repro.core.dtype (fixed-point type objects)."""

import pytest

from repro.core.dtype import DType
from repro.core.errors import DTypeError, FixedPointOverflowError
from repro.core.interval import Interval


class TestConstruction:
    def test_paper_constructor(self):
        # dtype T1("T1", 8, 5, tc, st, rd)
        t = DType("T1", 8, 5, "tc", "st", "rd")
        assert t.n == 8
        assert t.f == 5
        assert t.vtype == "tc"
        assert t.msbspec == "saturate"
        assert t.lsbspec == "round"

    def test_aliases(self):
        t = DType("t", 8, 4, "unsigned", "wrap_around", "floor")
        assert t.vtype == "us"
        assert t.msbspec == "wrap"
        assert t.lsbspec == "floor"

    def test_defaults(self):
        t = DType("t", 8, 4)
        assert t.vtype == "tc"
        assert t.msbspec == "saturate"
        assert t.lsbspec == "round"

    @pytest.mark.parametrize("kwargs", [
        {"n": 0},
        {"vtype": "float"},
        {"msbspec": "clip"},
        {"lsbspec": "stochastic"},
    ])
    def test_invalid(self, kwargs):
        base = {"n": 8, "f": 4, "vtype": "tc", "msbspec": "saturate",
                "lsbspec": "round"}
        base.update(kwargs)
        with pytest.raises(DTypeError):
            DType("t", **base)


class TestDerived:
    def test_positions_tc(self):
        t = DType("t", 7, 5, "tc")
        assert t.msb == 1
        assert t.lsb == 5
        assert t.eps == 2.0 ** -5
        assert t.min_value == -2.0
        assert t.max_value == 2.0 - 2.0 ** -5

    def test_positions_us(self):
        t = DType("t", 7, 5, "us")
        assert t.msb == 2
        assert t.min_value == 0.0
        assert t.max_value == 4.0 - 2.0 ** -5

    def test_range_interval(self):
        t = DType("t", 7, 5, "tc")
        assert t.range_interval() == Interval(-2.0, 2.0 - 2.0 ** -5)

    def test_num_codes(self):
        assert DType("t", 8, 0).num_codes == 256

    def test_signed_flag(self):
        assert DType("t", 8, 0, "tc").signed
        assert not DType("t", 8, 0, "us").signed


class TestQuantization:
    def test_round(self):
        t = DType("t", 8, 5)
        assert t.quantize(0.40) == pytest.approx(13 / 32)

    def test_floor(self):
        t = DType("t", 8, 5, lsbspec="floor")
        assert t.quantize(0.40) == pytest.approx(12 / 32)

    def test_saturation(self):
        t = DType("t", 8, 5, msbspec="saturate")
        info = t.quantize_info(100.0)
        assert info.overflowed
        assert info.value == t.max_value

    def test_error_mode(self):
        t = DType("t", 8, 5, msbspec="error")
        with pytest.raises(FixedPointOverflowError):
            t.quantize(100.0)

    def test_quantize_array(self):
        import numpy as np
        t = DType("t", 8, 5)
        got = t.quantize_array(np.array([0.4, -0.4]))
        assert got[0] == pytest.approx(13 / 32)
        assert got[1] == pytest.approx(-13 / 32)

    def test_is_representable(self):
        t = DType("t", 8, 5)
        assert t.is_representable(0.5)
        assert not t.is_representable(0.51)
        assert not t.is_representable(100.0)


class TestDerivation:
    def test_with_(self):
        t = DType("t", 8, 5)
        u = t.with_(f=3, lsbspec="floor")
        assert u.n == 8 and u.f == 3 and u.lsbspec == "floor"
        assert t.f == 5  # original untouched

    def test_from_range(self):
        # Paper LMS: x in [-1.5, 1.5] with 5 fractional bits -> <7,5,tc>.
        t = DType.from_range("x", -1.5, 1.5, 5)
        assert (t.n, t.f) == (7, 5)
        assert t.msb == 1

    def test_from_range_zero(self):
        t = DType.from_range("z", 0.0, 0.0, 5)
        assert t.n == 6  # msb falls back to 0

    def test_from_range_unbounded(self):
        with pytest.raises(DTypeError):
            DType.from_range("u", float("-inf"), 1.0, 5)

    def test_from_positions(self):
        t = DType.from_positions("t", 1, 5)
        assert (t.n, t.f) == (7, 5)

    def test_from_positions_unsigned(self):
        t = DType.from_positions("t", 2, 5, vtype="us")
        assert (t.n, t.f) == (7, 5)


class TestEquality:
    def test_equal_ignores_name(self):
        assert DType("a", 8, 5) == DType("b", 8, 5)

    def test_not_equal(self):
        assert DType("a", 8, 5) != DType("a", 8, 4)
        assert DType("a", 8, 5) != DType("a", 8, 5, msbspec="wrap")

    def test_hashable(self):
        s = {DType("a", 8, 5), DType("b", 8, 5), DType("c", 9, 5)}
        assert len(s) == 2

    def test_spec_string(self):
        assert DType("t", 8, 5, "tc", "st", "rd").spec() == "<8,5,tc,sa,ro>"

    def test_repr_roundtrip(self):
        t = DType("t", 8, 5, "us", "wrap", "floor")
        assert eval(repr(t)) == t
