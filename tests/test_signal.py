"""Unit tests for the signal layer (Sig/Reg, monitors, annotations)."""

import math

import pytest

from repro.core.dtype import DType
from repro.core.errors import (DesignError, FixedPointOverflowError)
from repro.core.interval import Interval
from repro.signal import (DesignContext, Reg, Sig, as_expr, cast,
                          current_context, select)


@pytest.fixture
def ctx():
    with DesignContext("test", seed=0) as c:
        yield c


T85 = DType("T", 8, 5, "tc", "saturate", "round")


class TestBasicAssignment:
    def test_float_signal_passthrough(self, ctx):
        a = Sig("a")
        a.assign(0.123456)
        assert a.fx == 0.123456
        assert a.fl == 0.123456

    def test_fixed_signal_quantizes(self, ctx):
        a = Sig("a", T85)
        a.assign(0.40)
        assert a.fx == pytest.approx(13 / 32)
        assert a.fl == 0.40  # reference untouched

    def test_error_query(self, ctx):
        a = Sig("a", T85)
        a.assign(0.40)
        assert a.error() == pytest.approx(0.40 - 13 / 32)

    def test_ilshift_assign(self, ctx):
        a = Sig("a", T85)
        a <<= 0.5
        assert a.fx == 0.5

    def test_assign_expression(self, ctx):
        a = Sig("a", T85)
        b = Sig("b", T85)
        c = Sig("c", T85)
        a.assign(0.5)
        b.assign(0.25)
        c.assign(a * b + 1)
        assert c.fx == pytest.approx(1.125)

    def test_float_conversion(self, ctx):
        a = Sig("a", T85)
        a.assign(0.5)
        assert float(a) == 0.5

    def test_invalid_dtype_rejected(self, ctx):
        with pytest.raises(DesignError):
            Sig("a", dtype="not-a-dtype")

    def test_init_value(self, ctx):
        a = Sig("a", init=2.0)
        assert a.fx == 2.0


class TestDualSimulation:
    """The coupled float/fixed simulation of Section 4.2."""

    def test_fl_tracks_unquantized_math(self, ctx):
        a = Sig("a", T85)
        b = Sig("b")
        a.assign(0.40)          # fx = 13/32, fl = 0.40
        b.assign(a * 3.0)
        assert b.fx == pytest.approx(3 * 13 / 32)
        assert b.fl == pytest.approx(1.2)

    def test_consumed_vs_produced(self, ctx):
        a = Sig("a", T85)
        a.assign(0.40)
        b = Sig("b", DType("coarse", 6, 2))
        b.assign(a * 1.0)
        # consumed error: upstream quantization of a.
        assert b.err_consumed.max_abs == pytest.approx(abs(0.40 - 13 / 32))
        # produced error adds b's own (coarser) quantization.
        assert b.err_produced.max_abs >= b.err_consumed.max_abs

    def test_control_steered_by_fixed(self, ctx):
        # fx and fl fall on different sides of the threshold; both
        # simulations must follow the fixed-point decision.
        a = Sig("a", DType("t", 4, 1))
        a.assign(0.24)          # fx = 0.0, fl = 0.24
        out = select(a > 0.1, 1.0, -1.0)
        assert out.fx == -1.0
        assert out.fl == -1.0   # same branch, no spurious error

    def test_relationals_use_fx(self, ctx):
        a = Sig("a", DType("t", 4, 1))
        a.assign(0.24)
        assert not (a > 0.1)
        assert a < 0.1
        assert a <= 0.0
        assert a >= 0.0
        assert a.eq(0.0)


class TestRangeMonitoring:
    def test_stat_range_tracks_incoming(self, ctx):
        a = Sig("a", T85)
        a.assign(10.0)  # saturates, but the monitor sees the raw value
        assert a.range_stat.max == 10.0
        assert a.fx == T85.max_value

    def test_count(self, ctx):
        a = Sig("a")
        for _ in range(5):
            a.assign(1.0)
        assert a.range_stat.count == 5

    def test_prop_interval_union(self, ctx):
        a = Sig("a")
        b = Sig("b")
        a.range(-1.0, 1.0)
        b.assign(a * 2.0)
        b.assign(a + 0.5)
        assert b.prop_interval() == Interval(-2.0, 2.0)

    def test_typed_signal_reads_type_range(self, ctx):
        a = Sig("a", T85)
        a.assign(0.1)
        assert a.read_interval() == T85.range_interval()

    def test_forced_range_overrides_type(self, ctx):
        a = Sig("a", T85)
        a.range(-1.5, 1.5)
        assert a.read_interval() == Interval(-1.5, 1.5)

    def test_forced_range_freezes_propagation(self, ctx):
        a = Sig("a")
        a.range(-0.2, 0.2)
        a.assign(123.0)
        assert a.prop_interval() == Interval(-0.2, 0.2)

    def test_saturating_type_clips_propagation(self, ctx):
        a = Sig("a")
        b = Sig("b", T85)  # saturate mode
        a.range(-100.0, 100.0)
        b.assign(a * 1.0)
        assert b.prop_interval().contains(Interval(-4.0, 3.96875))
        assert b.prop_interval().hi <= T85.max_value

    def test_feedback_explosion_grows_interval(self, ctx):
        # acc = acc + x: the propagated range grows every assignment.
        acc = Sig("acc")
        x = Sig("x")
        x.range(-1.0, 1.0)
        acc.assign(0.0)
        widths = []
        for _ in range(5):
            acc.assign(acc + x)
            widths.append(acc.prop_interval().width)
        assert widths == sorted(widths)
        assert widths[-1] > widths[0]


class TestErrorMonitoring:
    def test_produced_error_of_quantizer(self, ctx):
        a = Sig("a", T85)
        a.assign(0.40)
        assert a.err_produced.max_abs == pytest.approx(abs(0.40 - 13 / 32))

    def test_error_free_signal(self, ctx):
        a = Sig("a", T85)
        a.assign(0.5)
        assert a.err_produced.max_abs == 0.0
        assert a.sqnr_db() == math.inf

    def test_sqnr_reasonable(self, ctx):
        import numpy as np
        rng = np.random.default_rng(1)
        a = Sig("a", T85)
        for v in rng.uniform(-1, 1, size=2000):
            a.assign(float(v))
        # Uniform signal in [-1,1], q = 2^-5: SQNR ~ 10log10(P/ (q^2/12)).
        expected = 10 * math.log10((1 / 3) / ((2.0 ** -10) / 12))
        assert a.sqnr_db() == pytest.approx(expected, abs=1.5)

    def test_sqnr_nan_without_data(self, ctx):
        a = Sig("a", T85)
        assert math.isnan(a.sqnr_db())

    def test_forced_error_decouples_reference(self, ctx):
        a = Sig("a")
        a.error(2.0 ** -6)
        for _ in range(200):
            a.assign(0.5)
        # fl is now fx + U(-q/2, q/2): bounded by half an LSB.
        assert 0 < a.err_produced.max_abs <= 2.0 ** -7
        sigma_expected = (2.0 ** -6) / math.sqrt(12)
        assert a.err_produced.std == pytest.approx(sigma_expected, rel=0.2)

    def test_forced_error_validates(self, ctx):
        a = Sig("a")
        with pytest.raises(DesignError):
            a.error(-1.0)

    def test_clear_annotations(self, ctx):
        a = Sig("a")
        a.range(-1, 1)
        a.error(0.1)
        a.clear_annotations()
        assert a.forced_range is None
        assert a.forced_error is None


class TestOverflowHandling:
    def test_saturate_counts(self, ctx):
        a = Sig("a", T85)
        a.assign(100.0)
        assert a.overflow_count == 1
        assert ctx.overflow_log == [(0, "a", 100.0)]

    def test_error_mode_records_by_default(self, ctx):
        t = T85.with_(msbspec="error")
        a = Sig("a", t)
        a.assign(100.0)  # no raise: context policy is 'record'
        assert a.overflow_count == 1
        assert a.fx == T85.max_value  # continued with saturated value

    def test_error_mode_raises_when_asked(self):
        with DesignContext("strict", overflow_action="raise"):
            a = Sig("a", T85.with_(msbspec="error"))
            with pytest.raises(FixedPointOverflowError):
                a.assign(100.0)

    def test_wrap_mode(self, ctx):
        a = Sig("a", T85.with_(msbspec="wrap"))
        a.assign(4.0)
        assert a.fx == -4.0
        assert a.overflow_count == 1


class TestRegisters:
    def test_assign_visible_after_tick(self, ctx):
        r = Reg("r")
        r.assign(1.0)
        assert r.fx == 0.0
        ctx.tick()
        assert r.fx == 1.0

    def test_holds_value_without_assign(self, ctx):
        r = Reg("r")
        r.assign(2.0)
        ctx.tick()
        ctx.tick()
        assert r.fx == 2.0

    def test_swap_semantics(self, ctx):
        # Classic register swap: both reads see pre-tick values.
        a = Reg("a", init=1.0)
        b = Reg("b", init=2.0)
        a.assign(b + 0)
        b.assign(a + 0)
        ctx.tick()
        assert a.fx == 2.0
        assert b.fx == 1.0

    def test_next_fx(self, ctx):
        r = Reg("r")
        assert r.next_fx is None
        r.assign(3.0)
        assert r.next_fx == 3.0

    def test_set_init_quantizes_fx(self, ctx):
        r = Reg("r", T85)
        r.set_init(0.4)
        assert r.fx == pytest.approx(13 / 32)
        assert r.fl == 0.4
        assert r.range_stat.is_empty  # init is not monitored


class TestResetStats:
    def test_reset_clears_monitors(self, ctx):
        a = Sig("a", T85)
        a.assign(100.0)
        a.reset_stats()
        assert a.range_stat.is_empty
        assert a.err_produced.is_empty
        assert a.overflow_count == 0
        assert a.prop_interval().is_empty

    def test_context_reset(self, ctx):
        a = Sig("a", T85)
        a.assign(100.0)
        ctx.reset_stats()
        assert a.range_stat.is_empty
        assert ctx.overflow_log == []


class TestWatch:
    def test_history_records_pairs(self, ctx):
        a = Sig("a", T85).watch()
        a.assign(0.40)
        a.assign(0.5)
        assert len(a.history) == 2
        assert a.history[0] == (pytest.approx(13 / 32), 0.40)

    def test_maxlen(self, ctx):
        a = Sig("a").watch(maxlen=2)
        for i in range(5):
            a.assign(float(i))
        assert list(a.history) == [(3.0, 3.0), (4.0, 4.0)]


class TestCast:
    def test_cast_quantizes_fx_only(self, ctx):
        a = Sig("a")
        a.assign(0.40)
        e = cast(a * 1.0, T85)
        assert e.fx == pytest.approx(13 / 32)
        assert e.fl == 0.40

    def test_cast_clips_interval(self, ctx):
        a = Sig("a")
        a.range(-100, 100)
        e = cast(a + 0.0, T85)
        assert e.ival.hi <= T85.max_value

    def test_cast_requires_dtype(self, ctx):
        with pytest.raises(DesignError):
            cast(1.0, "T85")


class TestContext:
    def test_registry_order(self, ctx):
        Sig("a")
        Sig("b")
        assert ctx.signal_names() == ["a", "b"]

    def test_duplicate_name_rejected(self, ctx):
        Sig("a")
        with pytest.raises(DesignError):
            Sig("a")

    def test_get(self, ctx):
        a = Sig("a")
        assert ctx.get("a") is a
        with pytest.raises(DesignError):
            ctx.get("zz")

    def test_contains_len(self, ctx):
        Sig("a")
        assert "a" in ctx
        assert len(ctx) == 1

    def test_nesting(self, ctx):
        assert current_context() is ctx
        with DesignContext("inner") as inner:
            assert current_context() is inner
            s = Sig("x")
            assert s.ctx is inner
        assert current_context() is ctx

    def test_default_context_exists(self):
        # Outside any with-block a default context is created lazily.
        c = current_context()
        assert c.name in ("default", "test")

    def test_explicit_ctx_argument(self, ctx):
        other = DesignContext("other")
        s = Sig("foreign", ctx=other)
        assert s.ctx is other
        assert "foreign" not in ctx
