"""Unit tests for the MSB refinement rules (paper Section 5.1)."""

import math

import pytest

from repro.core.errors import RefinementError
from repro.core.interval import Interval
from repro.refine.monitors import ErrorSummary, SignalRecord
from repro.refine.msbrules import MsbDecision, MsbPolicy, decide_msb


def record(stat_min=None, stat_max=None, prop=None, n=100, forced=None,
           name="s"):
    return SignalRecord(
        name=name, is_register=False, dtype=None, role="",
        n_assign=n if stat_min is not None else 0,
        stat_min=stat_min if stat_min is not None else math.nan,
        stat_max=stat_max if stat_max is not None else math.nan,
        frac_bits=8,
        prop=Interval() if prop is None else Interval(*prop),
        err_consumed=ErrorSummary(0, 0, 0, 0),
        err_produced=ErrorSummary(0, 0, 0, 0),
        forced_range=None if forced is None else Interval(*forced),
    )


class TestCaseA:
    def test_agreement(self):
        d = decide_msb(record(-1.4, 1.4, prop=(-1.5, 1.5)))
        assert d.case == "a"
        assert d.msb == 1
        assert d.mode == "error"
        assert d.overhead_bits() == 0

    def test_stat_exceeds_prop_is_flagged(self):
        d = decide_msb(record(-3.0, 3.0, prop=(-1.0, 1.0)))
        assert d.case == "a"
        assert d.msb == 2  # keeps the larger (simulated) requirement
        assert "check input seeds" in d.note

    def test_wrap_mode_policy(self):
        d = decide_msb(record(-1.0, 1.0, prop=(-1.0, 1.0)),
                       MsbPolicy(nonsat_mode="wrap"))
        assert d.mode == "wrap"


class TestCaseC:
    def test_small_gap_takes_prop_by_default(self):
        # stat msb 1, prop msb 2: designer trade-off.
        d = decide_msb(record(-1.5, 1.5, prop=(-2.2, 2.2)))
        assert d.case == "c"
        assert d.msb == 2
        assert d.mode == "error"
        assert d.overhead_bits() == 1

    def test_prefer_stat_saturates(self):
        d = decide_msb(record(-1.5, 1.5, prop=(-2.2, 2.2)),
                       MsbPolicy(prefer="stat"))
        assert d.case == "c"
        assert d.msb == 1
        assert d.mode == "saturate"
        assert d.guard_msb == 2


class TestCaseB:
    def test_pessimistic_propagation_saturates(self):
        # stat msb -2, prop msb 3: accumulator-style gap of 5 bits.
        d = decide_msb(record(-0.14, 0.14, prop=(-7.9, 7.9)))
        assert d.case == "b"
        assert d.msb == -2
        assert d.mode == "saturate"
        assert d.guard_msb == 3


class TestExplosion:
    def test_unbounded_prop(self):
        d = decide_msb(record(-1.0, 1.0, prop=(-math.inf, math.inf)))
        assert d.case == "explosion"
        assert d.needs_range_annotation
        assert d.mode == "saturate"
        assert d.msb == 1  # fallback to simulated

    def test_huge_finite_prop(self):
        d = decide_msb(record(-1.0, 1.0, prop=(-1e15, 1e15)))
        assert d.case == "explosion"

    def test_margin_is_configurable(self):
        rec = record(-1.0, 1.0, prop=(-2.0 ** 6, 2.0 ** 6))
        assert decide_msb(rec, MsbPolicy(explosion_margin=5)).case == "explosion"
        assert decide_msb(rec, MsbPolicy(explosion_margin=8)).case == "b"


class TestForcedRange:
    def test_annotation_dominates(self):
        rec = record(-0.14, 0.14, prop=(-math.inf, math.inf),
                     forced=(-0.2, 0.2))
        d = decide_msb(rec)
        assert d.mode == "saturate"
        assert d.msb == -2
        assert d.case == "b"
        assert "range() annotation" in d.note


class TestDegenerateCases:
    def test_unobserved_with_prop(self):
        d = decide_msb(record(prop=(-1.0, 1.0)))
        assert d.case == "unobserved"
        assert d.msb == 1

    def test_unobserved_without_prop(self):
        d = decide_msb(record())
        assert d.msb is None

    def test_zero_valued_signal(self):
        d = decide_msb(record(0.0, 0.0, prop=(-0.5, 0.5)))
        assert d.case == "a"
        assert d.msb == 0

    def test_zero_valued_exploded(self):
        d = decide_msb(record(0.0, 0.0, prop=(-math.inf, math.inf)))
        assert d.case == "explosion"
        assert d.msb is None

    def test_stat_only(self):
        d = decide_msb(record(-1.0, 1.0))
        assert d.case == "no-prop"
        assert d.mode == "saturate"
        assert d.msb == 1


class TestPolicyValidation:
    def test_bad_prefer(self):
        with pytest.raises(RefinementError):
            MsbPolicy(prefer="both")

    def test_bad_mode(self):
        with pytest.raises(RefinementError):
            MsbPolicy(nonsat_mode="saturate")

    def test_bad_margins(self):
        with pytest.raises(RefinementError):
            MsbPolicy(tradeoff_margin=8, explosion_margin=8)


class TestDecisionHelpers:
    def test_overhead_handles_none(self):
        d = MsbDecision("s", None, 1, 1, "error", "unobserved")
        assert d.overhead_bits() == 0

    def test_overhead_handles_inf(self):
        d = MsbDecision("s", 1, math.inf, 1, "saturate", "explosion")
        assert d.overhead_bits() == 0
