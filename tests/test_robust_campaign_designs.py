"""Fault-injection campaigns against the paper's full designs.

Marked ``slow``: each test refines a complete design and re-simulates it
once per fault.  Run with ``pytest -m slow``.

Documented robustness margins (asserted below):

* LMS equalizer — a transient single-LSB bit flip on the output costs
  < 3 dB SQNR; stimulus-seed perturbation stays within 6 dB of the
  nominal SQNR (the refined types are not overfit to one stimulus).
* Timing recovery — a transient single-LSB bit flip on the interpolator
  output costs < 3 dB; seed perturbation stays within 10 dB (the loop's
  lock transient varies more between stimuli than the LMS steady state).
"""

import math

import pytest

from repro.core.dtype import DType
from repro.dsp.lms import LmsEqualizerDesign
from repro.dsp.timing_recovery import TimingRecoveryDesign
from repro.refine import FlowConfig, RefinementFlow
from repro.robust.faults import BitFlip, FaultCampaign, SeedPerturb

pytestmark = pytest.mark.slow

T_INPUT = DType("T_input", 7, 5, "tc", "saturate", "round")
T_TIMING_IN = DType("T_in", 9, 7, "tc", "saturate", "round")
PHASE_T = DType("T_eta", 12, 12, "us", "wrap", "round")


class TestLmsCampaign:
    @pytest.fixture(scope="class")
    def refined(self):
        flow = RefinementFlow(
            design_factory=LmsEqualizerDesign,
            input_types={"x": T_INPUT},
            input_ranges={"x": (-1.5, 1.5)},
            user_ranges={"b": (-0.2, 0.2)},
            config=FlowConfig(n_samples=3000, auto_range=False, seed=1234),
        )
        return flow.run()

    @pytest.fixture(scope="class")
    def campaign(self, refined):
        types = dict(refined.types)
        types["x"] = T_INPUT
        return FaultCampaign(
            LmsEqualizerDesign, types, errors=refined.lsb.annotations,
            n_samples=3000,
            seeded_factory=lambda s: LmsEqualizerDesign(seed=s))

    def test_nominal_sqnr_in_paper_ballpark(self, refined):
        assert 34.0 < refined.baseline_sqnr_db < 46.0
        assert 34.0 < refined.verification.output_sqnr_db < 46.0

    def test_single_lsb_bitflip_margin(self, refined, campaign):
        output = refined.verification.output
        out = campaign.run([BitFlip(output, bit=0, at=1500)])
        o = out.outcomes[0]
        assert o.completed
        assert o.degradation_db < 3.0

    def test_seed_perturbation_margin(self, campaign):
        out = campaign.run([SeedPerturb(20000), SeedPerturb(27919)])
        for o in out.outcomes:
            assert o.completed
            assert abs(o.degradation_db) < 6.0
        assert out.certified(6.0, kinds=("seed-perturb",))

    def test_campaign_report_is_renderable(self, refined, campaign):
        output = refined.verification.output
        out = campaign.run([BitFlip(output, bit=0, at=1500),
                            SeedPerturb(20000)])
        text = out.table()
        assert output in text
        assert math.isfinite(out.worst_degradation_db())


class TestTimingRecoveryCampaign:
    KNOWLEDGE_RANGES = {
        "lf.i": (-0.01, 0.01),
        "nco.w": (0.35, 0.65),
        "nco.mu": (0.0, 1.0),
        "lf.out": (-0.05, 0.05),
        "lf.p": (-0.05, 0.05),
        "ted.err": (-4.0, 4.0),
    }

    @staticmethod
    def _design(seed=77):
        return TimingRecoveryDesign(noise_std=0.05,
                                    nco_phase_dtype=PHASE_T, seed=seed)

    @pytest.fixture(scope="class")
    def refined(self):
        flow = RefinementFlow(
            design_factory=self._design,
            input_types={"in": T_TIMING_IN},
            input_ranges={"in": (-2.0, 2.0)},
            preset_types={"nco.eta": PHASE_T},
            user_ranges=dict(self.KNOWLEDGE_RANGES),
            user_errors={"nco.eta": 2.0 ** -12},
            config=FlowConfig(n_samples=8000, auto_range=True,
                              auto_error=False, seed=21),
        )
        return flow.run()

    @pytest.fixture(scope="class")
    def campaign(self, refined):
        types = dict(refined.types)
        types["in"] = T_TIMING_IN
        types["nco.eta"] = PHASE_T
        return FaultCampaign(
            self._design, types, errors=refined.lsb.annotations,
            n_samples=8000,
            seeded_factory=lambda s: self._design(seed=s))

    def test_refinement_succeeds(self, refined):
        assert refined.msb.resolved
        assert refined.lsb.resolved
        assert math.isfinite(refined.verification.output_sqnr_db)

    def test_single_lsb_bitflip_margin(self, refined, campaign):
        output = refined.verification.output
        out = campaign.run([BitFlip(output, bit=0, at=4000)])
        o = out.outcomes[0]
        assert o.completed
        assert o.degradation_db < 3.0

    def test_seed_perturbation_margin(self, campaign):
        out = campaign.run([SeedPerturb(500)])
        o = out.outcomes[0]
        assert o.completed
        assert abs(o.degradation_db) < 10.0
