"""Unit tests for repro.core.stats (monitor accumulators)."""

import math

import numpy as np
import pytest

from repro.core.stats import ErrorStat, RangeStat


class TestRangeStat:
    def test_empty(self):
        rs = RangeStat()
        assert rs.is_empty
        assert rs.count == 0
        assert rs.max_abs == 0.0
        assert rs.required_msb() is None

    def test_update(self):
        rs = RangeStat()
        rs.update_many([0.5, -1.5, 1.0])
        assert rs.count == 3
        assert rs.min == -1.5
        assert rs.max == 1.0
        assert rs.max_abs == 1.5

    def test_required_msb(self):
        rs = RangeStat()
        rs.update_many([-1.5, 1.5])
        assert rs.required_msb() == 1

    def test_required_msb_zero_signal(self):
        rs = RangeStat()
        rs.update(0.0)
        assert rs.required_msb() is None

    def test_merge(self):
        a = RangeStat()
        b = RangeStat()
        a.update_many([1.0, 2.0])
        b.update_many([-3.0])
        a.merge(b)
        assert a.count == 3
        assert a.min == -3.0
        assert a.max == 2.0

    def test_reset(self):
        rs = RangeStat()
        rs.update(1.0)
        rs.reset()
        assert rs.is_empty

    def test_as_dict(self):
        rs = RangeStat()
        rs.update(2.0)
        assert rs.as_dict() == {"count": 1, "min": 2.0, "max": 2.0,
                                "frac_bits": 0}

    def test_frac_bits_tracking(self):
        rs = RangeStat()
        rs.update(1.0)
        assert rs.frac_bits == 0
        rs.update(0.75)
        assert rs.frac_bits == 2
        rs.update(0.11)  # non-terminating in binary -> cap
        assert rs.frac_bits == RangeStat.FRAC_CAP


class TestErrorStat:
    def test_empty(self):
        es = ErrorStat()
        assert es.is_empty
        assert es.std == 0.0
        assert es.rms == 0.0

    def test_known_values(self):
        es = ErrorStat()
        es.update_many([1.0, 2.0, 3.0, 4.0])
        assert es.count == 4
        assert es.mean == pytest.approx(2.5)
        assert es.variance == pytest.approx(1.25)
        assert es.std == pytest.approx(math.sqrt(1.25))
        assert es.max_abs == 4.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        xs = rng.normal(0.1, 2.0, size=10_000)
        es = ErrorStat()
        es.update_many(xs.tolist())
        assert es.mean == pytest.approx(np.mean(xs), rel=1e-9)
        assert es.std == pytest.approx(np.std(xs), rel=1e-9)
        assert es.max_abs == pytest.approx(np.max(np.abs(xs)))

    def test_rms_combines_bias_and_spread(self):
        es = ErrorStat()
        es.update_many([1.0, 1.0, 1.0])
        assert es.std == 0.0
        assert es.rms == pytest.approx(1.0)

    def test_numerical_stability_large_offset(self):
        # Welford must survive a huge common offset.
        es = ErrorStat()
        offset = 1e9
        es.update_many([offset + v for v in (-1.0, 0.0, 1.0)])
        assert es.std == pytest.approx(math.sqrt(2.0 / 3.0), rel=1e-6)

    def test_merge_matches_single_pass(self):
        rng = np.random.default_rng(5)
        xs = rng.normal(size=1000)
        full = ErrorStat()
        full.update_many(xs.tolist())
        a = ErrorStat()
        b = ErrorStat()
        a.update_many(xs[:300].tolist())
        b.update_many(xs[300:].tolist())
        a.merge(b)
        assert a.count == full.count
        assert a.mean == pytest.approx(full.mean, abs=1e-12)
        assert a.std == pytest.approx(full.std, rel=1e-9)
        assert a.max_abs == full.max_abs

    def test_merge_into_empty(self):
        a = ErrorStat()
        b = ErrorStat()
        b.update_many([1.0, -2.0])
        a.merge(b)
        assert a.count == 2
        assert a.max_abs == 2.0

    def test_merge_empty_is_noop(self):
        a = ErrorStat()
        a.update(1.0)
        a.merge(ErrorStat())
        assert a.count == 1

    def test_reset(self):
        es = ErrorStat()
        es.update(5.0)
        es.reset()
        assert es.is_empty
        assert es.max_abs == 0.0

    def test_as_dict_keys(self):
        es = ErrorStat()
        es.update(1.0)
        assert set(es.as_dict()) == {"count", "mean", "std", "max_abs"}
