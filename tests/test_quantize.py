"""Unit tests for repro.core.quantize (value-domain quantization)."""

import math

import numpy as np
import pytest

import repro.core.quantize as q
from repro.core.errors import DTypeError, FixedPointOverflowError


class TestRounding:
    def test_round_half_up(self):
        # round mode: floor(x * 2^f + 0.5)
        assert q.round_to_code(0.5, 0, "round") == 1
        assert q.round_to_code(-0.5, 0, "round") == 0
        assert q.round_to_code(0.49, 0, "round") == 0

    def test_floor(self):
        assert q.round_to_code(0.9, 0, "floor") == 0
        assert q.round_to_code(-0.1, 0, "floor") == -1

    def test_ceil(self):
        assert q.round_to_code(0.1, 0, "ceil") == 1
        assert q.round_to_code(-0.9, 0, "ceil") == 0

    def test_trunc(self):
        assert q.round_to_code(0.9, 0, "trunc") == 0
        assert q.round_to_code(-0.9, 0, "trunc") == 0

    def test_fractional_scaling(self):
        assert q.round_to_code(0.40625, 5, "round") == 13

    def test_unknown_mode(self):
        with pytest.raises(DTypeError):
            q.round_to_code(0.5, 0, "nearest_even")


class TestQuantize:
    def test_exact_grid_value(self):
        r = q.quantize_info(0.5, 8, 5)
        assert r.value == 0.5
        assert r.code == 16
        assert not r.overflowed
        assert r.error == 0.0

    def test_rounding_error_bounded_by_half_lsb(self):
        for v in np.linspace(-3.9, 3.9, 101):
            r = q.quantize_info(float(v), 8, 5)
            assert abs(r.error) <= 2.0 ** -6 + 1e-15

    def test_floor_error_is_negative(self):
        for v in np.linspace(-3.9, 3.9, 101):
            r = q.quantize_info(float(v), 8, 5, rounding="floor")
            assert -(2.0 ** -5) < r.error <= 0.0

    def test_saturate_high(self):
        r = q.quantize_info(10.0, 8, 5, overflow="saturate")
        assert r.overflowed
        assert r.value == q.value_max(8, 5)

    def test_saturate_low(self):
        r = q.quantize_info(-10.0, 8, 5, overflow="saturate")
        assert r.overflowed
        assert r.value == -4.0

    def test_wrap(self):
        # 4.0 in <8,5,tc> wraps to -4.0 (code 128 -> -128).
        r = q.quantize_info(4.0, 8, 5, overflow="wrap")
        assert r.overflowed
        assert r.value == -4.0

    def test_error_mode_raises(self):
        with pytest.raises(FixedPointOverflowError):
            q.quantize_info(10.0, 8, 5, overflow="error")

    def test_error_mode_ok_in_range(self):
        r = q.quantize_info(1.0, 8, 5, overflow="error")
        assert not r.overflowed

    def test_nan_rejected(self):
        with pytest.raises(DTypeError):
            q.quantize_info(math.nan, 8, 5)

    def test_unsigned(self):
        r = q.quantize_info(-0.5, 8, 5, signed=False, overflow="saturate")
        assert r.value == 0.0
        r = q.quantize_info(7.99, 8, 5, signed=False, overflow="saturate")
        assert r.value == q.value_max(8, 5, signed=False)

    def test_unknown_overflow_mode(self):
        with pytest.raises(DTypeError):
            q.quantize_info(0.0, 8, 5, overflow="clip")

    def test_quantize_shortcut(self):
        assert q.quantize(0.3, 8, 5) == q.quantize_info(0.3, 8, 5).value


class TestValueBounds:
    def test_signed(self):
        assert q.value_min(8, 5) == -4.0
        assert q.value_max(8, 5) == 4.0 - 2.0 ** -5

    def test_unsigned(self):
        assert q.value_min(8, 5, signed=False) == 0.0
        assert q.value_max(8, 5, signed=False) == 8.0 - 2.0 ** -5

    def test_step(self):
        assert q.quantization_step(5) == 2.0 ** -5
        assert q.quantization_step(0) == 1.0
        assert q.quantization_step(-2) == 4.0


class TestQuantizeArray:
    """The vectorized path must be bit-identical to the scalar path."""

    @pytest.mark.parametrize("overflow", ["wrap", "saturate"])
    @pytest.mark.parametrize("rounding", ["round", "floor", "ceil", "trunc"])
    @pytest.mark.parametrize("signed", [True, False])
    def test_matches_scalar(self, overflow, rounding, signed):
        rng = np.random.default_rng(42)
        values = rng.uniform(-20, 20, size=500)
        if not signed:
            values = np.abs(values)
        got = q.quantize_array(values, 8, 4, signed=signed,
                               overflow=overflow, rounding=rounding)
        want = [q.quantize(float(v), 8, 4, signed=signed, overflow=overflow,
                           rounding=rounding) for v in values]
        np.testing.assert_array_equal(got, np.asarray(want))

    def test_overflow_count_reported(self):
        out = []
        q.quantize_array(np.array([0.0, 10.0, -10.0, 1.0]), 8, 5,
                         out_overflow=out)
        assert out == [2]

    def test_error_mode_raises(self):
        with pytest.raises(FixedPointOverflowError):
            q.quantize_array(np.array([10.0]), 8, 5, overflow="error")

    def test_wide_words_rejected(self):
        with pytest.raises(DTypeError):
            q.quantize_array(np.array([0.0]), 60, 5)

    def test_preserves_shape(self):
        values = np.zeros((3, 4))
        assert q.quantize_array(values, 8, 5).shape == (3, 4)

    def test_unknown_modes(self):
        with pytest.raises(DTypeError):
            q.quantize_array(np.array([0.0]), 8, 5, overflow="clip")
        with pytest.raises(DTypeError):
            q.quantize_array(np.array([0.0]), 8, 5, rounding="odd")


class TestIdempotence:
    @pytest.mark.parametrize("rounding", ["round", "floor", "ceil", "trunc"])
    def test_double_quantization_is_identity(self, rounding):
        rng = np.random.default_rng(7)
        for v in rng.uniform(-3.9, 3.9, size=50):
            once = q.quantize(float(v), 8, 5, rounding=rounding)
            twice = q.quantize(once, 8, 5, rounding=rounding)
            assert once == twice
