"""Tests for the wordlength sensitivity analysis."""

import numpy as np
import pytest

from repro.core.dtype import DType
from repro.refine import Design, FlowConfig, RefinementFlow
from repro.refine.sensitivity import analyze_sensitivity
from repro.signal import Sig

T_IN = DType("T_in", 9, 7, "tc", "saturate", "round")


class TwoPathDesign(Design):
    """y = big + 0.01*small: the 'big' path dominates the output, so its
    wordlength matters far more than the 'small' path's."""

    name = "twopath"
    inputs = ("x",)
    output = "y"

    def build(self, ctx):
        self.x = Sig("x")
        self.big = Sig("big")
        self.small = Sig("small")
        self.y = Sig("y")
        rng = np.random.default_rng(14)
        self._stim = iter(rng.uniform(-1, 1, size=100000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.big.assign(self.x * 0.9)
            self.small.assign(self.x * 0.8)
            self.y.assign(self.big + self.small * 0.01)
            ctx.tick()


@pytest.fixture(scope="module")
def refined():
    flow = RefinementFlow(TwoPathDesign, input_types={"x": T_IN},
                          input_ranges={"x": (-1, 1)},
                          config=FlowConfig(n_samples=1500, seed=4))
    return flow.run()


@pytest.fixture(scope="module")
def report(refined):
    return analyze_sensitivity(TwoPathDesign, refined.types,
                               {"x": T_IN}, n_samples=1500, seed=4)


class TestSensitivity:
    def test_covers_all_signals(self, refined, report):
        assert {e.name for e in report.entries} == set(refined.types)

    def test_big_path_more_sensitive_than_small(self, report):
        by_name = {e.name: e for e in report.entries}
        assert by_name["big"].loss_db_per_bit > \
            by_name["small"].loss_db_per_bit + 1.0

    def test_removing_bits_hurts_dominant_path(self, report):
        by_name = {e.name: e for e in report.entries}
        assert by_name["big"].loss_db_per_bit > 1.0

    def test_small_path_is_nearly_free(self, report):
        by_name = {e.name: e for e in report.entries}
        assert abs(by_name["small"].loss_db_per_bit) < 1.0

    def test_rankings(self, report):
        most = report.most_sensitive(1)[0]
        least = report.least_sensitive(1)[0]
        assert most.loss_db_per_bit >= least.loss_db_per_bit
        assert most.name == "big" or most.name == "y"

    def test_table_format(self, report):
        text = report.table()
        assert "signal sensitivity" in text
        assert "big" in text and "small" in text

    def test_base_sqnr_consistent(self, refined, report):
        assert report.base_sqnr_db == pytest.approx(
            refined.verification.output_sqnr_db, abs=3.0)
