"""Tests for the VHDL testbench generator."""

import pytest

from repro.core.dtype import DType
from repro.core.errors import DesignError
from repro.hdl.testbench import collect_vectors, generate_testbench
from repro.signal import DesignContext, Sig

T_IN = DType("T_in", 8, 5)
T_OUT = DType("T_out", 10, 7)


def run_watched(n=16):
    ctx = DesignContext("tb-test", seed=0)
    import numpy as np
    rng = np.random.default_rng(2)
    with ctx:
        x = Sig("x", T_IN).watch()
        y = Sig("y", T_OUT).watch()
        for v in rng.uniform(-1, 1, size=n):
            x.assign(float(v))
            y.assign(x * 0.5)
            ctx.tick()
    return ctx


class TestCollectVectors:
    def test_collects_aligned(self):
        ctx = run_watched(16)
        vectors, n = collect_vectors(ctx, ["x"], ["y"])
        assert n == 16
        assert len(vectors["x"]) == len(vectors["y"]) == 16

    def test_max_vectors(self):
        ctx = run_watched(16)
        vectors, n = collect_vectors(ctx, ["x"], ["y"], max_vectors=5)
        assert n == 5

    def test_unwatched_rejected(self):
        ctx = DesignContext("tb-uw", seed=0)
        with ctx:
            Sig("x", T_IN)
        with pytest.raises(DesignError):
            collect_vectors(ctx, ["x"], [])


class TestGenerateTestbench:
    def _tb(self, n=8):
        ctx = run_watched(n)
        vectors, _ = collect_vectors(ctx, ["x"], ["y"])
        return generate_testbench("scaler", vectors,
                                  {"x": T_IN, "y": T_OUT}, ["x"], ["y"])

    def test_structure(self):
        text = self._tb()
        assert "entity scaler_tb is" in text
        assert "dut : entity work.scaler" in text
        assert "x_rom" in text and "y_rom" in text
        assert "assert y = to_signed(y_rom(i), 10)" in text
        assert "report \"testbench completed: 8 vectors\"" in text

    def test_codes_are_integers_in_range(self):
        text = self._tb()
        import re
        m = re.search(r"constant x_rom : t_x_rom := \(([^)]*)\)", text)
        codes = [int(c) for c in m.group(1).split(",")]
        assert all(-(1 << 7) <= c < (1 << 7) for c in codes)

    def test_balanced_parens(self):
        text = self._tb()
        depth = 0
        for ch in text:
            depth += ch == "("
            depth -= ch == ")"
            assert depth >= 0
        assert depth == 0

    def test_requires_io(self):
        with pytest.raises(DesignError):
            generate_testbench("e", {}, {}, [], [])

    def test_requires_vectors(self):
        with pytest.raises(DesignError):
            generate_testbench("e", {"x": [], "y": []},
                               {"x": T_IN, "y": T_OUT}, ["x"], ["y"])

    def test_no_trailing_comma_in_port_map(self):
        text = self._tb()
        import re
        pm = re.search(r"port map \((.*?)\);", text, re.S).group(1)
        assert not pm.rstrip().rstrip("\n").endswith(",")
