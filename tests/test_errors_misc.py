"""Tests for the exception hierarchy and assorted small behaviours."""

import pytest

from repro.core import errors
from repro.core.dtype import DType
from repro.signal import DesignContext, Reg, Sig


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (errors.DTypeError, errors.FixedPointOverflowError,
                    errors.RangeExplosionError, errors.DivergenceError,
                    errors.SimulationError, errors.ChannelEmpty,
                    errors.ChannelFull, errors.DesignError,
                    errors.RefinementError):
            assert issubclass(exc, errors.ReproError)

    def test_overflow_error_payload(self):
        e = errors.FixedPointOverflowError("boom", signal="x", value=9.0,
                                           dtype=DType("t", 8, 5))
        assert e.signal == "x"
        assert e.value == 9.0
        assert e.dtype.n == 8

    def test_explosion_error_signals(self):
        e = errors.RangeExplosionError("boom", signals=["a", "b"])
        assert e.signals == ("a", "b")

    def test_divergence_error_signals(self):
        e = errors.DivergenceError("boom", signals=["eta"])
        assert e.signals == ("eta",)

    def test_channel_errors_are_simulation_errors(self):
        assert issubclass(errors.ChannelEmpty, errors.SimulationError)
        assert issubclass(errors.ChannelFull, errors.SimulationError)


class TestContextMisc:
    def test_unbalanced_nesting_detected(self):
        a = DesignContext("a")
        b = DesignContext("b")
        a.__enter__()
        b.__enter__()
        with pytest.raises(errors.DesignError):
            a.__exit__(None, None, None)
        # Clean up the stack.
        b.__exit__(None, None, None)
        a.__exit__(None, None, None)

    def test_repr(self):
        ctx = DesignContext("x")
        with ctx:
            Sig("a")
        assert "x" in repr(ctx) and "1 signals" in repr(ctx)

    def test_cycle_counter(self):
        ctx = DesignContext("c")
        with ctx:
            ctx.tick()
            ctx.tick()
        assert ctx.cycle == 2

    def test_snapshot_error_stats_shape(self):
        ctx = DesignContext("s")
        with ctx:
            s = Sig("a")
            s.assign(1.0)
            snap = ctx.snapshot_error_stats()
        assert set(snap) == {"a"}
        count, mean, std, max_abs = snap["a"]
        assert count == 1


class TestSignalMisc:
    def test_repr_shows_spec(self):
        with DesignContext("r"):
            s = Sig("a", DType("t", 8, 5))
            assert "<8,5,tc,sa,ro>" in repr(s)
            f = Sig("b")
            assert "float" in repr(f)

    def test_reg_repr(self):
        with DesignContext("r2"):
            r = Reg("r")
            assert repr(r).startswith("Reg(")

    def test_role_attribute(self):
        with DesignContext("r3"):
            s = Sig("a")
            s.role = "input"
            assert s.role == "input"

    def test_set_dtype_resets_propagation(self):
        with DesignContext("r4"):
            s = Sig("a")
            s.assign(5.0)
            assert not s._prop_ival.is_empty
            s.set_dtype(DType("t", 8, 5))
            assert s._prop_ival.is_empty

    def test_ilshift_returns_signal(self):
        with DesignContext("r5"):
            s = Sig("a")
            s <<= 1.0
            assert isinstance(s, Sig)
            assert s.fx == 1.0
