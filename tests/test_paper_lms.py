"""Integration test: the paper's motivational LMS example (Tables 1-2, §6).

Encodes every legible claim of the paper's evaluation on this design:

* MSB phase needs exactly two iterations; the first explodes on the
  feedback signals ``w`` and ``b``; adding only ``b.range(-0.2, 0.2)``
  (the paper's knowledge-based annotation) resolves both.
* ``x.range(-1.5, 1.5)`` seeds propagation; its required MSB is 1.
* The LSB phase resolves everything in one iteration; the slicer output
  ``y`` is error-free with LSB position 0.
* SQNR of the FIR output drops by well under 2 dB from the inputs-only
  baseline (~39.8 -> ~39.1 dB in the paper).
* The verified fixed-point equalizer still makes correct decisions.
"""

import math

import pytest

from repro.core.dtype import DType
from repro.dsp.lms import LmsEqualizerDesign
from repro.refine import FlowConfig, RefinementFlow

T_INPUT = DType("T_input", 7, 5, "tc", "saturate", "round")


@pytest.fixture(scope="module")
def result():
    flow = RefinementFlow(
        design_factory=LmsEqualizerDesign,
        input_types={"x": T_INPUT},
        input_ranges={"x": (-1.5, 1.5)},
        user_ranges={"b": (-0.2, 0.2)},
        config=FlowConfig(n_samples=4000, auto_range=False, seed=1234),
    )
    return flow.run()


class TestMsbPhase:
    def test_two_iterations(self, result):
        assert result.msb.n_iterations == 2
        assert result.msb.resolved

    def test_first_iteration_explodes_on_w_and_b(self, result):
        assert set(result.msb.iterations[0].exploded) == {"w", "b"}

    def test_only_b_gets_the_annotation(self, result):
        assert list(result.msb.iterations[0].added_ranges) == ["b"]
        assert result.msb.annotations == {"b": (-0.2, 0.2)}

    def test_second_iteration_resolves_w_via_propagation(self, result):
        final = result.msb.iterations[1].decisions
        assert final["w"].case != "explosion"
        # w = v[3] - b*s with |v3| <= 1.995, |b| <= 0.2: prop msb 2.
        assert final["w"].prop_msb == 2

    def test_input_msb_is_one(self, result):
        # x.range(-1.5, 1.5) -> msb 1 (paper Table 1).
        assert result.msb.final.decisions["x"].msb == 1

    def test_fir_output_agreement(self, result):
        d = result.msb.final.decisions["v[3]"]
        assert d.case == "a"
        assert d.stat_msb == d.prop_msb == 1

    def test_b_saturates_with_guard(self, result):
        d = result.msb.final.decisions["b"]
        assert d.mode == "saturate"
        assert d.msb == -2  # range (-0.2, 0.2)

    def test_delay_line_inherits_input_range(self, result):
        for i in range(3):
            assert result.msb.final.decisions["d[%d]" % i].msb == 1


class TestLsbPhase:
    def test_one_iteration(self, result):
        assert result.lsb.n_iterations == 1
        assert result.lsb.resolved
        assert result.lsb.annotations == {}

    def test_slicer_output_error_free(self, result):
        d = result.lsb.final.decisions["y"]
        assert d.lsb == 0
        assert d.max_abs == 0.0

    def test_input_lsb_from_own_quantization(self, result):
        # <7,5,tc> input: sigma = 2^-5/sqrt(12) ~ 0.009 -> f = 6 (k_w=2).
        assert result.lsb.final.decisions["x"].lsb == 6

    def test_lsb_tracks_noise_gain(self, result):
        lsbs = {n: d.lsb for n, d in result.lsb.final.decisions.items()}
        # v[1] carries only the small first tap: finer LSB than v[3].
        assert lsbs["v[1]"] > lsbs["v[3]"]
        # b adapts slowly: smaller errors, finer LSB than w.
        assert lsbs["b"] > lsbs["w"]

    def test_error_statistics_sane(self, result):
        rec = result.lsb.final.records["v[3]"]
        assert 0 < rec.err_produced.std < 0.05
        assert abs(rec.err_produced.mean) < 0.01


class TestSynthesisAndVerification:
    def test_paper_sqnr_shape(self, result):
        before = result.baseline_sqnr_db
        after = result.verification.output_sqnr_db
        # Paper: 39.8 dB -> 39.1 dB.  Our substrate differs in absolute
        # terms but must show the same shape: both near 40 dB and the
        # refinement costs well under 2 dB.
        assert 34.0 < before < 46.0
        assert 34.0 < after < 46.0
        assert 0.0 < before - after < 2.0

    def test_no_overflows_in_verification(self, result):
        assert result.verification.total_overflows == 0

    def test_y_type_is_two_bits(self, result):
        assert result.types["y"].n == 2
        assert result.types["y"].f == 0

    def test_w_is_saturated_type(self, result):
        assert result.types["w"].msbspec == "error" or \
            result.types["w"].msbspec == "saturate"
        # w decided msb 2 (case c takes propagation).
        assert result.types["w"].msb == 2

    def test_b_type(self, result):
        t = result.types["b"]
        assert t.msbspec == "saturate"
        assert t.msb == -2

    def test_equalizer_still_works_fixed_point(self, result):
        # Rebuild with the synthesized types and check decisions against
        # a float run: identical slicer outputs after convergence.
        from repro.refine import Annotations
        from repro.signal import DesignContext

        def decisions(types):
            ctx = DesignContext("check", seed=1)
            with ctx:
                d = LmsEqualizerDesign()
                d.build(ctx)
                if types:
                    Annotations(dtypes=types).apply(ctx)
                d.run(ctx, 3000)
            return d.decisions

        all_types = dict(result.types)
        all_types["x"] = T_INPUT
        fx = decisions(all_types)
        fl = decisions(None)
        mismatches = sum(1 for a, b in zip(fx[500:], fl[500:]) if a != b)
        assert mismatches / len(fx[500:]) < 0.01


class TestReportFormat:
    def test_msb_table_mentions_explosion(self, result):
        table = result.msb.iterations[0].table()
        assert "?" in table        # exploded propagation printed as '?'
        assert "w" in table and "b" in table

    def test_lsb_table_columns(self, result):
        table = result.lsb.final.table()
        for col in ("name", "#n", "max|e|", "mean", "sigma", "LSB"):
            assert col in table
