"""Bit-exact counterexample replay through the interpreted engine.

The checker's counterexamples are only reported after the real
simulation engine (``run_simulations``) reproduces them; these tests
exercise that path directly: the modelled stimulus drives an
:class:`SfgReplayDesign` and the engine's overflow log must show the
predicted signal, cycle and pre-quantization value.
"""

import pytest

from repro.verify import (Envelope, StepEncoder, VerifyError,
                          prove_no_limit_cycle, prove_no_overflow,
                          replay_counterexample, trace_design)
from repro.verify.replay import SfgReplayDesign
from repro.verify.gallery import (AccRoundWrapDesign, FirOkDesign,
                                  FirWrapBugDesign, GALLERY_ENVELOPE)


def _encoder(factory):
    traced = trace_design(factory)
    return StepEncoder(traced.sfg, traced.inputs,
                       Envelope(GALLERY_ENVELOPE))


class TestOverflowReplay:
    def test_engine_reproduces_modelled_overflow(self):
        v = prove_no_overflow(FirWrapBugDesign, GALLERY_ENVELOPE, k=3,
                              backend="enumeration")
        cex = v.counterexample
        enc = _encoder(FirWrapBugDesign)
        res = replay_counterexample(enc, cex, n_samples=cex.step + 1)
        assert res.completed
        events = [e for e in res.overflow_events(cex.signal)
                  if e[0] == cex.step]
        assert events, "engine logged no overflow at the modelled cycle"
        assert any(e[2] == cex.value for e in events), \
            "engine's pre-quantization value differs from the model"

    def test_replay_flag_set_by_prover(self):
        v = prove_no_overflow(FirWrapBugDesign, GALLERY_ENVELOPE, k=3,
                              backend="enumeration")
        assert v.counterexample.replayed is True

    def test_clean_design_logs_nothing(self):
        enc = _encoder(FirOkDesign)
        from repro.verify.verdict import Counterexample
        cex = Counterexample({"x": [1.0, -1.0, 1.0]}, {})
        res = replay_counterexample(enc, cex, n_samples=3)
        assert res.completed
        assert res.overflow_count("y") == 0


class TestLimitCycleReplay:
    def test_orbit_reproduces_in_engine(self):
        v = prove_no_limit_cycle(AccRoundWrapDesign, k=2,
                                 backend="enumeration")
        cex = v.counterexample
        enc = _encoder(AccRoundWrapDesign)
        res = replay_counterexample(enc, cex, n_samples=2)
        assert res.completed
        # the engine-held state repeats the nonzero init value.
        stored = res.stored_values("w")
        init = cex.init_state["w"]
        assert init != 0.0
        assert stored and all(s == init for s in stored)


class TestReplayMachinery:
    def test_stimulus_padded_past_horizon(self):
        enc = _encoder(FirOkDesign)
        from repro.verify.verdict import Counterexample
        cex = Counterexample({"x": [0.5]}, {})
        res = replay_counterexample(enc, cex, n_samples=4)
        assert res.completed
        # step 0 stores the stimulus; later steps pad with zero.
        assert res.stored_values("d0")[:2] == [0.5, 0.0]

    def test_incoming_values_expose_prequantization(self):
        enc = _encoder(FirWrapBugDesign)
        from repro.verify.verdict import Counterexample
        # 1.0 then 1.0: y at step 2 sees 0.5 + 0.5 = 1.0 pre-wrap.
        cex = Counterexample({"x": [1.0, 1.0, 1.0]}, {})
        res = replay_counterexample(enc, cex, n_samples=3)
        assert res.incoming_values("y")[2] == 1.0

    def test_drift_detection_raises(self):
        # Tamper with a counterexample so the claimed overflow cannot
        # reproduce: the prover-side confirmation must raise, never
        # report.
        from repro.verify.properties import _confirm_overflow_replay
        from repro.verify.verdict import Counterexample
        enc = _encoder(FirOkDesign)
        bogus = Counterexample({"x": [0.5, 0.5, 0.5]}, {}, signal="y",
                               step=2, value=123.0)
        with pytest.raises(VerifyError):
            _confirm_overflow_replay(enc, bogus)
