"""Tests for the VHDL back-end (netlist extraction + code generation)."""

import pytest

from repro.core.dtype import DType
from repro.core.errors import DesignError
from repro.hdl import (UnsupportedOpError, build_netlist, const_dtype,
                       derive_op_dtype, fixed_point_package, generate_design,
                       generate_entity, vhdl_identifier)
from repro.sfg import trace
from repro.signal import DesignContext, Reg, Sig, select
from repro.signal.ops import gt

T8 = DType("T8", 8, 5, "tc", "saturate", "round")
T6 = DType("T6", 6, 4, "tc", "saturate", "round")


def traced_mac():
    """acc <= acc + x*0.5, y = acc (combinational copy)."""
    ctx = DesignContext("hdl-mac", seed=0)
    with ctx:
        x = Sig("x")
        acc = Reg("acc")
        y = Sig("y")
        with trace(ctx) as t:
            x.assign(0.25)
            acc.assign(acc + x * 0.5)
            y.assign(acc + 0.0)
            ctx.tick()
    types = {"x": T8, "acc": T8, "y": T6}
    return t.sfg, types


class TestIdentifier:
    def test_arrays_and_dots(self):
        assert vhdl_identifier("mf.v[3]") == "mf_v_3"
        assert vhdl_identifier("d[0]") == "d_0"

    def test_leading_digit(self):
        assert vhdl_identifier("3x")[0].isalpha()

    def test_lowercase(self):
        assert vhdl_identifier("ACC") == "acc"


class TestOpTypeDerivation:
    def test_add_grows_one_bit(self):
        dt = derive_op_dtype("add", [T8, T8])
        assert dt.f == 5
        assert dt.msb == T8.msb + 1

    def test_mixed_fraction_add(self):
        dt = derive_op_dtype("add", [T8, T6])
        assert dt.f == 5

    def test_mul_exact(self):
        dt = derive_op_dtype("mul", [T8, T6])
        assert dt.f == 9
        assert dt.msb == T8.msb + T6.msb + 1

    def test_select_union(self):
        dt = derive_op_dtype("select", [T8, T8, T6])
        assert dt.f == max(T8.f, T6.f)

    def test_div_unsupported(self):
        with pytest.raises(UnsupportedOpError):
            derive_op_dtype("div", [T8, T8])

    def test_unknown_unsupported(self):
        with pytest.raises(UnsupportedOpError):
            derive_op_dtype("sqrt", [T8])

    def test_const_dtype_exact(self):
        dt = const_dtype(0.5)
        assert dt.quantize(0.5) == 0.5
        dt = const_dtype(-1.25)
        assert dt.quantize(-1.25) == -1.25


class TestNetlist:
    def test_nets_and_ops(self):
        sfg, types = traced_mac()
        nl = build_netlist(sfg, types, inputs=["x"], outputs=["y"])
        assert {n.name for n in nl.inputs()} == {"x"}
        assert {n.name for n in nl.outputs()} == {"y"}
        assert {n.name for n in nl.registers()} == {"acc"}
        assert len(nl.ops) >= 2  # mul and adds

    def test_missing_type_rejected(self):
        sfg, types = traced_mac()
        del types["acc"]
        with pytest.raises(DesignError):
            build_netlist(sfg, types, inputs=["x"], outputs=["y"])


def _balanced(text):
    depth = 0
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if depth < 0:
            return False
    return depth == 0


class TestPackage:
    def test_contains_helpers(self):
        pkg = fixed_point_package()
        for fn in ("f_shift", "f_round", "f_floor", "f_saturate", "f_wrap"):
            assert fn in pkg
        assert "package body" in pkg

    def test_balanced_parens(self):
        assert _balanced(fixed_point_package())


class TestEntityGeneration:
    def test_structure(self):
        sfg, types = traced_mac()
        text = generate_entity("mac", sfg, types, inputs=["x"],
                               outputs=["y"])
        assert "entity mac is" in text
        assert "architecture rtl of mac" in text
        assert "x : in signed(7 downto 0)" in text
        assert "y : out signed(5 downto 0)" in text
        assert "rising_edge(clk)" in text
        assert "acc" in text

    def test_balanced(self):
        sfg, types = traced_mac()
        assert _balanced(generate_entity("mac", sfg, types, ["x"], ["y"]))

    def test_register_reset(self):
        sfg, types = traced_mac()
        text = generate_entity("mac", sfg, types, ["x"], ["y"])
        assert "(others => '0')" in text

    def test_quantization_functions_used(self):
        sfg, types = traced_mac()
        text = generate_entity("mac", sfg, types, ["x"], ["y"])
        # Saturating assignments must go through f_saturate.
        assert "f_saturate" in text

    def test_full_design_includes_package(self):
        sfg, types = traced_mac()
        text = generate_design("mac", sfg, types, ["x"], ["y"])
        assert "package fixed_refine_pkg" in text
        assert "entity mac is" in text

    def test_select_emitted(self):
        ctx = DesignContext("hdl-sel", seed=0)
        with ctx:
            a = Sig("a")
            y = Sig("y")
            with trace(ctx) as t:
                a.assign(0.5)
                y.assign(select(gt(a, 0.0), 1.0, -1.0))
        types = {"a": T8, "y": DType("y_t", 2, 0)}
        text = generate_entity("slice", t.sfg, types, ["a"], ["y"])
        assert "when" in text and "else" in text


class TestLmsGeneration:
    """The full motivational example must generate end to end."""

    def test_generate_from_refinement_result(self):
        from repro.dsp.lms import LmsEqualizerDesign
        from repro.refine import FlowConfig, RefinementFlow

        flow = RefinementFlow(
            design_factory=LmsEqualizerDesign,
            input_types={"x": DType("T_input", 7, 5)},
            input_ranges={"x": (-1.5, 1.5)},
            user_ranges={"b": (-0.2, 0.2)},
            config=FlowConfig(n_samples=600, auto_range=False, seed=1),
        )
        res = flow.run()
        # Trace the structure once.
        ctx = DesignContext("lms-trace", seed=0)
        with ctx:
            design = LmsEqualizerDesign()
            design.build(ctx)
            with trace(ctx) as t:
                design.run(ctx, 3)
        types = dict(res.types)
        types["x"] = DType("T_input", 7, 5)
        text = generate_design("lms_equalizer", t.sfg, types,
                               inputs=["x"], outputs=["y"])
        assert "entity lms_equalizer is" in text
        assert _balanced(text)
        # Every refined signal appears as a VHDL identifier.
        for name in ("w", "b", "v[3]", "d[0]"):
            assert vhdl_identifier(name) in text
