"""Tests for deterministic cycle enumeration and divergence attribution."""

import pytest

from repro.core.dtype import DType
from repro.core.errors import DesignError, RangeDivergenceError
from repro.signal import DesignContext, Reg, Sig, cast
from repro.sfg import SFG, propagate_ranges, trace


@pytest.fixture
def ctx():
    with DesignContext("cycles-test", seed=0) as c:
        yield c


def _trace_accumulator(ctx):
    acc = Reg("acc")
    x = Sig("x")
    with trace(ctx) as t:
        x.assign(1.0)
        acc.assign(acc + x)
        ctx.tick()
    return t.sfg


class TestCycles:
    def test_self_loop_register(self, ctx):
        g = _trace_accumulator(ctx)
        cycles = g.cycles()
        assert len(cycles) == 1
        assert SFG.cycle_signal_names(cycles[0]) == ["acc"]

    def test_acyclic_graph(self, ctx):
        a = Sig("a")
        y = Sig("y")
        with trace(ctx) as t:
            a.assign(1.0)
            y.assign(a * 2.0)
        assert t.sfg.cycles() == []

    def test_two_overlapping_cycles(self, ctx):
        # r1 and r2 each feed back on themselves through a shared sum.
        r1 = Reg("r1")
        r2 = Reg("r2")
        s = Sig("s")
        with trace(ctx) as t:
            s.assign(r1 + r2)
            r1.assign(s * 0.5)
            r2.assign(s * 0.25)
            ctx.tick()
        cycles = t.sfg.cycles()
        names = sorted(tuple(SFG.cycle_signal_names(c)) for c in cycles)
        assert len(cycles) == 2
        assert any("r1" in ns for ns in names)
        assert any("r2" in ns for ns in names)
        assert all("s" in ns for ns in names)

    def test_deterministic_across_trace_order(self):
        """The same structure traced in different statement orders must
        produce identical cycle sets (node ids differ; labels do not)."""

        def build(order):
            with DesignContext("order-%s" % order, seed=0) as c:
                r1 = Reg("r1")
                r2 = Reg("r2")
                s = Sig("s")
                with trace(c) as t:
                    if order == "a":
                        s.assign(r1 + r2)
                        r1.assign(s * 0.5)
                        r2.assign(s * 0.25)
                    else:
                        # Prime the graph differently: assignments in
                        # reverse, an extra warm-up iteration.
                        r2.assign(s * 0.25)
                        r1.assign(s * 0.5)
                        s.assign(r1 + r2)
                        s.assign(r1 + r2)
                    c.tick()
                return [tuple((n.kind, n.label) for n in cyc)
                        for cyc in t.sfg.cycles()]

        assert build("a") == build("b")

    def test_cycles_deduplicated(self, ctx):
        # Re-executing the loop body many times must not duplicate cycles.
        acc = Reg("acc")
        x = Sig("x")
        with trace(ctx) as t:
            for i in range(20):
                x.assign(float(i))
                acc.assign(acc + x)
                ctx.tick()
        assert len(t.sfg.cycles()) == 1

    def test_canonical_rotation_starts_at_smallest(self, ctx):
        r = Reg("zz")
        s = Sig("aa")
        with trace(ctx) as t:
            s.assign(r * 0.5)
            r.assign(s + 1.0)
            ctx.tick()
        (cycle,) = t.sfg.cycles()
        keys = [(n.kind, n.label) for n in cycle]
        assert keys[0] == min(keys)


class TestDivergenceAttribution:
    def test_first_diverged_named(self, ctx):
        g = _trace_accumulator(ctx)
        res = propagate_ranges(g, input_ranges={"x": (-1, 1)})
        assert res.first_diverged == "acc"
        assert res.diverged["acc"] >= 1
        assert "acc" in res.exploded

    def test_no_divergence_when_annotated(self, ctx):
        g = _trace_accumulator(ctx)
        res = propagate_ranges(g, input_ranges={"x": (-1, 1)},
                               forced_ranges={"acc": (-4, 4)})
        assert res.first_diverged is None
        assert res.diverged == {}

    def test_raise_on_explosion(self, ctx):
        g = _trace_accumulator(ctx)
        with pytest.raises(RangeDivergenceError) as exc:
            propagate_ranges(g, input_ranges={"x": (-1, 1)},
                             raise_on_explosion=True)
        err = exc.value
        assert err.signal == "acc"
        assert err.round >= 1
        assert "acc" in err.signals
        assert "acc" in str(err)

    def test_divergence_error_is_design_error(self, ctx):
        g = _trace_accumulator(ctx)
        with pytest.raises(DesignError):
            propagate_ranges(g, input_ranges={"x": (-1, 1)},
                             raise_on_explosion=True)

    def test_attribution_picks_source_of_growth(self, ctx):
        # acc explodes and drags y with it; the accumulator is the root.
        acc = Reg("acc")
        x = Sig("x")
        y = Sig("y")
        with trace(ctx) as t:
            x.assign(1.0)
            acc.assign(acc + x)
            y.assign(acc * 2.0)
            ctx.tick()
        res = propagate_ranges(t.sfg, input_ranges={"x": (-1, 1)})
        assert set(res.exploded) == {"acc", "y"}
        assert res.first_diverged == "acc"

    def test_annotated_converging_cycle(self, ctx):
        # A decaying loop (gain < 1) converges without any annotation.
        r = Reg("r")
        x = Sig("x")
        with trace(ctx) as t:
            x.assign(1.0)
            r.assign(r * 0.5 + x)
            ctx.tick()
        res = propagate_ranges(t.sfg, input_ranges={"x": (-1, 1)})
        # Widening may still push it to infinity or it may settle; either
        # way the call must not raise without raise_on_explosion.  With a
        # range() annotation the loop is pinned exactly.
        res = propagate_ranges(t.sfg, input_ranges={"x": (-1, 1)},
                               forced_ranges={"r": (-2, 2)})
        assert res.exploded == []
        assert res.ranges["r"].hi == 2

    def test_cycle_broken_by_saturating_cast(self, ctx):
        T = DType("T", 8, 5, msbspec="saturate")
        acc = Reg("acc")
        x = Sig("x")
        with trace(ctx) as t:
            x.assign(1.0)
            acc.assign(cast(acc + x, T))
            ctx.tick()
        res = propagate_ranges(t.sfg, input_ranges={"x": (-1, 1)})
        assert res.exploded == []
        assert res.first_diverged is None
        assert res.ranges["acc"].hi <= T.max_value
        # The cycle is still *structurally* there — only its growth is
        # broken by the saturating cast.
        assert len(t.sfg.cycles()) == 1
