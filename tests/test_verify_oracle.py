"""Lint-vs-verifier oracle cross-checks (ISSUE 8 satellites 1 and 3).

The linter *predicts* hazards from structure; the verifier *decides*
them. For each heuristic rule, a triggering design and a clean twin
are run through both — the lint finding must agree with the proof:

* FX001 (msb-explosion) / FX002 (declared-range-overflow) against
  ``prove_no_overflow``,
* FX009 (state-loop-without-saturation) against
  ``prove_no_limit_cycle``.
"""

import pytest

from repro.core.dtype import DType
from repro.lint.core import run_lint
from repro.refine.flow import Design
from repro.signal import Reg, Sig
from repro.verify import (COUNTEREXAMPLE, PROVED, prove_no_limit_cycle,
                          prove_no_overflow, trace_design)
from repro.verify.gallery import (AccRoundWrapDesign, AccTruncDesign,
                                  GALLERY_ENVELOPE)

_T_IN = DType("TIN", 5, 3, "tc", "saturate", "round")
_RANGES = {"x": (-1.0, 1.0)}


def _lint_ids(factory, **kwargs):
    traced = trace_design(factory)
    report = run_lint(traced.sfg, input_ranges=_RANGES,
                      design_name=traced.name, **kwargs)
    return {f.rule_id for f in report}


class GrowingAccDesign(Design):
    """Unprotected feedback accumulator squeezed into a tiny wrapping
    word: FX001 fires (range explodes analytically) and the verifier
    exhibits the overflow within three steps."""

    name = "growing-acc"
    inputs = ("x",)
    output = "acc"
    acc_dtype = DType("TA", 3, 1, "tc", "wrap", "round")

    def build(self, ctx):
        self.x = Sig("x", dtype=_T_IN)
        self.acc = Reg("acc", dtype=self.acc_dtype)

    def run(self, ctx, n):
        for _ in range(int(n)):
            self.x.assign(0.5)
            self.acc.assign(self.acc + self.x)
            ctx.tick()


class BoundedAccDesign(GrowingAccDesign):
    """Clean twin: the same loop through a saturating word wide enough
    that three steps of |x| <= 1 cannot overflow."""

    name = "bounded-acc"
    acc_dtype = DType("TA", 8, 3, "tc", "saturate", "round")


class TestFX001Oracle:
    def test_trigger_agrees(self):
        ids = _lint_ids(GrowingAccDesign)
        assert "FX001" in ids or "FX002" in ids
        v = prove_no_overflow(GrowingAccDesign, GALLERY_ENVELOPE, k=3,
                              backend="enumeration")
        assert v.status == COUNTEREXAMPLE
        assert v.counterexample.replayed

    def test_clean_twin_agrees(self):
        ids = _lint_ids(BoundedAccDesign)
        assert "FX001" not in ids and "FX002" not in ids
        v = prove_no_overflow(BoundedAccDesign, GALLERY_ENVELOPE, k=3,
                              backend="enumeration")
        assert v.status == PROVED


class WrapOutputDesign(Design):
    """Feed-forward gain 2 into a wrapping word that holds only
    [-1, 1): FX002's silent-wrap hazard, decided by the checker."""

    name = "wrap-output"
    inputs = ("x",)
    output = "y"
    y_dtype = DType("TYO", 4, 3, "tc", "wrap", "round")

    def build(self, ctx):
        self.x = Sig("x", dtype=_T_IN)
        self.y = Sig("y", dtype=self.y_dtype)

    def run(self, ctx, n):
        for _ in range(int(n)):
            self.x.assign(0.5)
            self.y.assign(self.x * 2.0)
            ctx.tick()


class WideOutputDesign(WrapOutputDesign):
    """Clean twin: the same gain into a word with headroom."""

    name = "wide-output"
    y_dtype = DType("TYO", 6, 3, "tc", "wrap", "round")


class TestFX002Oracle:
    def test_trigger_agrees(self):
        assert "FX002" in _lint_ids(WrapOutputDesign)
        v = prove_no_overflow(WrapOutputDesign, GALLERY_ENVELOPE, k=2,
                              backend="enumeration")
        assert v.status == COUNTEREXAMPLE
        assert v.counterexample.signal == "y"
        assert v.counterexample.replayed

    def test_clean_twin_agrees(self):
        assert "FX002" not in _lint_ids(WideOutputDesign)
        v = prove_no_overflow(WideOutputDesign, GALLERY_ENVELOPE, k=2,
                              backend="enumeration")
        assert v.status == PROVED


class TestFX009Oracle:
    """FX009 predicts the limit-cycle hazard that
    ``prove_no_limit_cycle`` decides exactly."""

    def test_trigger_agrees(self):
        assert "FX009" in _lint_ids(AccRoundWrapDesign)
        v = prove_no_limit_cycle(AccRoundWrapDesign, k=2,
                                 backend="enumeration")
        assert v.status == COUNTEREXAMPLE
        assert v.counterexample.replayed

    def test_clean_twin_agrees(self):
        assert "FX009" not in _lint_ids(AccTruncDesign)
        v = prove_no_limit_cycle(AccTruncDesign, k=4,
                                 backend="enumeration")
        assert v.status == PROVED

    def test_heuristic_is_conservative(self):
        # FX009 fires on any wrapping state loop; the checker can still
        # prove short-period safety — the rule is a predictor, the
        # proof is the decision.  Saturating round-half-up *does*
        # sustain code 1 as well, which FX009 (wrap-only) misses:
        # the proof catches what the heuristic cannot.
        class SatRoundAcc(AccRoundWrapDesign):
            name = "acc-round-sat"
            w_dtype = DType("TWS", 5, 3, "tc", "saturate", "round")

        assert "FX009" not in _lint_ids(SatRoundAcc)
        v = prove_no_limit_cycle(SatRoundAcc, k=2,
                                 backend="enumeration")
        assert v.status == COUNTEREXAMPLE
