"""Property-based tests for interval arithmetic soundness.

Soundness is the load-bearing invariant of the quasi-analytical MSB
method: for every operation, the interval result must contain the result
of applying the operation to any points of the operand intervals.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.interval import Interval

finite = st.floats(min_value=-1e9, max_value=1e9,
                   allow_nan=False, allow_infinity=False)


@st.composite
def intervals(draw):
    a = draw(finite)
    b = draw(finite)
    return Interval(min(a, b), max(a, b))


@st.composite
def interval_with_point(draw):
    iv = draw(intervals())
    t = draw(st.floats(min_value=0.0, max_value=1.0))
    p = iv.lo + t * (iv.hi - iv.lo)
    # Guard against fp rounding pushing p outside.
    p = min(max(p, iv.lo), iv.hi)
    return iv, p


TOL = 1e-6


def _contains(iv, v):
    # Exact containment first: the tolerance arithmetic below produces
    # NaN for infinite bounds (inf - inf), e.g. when a denormal divisor
    # overflows a quotient to inf.
    if iv.lo <= v <= iv.hi:
        return True
    span = max(1.0, abs(iv.lo), abs(iv.hi))
    return iv.lo - TOL * span <= v <= iv.hi + TOL * span


class TestSoundness:
    @given(interval_with_point(), interval_with_point())
    def test_add(self, ap, bp):
        (a, pa), (b, pb) = ap, bp
        assert _contains(a + b, pa + pb)

    @given(interval_with_point(), interval_with_point())
    def test_sub(self, ap, bp):
        (a, pa), (b, pb) = ap, bp
        assert _contains(a - b, pa - pb)

    @given(interval_with_point(), interval_with_point())
    def test_mul(self, ap, bp):
        (a, pa), (b, pb) = ap, bp
        assert _contains(a * b, pa * pb)

    @given(interval_with_point(), interval_with_point())
    def test_div(self, ap, bp):
        (a, pa), (b, pb) = ap, bp
        assume(not b.contains(0.0))
        assume(pb != 0.0)
        assert _contains(a / b, pa / pb)

    @given(interval_with_point())
    def test_neg_abs(self, ap):
        a, pa = ap
        assert _contains(-a, -pa)
        assert _contains(abs(a), abs(pa))

    @given(interval_with_point(), st.integers(min_value=-8, max_value=8))
    def test_shift(self, ap, k):
        a, pa = ap
        assert _contains(a.scale_pow2(k), pa * (2.0 ** k))

    @given(interval_with_point(), interval_with_point())
    def test_min_max(self, ap, bp):
        (a, pa), (b, pb) = ap, bp
        assert _contains(a.minimum(b), min(pa, pb))
        assert _contains(a.maximum(b), max(pa, pb))

    @given(interval_with_point(), interval_with_point())
    def test_union_contains_both(self, ap, bp):
        (a, pa), (b, pb) = ap, bp
        u = a.union(b)
        assert _contains(u, pa) and _contains(u, pb)


class TestLatticeLaws:
    @given(intervals(), intervals())
    def test_union_commutes(self, a, b):
        assert a.union(b) == b.union(a)

    @given(intervals(), intervals(), intervals())
    def test_union_associates(self, a, b, c):
        assert a.union(b).union(c) == a.union(b.union(c))

    @given(intervals())
    def test_union_idempotent(self, a):
        assert a.union(a) == a

    @given(intervals(), intervals())
    def test_intersect_within_both(self, a, b):
        i = a.intersect(b)
        if not i.is_empty:
            assert a.contains(i) and b.contains(i)

    @given(intervals(), intervals())
    def test_clip_within_target(self, a, b):
        c = a.clip(b)
        assert b.contains(c)

    @given(intervals(), intervals())
    def test_widening_is_extensive(self, a, b):
        w = a.widen_to(b)
        assert w.contains(a)
        assert w.contains(b)


class TestWideningTerminates:
    @given(intervals(), st.lists(intervals(), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_chain_stabilizes(self, start, updates):
        # Repeated widening must reach a fixpoint quickly: each bound can
        # only jump to infinity once.
        cur = start
        changes = 0
        for u in updates * 3:
            new = cur.widen_to(cur.union(u))
            if new != cur:
                changes += 1
            cur = new
        assert changes <= 2
