"""Unit tests for the DSP block library (FIR, slicer, RRC, PAM, channel)."""

import numpy as np
import pytest

from repro.core.dtype import DType
from repro.core.errors import DesignError
from repro.dsp import (Channel, FirFilter, ShapedPamStream, awgn,
                       binary_slicer, fir_reference, pam_levels, pam_slicer,
                       pam_symbols, raised_cosine_pulse, rrc_pulse, rrc_taps,
                       shaped_pam)
from repro.signal import DesignContext, Sig


@pytest.fixture
def ctx():
    with DesignContext("dsp-test", seed=0) as c:
        yield c


class TestFirFilter:
    def test_matches_reference(self, ctx):
        taps = [0.5, -0.25, 0.125]
        f = FirFilter("f", taps)
        x = np.random.default_rng(0).uniform(-1, 1, size=64)
        got = []
        for v in x:
            f.step(float(v))
            got.append(f.out.fx)
            ctx.tick()
        np.testing.assert_allclose(got, fir_reference(taps, x), atol=1e-12)

    def test_signal_naming(self, ctx):
        f = FirFilter("mf", [1.0, 2.0])
        names = [s.name for s in f.signals()]
        assert "mf.c[0]" in names and "mf.d[1]" in names and "mf.v[2]" in names

    def test_accepts_signal_input(self, ctx):
        f = FirFilter("f", [1.0])
        x = Sig("x")
        x.assign(0.5)
        f.step(x)
        ctx.tick()
        f.step(x)
        assert f.out.fx == 0.5

    def test_empty_taps_rejected(self, ctx):
        with pytest.raises(DesignError):
            FirFilter("f", [])

    def test_impulse_response(self, ctx):
        taps = [1.0, -2.0, 3.0]
        f = FirFilter("f", taps)
        out = []
        for v in [1.0, 0.0, 0.0, 0.0, 0.0]:
            f.step(v)
            out.append(f.out.fx)
            ctx.tick()
        # One-cycle input delay, then the taps.
        assert out == [0.0, 1.0, -2.0, 3.0, 0.0]


class TestSlicers:
    def test_binary(self, ctx):
        a = Sig("a")
        a.assign(0.3)
        assert binary_slicer(a).fx == 1.0
        a.assign(-0.3)
        assert binary_slicer(a).fx == -1.0

    def test_binary_zero_goes_negative(self, ctx):
        # w > 0 ? 1 : -1, so 0 maps to -1 (paper semantics).
        assert binary_slicer(0.0).fx == -1.0

    def test_pam_levels(self):
        assert pam_levels(2) == (-1.0, 1.0)
        assert pam_levels(4) == (-1.0, -1.0 / 3.0, 1.0 / 3.0, 1.0)

    def test_pam_levels_invalid(self):
        with pytest.raises(DesignError):
            pam_levels(3)

    def test_pam4_slicer(self, ctx):
        for target in pam_levels(4):
            got = pam_slicer(target + 0.05, m=4).fx
            assert got == pytest.approx(target)

    def test_pam_slicer_range_union(self, ctx):
        e = pam_slicer(0.2, m=4)
        assert e.ival.lo == -1.0 and e.ival.hi == 1.0


class TestRrc:
    def test_peak_at_zero(self):
        assert rrc_pulse(0.0) == pytest.approx(1.0 + 0.5 * (4 / np.pi - 1))

    def test_pole_is_finite(self):
        beta = 0.5
        v = rrc_pulse(1.0 / (4 * beta), beta)
        assert np.isfinite(v)
        # continuity across the singularity
        eps = 1e-6
        near = rrc_pulse(1.0 / (4 * beta) + eps, beta)
        assert v == pytest.approx(near, abs=1e-4)

    def test_symmetry(self):
        t = np.linspace(0.1, 4.0, 50)
        np.testing.assert_allclose(rrc_pulse(t), rrc_pulse(-t), atol=1e-12)

    def test_invalid_rolloff(self):
        with pytest.raises(ValueError):
            rrc_pulse(0.0, rolloff=0.0)
        with pytest.raises(ValueError):
            raised_cosine_pulse(0.0, rolloff=1.5)

    def test_rc_is_nyquist(self):
        # Raised cosine is zero at nonzero integers (no ISI).
        for k in range(1, 6):
            assert raised_cosine_pulse(float(k)) == pytest.approx(0.0,
                                                                  abs=1e-12)
        assert raised_cosine_pulse(0.0) == pytest.approx(1.0)

    def test_rc_pole(self):
        beta = 0.5
        v = raised_cosine_pulse(1.0 / (2 * beta), beta)
        assert np.isfinite(v)

    def test_taps_symmetric_unit_energy(self):
        h = rrc_taps(sps=2, span=4, rolloff=0.5)
        assert len(h) == 9
        np.testing.assert_allclose(h, h[::-1], atol=1e-12)
        assert np.sum(h * h) == pytest.approx(1.0)

    def test_taps_unnormalized(self):
        h = rrc_taps(sps=2, span=4, normalize=False)
        assert h[len(h) // 2] == pytest.approx(rrc_pulse(0.0))


class TestPam:
    def test_symbols_levels(self):
        syms = pam_symbols(1000, m=2, seed=1)
        assert set(np.unique(syms)) == {-1.0, 1.0}

    def test_symbols_deterministic(self):
        a = pam_symbols(100, seed=7)
        b = pam_symbols(100, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_shaped_pam_peaks_recover_symbols(self):
        # RC pulse, no offsets: even samples are exactly the symbols.
        samples, symbols = shaped_pam(400, sps=2.0, timing_offset=0.0,
                                      seed=3)
        on_time = samples[0::2]
        np.testing.assert_allclose(on_time, symbols[:len(on_time)],
                                   atol=1e-6)

    def test_shaped_pam_noise(self):
        clean, _ = shaped_pam(400, seed=3)
        noisy, _ = shaped_pam(400, seed=3, noise_std=0.1)
        resid = np.std(noisy - clean)
        assert 0.05 < resid < 0.2

    def test_stream_matches_batch(self):
        kw = dict(sps=2.0, rolloff=0.5, span=8, timing_offset=0.17,
                  clock_ppm=150.0, seed=11)
        batch, _ = shaped_pam(512, **kw)
        stream = ShapedPamStream(**kw)
        got = np.concatenate([stream.take(100) for _ in range(5)]
                             + [stream.take(12)])
        np.testing.assert_allclose(got, batch, atol=1e-9)

    def test_stream_symbols_exposed(self):
        stream = ShapedPamStream(seed=2)
        stream.take(100)
        assert len(stream.symbols) >= 50

    def test_stream_iter(self):
        stream = ShapedPamStream(seed=2)
        it = iter(stream)
        vals = [next(it) for _ in range(10)]
        assert len(vals) == 10


class TestChannel:
    def test_block_equals_streaming(self):
        taps = [1.0, 0.4, -0.1]
        x = np.random.default_rng(2).uniform(-1, 1, size=50)
        c1 = Channel(taps)
        block = c1.process(x)
        c2 = Channel(taps)
        stream = [c2.step(float(v)) for v in x]
        np.testing.assert_allclose(block, stream, atol=1e-12)

    def test_state_across_blocks(self):
        taps = [1.0, 0.5]
        c1 = Channel(taps)
        full = c1.process(np.arange(10.0))
        c2 = Channel(taps)
        parts = np.concatenate([c2.process(np.arange(10.0)[:4]),
                                c2.process(np.arange(10.0)[4:])])
        np.testing.assert_allclose(full, parts, atol=1e-12)

    def test_reset(self):
        c = Channel([1.0, 1.0])
        c.step(1.0)
        c.reset()
        assert c.step(0.0) == 0.0

    def test_noise_deterministic(self):
        a = Channel([1.0], noise_std=0.1, seed=5).process(np.zeros(10))
        b = Channel([1.0], noise_std=0.1, seed=5).process(np.zeros(10))
        np.testing.assert_array_equal(a, b)

    def test_invalid_taps(self):
        with pytest.raises(ValueError):
            Channel([])

    def test_awgn(self):
        y = awgn(np.zeros(10000), 0.5, seed=1)
        assert np.std(y) == pytest.approx(0.5, rel=0.05)
        np.testing.assert_array_equal(awgn(np.ones(5), 0.0), np.ones(5))
        with pytest.raises(ValueError):
            awgn(np.zeros(3), -1.0)
