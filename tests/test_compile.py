"""Unit tests for the compiled-engine machinery itself.

The bit-exactness of compiled results is property-tested in
``test_property_compile.py``; this module pins down the surrounding
contracts — engine selection, fingerprint identity, eligibility and
grouping, fallback diagnostics, cache/journal interplay and the
quantization-plan edge gates.
"""

import math

import numpy as np
import pytest

from repro.compile import (COMPILER_VERSION, CompileFallback, compile_design,
                           config_eligible, group_key)
from repro.compile.vectorops import QuantGroup, build_quant_plan
from repro.core.dtype import DType
from repro.dsp.lms import LmsEqualizerDesign
from repro.dsp.timing_recovery import TimingRecoveryDesign
from repro.obs import counters, metrics as obs_metrics
from repro.parallel.runner import (SimCache, SimConfig, fingerprint,
                                   run_simulations)
from repro.robust.diagnostics import Diagnostics
from repro.robust.faults import StuckAt
from repro.sim.engine import (ENGINES, default_engine, resolve_engine,
                              set_default_engine)


# -- engine selection ---------------------------------------------------------


class TestEngineSelection:
    def test_default_is_interpreted(self):
        assert default_engine() == "interpreted"
        assert resolve_engine(None) == "interpreted"

    def test_explicit_wins(self):
        assert resolve_engine("compiled") == "compiled"
        assert resolve_engine("interpreted") == "interpreted"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            resolve_engine("jit")
        with pytest.raises(ValueError, match="engine"):
            set_default_engine("jit")

    def test_set_default_engine_roundtrip(self):
        prev = set_default_engine("compiled")
        try:
            assert default_engine() == "compiled"
            assert resolve_engine(None) == "compiled"
        finally:
            set_default_engine(prev)
        assert default_engine() == "interpreted"

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "compiled")
        assert default_engine() == "compiled"
        monkeypatch.setenv("REPRO_ENGINE", "bogus")
        assert default_engine() == "interpreted"

    def test_engines_tuple(self):
        assert ENGINES == ("interpreted", "compiled")


# -- fingerprint engine identity ----------------------------------------------


class TestFingerprintEngine:
    def test_interpreted_key_unchanged(self):
        # Pre-engine journals must keep replaying: the interpreted key
        # is exactly the key fingerprint() produced before the engine
        # parameter existed.
        cfg = SimConfig(label="a", n_samples=50)
        legacy = fingerprint(LmsEqualizerDesign, cfg)
        assert fingerprint(LmsEqualizerDesign, cfg,
                           engine="interpreted") == legacy

    def test_compiled_key_differs(self):
        cfg = SimConfig(label="a", n_samples=50)
        assert (fingerprint(LmsEqualizerDesign, cfg, engine="compiled")
                != fingerprint(LmsEqualizerDesign, cfg))

    def test_compiler_version_in_key(self, monkeypatch):
        cfg = SimConfig(label="a", n_samples=50)
        k1 = fingerprint(LmsEqualizerDesign, cfg, engine="compiled")
        import repro.compile as rc
        monkeypatch.setattr(rc, "COMPILER_VERSION", COMPILER_VERSION + 1)
        k2 = fingerprint(LmsEqualizerDesign, cfg, engine="compiled")
        assert k1 != k2


# -- eligibility / grouping ---------------------------------------------------


class TestEligibility:
    def test_plain_config_eligible(self):
        assert config_eligible(SimConfig())

    def test_faults_ineligible(self):
        cfg = SimConfig(faults=(StuckAt("x", value=0.0),))
        assert not config_eligible(cfg)

    def test_error_annotations_ineligible(self):
        assert not config_eligible(SimConfig(errors={"x": 1e-3}))

    def test_deadline_ineligible(self):
        assert not config_eligible(SimConfig(deadline_seconds=1.0))

    def test_wide_dtype_ineligible(self):
        cfg = SimConfig(dtypes={"x": DType("T", 54, 10)})
        assert not config_eligible(cfg)
        assert config_eligible(SimConfig(dtypes={"x": DType("T", 53, 10)}))

    def test_group_key_partitions(self):
        a = SimConfig(label="a", n_samples=100, seed=1)
        b = SimConfig(label="b", n_samples=100, seed=1,
                      dtypes={"x": DType("T", 8, 6)}, catch_errors=True)
        c = SimConfig(label="c", n_samples=200, seed=1)
        assert group_key(a) == group_key(b)   # label/dtypes don't split
        assert group_key(a) != group_key(c)   # n_samples does


# -- compile_design / describe ------------------------------------------------


class TestCompileDesign:
    def test_describe_lowered(self):
        info = compile_design(LmsEqualizerDesign).describe()
        assert info["lowered"] is True
        assert info["reason"] is None
        assert info["instructions"] > 0
        assert info["signals"] > 0
        assert info["compiler_version"] == COMPILER_VERSION

    def test_describe_fallback_reason(self):
        info = compile_design(TimingRecoveryDesign).describe()
        assert info["lowered"] is False
        assert info["reason"]

    def test_describe_ineligible(self):
        sim = compile_design(LmsEqualizerDesign,
                             SimConfig(deadline_seconds=1.0))
        info = sim.describe()
        assert info["lowered"] is False
        assert info["eligible"] is False

    def test_run_matches_interpreted(self):
        cfgs = [SimConfig(label="l%d" % i, n_samples=60, seed=i)
                for i in range(3)]
        compiled = compile_design(LmsEqualizerDesign).run(cfgs)
        interp = run_simulations(LmsEqualizerDesign, cfgs, workers=0)
        for a, b in zip(compiled, interp):
            assert a.output == b.output
            assert (a.records[a.output].sqnr_db()
                    == b.records[b.output].sqnr_db())


# -- fallback diagnostics -----------------------------------------------------


class TestFallbackDiagnostics:
    def test_dg209_emitted(self):
        diags = Diagnostics()
        counters.reset()
        run_simulations(TimingRecoveryDesign,
                        [SimConfig(label="t", n_samples=200)],
                        workers=0, engine="compiled", diagnostics=diags)
        events = diags.by_category("compile-fallback")
        assert len(events) == 1
        assert events[0].code == "DG209"
        assert events[0].severity == "info"
        assert counters.get("compile.fallbacks") == 1

    def test_clean_compile_no_diags(self):
        diags = Diagnostics()
        run_simulations(LmsEqualizerDesign,
                        [SimConfig(label="l", n_samples=60)],
                        workers=0, engine="compiled", diagnostics=diags)
        assert not diags.by_category("compile-fallback")

    def test_metrics_enabled_disables_compile(self):
        # Per-assignment metrics hook the scalar path; the compiled
        # engine cannot feed them and must step aside entirely.
        counters.reset()
        obs_metrics.enable()
        try:
            run_simulations(LmsEqualizerDesign,
                            [SimConfig(label="m", n_samples=60)],
                            workers=0, engine="compiled")
        finally:
            obs_metrics.disable()
        assert counters.get("compile.batches") == 0
        assert counters.get("compile.ineligible") == 1


# -- cache / journal interplay ------------------------------------------------


class TestCacheJournal:
    def test_compiled_outcomes_cached(self):
        cache = SimCache()
        cfgs = [SimConfig(label="c%d" % i, n_samples=60,
                          dtypes={"x": DType("T", 8, 6)}) for i in range(4)]
        run_simulations(LmsEqualizerDesign, cfgs, workers=0,
                        cache=cache, engine="compiled")
        assert cache.misses == 4
        counters.reset()
        out = run_simulations(LmsEqualizerDesign, cfgs, workers=0,
                              cache=cache, engine="compiled")
        assert cache.hits == 4
        assert counters.get("compile.batches") == 0   # nothing re-ran
        assert all(o.error is None for o in out)

    def test_journal_replay(self, tmp_path):
        path = tmp_path / "compile.journal"
        cfg = SimConfig(label="j", n_samples=60)
        first = run_simulations(LmsEqualizerDesign, [cfg], workers=0,
                                journal=path, engine="compiled")
        counters.reset()
        second = run_simulations(LmsEqualizerDesign, [cfg], workers=0,
                                 journal=path, engine="compiled")
        assert counters.get("compile.batches") == 0
        assert (first[0].records[first[0].output].sqnr_db()
                == second[0].records[second[0].output].sqnr_db())

    def test_engines_do_not_share_cache_keys(self):
        cache = SimCache()
        cfg = SimConfig(label="x", n_samples=60)
        run_simulations(LmsEqualizerDesign, [cfg], workers=0,
                        cache=cache, engine="interpreted")
        run_simulations(LmsEqualizerDesign, [cfg], workers=0,
                        cache=cache, engine="compiled")
        assert len(cache) == 2


# -- quantization-plan gates --------------------------------------------------


class TestQuantPlan:
    def test_all_untyped_passthrough(self):
        plan = build_quant_plan([None, None])
        assert plan.groups == ()

    def test_uniform_single_group(self):
        dt = DType("T", 8, 6)
        plan = build_quant_plan([dt, dt, dt])
        assert len(plan.groups) == 1
        assert plan.groups[0].idx is None

    def test_mixed_groups_and_passthrough(self):
        a, b = DType("A", 8, 6), DType("B", 10, 4)
        plan = build_quant_plan([a, None, b, a])
        assert len(plan.groups) == 2
        assert plan.passthrough_idx.tolist() == [1]

    def test_wide_dtype_gate(self):
        with pytest.raises(CompileFallback, match="n=54"):
            build_quant_plan([DType("W", 54, 10)])

    def test_wrap_wide_gate(self):
        with pytest.raises(CompileFallback, match="wrap"):
            QuantGroup(DType("W", 53, 0, msbspec="wrap"))
        QuantGroup(DType("W", 52, 0, msbspec="wrap"))   # exact: fine

    def test_apply_matches_scalar_kernel(self):
        # Spot-check the vector quantizer against the scalar kernel at
        # the nasty points (ties, boundaries); the engine-level property
        # tests cover it end to end.
        dt = DType("T", 6, 3, msbspec="wrap")
        g = QuantGroup(dt)
        vals = np.array([3.9375, -4.0625, 0.0625, 0.1875, -0.1875, 11.3])
        out = np.empty_like(vals)
        codes = np.empty_like(vals)
        bad = np.empty(len(vals), dtype=bool)
        b2 = np.empty(len(vals), dtype=bool)
        g.apply(vals, out, codes, bad, b2)
        for v, got in zip(vals, out):
            assert got == dt.kernel(float(v))[0]
