"""A tour of the design gallery (``docs/gallery.md``).

1. walk the registry: seven refinement case studies, each with a
   declared input envelope, chosen dtypes and a documented SQNR
   target;
2. run one design end to end — annotated simulation, lint pre-flight,
   bounded-model-checking pre-flight — the same triple the CLI's
   ``python -m repro.gallery run`` prints;
3. run a miniature scenario matrix (2 designs x 2 channels x
   2 fault campaigns x 2 seeds) with a write-ahead journal, then run
   it again to show every cell replaying bit-exactly from disk;
4. write the artifact and regression-check it against itself — the
   contract CI's gallery-smoke job enforces with the committed
   ``GALLERY_MATRIX.json``.

Run:  python examples/gallery_tour.py
"""

import os
import tempfile

from repro.gallery import (gallery, lint_entry, single_run, verify_entry)
from repro.gallery.matrix import (check_artifact, load_artifact,
                                  run_matrix, write_artifact)
from repro.obs import counters

# -- 1. the registry -----------------------------------------------------

entries = gallery()
print("registry: %d designs" % len(entries))
for name in sorted(entries):
    e = entries[name]
    print("  %-14s target %5.1f dB  %s" % (name, e.sqnr_target_db,
                                           e.description))

# -- 2. one design end to end -------------------------------------------

entry = entries["goertzel"]
out = single_run(entry, n_samples=1024)
sqnr = out.sqnr_db()
print("\ngoertzel: SQNR %.2f dB (target %.1f)" % (sqnr,
                                                  entry.sqnr_target_db))
assert out.completed and sqnr >= entry.sqnr_target_db

report = lint_entry(entry)
errors = [f for f in report if f.severity == "error"]
print("lint: %d finding(s), %d error(s)" % (len(report), len(errors)))
assert not errors

for verdict in verify_entry(entry):
    print("verify:", verdict.describe())
    assert verdict.status == "PROVED"

# -- 3. a mini matrix, journaled and resumed ----------------------------

grid = dict(designs=("kalman", "iir-lattice"),
            channels=("clean", "awgn"),
            campaigns=("clean", "bitflip-lsb"),
            seeds=(101, 202), n_samples=256, analyze=False)

with tempfile.TemporaryDirectory() as tmp:
    journal = os.path.join(tmp, "matrix.jsonl")
    first = run_matrix(journal=journal, **grid)
    print("\nmatrix: %d cells, digest %s..."
          % (len(first.cells), first.digest()[:12]))

    counters.reset()
    second = run_matrix(journal=journal, **grid)
    replays = counters.get("journal.replays")
    print("rerun with the same journal: %d/%d cells replayed from disk"
          % (replays, len(second.cells)))
    assert replays == len(first.cells)
    assert first.digest() == second.digest()

    # -- 4. the artifact contract ---------------------------------------

    full = run_matrix(designs=sorted(entries), n_samples=256,
                      seeds=(101, 202))
    path = os.path.join(tmp, "GALLERY_MATRIX.json")
    write_artifact(full, path)
    problems = check_artifact(full.to_artifact(), load_artifact(path))
    print("artifact: %d cells, %d designs analyzed, check -> %s"
          % (len(full.cells), len(full.design_reports),
             problems or "ok"))
    assert not problems
    for name, rep in sorted(full.design_reports.items()):
        print("  %-14s min clean SQNR %6.2f dB  lint_clean=%s  %s"
              % (name, rep["sqnr_db_min_clean"], rep["lint_clean"],
                 ",".join(v["status"] for v in rep["verify"])))

print("\ngallery tour ok")
