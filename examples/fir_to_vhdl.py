"""From floating-point filter to synthesizable VHDL.

The paper's environment closes the loop from algorithm to hardware: a
code generator translates the refined cycle-true description into
synthesizable VHDL.  This example refines a small pulse-shaping FIR and
writes the generated RTL (support package + entity) next to the script.

Run:  python examples/fir_to_vhdl.py
"""

import os

import numpy as np

from repro import DType, Sig
from repro.dsp.fir import FirFilter
from repro.hdl import generate_design
from repro.refine import Design, FlowConfig, RefinementFlow
from repro.sfg import trace
from repro.signal import DesignContext

TAPS = (-0.031, 0.103, 0.476, 0.476, 0.103, -0.031)  # half-band-ish
T_IN = DType("T_in", 8, 6, "tc", "saturate", "round")


class PulseShaper(Design):
    name = "pulse-shaper"
    inputs = ("x",)
    output = "f.v[%d]" % len(TAPS)

    def build(self, ctx):
        self.x = Sig("x")
        self.fir = FirFilter("f", TAPS)
        rng = np.random.default_rng(12)
        self._stim = iter(rng.uniform(-1, 1, size=100000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.fir.step(self.x)
            ctx.tick()


def main():
    # 1. Refine.
    flow = RefinementFlow(
        design_factory=PulseShaper,
        input_types={"x": T_IN},
        input_ranges={"x": (-1.0, 1.0)},
        config=FlowConfig(n_samples=3000, seed=4),
    )
    result = flow.run()
    print(result.types_table())
    print()
    print(result.summary())

    # 2. Capture the structure (a couple of traced samples suffice).
    ctx = DesignContext("trace", seed=0)
    with ctx:
        design = PulseShaper()
        design.build(ctx)
        with trace(ctx) as t:
            design.run(ctx, 3)

    # 3. Emit VHDL.
    types = dict(result.types)
    types["x"] = T_IN
    text = generate_design("pulse_shaper", t.sfg, types,
                           inputs=["x"], outputs=[design.output])
    out_path = os.path.join(os.path.dirname(__file__), "pulse_shaper.vhd")
    with open(out_path, "w") as fh:
        fh.write(text)
    print()
    print("wrote %d lines of VHDL to %s" % (text.count("\n"), out_path))
    print()
    print("\n".join(text.splitlines()[:40]))
    print("  ...")


if __name__ == "__main__":
    main()
