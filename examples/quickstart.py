"""Quickstart: fixed-point types, signals, and a first refinement.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DType, DesignContext, Sig
from repro.refine import Design, FlowConfig, RefinementFlow


def fixed_point_basics():
    """The paper's dtype/sig objects in five lines."""
    print("=== fixed-point basics " + "=" * 40)

    # dtype T1("T1", 8, 5, tc, st, rd): 8 bits, 5 fractional,
    # two's complement, saturating, rounding.
    T1 = DType("T1", 8, 5, "tc", "saturate", "round")
    print("T1 =", T1.spec(), "range [%g, %g], lsb weight %g"
          % (T1.min_value, T1.max_value, T1.eps))

    with DesignContext("quickstart", seed=1):
        a = Sig("a", T1)
        b = Sig("b", T1)
        c = Sig("c", T1)
        a.assign(0.4)            # quantized on assignment
        b.assign(-1.25)          # exact on this grid
        c.assign(a * b)          # float multiply, quantize on assign
        print("a = %g (wanted 0.4, err %g)" % (a.fx, a.error()))
        print("c = a*b = %g (float reference %g)" % (c.fx, c.fl))
        print("c error statistics:", c.err_produced)


class MovingAverage(Design):
    """y = (x + x1 + x2 + x3) / 4 — a 4-tap boxcar to refine."""

    name = "moving-average"
    inputs = ("x",)
    output = "y"

    def build(self, ctx):
        from repro.signal import Reg
        self.x = Sig("x")
        self.x1 = Reg("x1")
        self.x2 = Reg("x2")
        self.x3 = Reg("x3")
        self.y = Sig("y")
        rng = np.random.default_rng(7)
        self._stim = iter(rng.uniform(-1, 1, size=100000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.y.assign((self.x + self.x1 + self.x2 + self.x3) * 0.25)
            self.x3.assign(self.x2 + 0.0)
            self.x2.assign(self.x1 + 0.0)
            self.x1.assign(self.x + 0.0)
            ctx.tick()


def first_refinement():
    """Let the flow pick every wordlength of the moving average."""
    print()
    print("=== first refinement " + "=" * 42)

    flow = RefinementFlow(
        design_factory=MovingAverage,
        input_types={"x": DType("T_in", 8, 6)},   # ADC: <8,6,tc>
        input_ranges={"x": (-1.0, 1.0)},
        config=FlowConfig(n_samples=3000, seed=3),
    )
    result = flow.run()

    print(result.msb.final.table())
    print()
    print(result.lsb.final.table())
    print()
    print(result.types_table())
    print()
    print(result.summary())


if __name__ == "__main__":
    fixed_point_basics()
    first_refinement()
