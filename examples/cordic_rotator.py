"""Refining a CORDIC rotator: shifts, selects and precision budgets.

CORDIC is all shift-and-add — the operations whose wordlengths the
refinement methodology prices directly.  This example refines a
10-stage rotator, shows how the statistic-based monitor sees the
self-correcting angle recursion shrink (while interval propagation,
blind to the correlation, explodes and falls back to simulation-guarded
saturation), and measures the rotation accuracy before and after
quantization.

Run:  python examples/cordic_rotator.py
"""

import math

import numpy as np

from repro import DType
from repro.dsp.cordic import CordicDesign, CordicRotator, rotate_reference
from repro.refine import Annotations, FlowConfig, RefinementFlow
from repro.signal import DesignContext

T_IN = DType("T_in", 10, 8, "tc", "saturate", "round")
T_ANG = DType("T_ang", 11, 8, "tc", "saturate", "round")
N_STAGES = 10


def main():
    flow = RefinementFlow(
        lambda: CordicDesign(n_stages=N_STAGES),
        input_types={"xi": T_IN, "yi": T_IN, "zi": T_ANG},
        input_ranges={"xi": (-1.0, 1.0), "yi": (-1.0, 1.0),
                      "zi": (-1.6, 1.6)},
        config=FlowConfig(n_samples=2000, seed=12),
    )
    result = flow.run()

    print("MSB iterations: %d (iteration 1 exploded on: %s)"
          % (result.msb.n_iterations,
             ", ".join(result.msb.iterations[0].exploded) or "-"))
    print()
    print("angle residual chain (observed vs propagated MSB):")
    for i in range(0, N_STAGES + 1, 2):
        d = result.msb.final.decisions["cr.z[%d]" % i]
        print("  z[%2d]  stat msb %3s   prop msb %3s   decided %3s (%s)"
              % (i, d.stat_msb, d.prop_msb, d.msb, d.mode))
    print()
    print(result.summary())

    # Accuracy of the fully quantized rotator.
    all_types = dict(result.types)
    all_types.update({"xi": T_IN, "yi": T_IN, "zi": T_ANG})
    ctx = DesignContext("cordic-check", seed=3)
    rng = np.random.default_rng(3)
    errs = []
    with ctx:
        d = CordicDesign(n_stages=N_STAGES)
        d.build(ctx)
        Annotations(dtypes=all_types).apply(ctx)
        for _ in range(300):
            xv = float(rng.uniform(-0.7, 0.7))
            yv = float(rng.uniform(-0.7, 0.7))
            zv = float(rng.uniform(-1.5, 1.5))
            d.xi.assign(xv)
            d.yi.assign(yv)
            d.zi.assign(zv)
            d.cordic.step(d.xi, d.yi, d.zi)
            ctx.tick()
            xr, yr = rotate_reference(xv, yv, zv)
            errs.append(math.hypot(d.cordic.xo.fx - xr,
                                   d.cordic.yo.fx - yr))
    print()
    print("fixed-point rotation error: rms %.2e, max %.2e "
          "(input grid %.1e)" % (float(np.sqrt(np.mean(np.square(errs)))),
                                 max(errs), T_IN.eps))


if __name__ == "__main__":
    main()
