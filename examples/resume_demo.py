"""Kill -9 a wordlength search mid-run, then resume it bit-exactly.

Demonstrates the crash-tolerance layer (``docs/robustness.md`` §5):

1. a child process starts ``optimize_wordlengths`` with a write-ahead
   journal, so every completed probe simulation lands on disk the
   moment it finishes;
2. once a few probes are journaled, this script SIGKILLs the child —
   no cleanup, no atexit, exactly like an OOM kill or a power cut;
3. the *same* search call runs again in this process: the journaled
   probes replay bit-exactly (no re-simulation), the search continues
   from the first missing probe, and the final result is bit-identical
   to an uninterrupted run.

Run:  python examples/resume_demo.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

from repro import DType
from repro.dsp.lms import LmsEqualizerDesign
from repro.obs import counters
from repro.refine.optimizer import optimize_wordlengths

T_IN = DType("T_in", 9, 7, "tc", "saturate", "round")
T_W = DType("T_w", 10, 8, "tc", "saturate", "round")


def factory():
    return LmsEqualizerDesign(seed=2024)


# Journal keys embed the design-factory identity.  Pin it explicitly so
# the child process and this process (different ``__main__`` modules)
# produce identical keys.
factory.fingerprint = "resume-demo-lms"


def search(journal):
    """The deterministic greedy search — same call in child and parent."""
    return optimize_wordlengths(
        factory, {"y": T_W, "w": T_W, "d": T_W}, {"x": T_IN},
        target_db=40.0, n_samples=500, seed=7, max_moves=8,
        workers=1, journal=journal)


def run_child_and_kill(journal_path):
    """Start the search in a child process, SIGKILL it mid-search."""
    child = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--child",
         journal_path],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if child.poll() is not None:
                raise SystemExit("child finished before the kill — "
                                 "nothing to demonstrate")
            done = 0
            if os.path.exists(journal_path):
                with open(journal_path) as fh:
                    done = fh.read().count('"outcome"')
            if done >= 2:
                os.kill(child.pid, signal.SIGKILL)
                return done
            time.sleep(0.02)
        raise SystemExit("child never journaled two outcomes")
    finally:
        child.wait()


def main():
    journal = os.path.join(tempfile.mkdtemp(prefix="resume-demo-"),
                           "search.jsonl")
    print("journal: %s" % journal)

    n_done = run_child_and_kill(journal)
    print("child SIGKILLed after journaling %d probe outcome(s)" % n_done)

    counters.reset()
    resumed = search(journal)
    print("resumed search: replayed %d probe(s) from the journal, "
          "%d simulation(s) total"
          % (counters.get("journal.replays"), resumed.n_simulations))

    fresh = search(None)
    identical = (resumed.types == fresh.types
                 and resumed.sqnr_db == fresh.sqnr_db
                 and resumed.moves == fresh.moves)
    print("uninterrupted reference search: %d simulation(s)"
          % fresh.n_simulations)
    print("final SQNR %.2f dB with %d total bits"
          % (resumed.sqnr_db, sum(dt.n for dt in resumed.types.values())))
    print("resumed result bit-identical to uninterrupted run: %s"
          % identical)
    if not identical:
        raise SystemExit("resume broke determinism")


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        search(sys.argv[2])
    else:
        main()
