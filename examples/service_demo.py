"""Kill -9 the refinement service mid-job, restart it, lose nothing.

Demonstrates the service's crash-recovery contract
(``docs/service.md``):

1. a child process opens a :class:`~repro.service.RefinementService`
   on a durable root and submits a batch of simulations — every
   *accepted* job is journaled before any of them runs, and every
   finished result lands in the content-addressed store the moment it
   completes;
2. once a couple of results are on disk this script SIGKILLs the child
   — no cleanup, no atexit, exactly like an OOM kill or a power cut;
3. a fresh service opens the same root, ``recover()`` replays the
   submission journal (finished jobs complete instantly from the
   store, interrupted ones re-queue), and resubmitting the same batch
   is served entirely by dedupe — bit-identical to an uninterrupted
   run in a clean root.

Run:  python examples/service_demo.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro import DType
from repro.obs import counters
from repro.parallel import SimConfig
from repro.refine import Design
from repro.service import RefinementService
from repro.service.service import _factory_fp
from repro.signal import Reg, Sig

T_IN = DType("T_in", 9, 7, "tc", "saturate", "round")
T_ACC = DType("T_acc", 12, 9, "tc", "saturate", "round")
TYPES = {"x": T_IN, "acc": T_ACC, "y": T_ACC}


class LeakyAccumulator(Design):
    """Tiny feedback probe: cheap but long enough to die inside."""

    name = "service-demo"
    inputs = ("x",)
    output = "y"

    def build(self, ctx):
        self.x = Sig("x")
        self.acc = Reg("acc")
        self.y = Sig("y")
        rng = np.random.default_rng(2026)
        self._stim = iter(rng.uniform(-1, 1, 1 << 18).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.acc.assign(self.acc * 0.75 + self.x * 0.25)
            self.y.assign(self.acc)
            ctx.tick()


def factory():
    return LeakyAccumulator()


# Content keys embed the factory identity; pin it so the child process
# and this process (different ``__main__`` modules) produce identical
# keys.
factory.fingerprint = "service-demo-leaky"


def configs():
    return [SimConfig(label="job%d" % i, dtypes=TYPES, n_samples=2500,
                      seed=400 + i) for i in range(8)]


def serve(root):
    """The child's whole life: submit everything, then grind through
    it one job per step (so the kill lands between results)."""
    svc = RefinementService(root=root, max_batch=1)
    ids = [svc.submit(factory, cfg) for cfg in configs()]
    for jid in ids:
        svc.result(jid)
    svc.close()


def run_child_and_kill(root):
    """Start the service in a child process, SIGKILL it mid-batch."""
    store_journal = os.path.join(root, "journal.jsonl")
    child = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--child", root],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if child.poll() is not None:
                raise SystemExit("child finished before the kill — "
                                 "nothing to demonstrate")
            done = 0
            if os.path.exists(store_journal):
                with open(store_journal) as fh:
                    done = fh.read().count('"outcome"')
            if done >= 2:
                os.kill(child.pid, signal.SIGKILL)
                return done
            time.sleep(0.02)
        raise SystemExit("child never stored two results")
    finally:
        child.wait()


def main():
    root = tempfile.mkdtemp(prefix="service-demo-")
    print("service root: %s" % root)

    n_done = run_child_and_kill(root)
    print("child SIGKILLed after storing %d result(s) of %d jobs"
          % (n_done, len(configs())))

    svc = RefinementService(root=root)
    stats = svc.recover(factories={_factory_fp(factory): factory})
    print("recover(): %d completed from the store, %d re-queued, "
          "%d parked" % (stats["completed"], stats["requeued"],
                         stats["parked"]))
    svc.drain()
    counters.reset()
    resumed = svc.run_batch(factory, configs())
    print("resubmitted batch: %d/%d served by dedupe, 0 re-simulations"
          % (counters.get("service.dedupe_hits"), len(resumed)))
    svc.close()

    with RefinementService(root=os.path.join(root, "ref")) as ref_svc:
        fresh = ref_svc.run_batch(factory, configs())

    identical = all(a.records == b.records and a.sqnr_db() == b.sqnr_db()
                    for a, b in zip(resumed, fresh))
    print("mean SQNR %.2f dB across %d jobs"
          % (sum(o.sqnr_db() for o in resumed) / len(resumed),
             len(resumed)))
    print("recovered results bit-identical to uninterrupted run: %s"
          % identical)
    if not identical:
        raise SystemExit("recovery broke determinism")
    # Jobs whose completion record hit disk before the kill need no
    # recovery; everything else must have been settled, none parked.
    if stats["parked"]:
        raise SystemExit("recovery parked jobs it had the factory for")
    if not (stats["completed"] or stats["requeued"]):
        raise SystemExit("nothing recovered — the kill landed too late")
    if counters.get("service.dedupe_hits") != len(resumed):
        raise SystemExit("resubmitted batch re-simulated stored work")


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        serve(sys.argv[2])
    else:
        main()
