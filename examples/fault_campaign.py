"""Fault-injection campaign against the refined LMS equalizer.

After the flow of ``lms_equalizer.py`` synthesizes fixed-point types,
this script stresses them: single-bit upsets (LSB and MSB), a stuck
output node, input overdrive, an injected NaN (exercising the non-finite
guard) and stimulus-seed perturbation.  Each fault is one fresh
simulation; the report lists per-fault SQNR degradation, overflow counts
and guard trips, and the campaign certifies the transient-fault margin.

Run:  python examples/fault_campaign.py
"""

from repro import DType
from repro.dsp.lms import LmsEqualizerDesign
from repro.refine import FlowConfig, RefinementFlow
from repro.robust import BitFlip, FaultCampaign, standard_faults

T_INPUT = DType("T_input", 7, 5, "tc", "saturate", "round")


def main():
    # Step 1: the paper's refinement flow (as in lms_equalizer.py).
    flow = RefinementFlow(
        design_factory=LmsEqualizerDesign,
        input_types={"x": T_INPUT},
        input_ranges={"x": (-1.5, 1.5)},
        user_ranges={"b": (-0.2, 0.2)},
        config=FlowConfig(n_samples=4000, auto_range=False, seed=1234),
    )
    result = flow.run()
    output = result.verification.output
    print("refined %d types; nominal output SQNR %.2f dB"
          % (len(result.types), result.verification.output_sqnr_db))

    # Step 2: derive a fault list and run the campaign.
    all_types = dict(result.types)
    all_types["x"] = T_INPUT
    campaign = FaultCampaign(
        LmsEqualizerDesign, all_types, errors=result.lsb.annotations,
        n_samples=4000,
        seeded_factory=lambda s: LmsEqualizerDesign(seed=s))
    # The constant FIR coefficients c[i] are assigned once at build time,
    # before fault hooks exist — flips on them can never fire.  Target the
    # per-sample signals, and keep one coefficient flip on purpose to show
    # the campaign flagging it IDLE instead of reporting a hollow "ok".
    live = {k: t for k, t in result.types.items()
            if not k.startswith("c[")}
    faults = standard_faults(live, inputs=("x",), n_seeds=2,
                             max_bitflip_signals=4)
    faults.append(BitFlip(output, bit=0, at=2000, every=50))  # periodic SEU
    faults.append(BitFlip("c[1]", bit=0, at=200))             # never fires
    print("running %d fault(s), one %d-sample simulation each...\n"
          % (len(faults), campaign.n_samples))
    outcome = campaign.run(faults)

    # Step 3: report and certify.
    print(outcome.table())
    print()
    print(outcome.summary())
    # A single MSB upset in the delay line costs ~10 dB for this design,
    # so the transient-fault margin is certified at 12 dB.
    transient = ("bit-flip", "seed-perturb")
    print("transient faults within 12 dB margin: %s"
          % outcome.certified(12.0, kinds=transient))
    print("...and with idle faults rejected:     %s  (c[1] never fired)"
          % outcome.certified(12.0, kinds=transient,
                              require_triggered=True))
    result.diagnostics.fault_campaign = outcome
    print()
    print(result.diagnostics.summary())


if __name__ == "__main__":
    main()
