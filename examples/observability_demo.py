"""Observability walkthrough: trace a refinement, then read the trace.

Runs the paper's LMS equalizer refinement with the full observability
stack switched on — span tracing through every layer (flow phases,
simulations, lint rules), per-signal quantization metrics in the
assignment hot path, and a wall-time profile — then renders the
captured trace three ways:

* a span-tree text report on stdout (same renderer as
  ``python -m repro.obs report``),
* ``observability_demo.jsonl`` — the raw event stream,
* ``observability_demo.html`` — a self-contained timeline you can open
  in any browser.

Run:  python examples/observability_demo.py
"""

import os

from repro import DType, obs
from repro.dsp.lms import LmsEqualizerDesign
from repro.refine import FlowConfig, RefinementFlow

T_INPUT = DType("T_input", 7, 5, "tc", "saturate", "round")

OUT_DIR = os.path.dirname(os.path.abspath(__file__))
JSONL = os.path.join(OUT_DIR, "observability_demo.jsonl")
HTML = os.path.join(OUT_DIR, "observability_demo.html")


def main():
    flow = RefinementFlow(
        design_factory=LmsEqualizerDesign,
        input_types={"x": T_INPUT},
        input_ranges={"x": (-1.5, 1.5)},
        user_ranges={"b": (-0.2, 0.2)},
        config=FlowConfig(n_samples=2000, auto_range=False, seed=1234),
    )

    # Everything on: spans + progress events (trace), per-signal
    # overflow/rounding counters (metrics), wall-time buckets (profile).
    recorder = obs.trace.enable()
    obs.metrics.enable()
    with obs.profile() as prof:
        result = flow.run()
    obs.metrics.disable()
    obs.trace.disable()

    print(result.summary())
    print()

    print("=" * 72)
    print("= Where the wall time went")
    print("=" * 72)
    print(prof.report.table())
    print()

    print("=" * 72)
    print("= The captured trace (span tree + quantization metrics)")
    print("=" * 72)
    print(obs.render_text(recorder.events))
    print()

    # Persist the event stream and render the standalone HTML timeline.
    # `python -m repro.obs report observability_demo.jsonl` produces the
    # same text report from the file.
    recorder.to_jsonl(JSONL)
    with open(HTML, "w") as fh:
        fh.write(obs.render_html(recorder.events,
                                 title="LMS refinement trace"))
    print("wrote %s (%d events)" % (JSONL, len(recorder.events)))
    print("wrote %s — open it in a browser for the timeline" % HTML)

    # Sanity-check the artifacts round-trip (this is what CI smoke-runs).
    meta, events = obs.read_jsonl(JSONL)
    assert len(events) == len(recorder.events)
    summary = obs.summarize(events)
    assert summary["error_spans"] == 0, summary
    print("round-trip OK: %d spans, %.3f s wall"
          % (summary["spans"], summary["wall_s"]))


if __name__ == "__main__":
    main()
