"""The paper's complex example: timing recovery loop for PAM signals
(Figure 5, Section 6.1).

A ~64-signal receiver — matched filter, cubic Farrow interpolator,
Gardner timing error detector, PI loop filter and an NCO whose phase
register is a hardware-style modulo-1 wrap type — is refined by the
hybrid flow.  Watch for:

* MSB explosion on the loop-filter integrator in iteration 1, resolved
  by designer range() annotations (2 iterations, like the paper),
* divergent error statistics on exactly the NCO phase register
  ("the D signal inside of NCO"), overruled with error() (2 LSB
  iterations, like the paper),
* the fully quantized loop still locks onto the symbol timing.

Run:  python examples/timing_recovery.py
"""

from repro import DType
from repro.dsp.timing_recovery import (TimingRecoveryDesign,
                                       aligned_symbol_errors)
from repro.refine import Annotations, FlowConfig, RefinementFlow
from repro.signal import DesignContext

T_IN = DType("T_in", 9, 7, "tc", "saturate", "round")
PHASE_T = DType("T_eta", 12, 12, "us", "wrap", "round")
N_SAMPLES = 8000

KNOWLEDGE_RANGES = {
    "lf.i": (-0.01, 0.01),     # integrator (explodes in iteration 1)
    "nco.w": (0.35, 0.65),     # control word around the nominal 1/2
    "nco.mu": (0.0, 1.0),      # eta < w at a strobe, so mu < 1
    "lf.out": (-0.05, 0.05),
    "lf.p": (-0.05, 0.05),
    "ted.err": (-4.0, 4.0),
}


def main():
    flow = RefinementFlow(
        design_factory=lambda: TimingRecoveryDesign(
            noise_std=0.05, nco_phase_dtype=PHASE_T),
        input_types={"in": T_IN},
        input_ranges={"in": (-2.0, 2.0)},
        preset_types={"nco.eta": PHASE_T},      # partial type definition
        user_ranges=dict(KNOWLEDGE_RANGES),
        user_errors={"nco.eta": 2.0 ** -12},    # the paper's error() fix
        config=FlowConfig(n_samples=N_SAMPLES, auto_range=True,
                          auto_error=False, seed=21),
    )

    print("refining %d-sample runs; this takes a minute..." % N_SAMPLES)
    result = flow.run()

    print()
    print("MSB phase: %d iterations" % result.msb.n_iterations)
    for it in result.msb.iterations:
        print("  iteration %d: %d signals exploded%s"
              % (it.index, len(it.exploded),
                 " -> " + ", ".join(sorted(it.added_ranges))
                 if it.added_ranges else ""))

    print()
    print("LSB phase: %d iterations" % result.lsb.n_iterations)
    for it in result.lsb.iterations:
        for name, reason in it.divergent.items():
            print("  iteration %d: %s divergent (%s)"
                  % (it.index, name, reason))
        if not it.divergent:
            print("  iteration %d: all error statistics stationary"
                  % it.index)

    print()
    print(result.summary())
    print()
    print("wrap events on nco.eta during verification: %d (modulo "
          "arithmetic, not overflows)"
          % result.verification.wrap_events.get("nco.eta", 0))

    # Lock check with the synthesized types applied.
    all_types = dict(result.types)
    all_types["in"] = T_IN
    ctx = DesignContext("lock-check", seed=5)
    with ctx:
        d = TimingRecoveryDesign(noise_std=0.05, nco_phase_dtype=PHASE_T)
        d.build(ctx)
        Annotations(dtypes=all_types).apply(ctx)
        d.run(ctx, N_SAMPLES)
    rate, lag = aligned_symbol_errors(d.tx_symbols, d.decisions, skip=1000)
    print()
    print("fixed-point loop after lock: symbol error rate %.5f "
          "(alignment lag %s)" % (rate, lag))

    print()
    print("synthesized types (first 20):")
    for i, (name, dt) in enumerate(sorted(result.types.items())):
        if i >= 20:
            print("  ... %d more" % (len(result.types) - 20))
            break
        print("  %-14s %s" % (name, dt.spec()))


if __name__ == "__main__":
    main()
