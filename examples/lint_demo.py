"""Static hazard linting: catch the paper's MSB explosion without simulating.

The paper's Section 4.1 walkthrough discovers the unbounded feedback
coefficient ``b`` of the LMS equalizer by *running* the MSB phase and
watching the quasi-analytical range propagation explode.  The
``repro.lint`` analyzer finds the same hazard purely statically: trace
the design for a few samples (structure only — the values are
irrelevant), propagate ranges over the captured SFG, and FX001 names
the first diverging signal with its declaration site.

The demo lints three variants of the equalizer:

1. **broken** — no annotations at all: FX001 on both feedback cycles;
2. **half-fixed** — ``b`` bounded but declared with a too-narrow wrap
   type: the explosion is gone, FX002 flags the silent wrap instead;
3. **clean** — the paper's knowledge annotation ``b.range(-0.2, 0.2)``
   plus an adequate saturating type: no findings.

Run:  python examples/lint_demo.py
"""

from repro.core.dtype import DType
from repro.dsp import LmsEqualizerDesign
from repro.lint import run_lint
from repro.sfg import trace
from repro.signal import DesignContext


def lint_lms(label, annotate):
    """Trace one LMS variant and lint the captured graph."""
    ctx = DesignContext("lint-demo-%s" % label, seed=7,
                        overflow_action="record", guard_action="sanitize")
    with ctx:
        design = LmsEqualizerDesign()
        design.build(ctx)
        annotate(design)
        with trace(ctx) as tracer:
            design.run(ctx, 16)
    report = run_lint(tracer.sfg, input_ranges={"x": (-1.5, 1.5)},
                      outputs={design.output}, design_name=label)
    print()
    print(report.table())
    print(report.summary())
    return report


def main():
    print("=== 1. broken: unannotated feedback accumulator " + "=" * 20)
    broken = lint_lms("broken", lambda d: None)
    assert any(f.rule_id == "FX001" for f in broken.errors)

    print()
    print("=== 2. half-fixed: bounded, but narrow wrap type " + "=" * 20)

    def half_fix(d):
        d.b.range(-0.2, 0.2)
        d.s.range(-1.0, 1.0)
        # w holds v - b*s, up to ~2.1 — a <3,1> wrap word tops out at 1.5.
        d.w.set_dtype(DType("w_t", 3, 1, "tc", "wrap", "round"))

    half = lint_lms("half-fixed", half_fix)
    assert any(f.rule_id == "FX002" for f in half.errors)

    print()
    print("=== 3. clean: paper annotation + saturating type " + "=" * 20)

    def full_fix(d):
        d.b.range(-0.2, 0.2)               # the paper's b.range(-0.2, 0.2)
        d.s.range(-1.0, 1.0)
        d.w.set_dtype(DType("w_t", 8, 5, "tc", "saturate", "round"))

    clean = lint_lms("clean", full_fix)
    assert len(clean) == 0

    print()
    print("The refinement flow runs the same check as a pre-flight:")
    print("RefinementFlow.run() surfaces these findings as 'lint'-category")
    print("diagnostics, and `python -m repro.lint --all` lints the bundled")
    print("designs in CI (see docs/static_analysis.md).")


if __name__ == "__main__":
    main()
