"""The design environment's system view: communicating processors.

The paper's environment (Section 2) describes systems as "several
communicating processors" driven by a simulation engine.  This example
builds a two-processor pipeline — a PAM source feeding a fixed-point
decimating boxcar filter — wires them with FIFO channels, runs the
engine, and reads back both the captured samples and the quantization
statistics that were gathered along the way.

Run:  python examples/processor_pipeline.py
"""

import numpy as np

from repro import DType, Sig
from repro.signal import DesignContext, Reg
from repro.sim import Engine, Processor, Sink, Source

T = DType("T", 9, 7, "tc", "saturate", "round")


class BoxcarDecimator(Processor):
    """Average pairs of input samples; emit one output per two inputs."""

    def build(self, ctx):
        self.hold = Reg("%s.hold" % self.name)
        self.acc = Sig("%s.acc" % self.name, T)
        self.phase = 0

    def behavior(self):
        cin = self.inputs["in"]
        cout = self.outputs["out"]
        while True:
            if not cin.empty:
                x = cin.get()
                if self.phase == 0:
                    self.hold.assign(x + 0.0)
                else:
                    self.acc.assign((self.hold + x) * 0.5)
                    cout.put(self.acc.fx)
                self.phase ^= 1
            yield


def main():
    rng = np.random.default_rng(9)
    samples = rng.uniform(-1, 1, size=64)

    ctx = DesignContext("pipeline", seed=0)
    engine = Engine(ctx)
    src = engine.add(Source("src", samples.tolist()))
    dec = engine.add(BoxcarDecimator("dec"))
    sink = engine.add(Sink("sink"))
    engine.connect(src, "out", dec, "in", record=True)
    engine.connect(dec, "out", sink, "in")

    cycles = engine.run(until_done=True, cycles=500)
    print("ran %d cycles, captured %d decimated samples"
          % (cycles, len(sink.captured)))

    expect = [(a + b) / 2 for a, b in zip(samples[0::2], samples[1::2])]
    worst = max(abs(g - e) for g, e in zip(sink.captured, expect))
    print("worst deviation from float reference: %.5f (<= half LSB %g)"
          % (worst, T.eps / 2))

    acc = ctx.get("dec.acc")
    print()
    print("quantization statistics collected during the run:")
    print("  range:", acc.range_stat)
    print("  error:", acc.err_produced)
    print("  SQNR : %.2f dB" % acc.sqnr_db())


if __name__ == "__main__":
    main()
