"""The paper's motivational example, end to end (Sections 3, 5, 6).

Reproduces Table 1 (MSB analysis over two iterations), Table 2 (LSB
analysis) and the SQNR result, then verifies the fully quantized
equalizer still makes the same decisions as the float model.

Run:  python examples/lms_equalizer.py
"""

from repro import DType
from repro.dsp.lms import LmsEqualizerDesign
from repro.dsp.metrics import ber
from repro.refine import Annotations, FlowConfig, RefinementFlow
from repro.signal import DesignContext

T_INPUT = DType("T_input", 7, 5, "tc", "saturate", "round")


def main():
    # Paper Figure 4 inputs: floating-point description, stimuli, and a
    # partial type definition (the input quantization is known).
    flow = RefinementFlow(
        design_factory=LmsEqualizerDesign,
        input_types={"x": T_INPUT},            # x from the AD converter
        input_ranges={"x": (-1.5, 1.5)},       # x.range(-1.5, 1.5)
        user_ranges={"b": (-0.2, 0.2)},        # knowledge for iteration 2
        config=FlowConfig(n_samples=4000, auto_range=False, seed=1234),
    )
    result = flow.run()

    print("#" * 72)
    print("# Paper Table 1 — MSB analysis")
    print("#" * 72)
    for iteration in result.msb.iterations:
        print()
        print(iteration.table())
        if iteration.exploded:
            print("-> range propagation exploded on: %s"
                  % ", ".join(iteration.exploded))
            print("-> applying annotations: %s"
                  % ", ".join("%s.range(%g, %g)" % (k, lo, hi)
                              for k, (lo, hi)
                              in iteration.added_ranges.items()))

    print()
    print("#" * 72)
    print("# Paper Table 2 — LSB analysis")
    print("#" * 72)
    print()
    print(result.lsb.final.table())

    print()
    print("#" * 72)
    print("# Synthesized types and verification")
    print("#" * 72)
    print()
    print(result.types_table())
    print()
    print(result.summary())
    print()
    print("SQNR before LSB refinement (x quantized only): %.2f dB "
          "(paper: 39.8 dB)" % result.baseline_sqnr_db)
    print("SQNR after  LSB refinement (all quantized):    %.2f dB "
          "(paper: 39.1 dB)" % result.verification.output_sqnr_db)

    # Final sanity: fixed-point and floating-point decisions agree.
    def run_design(types):
        ctx = DesignContext("check-%s" % bool(types), seed=1)
        with ctx:
            d = LmsEqualizerDesign()
            d.build(ctx)
            if types:
                Annotations(dtypes=types).apply(ctx)
            d.run(ctx, 3000)
        return d.decisions

    all_types = dict(result.types)
    all_types["x"] = T_INPUT
    mismatch = ber(run_design(None), run_design(all_types), skip=500)
    print()
    print("decision mismatch fixed vs float after convergence: %.4f"
          % mismatch)


if __name__ == "__main__":
    main()
