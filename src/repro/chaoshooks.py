"""Zero-overhead-when-disabled chaos hook slots for the durability layer.

The durability machinery (write-ahead :class:`~repro.robust.recovery.Journal`,
:class:`~repro.robust.recovery.Checkpoint`, the
:class:`~repro.parallel.runner.SimCache` and the parallel runner's pool
loop) exposes a handful of *fault-injection points* at its I/O and
process boundaries.  Each point costs exactly one module-attribute load
plus an ``is None`` check when no injector is installed::

    hook = chaoshooks.ACTIVE
    if hook is not None:
        data = hook.on_journal_write(self, data)

so production runs pay nothing measurable, while
:class:`repro.robust.chaos.ChaosInjector` can deterministically tear a
journal write, fail an fsync, corrupt a cached payload, kill a pool
worker or truncate a checkpoint — all addressed by a
``(site, trigger, seed)`` triple.

This module deliberately imports **nothing** from the rest of the
package: it is shared by :mod:`repro.parallel.runner` and
:mod:`repro.robust.recovery`, which sit on opposite sides of the
``repro.parallel`` <-> ``repro.robust`` boundary, and must be safely
importable from either while the other is mid-import.

Hooks are *advisory for values, authoritative for failures*: a hook may
rewrite the value it is passed (a journal line, a cache payload, a job
config) or raise — :class:`ChaosCrash` to simulate sudden process
death, :class:`OSError` to simulate an infrastructure error the caller
is expected to survive.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["ACTIVE", "ChaosCrash", "ChaosHooks", "install", "uninstall",
           "armed"]


class ChaosCrash(BaseException):
    """Simulated sudden process death (``kill -9`` / power loss).

    Deliberately a :class:`BaseException`: the durability layer's
    ``except Exception`` / ``except OSError`` recovery paths must *not*
    be able to swallow it — a real ``SIGKILL`` gives no such chance.
    The chaos scenario runner catches it at the entry-point boundary
    and then exercises recovery exactly as a restarted process would.
    """


class ChaosHooks:
    """Protocol of the injectable fault sites (all no-ops by default).

    Subclass and override the sites you want to perturb, then arm the
    instance with :func:`install` / :func:`armed`.  Every method is
    called from the *parent* process (the one running the batch), with
    one exception: a rewritten job config from :meth:`on_job` travels
    into the worker, which is how worker-kill faults reach the far side
    of the fork.
    """

    # -- parallel runner ---------------------------------------------------

    def on_job(self, position, config):
        """A job is about to execute; return the (possibly rewritten)
        config.  ``position`` counts executed jobs of the batch (cache
        and journal hits excluded), in submission order."""
        return config

    def on_pool_drain(self, pool, n_delivered):
        """One outcome was harvested from the shared pool; may kill the
        pool's workers to simulate a mid-drain ``BrokenProcessPool``."""

    # -- write-ahead journal ----------------------------------------------

    def on_journal_write(self, journal, data):
        """A record line (newline included) is about to be written;
        return the bytes-to-write, or write a prefix + raise
        :class:`ChaosCrash` for a torn write, or raise :class:`OSError`
        (``ENOSPC``) for a failed write."""
        return data

    def on_journal_fsync(self, journal):
        """``fsync`` is about to run; may raise :class:`OSError`."""

    def on_journal_replace(self, journal):
        """An atomic journal rewrite (torn-tail repair or compaction)
        is about to ``os.replace``; may raise :class:`ChaosCrash`."""

    # -- result cache ------------------------------------------------------

    def on_cache_store(self, key, payload):
        """A pickled outcome is about to be stored (its checksum is
        already taken); return the (possibly corrupted) payload."""
        return payload

    def on_cache_lookup(self, key):
        """A present cache entry is about to be read; return True to
        make it vanish (a simulated concurrent eviction)."""
        return False

    # -- refinement service ------------------------------------------------

    def on_service_dispatch(self, jobs):
        """The service scheduler took ``jobs`` off the queue (their
        accepted records are journaled) and is about to hand them to
        the batch runner; may raise :class:`ChaosCrash` to simulate a
        scheduler death between accept and dispatch."""

    # -- checkpoints -------------------------------------------------------

    def on_checkpoint_save(self, checkpoint):
        """The checkpoint temp file is fully written but not yet
        renamed into place; may raise :class:`ChaosCrash`."""

    def on_checkpoint_saved(self, checkpoint):
        """A checkpoint save just completed; may damage the file on
        disk (truncation) to simulate torn storage."""


#: The installed injector, or None (the fast path).  Read it once into a
#: local before checking — see the module docstring for the idiom.
ACTIVE = None


def install(hooks):
    """Install ``hooks`` as the process-wide injector (returns it)."""
    global ACTIVE
    ACTIVE = hooks
    return hooks


def uninstall():
    """Disarm chaos injection (idempotent)."""
    global ACTIVE
    ACTIVE = None


@contextmanager
def armed(hooks):
    """Context manager: install ``hooks``, always uninstall on exit.

    >>> import repro.chaoshooks as ch
    >>> class Noisy(ChaosHooks):
    ...     def on_cache_lookup(self, key):
    ...         return True
    >>> with armed(Noisy()) as h:
    ...     ch.ACTIVE is h
    True
    >>> ch.ACTIVE is None
    True
    """
    install(hooks)
    try:
        yield hooks
    finally:
        uninstall()
