"""JSON and SARIF 2.1.0 serialization of lint reports.

SARIF output carries everything CI annotation needs: an automation run
id, full per-rule metadata (``tool.driver.rules``) and a physical
location for every result — the signal's declaration site when the
tracer captured one, the design's source file otherwise.
"""

from __future__ import annotations

from repro.lint.core import LintReport, all_rules

__all__ = ["to_json_dict", "to_sarif_dict", "SARIF_SCHEMA_URI",
           "SARIF_VERSION"]

SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"

#: repro severity -> SARIF result level
_SARIF_LEVEL = {"info": "note", "warning": "warning", "error": "error"}


def to_json_dict(reports):
    """Plain-JSON payload of one or more :class:`LintReport`."""
    reports = _as_list(reports)
    return {
        "tool": "repro-lint",
        "designs": [r.to_dict() for r in reports],
        "totals": {
            "findings": sum(len(r) for r in reports),
            "errors": sum(len(r.errors) for r in reports),
            "warnings": sum(len(r.warnings) for r in reports),
            "suppressed": sum(r.suppressed for r in reports),
        },
    }


def to_sarif_dict(reports, tool_version="1.0.0", extra_rules=()):
    """SARIF 2.1.0 payload of one or more :class:`LintReport`.

    One SARIF *run* per linted design, each with a stable
    ``automationDetails.id`` (no timestamps — output is deterministic
    and diffable in CI).  ``extra_rules`` appends rule metadata beyond
    the registered lint rules — rule-shaped objects with ``id`` /
    ``title`` / ``severity`` / ``description`` / ``hint`` attributes
    (e.g. ``repro.verify.verdict.VERIFY_RULE_METAS`` for the DG210–
    DG212 verdict findings).
    """
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [_sarif_run(r, tool_version, extra_rules)
                 for r in _as_list(reports)],
    }


def _as_list(reports):
    if isinstance(reports, LintReport):
        return [reports]
    return list(reports)


def _rule_metadata(cls):
    return {
        "id": cls.id,
        "name": cls.title or cls.id,
        "shortDescription": {"text": cls.title or cls.id},
        "fullDescription": {"text": cls.description or cls.title},
        "help": {"text": cls.hint or cls.description},
        "defaultConfiguration": {
            "level": _SARIF_LEVEL.get(cls.severity, "warning"),
        },
    }


def _sarif_run(report, tool_version, extra_rules=()):
    rules = list(all_rules()) + list(extra_rules)
    rule_index = {cls.id: i for i, cls in enumerate(rules)}
    return {
        "automationDetails": {"id": "repro-lint/%s" % report.design_name},
        "tool": {
            "driver": {
                "name": "repro-lint",
                "version": tool_version,
                "informationUri":
                    "https://github.com/repro/repro/blob/main/docs/"
                    "static_analysis.md",
                "rules": [_rule_metadata(cls) for cls in rules],
            },
        },
        "results": [_sarif_result(report, f, rule_index)
                    for f in report.findings],
    }


def _sarif_result(report, finding, rule_index):
    if finding.site is not None:
        uri, line = finding.site
    else:
        uri, line = (report.artifact or "unknown"), 1
    location = {
        "physicalLocation": {
            "artifactLocation": {"uri": str(uri)},
            "region": {"startLine": max(1, int(line))},
        },
    }
    if finding.signal is not None:
        location["logicalLocations"] = [
            {"name": finding.signal, "kind": "variable"},
        ]
    message = finding.message
    if finding.hint:
        message += " (fix: %s)" % finding.hint
    result = {
        "ruleId": finding.rule_id,
        "level": _SARIF_LEVEL.get(finding.severity, "warning"),
        "message": {"text": message},
        "locations": [location],
        "partialFingerprints": {"reproLint/v1": finding.fingerprint()},
    }
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    return result
