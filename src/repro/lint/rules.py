"""The paper-grounded lint rules FX001–FX009.

Every rule works purely on the traced graph structure, the declared
types/annotations and the analytical range propagation — never on
simulated values.  Each has a triggering fixture and a clean twin in
``tests/test_lint.py``, and is documented with a minimal example in
``docs/static_analysis.md``.
"""

from __future__ import annotations

from repro.core import word
from repro.core.dtype import DType
from repro.lint.core import Rule, register_rule
from repro.sfg.graph import SFG


def _protecting_annotations(lctx, cycle):
    """Range annotations / saturating elements present on a cycle.

    The paper's two remedies for MSB explosion are an explicit
    ``range()`` annotation and a saturating type; a saturating ``cast``
    on the feedback path clips the iteration just the same.
    """
    names = SFG.cycle_signal_names(cycle)
    has_range = any(n in lctx.forced for n in names)
    has_sat = any(lctx.dtype(n) is not None
                  and lctx.dtype(n).msbspec == "saturate" for n in names)
    for node in cycle:
        if node.kind == "op":
            dt = DType.from_cast_label(node.label)
            if dt is not None and dt.msbspec == "saturate":
                has_sat = True
    return has_range, has_sat


def _on_unprotected_exploded_cycle(lctx, name):
    """True when ``name`` exploded on a cycle without any remedy."""
    if name not in lctx.analysis.exploded:
        return False
    for cycle in lctx.cycles:
        if name in SFG.cycle_signal_names(cycle):
            has_range, has_sat = _protecting_annotations(lctx, cycle)
            if not has_range and not has_sat:
                return True
    return False


@register_rule
class MsbExplosionRule(Rule):
    """FX001 — feedback cycle whose range propagation widens to infinity."""

    id = "FX001"
    title = "msb-explosion"
    severity = "error"
    description = ("A feedback cycle's analytical range propagation "
                   "widens to infinity and no range() annotation or "
                   "saturating type/cast breaks the growth: the signal "
                   "has no finite MSB position.")
    hint = ("annotate one cycle signal with range(lo, hi) or give it a "
            "saturating dtype")

    def check(self, lctx):
        reported = set()
        analysis = lctx.analysis
        for cycle in lctx.cycles:
            names = SFG.cycle_signal_names(cycle)
            exploded = [n for n in names if n in analysis.exploded]
            if not exploded:
                continue
            has_range, has_sat = _protecting_annotations(lctx, cycle)
            if has_range or has_sat:
                continue
            anchor = (analysis.first_diverged
                      if analysis.first_diverged in names else exploded[0])
            if anchor in reported:
                continue
            reported.add(anchor)
            first_round = analysis.diverged.get(anchor)
            yield self.finding(
                "MSB explosion on feedback cycle through %s: range of %r "
                "is unbounded after fixpoint iteration%s"
                % (" -> ".join(names), anchor,
                   "" if first_round is None
                   else " (diverged in round %d)" % first_round),
                signal=anchor, cycle=names, site=lctx.site(anchor),
                round=first_round)


@register_rule
class DeclaredRangeOverflowRule(Rule):
    """FX002 — declared range narrower than the propagated range."""

    id = "FX002"
    title = "declared-range-overflow"
    severity = "error"
    description = ("The analytically propagated range exceeds the "
                   "declared dtype's representable range and the type "
                   "wraps (or errors) on overflow: assignments can "
                   "silently wrap around.")

    def check(self, lctx):
        for name, node, dt in lctx.typed_signals():
            if dt.msbspec == "saturate":
                continue          # clipping is the declared intent
            prop = lctx.prop(name)
            if prop is None or prop.is_empty:
                continue
            if _on_unprotected_exploded_cycle(lctx, name):
                continue          # FX001 already owns this hazard
            if prop.issubset(dt.range_interval()):
                continue
            if prop.is_finite:
                req = word.required_msb(min(prop.lo, 0.0), prop.hi)
                hint = ("widen to %d integer bit(s) (n=%d at f=%d) or "
                        "use a saturating mode"
                        % (req, word.wordlength_for_msb(req, dt.f), dt.f))
            else:
                hint = ("bound the signal with range(lo, hi) before "
                        "sizing the type")
            # Wrap corrupts silently (error severity); error-mode types
            # at least abort the simulation at runtime (warning).
            default = "error" if dt.msbspec == "wrap" else "warning"
            f = self.finding(
                "propagated range [%g, %g] exceeds declared %s range "
                "[%g, %g]%s"
                % (prop.lo, prop.hi, dt.spec(), dt.min_value, dt.max_value,
                   " — wrap mode corrupts silently"
                   if dt.msbspec == "wrap" else
                   " — error mode will abort the simulation"),
                hint=hint, signal=name, site=lctx.site(name))
            yield type(f)(f.rule_id,
                          self.config.severity_of(self.id, default),
                          f.message, f.hint, f.signal, f.cycle, f.site,
                          f.data)


@register_rule
class WordlengthWasteRule(Rule):
    """FX003 — integer bits provably dead given the propagated range."""

    id = "FX003"
    title = "wordlength-waste"
    severity = "warning"
    description = ("The declared MSB position exceeds what the "
                   "analytically propagated range requires by at least "
                   "``min_dead_bits`` (default 2): the top integer bits "
                   "can provably never be exercised.")
    hint = "shrink the type with DType.from_range(...)"

    def check(self, lctx):
        min_dead = self.option("min_dead_bits", 2)
        for name, node, dt in lctx.typed_signals():
            prop = lctx.prop(name)
            if prop is None or prop.is_empty or not prop.is_finite:
                continue
            if not dt.covers(prop):
                continue          # overflow hazard: FX002's domain
            req = word.required_msb(prop.lo, prop.hi, signed=dt.signed)
            if req is None:       # provably always zero
                req = -dt.f
            dead = dt.msb - req
            if dead < min_dead:
                continue
            yield self.finding(
                "%d of %d integer bit(s) of %s are provably dead: "
                "propagated range [%g, %g] needs msb=%s, declared msb=%d"
                % (dead, dt.msb + (1 if dt.signed else 0), dt.spec(),
                   prop.lo, prop.hi, req, dt.msb),
                signal=name, site=lctx.site(name), dead_bits=dead)


@register_rule
class PrecisionHazardRule(Rule):
    """FX004 — double rounding through a cast chain / excess discard."""

    id = "FX004"
    title = "precision-hazard"
    severity = "warning"
    description = ("A rounding cast feeds another, coarser rounding "
                   "quantization (double rounding differs from a single "
                   "rounding to the final grid), or an assignment "
                   "discards far more exactly-known fractional bits "
                   "than the declared LSB budget.")

    def check(self, lctx):
        sfg = lctx.sfg
        max_discard = self.option("max_frac_discard", 8)
        for node in sfg.nodes("op"):
            dt_in = DType.from_cast_label(node.label)
            if dt_in is None or dt_in.lsbspec != "round":
                continue
            for succ in sfg.succs(node):
                if succ.kind == "op":
                    dt_out = DType.from_cast_label(succ.label)
                    if (dt_out is not None and dt_out.f < dt_in.f
                            and dt_out.lsbspec == "round"):
                        anchor = _assigned_signal(sfg, succ)
                        yield self.finding(
                            "cast chain rounds twice: %s then %s — the "
                            "result can differ from rounding once to "
                            "f=%d" % (node.label, succ.label, dt_out.f),
                            hint="cast directly to the final format",
                            signal=anchor,
                            site=None if anchor is None
                            else lctx.site(anchor))
                elif succ.kind in ("sig", "reg"):
                    dt_sig = lctx.dtype(succ.label)
                    if (dt_sig is not None and dt_sig.f < dt_in.f
                            and dt_sig.lsbspec == "round"):
                        yield self.finding(
                            "cast %s rounds to f=%d, then assignment to "
                            "%r rounds again to f=%d (double rounding)"
                            % (node.label, dt_in.f, succ.label, dt_sig.f),
                            hint=("assign the unrounded expression or "
                                  "cast straight to f=%d" % dt_sig.f),
                            signal=succ.label, site=lctx.site(succ.label))
        # Excess-discard check: assignments throwing away far more
        # exactly-known fractional bits than the type's LSB budget.
        for name, node, dt in lctx.typed_signals():
            for drv in sfg.preds(node):
                f_in = lctx.frac_bits(drv)
                if f_in is None:
                    continue
                lost = dt.discarded_frac_bits(f_in)
                if lost > max_discard:
                    yield self.finding(
                        "assignment to %r discards %d exactly-known "
                        "fractional bit(s) (expression grid f=%d, "
                        "declared f=%d)" % (name, lost, f_in, dt.f),
                        hint=("raise f or quantize upstream operands "
                              "first"),
                        signal=name, site=lctx.site(name), lost_bits=lost)


@register_rule
class UndrivenRegRule(Rule):
    """FX005 — register read but never driven in the traced graph."""

    id = "FX005"
    title = "undriven-reg"
    severity = "warning"
    description = ("A Reg is read by the design but no assignment ever "
                   "drives it: it holds its power-on value forever, "
                   "which is almost always a missing statement.")
    hint = "drive the register, or declare the constant as a Sig"

    def check(self, lctx):
        sfg = lctx.sfg
        for node in sfg.nodes("reg"):
            name = node.label
            if name in lctx.inputs or name in lctx.forced:
                continue          # deliberately treated as an input
            if sfg.g.in_degree(node) == 0 and sfg.g.out_degree(node) > 0:
                sig = sfg.sig_payload(name)
                init = getattr(sig, "init_value", 0.0)
                yield self.finding(
                    "register %r is read but never driven; every read "
                    "returns the power-on value %g" % (name, init),
                    signal=name, site=lctx.site(name))


@register_rule
class DeadSignalRule(Rule):
    """FX006 — dead or write-only signal."""

    id = "FX006"
    title = "dead-signal"
    severity = "warning"
    description = ("A signal is assigned but nothing in the traced "
                   "graph ever reads it (and it is not a declared "
                   "output): dead hardware after synthesis.")
    hint = "read the signal, declare it as an output, or remove it"

    def check(self, lctx):
        sfg = lctx.sfg
        for node in sfg.signal_nodes():
            name = node.label
            if name in lctx.outputs:
                continue
            if sfg.g.in_degree(node) > 0 and sfg.g.out_degree(node) == 0:
                yield self.finding(
                    "signal %r is write-only: assigned but never read"
                    % name, signal=name, site=lctx.site(name))


@register_rule
class WrapCompareRule(Rule):
    """FX007 — wrap-mode dtype feeding a comparison/slicer."""

    id = "FX007"
    title = "wrap-compare"
    severity = "warning"
    description = ("A wrap-mode value feeds a comparison: around the "
                   "wrap boundary the comparison inverts (e.g. a phase "
                   "slicer firing on the wrong edge).")
    hint = ("saturate the compared copy, or compare a wrapped "
            "difference instead of absolute values")

    _COMPARE_OPS = ("gt", "ge", "lt", "le")

    def check(self, lctx):
        sfg = lctx.sfg
        for name, node, dt in lctx.typed_signals():
            if dt.msbspec != "wrap":
                continue
            prop = lctx.prop(name)
            if (prop is not None and not prop.is_empty
                    and prop.is_finite and dt.covers(prop)):
                continue          # provably never wraps: comparison safe
            for succ in sfg.succs(node):
                if succ.kind == "op" and succ.label in self._COMPARE_OPS:
                    yield self.finding(
                        "wrap-mode signal %r (%s) feeds comparison %r; "
                        "results invert across the wrap boundary"
                        % (name, dt.spec(), succ.label),
                        signal=name, site=lctx.site(name))
                    break


@register_rule
class RedundantCastRule(Rule):
    """FX008 — cast that provably never changes the value."""

    id = "FX008"
    title = "redundant-cast"
    severity = "info"
    description = ("A cast's grid is at least as fine as its operand's "
                   "and its range covers every value the operand can "
                   "produce: the cast is a provable no-op.")
    hint = "remove the cast"

    def check(self, lctx):
        sfg = lctx.sfg
        for node in sfg.nodes("op"):
            dt = DType.from_cast_label(node.label)
            if dt is None:
                continue
            (pred,) = sfg.preds(node)
            f_in = lctx.frac_bits(pred)
            if f_in is None or dt.f < f_in:
                continue
            rng = self._operand_range(lctx, pred)
            if rng is None or rng.is_empty or not rng.is_finite:
                continue
            if not dt.covers(rng):
                continue
            anchor = _assigned_signal(sfg, node)
            yield self.finding(
                "cast %s is a provable no-op: operand grid f=%d <= %d "
                "and operand range [%g, %g] fits"
                % (node.label, f_in, dt.f, rng.lo, rng.hi),
                signal=anchor,
                site=None if anchor is None else lctx.site(anchor))

    @staticmethod
    def _operand_range(lctx, pred):
        if pred.kind in ("sig", "reg"):
            dt_in = lctx.dtype(pred.label)
            if dt_in is not None:
                return dt_in.range_interval()
            return lctx.prop(pred.label)
        return lctx.analysis.node_ranges.get(pred)


def _assigned_signal(sfg, op_node):
    """Name of a signal the op's result is assigned to (for anchoring)."""
    for succ in sfg.succs(op_node):
        if succ.kind in ("sig", "reg"):
            return succ.label
    return None


@register_rule
class StateLoopWithoutSaturationRule(Rule):
    """FX009 — register on a cycle with a wrapping write-back."""

    id = "FX009"
    title = "state-loop-without-saturation"
    severity = "warning"
    description = ("A register sits on a feedback cycle and its "
                   "write-back quantizes with wrap (its own dtype, or a "
                   "wrapping cast on the cycle): any rounding residue "
                   "the loop sustains becomes a zero-input limit cycle, "
                   "and an overflow re-enters the state far from "
                   "saturation. prove_no_limit_cycle() decides the "
                   "hazard exactly for short periods.")
    hint = ("saturate the state write-back (msbspec='saturate') or "
            "truncate toward zero so zero-input orbits decay")

    def check(self, lctx):
        reported = set()
        for cycle in lctx.cycles:
            regs = [n for n in cycle if n.kind == "reg"]
            if not regs:
                continue
            wrap_casts = [
                n.label for n in cycle if n.kind == "op"
                and (DType.from_cast_label(n.label) is not None
                     and DType.from_cast_label(n.label).msbspec == "wrap")]
            names = SFG.cycle_signal_names(cycle)
            for reg in regs:
                dt = lctx.dtype(reg.label)
                wraps_via_dtype = dt is not None and dt.msbspec == "wrap"
                if not wraps_via_dtype and not wrap_casts:
                    continue
                if reg.label in reported:
                    continue
                reported.add(reg.label)
                how = ("its dtype %s wraps" % dt.spec()
                       if wraps_via_dtype
                       else "cycle cast %s wraps" % wrap_casts[0])
                yield self.finding(
                    "state loop through %s quantizes the write-back of "
                    "%r with wrap (%s): limit-cycle hazard"
                    % (" -> ".join(names), reg.label, how),
                    signal=reg.label, cycle=names,
                    site=lctx.site(reg.label))
