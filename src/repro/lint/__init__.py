"""Simulation-free fixed-point hazard linter over the traced SFG.

The paper's analytical MSB method derives signal ranges from the signal
flow graph *without running the design* (Section 4.1).  This package
turns that machinery into a first-class static-analysis tool: a set of
rule objects walk a traced :class:`~repro.sfg.graph.SFG` plus the
declared :class:`~repro.core.dtype.DType` annotations and emit
structured :class:`Finding` diagnostics — MSB-explosion risks, overflow
hazards of wrap-mode declarations, provably dead integer bits,
double-rounding cast chains, undriven registers, write-only signals and
redundant casts — each with a stable rule id, a severity and a fix-it
hint.  No simulation values are involved.

Entry points:

* :func:`run_lint` — lint one traced graph, programmatically.
* ``python -m repro.lint`` — lint the bundled ``repro.dsp`` designs,
  with text / JSON / SARIF 2.1.0 output and baseline support.
* :meth:`repro.refine.flow.RefinementFlow.lint` — the refinement flow's
  hook; ``RefinementFlow.run()`` surfaces findings in its diagnostics.
"""

from repro.lint.core import (Finding, LintConfig, LintContext, LintReport,
                             Rule, all_rules, run_lint)
from repro.lint.baseline import (apply_baseline, load_baseline,
                                 write_baseline)
from repro.lint.output import to_json_dict, to_sarif_dict

__all__ = ["Finding", "LintConfig", "LintContext", "LintReport", "Rule",
           "all_rules", "run_lint", "load_baseline", "write_baseline",
           "apply_baseline", "to_json_dict", "to_sarif_dict"]
