"""``python -m repro.lint`` — lint the bundled designs (or your own).

The CLI traces each requested design for a handful of samples (tracing
captures the *static* structure; the sample values are irrelevant), then
runs every registered rule over the captured SFG.  The bundled designs
carry the knowledge-based annotations the paper derives for them (e.g.
``b.range(-0.2, 0.2)`` on the LMS feedback coefficient), so an
unmodified checkout lints clean of error-severity findings — CI treats
any new error as a regression.

Exit status: 0 when no kept finding reaches ``--fail-on`` (default
``error``), 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
from dataclasses import dataclass, field

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.core import SEVERITY_ORDER, LintConfig, run_lint
from repro.lint.output import to_json_dict, to_sarif_dict
from repro.refine.flow import Annotations
from repro.sfg import trace
from repro.signal.context import DesignContext

__all__ = ["main", "lint_design", "DesignEntry", "design_registry"]

#: samples to run under trace; structure converges after a few ticks.
DEFAULT_SAMPLES = 16


@dataclass
class DesignEntry:
    """One lintable bundled design plus its a-priori annotations."""

    name: str
    factory: object
    description: str
    #: seed ranges of the primary inputs (AD-converter knowledge).
    input_ranges: dict = field(default_factory=dict)
    #: knowledge-based ``range()`` annotations (paper Section 4.1 style);
    #: keys may be array bases (``"c"`` covers every element).
    ranges: dict = field(default_factory=dict)
    #: secondary sinks that are outputs by intent (not write-only waste).
    extra_outputs: tuple = ()
    samples: int = DEFAULT_SAMPLES


def design_registry():
    """Bundled ``repro.dsp`` designs, keyed by CLI name."""
    from repro.dsp import (AdaptiveLmsDesign, BiquadDesign, CordicDesign,
                           LmsEqualizerDesign, TimingRecoveryDesign)
    entries = [
        DesignEntry(
            "lms", LmsEqualizerDesign,
            "paper Section 4.1 single-coefficient LMS equalizer",
            input_ranges={"x": (-1.5, 1.5)},
            ranges={"b": (-0.2, 0.2)}),
        DesignEntry(
            "adaptive-lms", AdaptiveLmsDesign,
            "fully adaptive N-tap LMS equalizer",
            input_ranges={"x": (-1.5, 1.5)},
            ranges={"c": (-1.0, 1.0)},
            extra_outputs=("y",)),
        DesignEntry(
            "biquad", BiquadDesign,
            "direct-form-II biquad (limit-cycle substrate)",
            input_ranges={"x": (-1.0, 1.0)},
            ranges={"bq.w": (-4.0, 4.0)}),
        DesignEntry(
            "cordic", CordicDesign,
            "unrolled rotation-mode CORDIC",
            input_ranges={"xi": (-1.0, 1.0), "yi": (-1.0, 1.0),
                          "zi": (-1.5, 1.5)},
            extra_outputs=("cr.yo", "cr.z[12]")),
        DesignEntry(
            "timing-recovery", TimingRecoveryDesign,
            "paper Figure 5 timing-recovery loop",
            input_ranges={"in": (-2.0, 2.0)},
            ranges={"nco.eta": (-0.6, 1.1), "nco.mu": (0.0, 1.0),
                    "lf.i": (-0.05, 0.05)},
            extra_outputs=("y", "nco.strobe2"),
            samples=64),
    ]
    return {e.name: e for e in entries}


def _artifact_of(design):
    """Repo-relative source file of a design instance (or None)."""
    try:
        path = inspect.getsourcefile(type(design))
    except TypeError:
        return None
    if path is None:
        return None
    path = os.path.abspath(path)
    rel = os.path.relpath(path, os.getcwd())
    return rel if not rel.startswith("..") else path


def lint_design(entry, config=None, samples=None):
    """Build, trace and lint one :class:`DesignEntry`.

    The design runs with sanitizing guards and recorded overflows so a
    deliberately broken fixture never aborts the lint pass — the linter
    judges structure, not simulated values.
    """
    n = samples if samples is not None else entry.samples
    ctx = DesignContext("lint-%s" % entry.name, overflow_action="record",
                        guard_action="sanitize")
    with ctx:
        design = entry.factory()
        design.build(ctx)
        Annotations(ranges=entry.ranges).apply(ctx)
        with trace(ctx) as tracer:
            design.run(ctx, n)
    outputs = set(entry.extra_outputs)
    if getattr(design, "output", None):
        outputs.add(design.output)
    return run_lint(tracer.sfg, input_ranges=entry.input_ranges,
                    outputs=outputs, design_name=entry.name,
                    artifact=_artifact_of(design), config=config)


def _parse_severity_overrides(pairs):
    overrides = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(2)
        rule, _, sev = pair.partition("=")
        overrides[rule.strip()] = sev.strip()
    return overrides


def _split_csv(values):
    out = []
    for v in values:
        out.extend(p.strip() for p in v.split(",") if p.strip())
    return out


def build_parser():
    p = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Simulation-free fixed-point hazard linter over the "
                    "traced signal flow graph.")
    p.add_argument("designs", nargs="*",
                   help="bundled design name(s); default: all")
    p.add_argument("--all", action="store_true",
                   help="lint every bundled design")
    p.add_argument("--list", action="store_true",
                   help="list bundled designs and exit")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="output format (default: text)")
    p.add_argument("--output", metavar="PATH",
                   help="write the report here instead of stdout")
    p.add_argument("--baseline", metavar="PATH",
                   help="suppress findings recorded in this baseline file")
    p.add_argument("--write-baseline", metavar="PATH",
                   help="record all current findings as the new baseline")
    p.add_argument("--fail-on", choices=SEVERITY_ORDER + ("never",),
                   default="error",
                   help="exit 1 when a finding of at least this severity "
                        "survives the baseline (default: error)")
    p.add_argument("--disable", action="append", default=[],
                   metavar="RULE", help="disable a rule id (repeatable, "
                                        "comma-separated ok)")
    p.add_argument("--select", action="append", default=[],
                   metavar="RULE", help="run only these rule ids")
    p.add_argument("--severity", action="append", default=[],
                   metavar="RULE=LEVEL",
                   help="override a rule's severity (e.g. FX003=error)")
    p.add_argument("--samples", type=int, default=None,
                   help="samples to run under trace (default: per design)")
    return p


def main(argv=None):
    args = build_parser().parse_args(argv)
    registry = design_registry()
    if args.list:
        width = max(len(n) for n in registry)
        for name, entry in sorted(registry.items()):
            print("%-*s  %s" % (width, name, entry.description))
        return 0

    names = args.designs or sorted(registry)
    if args.all:
        names = sorted(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        print("unknown design(s): %s (try --list)" % ", ".join(unknown),
              file=sys.stderr)
        return 2

    config = LintConfig(
        disabled=_split_csv(args.disable),
        enabled_only=_split_csv(args.select) or None,
        severities=_parse_severity_overrides(args.severity))

    reports = [lint_design(registry[n], config=config, samples=args.samples)
               for n in names]

    if args.write_baseline:
        write_baseline(args.write_baseline, reports)
        print("baseline with %d finding(s) written to %s"
              % (sum(len(r) for r in reports), args.write_baseline),
              file=sys.stderr)
    if args.baseline:
        fingerprints = load_baseline(args.baseline)
        reports = [apply_baseline(r, fingerprints) for r in reports]

    if args.format == "json":
        text = json.dumps(to_json_dict(reports), indent=2, sort_keys=True)
    elif args.format == "sarif":
        text = json.dumps(to_sarif_dict(reports), indent=2, sort_keys=True)
    else:
        blocks = []
        for r in reports:
            blocks.append(r.table())
            blocks.append(r.summary())
        blocks.append("total: %d finding(s) across %d design(s)"
                      % (sum(len(r) for r in reports), len(reports)))
        text = "\n\n".join(blocks)

    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
            fh.write("\n")
    else:
        print(text)

    if args.fail_on == "never":
        return 0
    threshold = SEVERITY_ORDER.index(args.fail_on)
    failing = sum(
        1 for r in reports for f in r
        if SEVERITY_ORDER.index(f.severity) >= threshold)
    if failing:
        print("%d finding(s) at or above %r severity"
              % (failing, args.fail_on), file=sys.stderr)
        return 1
    return 0
