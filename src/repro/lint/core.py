"""Rule / Finding / LintReport core of the static analyzer.

A :class:`LintContext` bundles everything a rule may query: the traced
:class:`~repro.sfg.graph.SFG`, the declared per-signal
:class:`~repro.core.dtype.DType` map, the analytical
:class:`~repro.sfg.analyze.RangeAnalysis` (fixpoint interval propagation
— *structure only*, no simulation values), the deterministic cycle sets
and a memoized fractional-bit derivation over expression trees.  Rules
are small classes with a stable id, a default severity and a
``check(lctx, config)`` generator; :func:`run_lint` drives them and
collects a :class:`LintReport`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.core import word
from repro.core.dtype import DType
from repro.obs import trace as obs_trace
from repro.sfg.analyze import propagate_ranges

__all__ = ["Finding", "Rule", "LintConfig", "LintContext", "LintReport",
           "all_rules", "register_rule", "run_lint", "SEVERITY_ORDER"]

#: Ascending severity order (indexable for threshold comparisons).
SEVERITY_ORDER = ("info", "warning", "error")


@dataclass(frozen=True)
class Finding:
    """One structured diagnostic emitted by a rule.

    >>> f = Finding("FX001", "warning", "register lacks a dtype",
    ...             hint="annotate acc", signal="acc")
    >>> f.describe()
    'FX001 warning [acc]: register lacks a dtype (fix: annotate acc)'
    >>> f.fingerprint() == f.fingerprint()   # stable across calls
    True
    """

    rule_id: str                     # stable id, e.g. "FX001"
    severity: str                    # "info" | "warning" | "error"
    message: str                     # what is wrong
    hint: str = ""                   # how to fix it
    signal: Optional[str] = None     # anchoring signal name, if any
    cycle: tuple = ()                # signal names of the offending cycle
    site: Optional[tuple] = None     # (filename, lineno) of the declaration
    data: dict = field(default_factory=dict)

    def fingerprint(self):
        """Stable identity for baseline suppression.

        Deliberately message-free (messages carry ranges that move with
        unrelated edits); the identity is the rule plus the structural
        anchor.
        """
        raw = "%s|%s|%s" % (self.rule_id, self.signal or "",
                            ",".join(self.cycle))
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]

    def describe(self):
        where = "" if self.signal is None else " [%s]" % self.signal
        text = "%s %s%s: %s" % (self.rule_id, self.severity, where,
                                self.message)
        if self.hint:
            text += " (fix: %s)" % self.hint
        return text


class Rule:
    """Base class of one lint rule.

    Subclasses set the class attributes and implement :meth:`check` as a
    generator of :class:`Finding`.  Use :meth:`finding` so severity
    overrides from the :class:`LintConfig` are applied uniformly.
    """

    id = "FX000"
    title = ""
    severity = "warning"          # default severity
    description = ""
    hint = ""

    def __init__(self, config=None):
        self.config = config if config is not None else LintConfig()

    def check(self, lctx):
        raise NotImplementedError

    def finding(self, message, hint=None, signal=None, cycle=(), site=None,
                **data):
        return Finding(self.id,
                       self.config.severity_of(self.id, self.severity),
                       message, hint if hint is not None else self.hint,
                       signal, tuple(cycle), site, data)

    def option(self, name, default):
        return self.config.option(self.id, name, default)


#: Registered rule classes in id order (populated by ``register_rule``).
_REGISTRY = {}


def register_rule(cls):
    """Class decorator adding a rule to the global registry."""
    if cls.id in _REGISTRY:
        raise ValueError("duplicate lint rule id %r" % cls.id)
    _REGISTRY[cls.id] = cls
    return cls


def all_rules():
    """Registered rule classes, sorted by rule id."""
    import repro.lint.rules  # noqa: F401  (registers on import)
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


class LintConfig:
    """Per-rule enablement, severity overrides and options.

    >>> cfg = LintConfig(disabled={"FX003"},
    ...                  severities={"FX001": "error"},
    ...                  options={"FX005": {"max_bits": 24}})
    >>> cfg.enabled("FX003"), cfg.enabled("FX001")
    (False, True)
    >>> cfg.severity_of("FX001", "warning")
    'error'
    >>> cfg.option("FX005", "max_bits", 32)
    24

    ``enabled_only`` flips the default from opt-out to opt-in:

    >>> LintConfig(enabled_only={"FX002"}).enabled("FX001")
    False
    """

    def __init__(self, disabled=(), enabled_only=None, severities=None,
                 options=None):
        self.disabled = set(disabled)
        self.enabled_only = (None if enabled_only is None
                             else set(enabled_only))
        self.severities = dict(severities or {})
        self.options = dict(options or {})
        for sev in self.severities.values():
            if sev not in SEVERITY_ORDER:
                raise ValueError("unknown severity %r" % (sev,))

    def enabled(self, rule_id):
        if rule_id in self.disabled:
            return False
        if self.enabled_only is not None:
            return rule_id in self.enabled_only
        return True

    def severity_of(self, rule_id, default):
        return self.severities.get(rule_id, default)

    def option(self, rule_id, name, default):
        return self.options.get(rule_id, {}).get(name, default)


class LintContext:
    """Everything the rules may query about one traced design."""

    #: Constants needing more fractional bits than this are treated as
    #: "unbounded precision" (non-dyadic coefficients such as 0.11): the
    #: precision rules stay silent rather than flagging their inevitable
    #: quantization.
    CONST_FRAC_CAP = 16

    def __init__(self, sfg, dtypes=None, input_ranges=None,
                 forced_ranges=None, outputs=(), design_name="design",
                 artifact=None):
        self.sfg = sfg
        self.design_name = design_name
        #: source file the design lives in (SARIF location fallback)
        self.artifact = artifact
        self.outputs = set(outputs)
        self.dtypes = {}
        self.forced = dict(forced_ranges or {})
        self.inputs = set(input_ranges or {})
        explicit = dict(dtypes or {})
        for node in sfg.signal_nodes():
            name = node.label
            sig = sfg.sig_payload(name)
            self.dtypes[name] = explicit.get(name,
                                             getattr(sig, "dtype", None))
            fr = getattr(sig, "forced_range", None)
            if fr is not None and name not in self.forced:
                self.forced[name] = fr
            if getattr(sig, "role", "") == "output":
                self.outputs.add(name)
        self.analysis = propagate_ranges(sfg, input_ranges=input_ranges,
                                         forced_ranges=forced_ranges)
        self.cycles = sfg.cycles()
        self._frac_memo = {}

    # -- per-signal queries -------------------------------------------------

    def dtype(self, name):
        return self.dtypes.get(name)

    def prop(self, name):
        """Analytically propagated interval of a signal (may be None)."""
        return self.analysis.ranges.get(name)

    def site(self, name):
        """Declaration site (filename, lineno) of a signal, or None."""
        sig = self.sfg.sig_payload(name)
        return getattr(sig, "decl_site", None)

    def typed_signals(self):
        """(name, node, dtype) of every signal with a declared DType."""
        for node in self.sfg.signal_nodes():
            dt = self.dtypes.get(node.label)
            if dt is not None:
                yield node.label, node, dt

    # -- fractional-bit derivation over expression trees --------------------

    def frac_bits(self, node):
        """Exact fractional bits of the value a node produces, or None.

        ``None`` means "unknown / unbounded" — floating-point signals,
        divisions, and constants beyond :data:`CONST_FRAC_CAP` (their
        binary expansion is impractically long, so discarding tail bits
        is inevitable rather than a hazard).  This is the typed-SFG view
        the netlist builder uses, restricted to the LSB dimension.
        """
        memo = self._frac_memo
        if node in memo:
            return memo[node]
        memo[node] = f = self._frac_bits(node)
        return f

    def _frac_bits(self, node):
        if node.kind == "const":
            f = word.needed_frac_bits(node.payload,
                                      cap=self.CONST_FRAC_CAP + 1)
            return f if f <= self.CONST_FRAC_CAP else None
        if node.kind in ("sig", "reg"):
            dt = self.dtypes.get(node.label)
            return None if dt is None else dt.f
        label = node.label
        preds = self.sfg.preds(node)
        cast_dt = DType.from_cast_label(label)
        if cast_dt is not None:
            f_in = self.frac_bits(preds[0])
            return cast_dt.f if f_in is None else min(f_in, cast_dt.f)
        if label in ("gt", "ge", "lt", "le"):
            return 0
        if label in ("neg", "abs"):
            return self.frac_bits(preds[0])
        if label.startswith("shl") or label.startswith("shr"):
            f = self.frac_bits(preds[0])
            if f is None:
                return None
            k = int(label[3:])
            return f + k if label.startswith("shr") else max(0, f - k)
        ins = [self.frac_bits(p) for p in
               (preds[-2:] if label == "select" else preds)]
        if any(f is None for f in ins) or not ins:
            return None
        if label in ("add", "sub", "min", "max", "select"):
            return max(ins)
        if label == "mul":
            return sum(ins)
        return None  # div and anything unknown: precision unbounded


class LintReport:
    """Ordered findings of one lint run plus summary helpers."""

    def __init__(self, findings, design_name="design", artifact=None,
                 suppressed=0):
        self.findings = list(findings)
        self.design_name = design_name
        self.artifact = artifact
        #: findings removed by a baseline file
        self.suppressed = suppressed

    def __len__(self):
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    def by_rule(self, rule_id):
        return [f for f in self.findings if f.rule_id == rule_id]

    def by_severity(self, severity):
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self):
        return self.by_severity("error")

    @property
    def warnings(self):
        return self.by_severity("warning")

    def worst_severity(self):
        """Highest severity present, or None for a clean report."""
        worst = None
        for f in self.findings:
            if worst is None or (SEVERITY_ORDER.index(f.severity)
                                 > SEVERITY_ORDER.index(worst)):
                worst = f.severity
        return worst

    def table(self, title=None):
        from repro.refine.report import format_lint_table
        return format_lint_table(
            self.findings,
            title=title if title is not None
            else "Lint findings — %s" % self.design_name)

    def summary(self):
        counts = {s: len(self.by_severity(s)) for s in SEVERITY_ORDER}
        text = ("%s: %d finding(s) (%d error, %d warning, %d info)"
                % (self.design_name, len(self.findings), counts["error"],
                   counts["warning"], counts["info"]))
        if self.suppressed:
            text += ", %d suppressed by baseline" % self.suppressed
        return text

    def to_dict(self):
        return {
            "design": self.design_name,
            "suppressed": self.suppressed,
            "findings": [{
                "rule": f.rule_id,
                "severity": f.severity,
                "signal": f.signal,
                "message": f.message,
                "hint": f.hint,
                "cycle": list(f.cycle),
                "site": list(f.site) if f.site else None,
                "fingerprint": f.fingerprint(),
            } for f in self.findings],
        }


def run_lint(sfg, dtypes=None, input_ranges=None, forced_ranges=None,
             outputs=(), design_name="design", artifact=None, config=None,
             rules=None):
    """Lint one traced graph and return a :class:`LintReport`.

    ``dtypes`` overrides/extends the DTypes found on the traced signal
    payloads; ``input_ranges`` seeds the analytical propagation exactly
    like :func:`~repro.sfg.analyze.propagate_ranges`; ``outputs`` names
    sink signals that must not be flagged as write-only.
    """
    config = config if config is not None else LintConfig()
    with obs_trace.span("lint.run", design=design_name) as run_span:
        lctx = LintContext(sfg, dtypes=dtypes, input_ranges=input_ranges,
                           forced_ranges=forced_ranges, outputs=outputs,
                           design_name=design_name, artifact=artifact)
        findings = []
        for cls in (rules if rules is not None else all_rules()):
            if not config.enabled(cls.id):
                continue
            with obs_trace.span("lint.rule", rule=cls.id) as rule_span:
                hits = list(cls(config).check(lctx))
                rule_span.set(findings=len(hits))
            findings.extend(hits)
        findings.sort(key=lambda f: (f.rule_id, f.signal or "",
                                     f.message))
        run_span.set(signals=len(lctx.dtypes), findings=len(findings))
    return LintReport(findings, design_name=design_name, artifact=artifact)
