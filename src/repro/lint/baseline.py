"""Baseline files: suppress known findings, fail only on new ones.

A baseline is a JSON file keyed by finding fingerprints (see
:meth:`~repro.lint.core.Finding.fingerprint` — structural, not
message-based, so reworded diagnostics or moved lines do not churn it).
The CLI writes one with ``--write-baseline`` and applies one with
``--baseline``; CI then fails only on findings that are not in the
checked-in baseline.
"""

from __future__ import annotations

import json

from repro.lint.core import LintReport

__all__ = ["load_baseline", "write_baseline", "apply_baseline",
           "baseline_dict"]

BASELINE_VERSION = 1


def baseline_dict(reports):
    """Baseline payload covering every finding of ``reports``."""
    if isinstance(reports, LintReport):
        reports = [reports]
    fingerprints = {}
    for report in reports:
        for f in report.findings:
            fingerprints[f.fingerprint()] = {
                "rule": f.rule_id,
                "signal": f.signal,
                "design": report.design_name,
            }
    return {"version": BASELINE_VERSION, "fingerprints": fingerprints}


def write_baseline(path, reports):
    """Write a baseline file suppressing every current finding."""
    payload = baseline_dict(reports)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def load_baseline(path):
    """Load a baseline file; returns the set of suppressed fingerprints."""
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "fingerprints" not in payload:
        raise ValueError("malformed baseline file %r" % (path,))
    return set(payload["fingerprints"])


def apply_baseline(report, fingerprints):
    """New report with baselined findings removed (counted as suppressed)."""
    if not fingerprints:
        return report
    kept = [f for f in report.findings
            if f.fingerprint() not in fingerprints]
    suppressed = len(report.findings) - len(kept)
    return LintReport(kept, design_name=report.design_name,
                      artifact=report.artifact,
                      suppressed=report.suppressed + suppressed)
