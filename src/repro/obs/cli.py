"""``python -m repro.obs`` — render captured JSONL traces.

Subcommands:

``report TRACE.jsonl``
    Print the human-readable span tree + metrics table.  ``--html
    PATH`` additionally writes the self-contained HTML report;
    ``--format html`` prints the HTML to stdout instead of the text
    view; ``--out PATH`` redirects whichever format was chosen to a
    file.

``summary TRACE.jsonl``
    One JSON object with headline counts (spans, events, wall time,
    error spans) — handy for CI assertions over a trace artifact.

Capture a trace with::

    from repro.obs import trace
    rec = trace.enable()
    ...  # run a refinement / campaign / simulation
    trace.disable()
    rec.to_jsonl("trace.jsonl")

or run ``python examples/observability_demo.py`` for an end-to-end
example (traced LMS refinement -> JSONL -> HTML).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.events import read_jsonl
from repro.obs.export import render_html, render_text, summarize

__all__ = ["main"]


def _write(text, path):
    if path is None or path == "-":
        sys.stdout.write(text + "\n")
    else:
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print("[written to %s]" % path, file=sys.stderr)


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render captured observability traces.")
    sub = ap.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("report", help="render a JSONL trace")
    rep.add_argument("trace", help="JSONL trace file (repro.obs format)")
    rep.add_argument("--format", choices=("text", "html"), default="text",
                     help="primary output format (default: text)")
    rep.add_argument("--out", default=None, metavar="PATH",
                     help="write the primary output here instead of stdout")
    rep.add_argument("--html", default=None, metavar="PATH",
                     help="additionally write the HTML report to PATH")
    rep.add_argument("--title", default=None,
                     help="HTML report title (default: trace filename)")

    summ = sub.add_parser("summary", help="print headline trace counts")
    summ.add_argument("trace", help="JSONL trace file")

    args = ap.parse_args(argv)

    try:
        meta, events = read_jsonl(args.trace)
    except (OSError, ValueError) as exc:
        print("error: cannot read trace %r: %s" % (args.trace, exc),
              file=sys.stderr)
        return 2
    if not events:
        print("error: %r contains no events" % args.trace, file=sys.stderr)
        return 2

    if args.command == "summary":
        print(json.dumps(summarize(events), indent=2, sort_keys=True))
        return 0

    title = args.title or "repro trace — %s" % args.trace
    if args.format == "html":
        _write(render_html(events, title=title), args.out)
    else:
        _write(render_text(events), args.out)
    if args.html:
        _write(render_html(events, title=title), args.html)
    return 0
