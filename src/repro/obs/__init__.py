"""repro.obs — zero-dependency observability for the refinement flow.

The paper's methodology is monitoring-first: MSB range statistics and
LSB error statistics ride on every simulation.  This package extends
that idea from *numbers at the end of a run* to *structure while it
runs*:

* :mod:`repro.obs.trace` — span-based tracing (``trace.span(...)``)
  instrumented through the refinement flow, the simulation engine, the
  parallel runner, the fault campaign and the linter; parent/child span
  ids survive the fork-pool.
* :mod:`repro.obs.metrics` — per-signal quantization counters
  (overflow/saturate/wrap events, rounding-error accumulation, min/max
  churn) collected in the assignment hot path behind a
  compile-time-style enable switch (``Sig._record`` is swapped, never
  branch-tested), so disabled runs pay nothing.
* :mod:`repro.obs.counters` — always-on process-wide tallies of rare
  recovery events (job retries, poison-job quarantines, deadline hits,
  journal replays) incremented by the crash-tolerant batch layer.
* :mod:`repro.obs.profile` — ``obs.profile()`` attributes wall time to
  quantize kernels vs interval propagation vs Python overhead.
* :mod:`repro.obs.export` — human text, JSONL event stream and a
  static HTML timeline report; ``python -m repro.obs report`` renders
  captured traces from the command line.

Quick capture::

    from repro import obs

    rec = obs.trace.enable()         # tracing on
    obs.metrics.enable()             # per-signal counters on
    result = flow.run()              # spans + progress events + metrics
    obs.metrics.disable()
    obs.trace.disable()
    rec.to_jsonl("refine.jsonl")     # python -m repro.obs report refine.jsonl

Everything here is standard-library only and import-cheap; nothing in
``repro.obs`` is imported by the hot paths unless observability is
switched on.
"""

from repro.obs import counters, export, metrics, trace
from repro.obs.events import Recorder, read_jsonl, write_jsonl
from repro.obs.export import (build_spans, render_html, render_text,
                              summarize)
from repro.obs.profile import ProfileReport, profile
from repro.obs.trace import event, span

__all__ = ["trace", "metrics", "counters", "export", "span", "event",
           "profile", "ProfileReport", "Recorder", "read_jsonl",
           "write_jsonl", "build_spans", "render_text", "render_html",
           "summarize"]
