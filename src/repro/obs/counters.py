"""Process-wide named counters for rare recovery/infrastructure events.

The per-signal :mod:`repro.obs.metrics` counters live on the assignment
hot path and need the swap-in trick to stay free; these counters are the
opposite — coarse, always-on tallies of events that happen at most a
handful of times per batch (a retried job, a quarantined poison job, a
deadline hit, a journal replay).  A plain dict increment is cheap enough
to leave permanently enabled, which matters precisely because the
events are rare: the one run where a worker crashed is the run where
you cannot retroactively enable instrumentation.

Counters incremented inside a fork-pool *worker* die with the worker;
the parallel runner therefore increments all recovery counters on the
parent side (when it sees the outcome / failure), so the numbers are
complete regardless of execution mode.

>>> from repro.obs import counters
>>> counters.reset()
>>> counters.inc("parallel.retries")
1
>>> counters.inc("parallel.retries", 2)
3
>>> counters.get("parallel.retries"), counters.get("never.touched")
(3, 0)

Well-known names (all under ``parallel.`` / ``journal.`` /
``checkpoint.``):

``parallel.retries``
    job re-submissions after a worker crash (before quarantine).
``parallel.quarantined``
    poison jobs given up on after exhausting their retry budget.
``parallel.deadline_hits``
    jobs aborted by their per-job wall-clock deadline.
``parallel.pool_respawns``
    worker pools rebuilt after a crash.
``parallel.pickling_fallbacks``
    jobs run in-process because they could not cross the pipe.
``journal.appends`` / ``journal.replays`` / ``journal.dropped_records``
    write-ahead journal activity (see :mod:`repro.robust.recovery`).
``journal.io_errors`` / ``journal.compactions``
    appends degraded to in-memory after an OSError / atomic
    journal-compaction rewrites.
``cache.hits`` / ``cache.misses``
    :class:`~repro.parallel.runner.SimCache` lookup tallies across all
    instances (per-instance numbers: :meth:`SimCache.stats`).
``cache.corrupt``
    :class:`~repro.parallel.runner.SimCache` entries evicted on
    checksum mismatch (recomputed instead of unpickling garbage);
    each corrupt hit also counts as a ``cache.misses``.
``journal.compact_contended``
    compactions skipped because another process held the journal's
    cross-process compaction lock (the winner's rewrite serves both).
``checkpoint.saves`` / ``checkpoint.loads`` / ``flow.stage_replays``
    checkpointed refinement-flow state.
``chaos.injected`` / ``chaos.scenarios_run`` / ``chaos.invariant_failures``
    deterministic fault injection (see :mod:`repro.robust.chaos`).
``compile.batches`` / ``compile.lanes`` / ``compile.samples``
    compiled-engine groups executed, total lanes (configs) batched into
    them, and committed samples per group times lanes
    (see :mod:`repro.compile`).
``compile.fallbacks`` / ``compile.ineligible``
    groups re-run interpreted after a :class:`CompileFallback` /
    configs that never qualified for batching (faults, error()
    annotations, deadlines, metrics enabled, n > 53 dtypes).
``verify.checks`` / ``verify.proved`` / ``verify.counterexample`` /
``verify.unknown``
    bounded-model-checking property checks discharged and their
    verdicts (see :mod:`repro.verify`; codes DG210–DG212).
``verify.replays``
    counterexamples re-executed bit-exactly through the interpreted
    engine before being reported.
``service.submitted`` / ``service.accepted``
    refinement-service submissions offered / admitted past all three
    admission gates (see :mod:`repro.service`).
``service.rejected_quota`` / ``service.rejected_queue`` /
``service.rejected_breaker``
    deterministic load shedding per boundary: token-bucket quota,
    bounded queue (tenant or global), open circuit breaker.
``service.dedupe_hits`` / ``service.coalesced`` / ``service.store_hits``
    submissions served without a fresh simulation: total dedupe events,
    the subset that attached to an in-flight computation, and
    content-store lookups that hit (cache or journal tier).
``service.completed`` / ``service.failed`` / ``service.cancelled``
    jobs settled, by terminal state.
``service.quarantined`` / ``service.breaker_trips``
    tenant jobs quarantined as poison / circuit breakers tripped open.
``service.recovered`` / ``service.deadline_hits``
    accepted-but-unfinished jobs replayed from the submission journal
    after a restart / jobs that hit their propagated deadline.
"""

from __future__ import annotations

import time

__all__ = ["inc", "get", "snapshot", "reset", "emit"]

_COUNTS = {}


def inc(name, n=1):
    """Add ``n`` to counter ``name``; returns the new value."""
    value = _COUNTS.get(name, 0) + n
    _COUNTS[name] = value
    return value


def get(name):
    """Current value of ``name`` (0 when never incremented)."""
    return _COUNTS.get(name, 0)


def snapshot():
    """Copy of all non-zero counters, by name."""
    return dict(_COUNTS)


def reset():
    """Zero every counter (tests / between campaigns)."""
    _COUNTS.clear()


def emit(label=None):
    """Record one ``counter`` trace event per non-zero counter.

    No-op unless tracing is enabled; returns the number of events
    emitted.  Lets a trace capture carry the recovery tallies alongside
    the spans that produced them.
    """
    from repro.obs import trace

    rec = trace.current_recorder()
    if rec is None:
        return 0
    sid = trace.current_span_id()
    n = 0
    for name, value in sorted(_COUNTS.items()):
        ev = {"ts": time.time(), "kind": "counter", "name": name,
              "span": sid, "parent": sid, "value": value}
        if label is not None:
            ev["label"] = label
        rec.record(ev)
        n += 1
    return n
