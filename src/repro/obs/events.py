"""Event model and recorder of the observability layer.

Everything the tracer, the metric counters and the profiler emit is a
plain dict — one **event** — collected by a :class:`Recorder`.  Four
event kinds exist:

``span_start`` / ``span_end``
    One pair per :func:`repro.obs.trace.span`.  ``span_end`` carries the
    wall-clock duration (``dur``), the final status (``ok`` /
    ``error``) and the span attributes.
``event``
    A point-in-time occurrence inside the current span (e.g. one
    refinement-progress update per MSB iteration).
``metric``
    A per-signal quantization-metrics snapshot (see
    :mod:`repro.obs.metrics`).

Events are dicts rather than objects so they cross the fork-pool pipe
(:mod:`repro.parallel.runner`) and the JSONL boundary without any
custom serialization.  Field layout::

    {"ts": <unix time>, "kind": ..., "name": ...,
     "span": <span id or None>, "parent": <parent span id or None>,
     ...attribute keys...}

Span ids embed the producing process id (``"<pid>.<n>"``), so ids
minted inside fork-pool workers never collide with the parent's and the
parent/child chain stays intact when worker events are merged back.
"""

from __future__ import annotations

import json
import os
import time

__all__ = ["Recorder", "new_span_id", "read_jsonl", "write_jsonl"]

#: Monotonic per-process id source; reset lazily after a fork so worker
#: processes mint ids under their own pid.
_IDGEN = {"pid": os.getpid(), "n": 0}


def new_span_id():
    """Mint a process-unique span id (fork-safe)."""
    pid = os.getpid()
    if pid != _IDGEN["pid"]:
        _IDGEN["pid"] = pid
        _IDGEN["n"] = 0
    _IDGEN["n"] += 1
    return "%x.%x" % (pid, _IDGEN["n"])


class Recorder:
    """Bounded in-memory event sink.

    ``capacity`` caps the retained event list; once full, further events
    only increment :attr:`dropped` (the cap protects long refinement
    runs from unbounded growth — raise it for deep traces).
    """

    def __init__(self, capacity=200_000):
        self.capacity = int(capacity)
        self.events = []
        self.dropped = 0
        self.epoch = time.time()
        self.meta = {
            "kind": "meta",
            "schema": 1,
            "epoch": self.epoch,
            "pid": os.getpid(),
        }

    def record(self, event):
        """Append one event dict (drops beyond capacity)."""
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(event)

    def extend(self, events):
        """Merge a batch of foreign events (e.g. from a fork worker)."""
        for ev in events:
            self.record(ev)

    def mark(self):
        """Current position, for :meth:`events_since`."""
        return len(self.events)

    def events_since(self, mark):
        """Events recorded after a :meth:`mark` (a shallow copy)."""
        return list(self.events[mark:])

    def clear(self):
        self.events.clear()
        self.dropped = 0

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- persistence --------------------------------------------------------

    def to_jsonl(self, dest):
        """Write the meta header plus every event to ``dest``.

        ``dest`` is a path or a writable text file object.  Returns the
        number of events written.
        """
        return write_jsonl(self.events, dest, meta=self.meta)

    def __repr__(self):
        return "Recorder(%d events%s)" % (
            len(self.events),
            ", %d dropped" % self.dropped if self.dropped else "")


def write_jsonl(events, dest, meta=None):
    """Serialize ``events`` as one JSON object per line.

    Attribute values that are not JSON-serializable are repr()-ed so a
    trace can always be written.  Returns the number of event lines.
    """
    own = isinstance(dest, (str, os.PathLike))
    fh = open(dest, "w") if own else dest
    n = 0
    try:
        if meta is not None:
            fh.write(json.dumps(meta, default=repr) + "\n")
        for ev in events:
            fh.write(json.dumps(ev, default=repr) + "\n")
            n += 1
    finally:
        if own:
            fh.close()
    return n


def read_jsonl(src):
    """Read a JSONL trace; returns ``(meta, events)``.

    ``meta`` is the header dict (or ``{}`` when the file has none);
    blank lines are skipped.  ``src`` is a path or a readable text file
    object.
    """
    own = isinstance(src, (str, os.PathLike))
    fh = open(src) if own else src
    meta = {}
    events = []
    try:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("kind") == "meta" and not events and not meta:
                meta = obj
            else:
                events.append(obj)
    finally:
        if own:
            fh.close()
    return meta, events
