"""Span-based tracing with near-zero disabled overhead.

The instrumented layers (:mod:`repro.refine.flow`, :mod:`repro.sim`,
:mod:`repro.parallel`, :mod:`repro.lint`, :mod:`repro.robust`) call
:func:`span` unconditionally.  While tracing is **disabled** — the
default — :func:`span` returns one shared no-op context manager, so the
cost per instrumentation point is a dict build plus a function call,
paid only at coarse granularity (per phase, per simulation, per batch;
never per signal assignment).  :func:`enable` installs a
:class:`~repro.obs.events.Recorder` and the same calls start emitting
``span_start`` / ``span_end`` / ``event`` records.

Usage::

    from repro.obs import trace

    rec = trace.enable()
    with trace.span("refine.run", design="lms"):
        with trace.span("refine.msb.iteration", index=1) as sp:
            trace.event("refine.progress", exploded=2)
            sp.set(resolved=False)
    trace.disable()
    rec.to_jsonl("trace.jsonl")

Fork-pool behaviour
-------------------
The tracer state (the enabled recorder *and* the open-span stack) lives
in module globals, which ``fork``-start workers inherit by
copy-on-write.  A worker therefore sees the parent's open spans: spans
it opens chain to the correct parent span id, and ids minted in the
worker embed the worker's pid so they cannot collide with the parent's
(:func:`repro.obs.events.new_span_id`).  The worker's events are
shipped back inside :class:`repro.parallel.runner.SimOutcome` and
merged into the parent recorder — the resulting trace is one consistent
tree across processes.
"""

from __future__ import annotations

import time

from repro.obs.events import Recorder, new_span_id

__all__ = ["enable", "disable", "enabled", "current_recorder", "span",
           "event", "current_span_id", "Span"]

#: Module-global tracer state, fork-inherited (see module docstring).
_STATE = {"recorder": None, "stack": []}


def enable(recorder=None, capacity=200_000):
    """Turn tracing on; returns the active :class:`Recorder`.

    Re-enabling while already enabled keeps the existing recorder
    (pass ``recorder`` explicitly to swap it).
    """
    if recorder is not None:
        _STATE["recorder"] = recorder
    elif _STATE["recorder"] is None:
        _STATE["recorder"] = Recorder(capacity=capacity)
    return _STATE["recorder"]


def disable():
    """Turn tracing off; returns the recorder that was active (or None)."""
    rec = _STATE["recorder"]
    _STATE["recorder"] = None
    _STATE["stack"].clear()
    return rec


def enabled():
    """True while a recorder is installed."""
    return _STATE["recorder"] is not None


def current_recorder():
    """The active recorder, or None when tracing is disabled."""
    return _STATE["recorder"]


def current_span_id():
    """Span id of the innermost open span (None outside any span)."""
    stack = _STATE["stack"]
    return stack[-1].span_id if stack else None


class _NullSpan:
    """Shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    span_id = None
    parent_id = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        return self

    def event(self, name, **attrs):
        return self


_NULL = _NullSpan()


class Span:
    """One live traced span (use via :func:`span`, not directly)."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_t0")

    def __init__(self, name, attrs):
        self.name = name
        self.attrs = attrs
        self.span_id = None
        self.parent_id = None
        self._t0 = 0.0

    def __enter__(self):
        rec = _STATE["recorder"]
        stack = _STATE["stack"]
        self.span_id = new_span_id()
        self.parent_id = stack[-1].span_id if stack else None
        if rec is not None:
            ev = {"ts": time.time(), "kind": "span_start",
                  "name": self.name, "span": self.span_id,
                  "parent": self.parent_id}
            ev.update(self.attrs)
            rec.record(ev)
        stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        dur = time.perf_counter() - self._t0
        stack = _STATE["stack"]
        # Pop *this* span even if inner spans leaked (defensive).
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        rec = _STATE["recorder"]
        if rec is not None:
            ev = {"ts": time.time(), "kind": "span_end",
                  "name": self.name, "span": self.span_id,
                  "parent": self.parent_id, "dur": dur,
                  "status": "ok" if exc_type is None else "error"}
            if exc_type is not None:
                ev["exc"] = "%s: %s" % (exc_type.__name__, exc)
            ev.update(self.attrs)
            rec.record(ev)
        return False

    def set(self, **attrs):
        """Attach attributes, reported on the closing ``span_end``."""
        self.attrs.update(attrs)
        return self

    def event(self, name, **attrs):
        """Record a point event parented to this span."""
        rec = _STATE["recorder"]
        if rec is not None:
            ev = {"ts": time.time(), "kind": "event", "name": name,
                  "span": self.span_id, "parent": self.span_id}
            ev.update(attrs)
            rec.record(ev)
        return self


def span(name, **attrs):
    """Open a traced span (context manager).

    Returns a shared no-op object while tracing is disabled, a live
    :class:`Span` otherwise.  Attributes set here (or later via
    :meth:`Span.set`) ride on the ``span_end`` event.
    """
    if _STATE["recorder"] is None:
        return _NULL
    return Span(name, attrs)


def event(name, **attrs):
    """Record a point event under the innermost open span."""
    rec = _STATE["recorder"]
    if rec is None:
        return
    stack = _STATE["stack"]
    sid = stack[-1].span_id if stack else None
    ev = {"ts": time.time(), "kind": "event", "name": name,
          "span": sid, "parent": sid}
    ev.update(attrs)
    rec.record(ev)
