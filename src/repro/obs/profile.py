"""Wall-time attribution for monitored simulations.

``obs.profile()`` answers the question the flat numbers of
``BENCH_throughput.json`` cannot: *where* does a monitored simulation
spend its time — in the compiled quantize kernels, in interval
propagation, or in plain Python overhead (expression objects, monitor
updates, design code)?

Implementation: a profiling session temporarily

* wraps ``Sig._record`` (whatever variant is installed — the original
  or the metrics-instrumented one) with a timing shim, and wraps each
  signal's bound quantize kernel on first sight, so kernel time is
  measured *inside* record time;
* wraps the interval arithmetic helpers (``iv_add`` / ``iv_sub`` /
  ``iv_mul`` / ``iv_neg``) in :mod:`repro.signal.expr`, where the
  operator overloads resolve them at call time.

Everything is restored on exit, so profiling is strictly opt-in and
costs nothing when not active.  Timer overhead inflates the measured
buckets (every assignment pays four ``perf_counter`` calls), so treat
the output as *attribution*, not absolute speed — the relative split is
what matters.

Usage::

    from repro import obs

    with obs.profile() as prof:
        run_simulation()
    print(prof.report.table())
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["profile", "ProfileReport"]

_IV_NAMES = ("iv_add", "iv_sub", "iv_mul", "iv_neg")


class ProfileReport:
    """Aggregated timing buckets of one profiling session."""

    def __init__(self):
        self.wall_s = 0.0
        self.record_s = 0.0      # total time inside Sig._record
        self.kernel_s = 0.0      # inside the compiled quantize kernels
        self.interval_s = 0.0    # inside iv_add/iv_sub/iv_mul/iv_neg
        self.n_assign = 0
        self.n_kernel = 0
        self.n_interval = 0

    @property
    def monitor_s(self):
        """Record-path time that is not the kernel (monitor updates)."""
        return max(0.0, self.record_s - self.kernel_s)

    @property
    def python_s(self):
        """Wall time outside record and interval paths (expressions,
        design code, the simulator itself)."""
        return max(0.0, self.wall_s - self.record_s - self.interval_s)

    def buckets(self):
        """``{bucket: seconds}`` — the four non-overlapping buckets."""
        return {
            "quantize_kernel": self.kernel_s,
            "monitor_record": self.monitor_s,
            "interval_propagation": self.interval_s,
            "python_overhead": self.python_s,
        }

    def to_dict(self):
        d = {"wall_s": self.wall_s, "n_assign": self.n_assign,
             "n_kernel": self.n_kernel, "n_interval": self.n_interval}
        d.update({k: v for k, v in self.buckets().items()})
        return d

    def table(self, title="Wall-time attribution"):
        wall = self.wall_s or 1e-12
        lines = ["%s (%.4f s wall, %d assignments)"
                 % (title, self.wall_s, self.n_assign)]
        for name, sec in self.buckets().items():
            bar = "#" * int(round(40.0 * sec / wall))
            lines.append("  %-22s %8.4f s  %5.1f%%  %s"
                         % (name, sec, 100.0 * sec / wall, bar))
        return "\n".join(lines)

    def __repr__(self):
        return ("ProfileReport(wall=%.4fs, kernel=%.4fs, interval=%.4fs, "
                "assign=%d)" % (self.wall_s, self.kernel_s,
                                self.interval_s, self.n_assign))


class profile:
    """Context manager: attribute wall time while the block runs.

    The report is available as ``.report`` after (and during) the
    block.  Sessions do not nest — a second concurrent ``profile()``
    raises ``RuntimeError``.
    """

    _active = None

    def __init__(self):
        self.report = ProfileReport()
        self._wrapped_kernels = []   # (sig, original kernel)
        self._prev_record = None
        self._prev_iv = {}
        self._t0 = 0.0

    def __enter__(self):
        if profile._active is not None:
            raise RuntimeError("obs.profile() sessions do not nest")
        profile._active = self
        from repro.signal import expr as expr_mod
        from repro.signal.signal import Sig

        rep = self.report
        wrapped = self._wrapped_kernels
        prev_record = Sig._record
        self._prev_record = prev_record

        def record_profiled(sig, e):
            k = sig._kernel
            if k is not None and getattr(k, "_obs_prof", None) is not rep:
                wrapped.append((sig, k))

                def timed_kernel(v, _k=k, _r=rep):
                    t = perf_counter()
                    out = _k(v)
                    _r.kernel_s += perf_counter() - t
                    _r.n_kernel += 1
                    return out
                timed_kernel._obs_prof = rep
                sig._kernel = timed_kernel
            t = perf_counter()
            prev_record(sig, e)
            rep.record_s += perf_counter() - t
            rep.n_assign += 1

        Sig._record = record_profiled

        for name in _IV_NAMES:
            orig = getattr(expr_mod, name)
            self._prev_iv[name] = orig

            def timed_iv(a, b=None, _f=orig, _r=rep):
                t = perf_counter()
                out = _f(a) if b is None else _f(a, b)
                _r.interval_s += perf_counter() - t
                _r.n_interval += 1
                return out
            setattr(expr_mod, name, timed_iv)

        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.report.wall_s += perf_counter() - self._t0
        from repro.signal import expr as expr_mod
        from repro.signal.signal import Sig
        Sig._record = self._prev_record
        for name, orig in self._prev_iv.items():
            setattr(expr_mod, name, orig)
        # Reverse order + identity check: a signal retyped mid-session
        # (set_dtype) rebinds its kernel; only unwrap kernels that are
        # still ours, newest wrap first.
        rep = self.report
        for sig, orig in reversed(self._wrapped_kernels):
            if getattr(sig._kernel, "_obs_prof", None) is rep:
                sig._kernel = orig
        self._wrapped_kernels.clear()
        profile._active = None
        return False
