"""Per-signal quantization metric counters.

The paper's monitors answer *what types do I need*; these counters
answer *what is the quantization doing right now*: how often each
signal saturates, wraps or overflows, how much rounding error it
accumulates, and how often its observed min/max is still moving (range
"churn" — a signal whose extremes keep growing late in a run is a
signal whose range has not converged).

Compile-time-style enable flag
------------------------------
The monitored-assignment hot path (:meth:`repro.signal.signal.Sig._record`)
is the single most executed function of every simulation, so the
counters must cost *nothing* while disabled.  Instead of an ``if`` on
the hot path, :func:`enable` swaps the ``Sig._record`` method at class
level for an instrumented wrapper and :func:`disable` swaps the
original back — like rebuilding with a profiling flag, without the
rebuild.  Disabled runs execute the exact original code object:

>>> from repro.obs import metrics
>>> from repro.signal.signal import Sig
>>> orig = Sig._record
>>> metrics.enable()
>>> Sig._record is orig
False
>>> metrics.disable()
>>> Sig._record is orig
True

Counters per signal (:class:`SigMetrics`):

``n``
    Instrumented assignments seen.
``overflow`` / ``saturate`` / ``wrap``
    Out-of-range events, classified by the signal's overflow mode
    (``error`` / ``saturate`` / ``wrap``).
``round_err_sum`` / ``round_err_max``
    Accumulated and peak ``|incoming - stored|`` per assignment — the
    quantization-induced deviation (includes saturation distance).
``min_churn`` / ``max_churn``
    How many assignments moved the observed minimum / maximum.
"""

from __future__ import annotations

__all__ = ["SigMetrics", "enable", "disable", "enabled", "collecting",
           "snapshot", "reset", "emit"]

#: Original ``Sig._record``, stashed while the instrumented one is live.
_STATE = {"enabled": False, "orig_record": None}


class SigMetrics:
    """Quantization counters of one signal (see module docstring)."""

    __slots__ = ("n", "overflow", "saturate", "wrap", "round_err_sum",
                 "round_err_max", "min_churn", "max_churn")

    def __init__(self):
        self.n = 0
        self.overflow = 0
        self.saturate = 0
        self.wrap = 0
        self.round_err_sum = 0.0
        self.round_err_max = 0.0
        self.min_churn = 0
        self.max_churn = 0

    @property
    def out_of_range(self):
        """Total out-of-range events regardless of overflow mode."""
        return self.overflow + self.saturate + self.wrap

    @property
    def round_err_mean(self):
        return self.round_err_sum / self.n if self.n else 0.0

    def to_dict(self):
        return {"n": self.n, "overflow": self.overflow,
                "saturate": self.saturate, "wrap": self.wrap,
                "round_err_sum": self.round_err_sum,
                "round_err_max": self.round_err_max,
                "min_churn": self.min_churn, "max_churn": self.max_churn}

    def __repr__(self):
        return ("SigMetrics(n=%d, oor=%d, round_err_mean=%.3g, "
                "churn=%d/%d)" % (self.n, self.out_of_range,
                                  self.round_err_mean, self.min_churn,
                                  self.max_churn))


def _record_metered(self, expr):
    """Instrumented ``Sig._record``: original behaviour + counters.

    Wraps rather than reimplements the hot path, so the simulated
    numbers are bit-identical with metrics on or off; the counters are
    derived from observable state deltas around the original call.
    """
    m = self._obs
    if m is None:
        m = self._obs = SigMetrics()
    in_fx = expr.fx
    rs = self.range_stat
    old_min = rs.min
    old_max = rs.max
    ov0 = self.overflow_count
    _STATE["orig_record"](self, expr)
    m.n += 1
    if rs.min != old_min:
        m.min_churn += 1
    if rs.max != old_max:
        m.max_churn += 1
    dov = self.overflow_count - ov0
    if dov:
        spec = self.dtype.msbspec
        if spec == "saturate":
            m.saturate += dov
        elif spec == "wrap":
            m.wrap += dov
        else:
            m.overflow += dov
    if self.is_register and self._has_pending:
        stored = self._pend_fx
    else:
        stored = self._fx
    e = in_fx - stored
    if e < 0.0:
        e = -e
    if e == e:  # skip NaN deltas (guarded non-finite assignments)
        m.round_err_sum += e
        if e > m.round_err_max:
            m.round_err_max = e


def enable():
    """Swap the instrumented ``Sig._record`` in (idempotent)."""
    if _STATE["enabled"]:
        return
    from repro.signal.signal import Sig
    _STATE["orig_record"] = Sig._record
    Sig._record = _record_metered
    _STATE["enabled"] = True


def disable():
    """Restore the original ``Sig._record`` (idempotent)."""
    if not _STATE["enabled"]:
        return
    from repro.signal.signal import Sig
    Sig._record = _STATE["orig_record"]
    _STATE["orig_record"] = None
    _STATE["enabled"] = False


def enabled():
    return _STATE["enabled"]


class collecting:
    """Context manager: metrics enabled inside the block.

    Restores the previous state on exit, so nesting inside an
    already-enabled region is safe.
    """

    def __enter__(self):
        self._was = _STATE["enabled"]
        enable()
        return self

    def __exit__(self, exc_type, exc, tb):
        if not self._was:
            disable()
        return False


def snapshot(ctx):
    """Counters of every instrumented signal of a context, by name."""
    out = {}
    for s in ctx.signals():
        m = s._obs
        if m is not None:
            out[s.name] = m
    return out


def reset(ctx):
    """Drop the counters of every signal in the context."""
    for s in ctx.signals():
        s._obs = None


def emit(ctx, label=None):
    """Record one ``metric`` trace event per instrumented signal.

    No-op unless tracing is enabled; returns the number of events
    emitted.  Called automatically at the end of instrumented
    simulations (flow phases, parallel jobs) so metric snapshots land
    in the same trace as the spans that produced them.
    """
    import time

    from repro.obs import trace

    rec = trace.current_recorder()
    if rec is None:
        return 0
    sid = trace.current_span_id()
    n = 0
    for name, m in snapshot(ctx).items():
        ev = {"ts": time.time(), "kind": "metric", "name": "signal.metrics",
              "span": sid, "parent": sid, "signal": name,
              "ctx": ctx.name}
        if label is not None:
            ev["label"] = label
        ev.update(m.to_dict())
        rec.record(ev)
        n += 1
    return n
