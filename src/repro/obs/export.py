"""Trace exporters: span-tree text, JSONL, and a static HTML timeline.

All exporters consume the plain event dicts of
:mod:`repro.obs.events` — either live from a
:class:`~repro.obs.events.Recorder` or re-read from a JSONL file — and
none of them needs anything beyond the standard library, so a trace
captured on a build box renders anywhere.

* :func:`build_spans` reassembles ``span_start`` / ``span_end`` pairs
  into a :class:`SpanView` forest (children nested under parents,
  cross-process links included).
* :func:`render_text` prints the forest with durations, inline point
  events and a per-signal quantization-metrics table.
* :func:`render_html` emits one self-contained HTML file: summary
  cards, a proportional span timeline (hover for attributes), the
  metrics table and the event log.
"""

from __future__ import annotations

import html as _html
import json

__all__ = ["SpanView", "build_spans", "render_text", "render_html",
           "summarize"]

_SPAN_FIELDS = ("ts", "kind", "name", "span", "parent", "dur", "status",
                "exc")
_METRIC_FIELDS = ("ts", "kind", "name", "span", "parent", "signal", "ctx",
                  "label")


class SpanView:
    """One reassembled span: timing, attributes, children, point events."""

    __slots__ = ("name", "span_id", "parent_id", "ts", "dur", "status",
                 "attrs", "children", "events")

    def __init__(self, name, span_id, parent_id, ts):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.ts = ts
        self.dur = None          # None: span never closed (crash/cap)
        self.status = "open"
        self.attrs = {}
        self.children = []
        self.events = []

    def walk(self, depth=0):
        """Yield ``(span, depth)`` depth-first."""
        yield self, depth
        for c in self.children:
            yield from c.walk(depth + 1)

    def __repr__(self):
        return "SpanView(%r, dur=%s, %d children)" % (
            self.name, "%.4fs" % self.dur if self.dur is not None
            else "open", len(self.children))


def build_spans(events):
    """Reassemble the span forest; returns ``(roots, orphans)``.

    ``orphans`` are spans whose parent id never appears in the trace
    (e.g. the parent's events were dropped at the recorder cap); they
    are *also* appended to ``roots`` so nothing silently disappears.
    """
    spans = {}
    roots = []
    orphans = []
    for ev in events:
        kind = ev.get("kind")
        sid = ev.get("span")
        if kind == "span_start":
            sv = SpanView(ev.get("name", "?"), sid, ev.get("parent"),
                          ev.get("ts", 0.0))
            sv.attrs = {k: v for k, v in ev.items()
                        if k not in _SPAN_FIELDS}
            spans[sid] = sv
        elif kind == "span_end":
            sv = spans.get(sid)
            if sv is None:       # start was dropped; synthesize
                sv = SpanView(ev.get("name", "?"), sid, ev.get("parent"),
                              ev.get("ts", 0.0))
                spans[sid] = sv
            sv.dur = ev.get("dur")
            sv.status = ev.get("status", "ok")
            sv.attrs.update({k: v for k, v in ev.items()
                             if k not in _SPAN_FIELDS})
        elif kind == "event":
            sv = spans.get(sid)
            if sv is not None:
                sv.events.append(ev)
    for sv in spans.values():
        parent = spans.get(sv.parent_id)
        if parent is not None:
            parent.children.append(sv)
        else:
            roots.append(sv)
            if sv.parent_id is not None:
                orphans.append(sv)
    for sv in spans.values():
        sv.children.sort(key=lambda s: s.ts)
    roots.sort(key=lambda s: s.ts)
    return roots, orphans


def _collect_metrics(events):
    """Aggregate ``metric`` events per signal (later snapshots win)."""
    per_signal = {}
    for ev in events:
        if ev.get("kind") != "metric":
            continue
        name = ev.get("signal", "?")
        per_signal[name] = ev
    return per_signal


def summarize(events):
    """Headline counts of a trace (dict, JSON-friendly)."""
    kinds = {}
    t_min = t_max = None
    for ev in events:
        kinds[ev.get("kind", "?")] = kinds.get(ev.get("kind", "?"), 0) + 1
        ts = ev.get("ts")
        if isinstance(ts, (int, float)):
            t_min = ts if t_min is None else min(t_min, ts)
            end = ts + ev.get("dur", 0.0) \
                if isinstance(ev.get("dur"), (int, float)) else ts
            t_max = end if t_max is None else max(t_max, end)
    roots, orphans = build_spans(events)
    n_spans = sum(1 for r in roots for _ in r.walk())
    errors = sum(1 for r in roots for s, _ in r.walk()
                 if s.status == "error")
    return {
        "events": len(events),
        "by_kind": kinds,
        "spans": n_spans,
        "root_spans": len(roots) - len(orphans),
        "orphan_spans": len(orphans),
        "error_spans": errors,
        "wall_s": (t_max - t_min) if t_min is not None else 0.0,
    }


def _fmt_attrs(attrs, limit=6):
    items = list(attrs.items())[:limit]
    return ", ".join("%s=%s" % (k, _short(v)) for k, v in items)


def _short(v, n=48):
    s = "%.4g" % v if isinstance(v, float) else str(v)
    return s if len(s) <= n else s[:n - 1] + "…"


def render_text(events, max_events_per_span=4):
    """Human-readable span tree + metrics table (one big string)."""
    roots, _ = build_spans(events)
    summary = summarize(events)
    out = ["trace: %d event(s), %d span(s), %.4f s wall%s"
           % (summary["events"], summary["spans"], summary["wall_s"],
              ", %d ERROR span(s)" % summary["error_spans"]
              if summary["error_spans"] else "")]
    for root in roots:
        for sv, depth in root.walk():
            dur = "   open " if sv.dur is None else "%7.4fs" % sv.dur
            flag = "" if sv.status in ("ok", "open") else "  [%s]" % sv.status
            attrs = _fmt_attrs(sv.attrs)
            out.append("  %s %s%-s%s%s"
                       % (dur, "  " * depth, sv.name,
                          "  (%s)" % attrs if attrs else "", flag))
            for ev in sv.events[:max_events_per_span]:
                extra = _fmt_attrs({k: v for k, v in ev.items()
                                    if k not in _SPAN_FIELDS})
                out.append("           %s· %s%s"
                           % ("  " * depth, ev.get("name", "?"),
                              "  (%s)" % extra if extra else ""))
            hidden = len(sv.events) - max_events_per_span
            if hidden > 0:
                out.append("           %s· … %d more event(s)"
                           % ("  " * depth, hidden))
    metrics = _collect_metrics(events)
    if metrics:
        out.append("")
        out.append("quantization metrics (%d signal(s)):" % len(metrics))
        out.append("  %-14s %8s %6s %6s %6s %12s %12s %6s %6s"
                   % ("signal", "assigns", "ovf", "sat", "wrap",
                      "rnd-err-mean", "rnd-err-max", "min~", "max~"))
        for name in sorted(metrics):
            m = metrics[name]
            n = m.get("n", 0) or 1
            out.append("  %-14s %8d %6d %6d %6d %12.3g %12.3g %6d %6d"
                       % (name, m.get("n", 0), m.get("overflow", 0),
                          m.get("saturate", 0), m.get("wrap", 0),
                          m.get("round_err_sum", 0.0) / n,
                          m.get("round_err_max", 0.0),
                          m.get("min_churn", 0), m.get("max_churn", 0)))
    return "\n".join(out)


# -- HTML ---------------------------------------------------------------------

_PALETTE = ("#4878cf", "#6acc65", "#d65f5f", "#b47cc7", "#c4ad66",
            "#77bedb", "#e38744", "#8b8b8b")

_CSS = """
body{font:13px/1.45 -apple-system,'Segoe UI',Roboto,sans-serif;
     margin:24px;color:#222;background:#fff}
h1{font-size:18px} h2{font-size:15px;margin-top:28px}
.cards{display:flex;gap:12px;flex-wrap:wrap}
.card{border:1px solid #ddd;border-radius:6px;padding:10px 16px;
      min-width:110px}
.card b{display:block;font-size:20px}
.tl{position:relative;border:1px solid #eee;border-radius:4px;
    margin-top:8px}
.row{position:relative;height:20px;border-bottom:1px solid #f5f5f5}
.bar{position:absolute;top:2px;height:16px;border-radius:3px;
     color:#fff;font-size:10px;overflow:hidden;white-space:nowrap;
     padding:1px 4px;box-sizing:border-box;min-width:2px}
.bar.err{outline:2px solid #d62728}
table{border-collapse:collapse;margin-top:8px}
td,th{border:1px solid #e3e3e3;padding:3px 9px;font-size:12px;
      text-align:right}
td:first-child,th:first-child{text-align:left}
.mono{font-family:ui-monospace,Menlo,Consolas,monospace}
"""


def _root_key(sv):
    return sv.name.split(".", 1)[0]


def render_html(events, title="repro observability report"):
    """Self-contained HTML report (summary, timeline, metrics, log)."""
    roots, _ = build_spans(events)
    summary = summarize(events)
    esc = _html.escape

    flat = [(sv, depth) for root in roots for sv, depth in root.walk()]
    t0 = min((sv.ts for sv, _ in flat), default=0.0)
    t1 = max((sv.ts + (sv.dur or 0.0) for sv, _ in flat), default=1.0)
    scale = max(t1 - t0, 1e-9)
    color_keys = []
    rows = []
    for sv, depth in flat:
        key = _root_key(sv)
        if key not in color_keys:
            color_keys.append(key)
        color = _PALETTE[color_keys.index(key) % len(_PALETTE)]
        left = 100.0 * (sv.ts - t0) / scale
        width = 100.0 * ((sv.dur or 0.0) / scale)
        tip = "%s — %s%s" % (sv.name,
                             "open" if sv.dur is None
                             else "%.4f s" % sv.dur,
                             "; " + _fmt_attrs(sv.attrs, 10)
                             if sv.attrs else "")
        rows.append(
            '<div class="row"><div class="bar%s" '
            'style="left:%.3f%%;width:%.3f%%;background:%s;'
            'margin-left:%dpx" title="%s">%s</div></div>'
            % (" err" if sv.status == "error" else "",
               left, max(width, 0.15), color, 0,
               esc(tip, quote=True), esc(sv.name)))

    metrics = _collect_metrics(events)
    metric_rows = []
    for name in sorted(metrics):
        m = metrics[name]
        n = m.get("n", 0) or 1
        metric_rows.append(
            "<tr><td class=mono>%s</td><td>%d</td><td>%d</td><td>%d</td>"
            "<td>%d</td><td>%.3g</td><td>%.3g</td><td>%d</td><td>%d</td>"
            "</tr>"
            % (esc(str(name)), m.get("n", 0), m.get("overflow", 0),
               m.get("saturate", 0), m.get("wrap", 0),
               m.get("round_err_sum", 0.0) / n,
               m.get("round_err_max", 0.0),
               m.get("min_churn", 0), m.get("max_churn", 0)))

    log_rows = []
    for ev in events[:400]:
        if ev.get("kind") not in ("event", "span_end"):
            continue
        attrs = {k: v for k, v in ev.items() if k not in _SPAN_FIELDS
                 and k not in _METRIC_FIELDS}
        log_rows.append(
            "<tr><td>%.4f</td><td>%s</td><td class=mono>%s</td>"
            "<td style='text-align:left'>%s</td></tr>"
            % (ev.get("ts", 0.0) - t0, esc(ev.get("kind", "?")),
               esc(str(ev.get("name", "?"))),
               esc(_fmt_attrs(attrs, 10))))

    cards = "".join(
        '<div class="card"><b>%s</b>%s</div>' % (esc(str(v)), esc(k))
        for k, v in (("spans", summary["spans"]),
                     ("events", summary["events"]),
                     ("wall", "%.3f s" % summary["wall_s"]),
                     ("errors", summary["error_spans"]),
                     ("signals", len(metrics))))

    return ("<!doctype html><html><head><meta charset='utf-8'>"
            "<title>%(title)s</title><style>%(css)s</style></head><body>"
            "<h1>%(title)s</h1>"
            "<div class='cards'>%(cards)s</div>"
            "<h2>Span timeline</h2><div class='tl'>%(rows)s</div>"
            "<h2>Quantization metrics</h2>"
            "<table><tr><th>signal</th><th>assigns</th><th>ovf</th>"
            "<th>sat</th><th>wrap</th><th>rnd-err-mean</th>"
            "<th>rnd-err-max</th><th>min churn</th><th>max churn</th>"
            "</tr>%(metrics)s</table>"
            "<h2>Event log</h2>"
            "<table><tr><th>t (s)</th><th>kind</th><th>name</th>"
            "<th>attributes</th></tr>%(log)s</table>"
            "<p style='color:#999'>summary: <span class=mono>%(sum)s"
            "</span></p>"
            "</body></html>") % {
        "title": esc(title), "css": _CSS, "cards": cards,
        "rows": "".join(rows),
        "metrics": "".join(metric_rows) or
                   "<tr><td colspan=9>no metric events "
                   "(enable repro.obs.metrics)</td></tr>",
        "log": "".join(log_rows),
        "sum": esc(json.dumps(summary)),
    }
