"""repro — fixed-point refinement methodology and design environment.

A from-scratch Python reproduction of *"A Methodology and Design
Environment for DSP ASIC Fixed-Point Refinement"* (Cmar, Rijnders,
Schaumont, Vernalde, Bolsens — IMEC, DATE 1999).

Quick tour::

    from repro import DType, Sig, DesignContext

    with DesignContext("demo", seed=1) as ctx:
        T = DType("T", 8, 5, "tc", "saturate", "round")
        a = Sig("a", T)
        b = Sig("b", T)
        c = Sig("c", T)
        a.assign(0.4)
        b.assign(-1.25)
        c.assign(a * b)           # float multiply, quantize on assign
        print(c.fx, c.error())

The paper-style lowercase aliases ``sig``, ``reg``, ``sigarray``,
``regarray`` and ``dtype`` are exported as well, so the examples read
like the original C++.
"""

from repro.core import (
    DType,
    ErrorStat,
    FixedPointOverflowError,
    Interval,
    RangeStat,
    ReproError,
    quantize_array,
    required_msb,
)
from repro.core.quantize import quantize
from repro.parallel import SimCache, SimConfig, SimOutcome, run_simulations
from repro.signal import (
    DesignContext,
    Expr,
    Reg,
    RegArray,
    Sig,
    SigArray,
    cast,
    clamp,
    current_context,
    fabs,
    fmax,
    fmin,
    select,
)

# Paper-parity lowercase aliases.
dtype = DType
sig = Sig
reg = Reg
sigarray = SigArray
regarray = RegArray

__version__ = "1.0.0"

__all__ = [
    "DType",
    "Interval",
    "RangeStat",
    "ErrorStat",
    "ReproError",
    "FixedPointOverflowError",
    "quantize",
    "quantize_array",
    "required_msb",
    "DesignContext",
    "current_context",
    "Sig",
    "Reg",
    "SigArray",
    "RegArray",
    "Expr",
    "select",
    "cast",
    "fmin",
    "fmax",
    "fabs",
    "clamp",
    "SimConfig",
    "SimOutcome",
    "SimCache",
    "run_simulations",
    "dtype",
    "sig",
    "reg",
    "sigarray",
    "regarray",
    "__version__",
]
