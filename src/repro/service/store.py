"""Content-addressed result store: one computation per fingerprint, ever.

The store is the dedupe backbone of the service: results are addressed
purely by the sha256 content fingerprint of the work that produced them
(:func:`repro.parallel.runner.fingerprint` — design factory identity,
dtype assignment, stimulus seed/samples, faults, engine + compiler
version), so *who* asked is irrelevant and identical refinements
submitted by any number of tenants are computed exactly once.

Two tiers, both reused from the durability layer rather than
re-invented:

* hot tier — a checksummed LRU :class:`~repro.parallel.runner.SimCache`
  (corrupted payloads are detected, evicted and recomputed);
* durable tier — the write-ahead
  :class:`~repro.robust.recovery.Journal`, so completed results survive
  ``kill -9`` and are served bit-exactly after a restart.

A lookup falls from cache to journal (promoting the hit back into the
cache); a store writes both.  :meth:`stats` merges both tiers with the
service-level dedupe tallies into one measurable snapshot — the number
the ROADMAP cares about ("most traffic should be cache hits") is
``stats()["dedupe_hits"]`` over ``stats()["lookups"]``.
"""

from __future__ import annotations

import os
import threading

from repro.obs import counters as obs_counters
from repro.parallel.runner import SimCache
from repro.robust.recovery import Journal

__all__ = ["ContentStore"]


class ContentStore:
    """Shared content-addressed outcome store (cache + journal tiers).

    ``root`` is the service directory; the durable tier lives at
    ``<root>/journal.jsonl``.  ``root=None`` builds a memory-only store
    (tests, throwaway services).  Pass ``journal=`` to adopt an
    existing :class:`Journal` (the gallery's matrix journal, say)
    instead of owning a new one.
    """

    JOURNAL_NAME = "journal.jsonl"

    def __init__(self, root=None, max_entries=4096, journal=None,
                 sync=True, compact_threshold=1 << 20):
        self.root = None if root is None else os.fspath(root)
        self.cache = SimCache(max_entries=max_entries)
        self._own_journal = journal is None and self.root is not None
        if journal is not None:
            self.journal = journal if hasattr(journal, "append") \
                else Journal(journal, sync=sync,
                             compact_threshold=compact_threshold)
        elif self.root is not None:
            self.journal = Journal(
                os.path.join(self.root, self.JOURNAL_NAME), sync=sync,
                meta={"role": "service-results"},
                compact_threshold=compact_threshold)
        else:
            self.journal = None
        self._lock = threading.Lock()
        self.lookups = 0
        self.dedupe_hits = 0

    # -- the two-tier lookup ----------------------------------------------

    def get(self, key):
        """The completed outcome stored under ``key``, or None.

        A journal hit is promoted into the cache; a corrupt cache entry
        (checksum mismatch) is evicted by the cache itself and falls
        through to the journal tier transparently.
        """
        with self._lock:
            self.lookups += 1
            hit = self.cache.get(key)
            if hit is None and self.journal is not None:
                hit = self.journal.get(key)
                if hit is not None:
                    self.cache.put(key, hit)
            if hit is not None:
                self.dedupe_hits += 1
                obs_counters.inc("service.store_hits")
            return hit

    def put(self, key, outcome):
        """Store a completed outcome under its fingerprint (both tiers).

        Failed outcomes are not stored — errors may be environment
        shaped (a deadline on a loaded box) and must re-run on demand.
        """
        if getattr(outcome, "error", None) is not None:
            return False
        with self._lock:
            self.cache.put(key, outcome)
            if self.journal is not None:
                self.journal.append(key, outcome)
        return True

    def __contains__(self, key):
        with self._lock:
            if key in self.cache:
                return True
            return self.journal is not None and key in self.journal

    def __len__(self):
        with self._lock:
            if self.journal is not None:
                return len(self.journal)
            return len(self.cache)

    # -- observability -----------------------------------------------------

    def stats(self):
        """One merged snapshot of both tiers plus dedupe tallies."""
        out = {
            "lookups": self.lookups,
            "dedupe_hits": self.dedupe_hits,
            "cache": self.cache.stats(),
            "entries": len(self),
        }
        if self.journal is not None:
            out["journal"] = {
                "path": self.journal.path,
                "entries": len(self.journal),
                "hits": self.journal.hits,
                "misses": self.journal.misses,
                "degraded": self.journal.degraded,
                "size_bytes": self.journal.size_bytes(),
            }
        return out

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        if self.journal is not None and self._own_journal:
            self.journal.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        return "ContentStore(%r, %d entrie(s), %d dedupe hit(s))" % (
            self.root, len(self), self.dedupe_hits)
