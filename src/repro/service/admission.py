"""Admission control: quotas, bounded queues and circuit breakers.

The service's robustness posture is *reject early, deterministically*:
a submission that cannot be served at its provisioned rate is refused
at the front door with an explicit reason and a ``retry_after`` hint,
instead of being accepted into a queue that silently degrades every
tenant's latency.  Three independent gates, checked in order:

1. **circuit breaker** (:class:`CircuitBreaker`) — a tenant whose jobs
   keep getting quarantined as poison (crashing workers) is isolated:
   after ``trip_threshold`` consecutive quarantines the breaker opens
   and submissions are rejected with
   :class:`~repro.core.errors.CircuitOpen` until a
   :class:`~repro.robust.retry.BackoffPolicy`-scheduled half-open
   window admits one probe job; a healthy probe closes the breaker, a
   poisoned one re-opens it with a longer wait.
2. **token-bucket quota** (:class:`TokenBucket`) — per-tenant sustained
   rate plus burst capacity; an empty bucket rejects with
   :class:`~repro.core.errors.QuotaExceeded` and the exact time until
   one token refills.
3. **bounded queue** — per-tenant and global backlog caps; a full lane
   rejects the *new* submission with
   :class:`~repro.core.errors.QueueFull` (the shed is deterministic:
   already-accepted jobs are never evicted to make room).

Everything takes an injectable ``clock`` (``time.monotonic`` by
default) so tests — and the deterministic chaos harness — can drive
refill and half-open schedules without sleeping.

>>> clock = _FakeClock()
>>> bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
>>> bucket.try_take(), bucket.try_take(), bucket.try_take()
(True, True, False)
>>> _ = clock.advance(1.0)
>>> bucket.try_take()
True
"""

from __future__ import annotations

import time
from collections import deque

from repro.core.errors import CircuitOpen, QueueFull, QuotaExceeded
from repro.obs import counters as obs_counters
from repro.robust.retry import BackoffPolicy

__all__ = ["TokenBucket", "CircuitBreaker", "TenantPolicy",
           "AdmissionController"]


class _FakeClock:
    """Deterministic clock for doctests/tests (seconds, manual)."""

    def __init__(self, t=0.0):
        self.t = float(t)

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += float(dt)
        return self.t


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    The bucket starts full (a fresh tenant may burst immediately).
    ``rate=None`` disables metering — every take succeeds.
    """

    __slots__ = ("rate", "burst", "clock", "_tokens", "_t_last")

    def __init__(self, rate=None, burst=1, clock=None):
        self.rate = None if rate is None else float(rate)
        self.burst = max(1, int(burst))
        self.clock = clock or time.monotonic
        self._tokens = float(self.burst)
        self._t_last = self.clock()

    def _refill(self):
        now = self.clock()
        if self.rate:
            self._tokens = min(float(self.burst),
                               self._tokens + (now - self._t_last)
                               * self.rate)
        self._t_last = now

    def try_take(self, n=1):
        """Take ``n`` tokens if available; never blocks."""
        if self.rate is None:
            return True
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def give_back(self, n=1):
        """Refund tokens charged for a submission a *later* admission
        gate shed (the queue-full rollback).  Dedupe hits keep their
        charge: a submission served from the store or coalesced onto an
        in-flight twin was still admitted and served."""
        if self.rate is not None:
            self._tokens = min(float(self.burst), self._tokens + n)

    def retry_after(self, n=1):
        """Seconds until ``n`` tokens will have refilled (0 when ready)."""
        if self.rate is None:
            return 0.0
        self._refill()
        missing = n - self._tokens
        if missing <= 0:
            return 0.0
        return missing / self.rate

    @property
    def tokens(self):
        self._refill()
        return self._tokens


class CircuitBreaker:
    """Per-tenant poison-job circuit breaker.

    States: ``closed`` (normal), ``open`` (rejecting), ``half-open``
    (one probe admitted).  Only *quarantines* — jobs whose workers died
    — count as failures; a design-level error outcome is the tenant's
    own business and never trips the breaker.

    >>> clock = _FakeClock()
    >>> cb = CircuitBreaker(trip_threshold=2, clock=clock,
    ...                     backoff=BackoffPolicy(base=10.0, jitter=0.0))
    >>> cb.record_quarantine(); cb.state
    'closed'
    >>> cb.record_quarantine(); cb.state
    'open'
    >>> cb.allow()
    False
    >>> _ = clock.advance(10.0)
    >>> cb.allow(), cb.state     # half-open: exactly one probe
    (True, 'half-open')
    >>> cb.allow()
    False
    >>> cb.record_success(); cb.state
    'closed'
    """

    __slots__ = ("trip_threshold", "backoff", "clock", "state",
                 "_consecutive", "_trips", "_opened_at", "_probing")

    def __init__(self, trip_threshold=3, backoff=None, clock=None):
        self.trip_threshold = max(1, int(trip_threshold))
        self.backoff = backoff or BackoffPolicy(base=1.0, factor=2.0,
                                                cap=60.0, jitter=0.0)
        self.clock = clock or time.monotonic
        self.state = "closed"
        self._consecutive = 0
        self._trips = 0
        self._opened_at = None
        self._probing = False

    def _reopen_delay(self):
        return self.backoff.delay(self._trips, token="breaker")

    def allow(self):
        """May a submission pass right now?  (May flip open→half-open.)"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self.clock() - self._opened_at >= self._reopen_delay():
                self.state = "half-open"
                self._probing = False
            else:
                return False
        # half-open: admit exactly one probe until it reports back.
        if self._probing:
            return False
        self._probing = True
        return True

    def retry_after(self):
        """Seconds until the breaker half-opens (0 when it passes now)."""
        if self.state != "open":
            return 0.0
        return max(0.0, self._opened_at + self._reopen_delay()
                   - self.clock())

    def abort_probe(self):
        """Release the half-open probe slot without a verdict.

        The probe admitted by :meth:`allow` never actually ran — a
        later admission gate shed the submission, or the caller
        cancelled it while queued — so neither :meth:`record_success`
        nor :meth:`record_quarantine` will ever report back for it.
        Without this the slot would stay taken and every future
        submission would be rejected forever.  No-op unless the
        breaker is half-open with an outstanding probe.
        """
        if self.state == "half-open":
            self._probing = False

    def record_quarantine(self):
        """One of the tenant's jobs was quarantined as poison."""
        self._consecutive += 1
        if self.state == "half-open" or (
                self.state == "closed"
                and self._consecutive >= self.trip_threshold):
            self._trip()

    def record_success(self):
        """One of the tenant's jobs completed (or failed benignly)."""
        self._consecutive = 0
        if self.state in ("half-open", "open"):
            self.state = "closed"
            self._probing = False

    def _trip(self):
        self.state = "open"
        self._trips += 1
        self._opened_at = self.clock()
        self._probing = False
        obs_counters.inc("service.breaker_trips")

    def __repr__(self):
        return "CircuitBreaker(%s, %d consecutive, %d trip(s))" % (
            self.state, self._consecutive, self._trips)


class TenantPolicy:
    """Provisioning of one tenant: quota rate/burst, queue bound, breaker."""

    __slots__ = ("rate", "burst", "max_queued", "trip_threshold",
                 "breaker_backoff")

    def __init__(self, rate=None, burst=8, max_queued=64,
                 trip_threshold=3, breaker_backoff=None):
        self.rate = rate
        self.burst = burst
        self.max_queued = max(1, int(max_queued))
        self.trip_threshold = trip_threshold
        self.breaker_backoff = breaker_backoff


class _TenantLane:
    """One tenant's admission state: bucket, breaker, FIFO backlog."""

    __slots__ = ("name", "policy", "bucket", "breaker", "queue")

    def __init__(self, name, policy, clock):
        self.name = name
        self.policy = policy
        self.bucket = TokenBucket(policy.rate, policy.burst, clock)
        self.breaker = CircuitBreaker(policy.trip_threshold,
                                      policy.breaker_backoff, clock)
        self.queue = deque()


class AdmissionController:
    """The service's front door: gates submissions, owns the backlog.

    Dequeue order is **fair across tenants, FIFO within a tenant**:
    :meth:`take` round-robins over the tenants that have queued jobs,
    so one tenant's burst cannot starve another's steady trickle, while
    each tenant's own jobs run in submission order.
    """

    def __init__(self, default_policy=None, tenants=None,
                 max_queued_total=256, clock=None):
        self.default_policy = default_policy or TenantPolicy()
        self.max_queued_total = max(1, int(max_queued_total))
        self.clock = clock or time.monotonic
        self._lanes = {}
        self._rr = deque()          # round-robin order of lane names
        self._n_queued = 0
        for name, policy in (tenants or {}).items():
            self._lane(name, policy)

    def _lane(self, tenant, policy=None):
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = _TenantLane(tenant, policy or self.default_policy,
                               self.clock)
            self._lanes[tenant] = lane
        return lane

    def lane(self, tenant):
        """The tenant's lane (created on first sight)."""
        return self._lane(tenant)

    # -- gating ------------------------------------------------------------

    def admit(self, tenant, charge_quota=True):
        """Pass the three gates or raise; returns the tenant's lane.

        ``charge_quota=False`` skips the token charge (recovery re-
        admissions were already paid at original accept time).
        """
        lane = self._lane(tenant)
        if not lane.breaker.allow():
            obs_counters.inc("service.rejected_breaker")
            raise CircuitOpen(
                "tenant %r circuit breaker is open after repeated "
                "poison-job quarantines" % tenant, tenant=tenant,
                retry_after=lane.breaker.retry_after())
        if charge_quota and not lane.bucket.try_take():
            lane.breaker.abort_probe()
            obs_counters.inc("service.rejected_quota")
            raise QuotaExceeded(
                "tenant %r is over its quota (%.3g jobs/s, burst %d)"
                % (tenant, lane.bucket.rate or float("inf"),
                   lane.bucket.burst),
                tenant=tenant, retry_after=lane.bucket.retry_after())
        if len(lane.queue) >= lane.policy.max_queued:
            lane.bucket.give_back()
            lane.breaker.abort_probe()
            obs_counters.inc("service.rejected_queue")
            raise QueueFull(
                "tenant %r backlog is full (%d queued)"
                % (tenant, len(lane.queue)), tenant=tenant)
        if self._n_queued >= self.max_queued_total:
            lane.bucket.give_back()
            lane.breaker.abort_probe()
            obs_counters.inc("service.rejected_queue")
            raise QueueFull(
                "service backlog is full (%d queued across all tenants)"
                % self._n_queued, tenant=tenant)
        return lane

    # -- the backlog -------------------------------------------------------

    def enqueue(self, job):
        """Append an admitted job to its tenant's FIFO lane."""
        lane = self._lane(job.tenant)
        if not lane.queue:
            self._rr.append(job.tenant)
        lane.queue.append(job)
        self._n_queued += 1

    def take(self, limit=None):
        """Dequeue up to ``limit`` jobs, fair across tenants.

        One round-robin sweep takes at most one job per tenant before
        returning to a tenant for its second; cancelled jobs are
        dropped on the floor here (their terminal state was already
        published).
        """
        out = []
        while self._rr and (limit is None or len(out) < limit):
            tenant = self._rr.popleft()
            lane = self._lanes[tenant]
            while lane.queue:
                job = lane.queue.popleft()
                self._n_queued -= 1
                if job.done:        # cancelled while queued
                    continue
                out.append(job)
                break
            if lane.queue:
                self._rr.append(tenant)
        return out

    def discard(self, job):
        """Best-effort removal of a queued job (cancellation)."""
        lane = self._lanes.get(job.tenant)
        if lane is None:
            return False
        try:
            lane.queue.remove(job)
        except ValueError:
            return False
        self._n_queued -= 1
        if not lane.queue:
            # Keep the round-robin roster in sync with queue emptiness:
            # a stale entry would let enqueue() append the tenant a
            # second time, handing it two slots per fairness sweep.
            try:
                self._rr.remove(job.tenant)
            except ValueError:
                pass
        return True

    @property
    def n_queued(self):
        return self._n_queued

    def tenants(self):
        return sorted(self._lanes)

    def stats(self):
        """Queue/quota/breaker snapshot per tenant."""
        return {
            name: {
                "queued": len(lane.queue),
                "tokens": round(lane.bucket.tokens, 3)
                if lane.bucket.rate is not None else None,
                "breaker": lane.breaker.state,
            }
            for name, lane in sorted(self._lanes.items())
        }
