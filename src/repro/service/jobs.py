"""Job records of the refinement service.

A submitted refinement is represented twice:

* :class:`Job` — the *live*, in-memory record: mutable state machine
  (``accepted -> queued -> running -> completed/failed/cancelled``),
  the per-job event log that :meth:`RefinementService.stream` replays,
  and the condition variable result waiters block on.  Jobs never cross
  a process boundary.
* :class:`Submission` — the *durable* record appended to the service's
  write-ahead submission journal at accept time (and superseded by a
  terminal record at completion).  After a crash, the submissions whose
  latest record is still ``accepted`` are exactly the jobs the service
  owes its tenants; their simulation payload rides along so recovery
  can re-enqueue them without the original caller.

``JobStatus`` is the immutable snapshot handed to callers by
:meth:`RefinementService.status` — reading it never races the
scheduler.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["JobId", "Job", "JobStatus", "Submission", "JOB_STATES",
           "TERMINAL_STATES"]

#: Every state a job can be in, in lifecycle order.
JOB_STATES = ("accepted", "queued", "running", "completed", "failed",
              "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("completed", "failed", "cancelled")


@dataclass(frozen=True)
class JobId:
    """Opaque handle of one submission: ``tenant/seq``.

    Two submissions of bit-identical work still get *distinct* job ids
    — deduplication shares the computation, never the handle, so each
    caller can cancel or stream its own job independently.

    >>> JobId("gallery", 7).value
    'gallery/7'
    """

    tenant: str
    seq: int

    @property
    def value(self):
        return "%s/%d" % (self.tenant, self.seq)

    def __str__(self):
        return self.value


@dataclass(frozen=True)
class JobStatus:
    """Immutable point-in-time snapshot of one job."""

    job: JobId
    state: str
    tenant: str
    label: str
    #: content fingerprint of the underlying computation.
    key: str
    #: True when this job attached to a computation another job owns
    #: (a duplicate submission coalesced instead of re-simulating).
    coalesced: bool
    #: error text for ``failed`` jobs, None otherwise.
    error: object = None
    #: machine-readable failure class ("deadline", "crash", "error").
    error_kind: object = None
    #: number of events the job's stream has produced so far.
    n_events: int = 0

    @property
    def done(self):
        return self.state in TERMINAL_STATES


@dataclass(frozen=True)
class Submission:
    """One durable submission-journal record (see module docstring).

    ``state`` is ``"accepted"`` when appended at admission time and a
    terminal state (``"completed"`` / ``"failed"`` / ``"cancelled"``)
    in the superseding record, which carries no payload — the journal's
    latest-record-per-key semantics turn the pair into a tiny state
    machine that survives ``kill -9`` at any point between the two.
    """

    job: str                 # JobId.value
    tenant: str
    key: str                 # content fingerprint of the computation
    label: str
    state: str               # "accepted" | terminal state
    factory_fp: str = ""     # identity of the design factory
    engine: str = "interpreted"
    config: object = None    # SimConfig payload (accepted records only)
    deadline_seconds: object = None


class Job:
    """Live in-memory record of one submission (scheduler-owned).

    All mutation happens under :attr:`cond`'s lock; readers either take
    the lock or consume an immutable :meth:`snapshot`.
    """

    __slots__ = ("id", "tenant", "key", "config", "factory", "seeded",
                 "engine", "state", "outcome", "error", "error_kind",
                 "coalesced", "events", "cond", "submitted_at",
                 "finished_at")

    def __init__(self, job_id, tenant, key, config, factory,
                 seeded=None, engine="interpreted"):
        self.id = job_id
        self.tenant = tenant
        self.key = key
        self.config = config
        self.factory = factory
        self.seeded = seeded
        self.engine = engine
        self.state = "accepted"
        self.outcome = None
        self.error = None
        self.error_kind = None
        self.coalesced = False
        self.events = []
        self.cond = threading.Condition()
        self.submitted_at = time.monotonic()
        self.finished_at = None

    # -- state machine -----------------------------------------------------

    @property
    def done(self):
        return self.state in TERMINAL_STATES

    def advance(self, state, **event_data):
        """Move to ``state`` and log it as a stream event (locked)."""
        with self.cond:
            if self.done:
                return False
            self.state = state
            if state in TERMINAL_STATES:
                self.finished_at = time.monotonic()
            self.push("job.%s" % state, **event_data)
            self.cond.notify_all()
        return True

    def complete(self, outcome):
        """Terminal transition driven by a finished outcome."""
        if outcome.error is None:
            self.outcome = outcome
            return self.advance("completed", label=outcome.label)
        self.error = outcome.error
        self.error_kind = outcome.error_kind
        self.outcome = outcome
        return self.advance("failed", error=str(outcome.error),
                            error_kind=outcome.error_kind)

    def push(self, name, **data):
        """Append one stream event (caller holds the lock, or tolerates
        the benign race of a lock-free append before waiters exist)."""
        self.events.append({"ts": time.time(), "event": name,
                            "job": self.id.value, **data})

    def push_diag(self, diag_event):
        """Append a DiagEvent from the executing batch to the stream."""
        with self.cond:
            self.events.append({
                "ts": time.time(), "event": "diagnostic",
                "job": self.id.value, "code": diag_event.code,
                "category": diag_event.category,
                "severity": diag_event.severity,
                "message": diag_event.message,
            })
            self.cond.notify_all()

    # -- snapshots ---------------------------------------------------------

    def snapshot(self):
        with self.cond:
            return JobStatus(self.id, self.state, self.tenant,
                             self.config.label, self.key, self.coalesced,
                             self.error, self.error_kind,
                             len(self.events))

    def __repr__(self):
        return "Job(%s, %s, key=%s...)" % (self.id.value, self.state,
                                           self.key[:12])
