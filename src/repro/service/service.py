"""`RefinementService`: resilient refinement-as-a-service, in-process first.

One service instance owns a directory with two write-ahead journals:

* ``<root>/journal.jsonl`` — the durable tier of the
  :class:`~repro.service.store.ContentStore` (completed outcomes,
  content-addressed, bit-exact on replay);
* ``<root>/submissions.jsonl`` — accepted-but-unfinished work.  Every
  admitted job is journaled *before* it is queued and superseded by a
  terminal record when it finishes, so after ``kill -9`` the service
  knows exactly which jobs it still owes its tenants
  (:meth:`recover`).

The request path (:meth:`submit`) is: circuit breaker → token-bucket
quota → bounded queue (all three reject deterministically with
``retry_after`` hints, see :mod:`repro.service.admission`) → content
fingerprint → dedupe (a store hit completes instantly; an identical
in-flight job coalesces onto one computation) → submission journal →
tenant FIFO lane.  The scheduler drains lanes fairly (round-robin
across tenants), groups jobs by (design factory, engine) and runs each
group through :func:`repro.parallel.run_simulations` — inheriting the
fork pool, poison-job quarantine, per-job ``SIGALRM`` deadlines with
parent-side hard kill, and journal-as-they-arrive durability.  Every
quarantined job feeds the tenant's circuit breaker.

Two execution modes:

* ``async_mode=True`` — a daemon scheduler thread drains the backlog;
  ``submit`` returns immediately and :meth:`result` /
  :meth:`stream` block until the job lands.
* ``async_mode=False`` — nothing runs until :meth:`step`,
  :meth:`drain`, :meth:`result` or :meth:`run_batch` drives the
  scheduler on the calling thread.  Fully deterministic; this is the
  mode the chaos harness (:mod:`repro.robust.chaos`) exercises, since
  a :class:`~repro.chaoshooks.ChaosCrash` then propagates to the
  entry-point boundary exactly like a process death.

Service events are triple-published: stable-coded diagnostics
(DG213–DG218) into :attr:`diagnostics` and each affected job's
:meth:`stream`, ``service.*`` counters in :mod:`repro.obs.counters`,
and trace events/spans per job phase when a recorder is enabled.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import replace

from repro import chaoshooks
from repro.core.errors import (AdmissionError, JobCancelled, JobNotFound,
                               ServiceError)
from repro.obs import counters as obs_counters
from repro.obs import trace as obs_trace
from repro.parallel.runner import (PoolPolicy, SimConfig, fingerprint,
                                   run_simulations)
from repro.robust.diagnostics import Diagnostics
from repro.robust.recovery import Journal
from repro.service.admission import AdmissionController, TenantPolicy
from repro.service.jobs import Job, JobId, Submission
from repro.service.store import ContentStore

__all__ = ["RefinementService", "TenantPolicy"]

_SUBMISSIONS_NAME = "submissions.jsonl"


class RefinementService:
    """In-process refinement job service (see module docstring).

    ``root=None`` runs memory-only (no durability — tests and
    throwaway sessions); with a directory, both journals live there
    and :meth:`recover` resumes a predecessor's accepted work.
    ``tenants`` maps tenant name to :class:`TenantPolicy`;
    unknown tenants get ``default_policy`` (unmetered by default).
    """

    def __init__(self, root=None, tenants=None, default_policy=None,
                 max_queued_total=256, workers=None, pool_policy=None,
                 async_mode=False, max_batch=32, store=None, clock=None,
                 sync=True):
        self.root = None if root is None else os.fspath(root)
        if self.root is not None:
            os.makedirs(self.root, exist_ok=True)
        self.workers = workers
        self.pool_policy = pool_policy or PoolPolicy()
        self.max_batch = max(1, int(max_batch))
        self.async_mode = bool(async_mode)
        self.store = store if store is not None \
            else ContentStore(self.root, sync=sync)
        self.admission = AdmissionController(
            default_policy=default_policy, tenants=tenants,
            max_queued_total=max_queued_total, clock=clock)
        self.diagnostics = Diagnostics()
        self._subs = None
        if self.root is not None:
            self._subs = Journal(
                os.path.join(self.root, _SUBMISSIONS_NAME), sync=sync,
                meta={"role": "service-submissions"},
                compact_threshold=1 << 18)
        self._lock = threading.RLock()
        self._jobs = {}              # JobId.value -> Job
        self._inflight = {}          # key -> [Job, ...] (first = primary)
        self._seq = {}               # tenant -> itertools.count
        self._pending_recovery = {}  # key -> Submission awaiting factory
        if self._subs is not None:
            # A fresh process must never reuse a predecessor's job ids:
            # the journal keys records by id, so a collision would
            # overwrite an accepted-but-unfinished record and silently
            # orphan that job for every future recover().
            for job_value in self._subs.entries():
                self._bump_seq(job_value)
        self._n_running = 0
        self._closed = False
        self._work = threading.Condition(self._lock)
        self._thread = None
        if self.async_mode:
            self._thread = threading.Thread(target=self._loop,
                                            name="repro-service",
                                            daemon=True)
            self._thread.start()

    # -- diagnostics plumbing ----------------------------------------------

    def _diag(self, category, severity, message, jobs=(), **data):
        """Record one service event: diagnostics + job streams + trace."""
        ev = self.diagnostics.add(category, severity, None, message,
                                  **data)
        for job in jobs:
            job.push_diag(ev)
        obs_trace.event("service." + category, severity=severity,
                        message=message, **{
                            k: v for k, v in data.items()
                            if isinstance(v, (int, float, str, bool,
                                              type(None)))})
        return ev

    # -- submission --------------------------------------------------------

    def _next_id(self, tenant):
        counter = self._seq.get(tenant)
        if counter is None:
            counter = self._seq[tenant] = itertools.count(1)
        return JobId(tenant, next(counter))

    def submit(self, factory, config=None, tenant="default",
               deadline_seconds=None, seeded_factory=None, engine=None,
               _charge_quota=True):
        """Admit one refinement job; returns its :class:`JobId`.

        ``config`` is a :class:`~repro.parallel.SimConfig` (a default
        one when omitted); ``deadline_seconds`` overrides the config's
        per-job wall-clock budget and propagates all the way into the
        executing worker's ``SIGALRM`` guard (plus the parent-side
        hard kill for workers that block their alarm).  Errors inside
        the design never raise out of the service — ``catch_errors``
        is forced on and failures surface as the job's ``failed``
        state.

        Raises :class:`~repro.core.errors.CircuitOpen`,
        :class:`~repro.core.errors.QuotaExceeded` or
        :class:`~repro.core.errors.QueueFull` when admission sheds the
        submission (all carry ``retry_after``).
        """
        from repro.sim.engine import resolve_engine

        if config is None:
            config = SimConfig()
        engine = resolve_engine(engine)
        if deadline_seconds is not None:
            config = replace(config, deadline_seconds=deadline_seconds)
        if not config.catch_errors:
            config = replace(config, catch_errors=True)
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            obs_counters.inc("service.submitted")
            key = fingerprint(factory, config, seeded_factory,
                              engine=engine)
            recovered = self._pending_recovery.pop(key, None)
            try:
                self.admission.admit(
                    tenant,
                    charge_quota=_charge_quota and recovered is None)
            except AdmissionError as exc:
                if recovered is not None:
                    self._pending_recovery[key] = recovered
                self._diag("service-reject", "warning",
                           "tenant %r submission rejected: %s"
                           % (tenant, exc), tenant=tenant,
                           reason=type(exc).__name__,
                           retry_after=exc.retry_after)
                raise
            job = Job(self._next_id(tenant), tenant, key, config,
                      factory, seeded_factory, engine)
            self._jobs[job.id.value] = job
            job.push("job.accepted", tenant=tenant, key=key[:16],
                     label=config.label)
            obs_counters.inc("service.accepted")
            self._journal_submission(job, "accepted")
            if recovered is not None:
                self._supersede(recovered, job.id.value)
                obs_counters.inc("service.recovered")

            # Dedupe tier 1: already computed, by anyone, ever.
            hit = self.store.get(key)
            if hit is not None:
                obs_counters.inc("service.dedupe_hits")
                self._diag("service-dedupe", "info",
                           "job %s served from the content store "
                           "(key %s...)" % (job.id, key[:12]),
                           jobs=(job,), job=job.id.value)
                self._finish(job, hit)
                # A store hit is still a served submission: settle the
                # breaker verdict here, or a half-open probe that
                # deduped would leave its slot taken forever.
                self._breaker_account(tenant, hit, (job,))
                return job.id
            # Dedupe tier 2: identical job already queued or running.
            flight = self._inflight.get(key)
            if flight is not None:
                job.coalesced = True
                flight.append(job)
                obs_counters.inc("service.dedupe_hits")
                obs_counters.inc("service.coalesced")
                self._diag("service-dedupe", "info",
                           "job %s coalesced onto in-flight %s "
                           "(key %s...)"
                           % (job.id, flight[0].id, key[:12]),
                           jobs=(job,), job=job.id.value,
                           primary=flight[0].id.value)
                job.advance("queued", coalesced=True)
                return job.id
            self._inflight[key] = [job]
            self.admission.enqueue(job)
            job.advance("queued")
            self._work.notify_all()
        return job.id

    def _journal_submission(self, job, state):
        if self._subs is None:
            return
        payload = job.config if state == "accepted" else None
        self._subs.append(job.id.value, Submission(
            job.id.value, job.tenant, job.key, job.config.label, state,
            factory_fp=_factory_fp(job.factory, job.seeded),
            engine=job.engine, config=payload,
            deadline_seconds=job.config.deadline_seconds))

    def _supersede(self, sub, successor):
        """Close out a replayed submission record under its *old* id so
        a second restart does not replay it again (the successor job's
        own records carry the obligation from here)."""
        if self._subs is None:
            return
        self._subs.append(sub.job, Submission(
            sub.job, sub.tenant, sub.key, sub.label, "superseded",
            factory_fp=sub.factory_fp, engine=sub.engine,
            config=None, deadline_seconds=sub.deadline_seconds))
        obs_trace.event("service.superseded", old=sub.job,
                        new=successor)

    # -- the scheduler -----------------------------------------------------

    def _loop(self):
        """Async-mode scheduler thread: drain until closed."""
        while True:
            with self._lock:
                while (not self._closed
                       and self.admission.n_queued == 0):
                    self._work.wait(timeout=0.5)
                if self._closed and self.admission.n_queued == 0:
                    return
            self.step()

    def step(self):
        """Run one scheduling round; returns completed-job count.

        Takes up to ``max_batch`` queued jobs (fair across tenants),
        groups them by (factory, engine) and executes each group as one
        :func:`run_simulations` batch against the shared store.
        """
        with self._lock:
            batch = self.admission.take(limit=self.max_batch)
            for job in batch:
                job.advance("running")
            self._n_running += len(batch)
        if not batch:
            return 0
        try:
            groups = {}
            for job in batch:
                gkey = (_factory_fp(job.factory, job.seeded), job.engine)
                groups.setdefault(gkey, []).append(job)
            n_done = 0
            for jobs in groups.values():
                n_done += self._dispatch_group(jobs)
            return n_done
        finally:
            with self._lock:
                self._n_running -= len(batch)
                self._work.notify_all()

    def _dispatch_group(self, jobs):
        """One homogeneous group through ``run_simulations``."""
        hook = chaoshooks.ACTIVE
        if hook is not None:
            # The accept records are journaled; a crash here is the
            # "scheduler died between accept and dispatch" window the
            # chaos matrix addresses as service.dispatch_crash.
            hook.on_service_dispatch(jobs)
        diag = Diagnostics()
        with obs_trace.span("service.batch", jobs=len(jobs),
                            engine=jobs[0].engine) as sp:
            outcomes = run_simulations(
                jobs[0].factory, [j.config for j in jobs],
                workers=self.workers, cache=self.store.cache,
                seeded_factory=jobs[0].seeded, journal=self.store.journal,
                diagnostics=diag, pool_policy=self.pool_policy,
                engine=jobs[0].engine)
            sp.set(completed=sum(1 for o in outcomes if o.completed))
        self._route_diagnostics(diag, jobs)
        n_done = 0
        for job, outcome in zip(jobs, outcomes):
            self._publish(job, outcome)
            n_done += 1
        return n_done

    def _route_diagnostics(self, diag, jobs):
        """Deliver batch diagnostics to the jobs they belong to."""
        by_label = {}
        for job in jobs:
            by_label.setdefault(job.config.label, job)
        for ev in diag.events:
            self.diagnostics.events.append(ev)
            label = ev.data.get("label")
            target = by_label.get(label)
            if target is not None:
                target.push_diag(ev)
            else:
                for job in jobs:
                    job.push_diag(ev)

    def _publish(self, job, outcome):
        """Store the outcome, settle the job and every coalesced waiter,
        and feed the tenant's circuit breaker."""
        with self._lock:
            waiters = self._inflight.pop(job.key, [job])
            if outcome.error is None:
                self.store.put(job.key, outcome)
            live = [w for w in waiters if not w.done]
            for waiter in live:
                self._finish(waiter, outcome)
            # The verdict lands on every waiter's own tenant lane
            # (once per tenant): a coalesced waiter may be another
            # tenant's half-open probe, and only its own lane's
            # accounting releases that probe slot.  Cancelled waiters
            # already released theirs in cancel().
            by_tenant = {}
            for waiter in live:
                by_tenant.setdefault(waiter.tenant, []).append(waiter)
            for tenant, tenant_jobs in by_tenant.items():
                self._breaker_account(tenant, outcome, tenant_jobs)

    def _finish(self, job, outcome):
        """Terminal bookkeeping of one job (lock held)."""
        if outcome.label != job.config.label:
            outcome = replace(outcome, label=job.config.label)
        journal_state = "completed" if outcome.error is None else "failed"
        job.complete(outcome)
        self._journal_submission(job, journal_state)
        obs_counters.inc("service.%s" % journal_state)
        if outcome.error_kind == "deadline":
            obs_counters.inc("service.deadline_hits")
        obs_trace.event("service.job_done", job=job.id.value,
                        state=journal_state,
                        error_kind=outcome.error_kind)
        self._work.notify_all()

    def _breaker_account(self, tenant, outcome, jobs):
        lane = self.admission.lane(tenant)
        before = lane.breaker.state
        if outcome.error_kind == "crash":
            obs_counters.inc("service.quarantined")
            self._diag("service-quarantine", "warning",
                       "tenant %r job %s quarantined as poison "
                       "(counted toward its circuit breaker)"
                       % (tenant, jobs[0].id), jobs=jobs, tenant=tenant,
                       label=jobs[0].config.label)
            lane.breaker.record_quarantine()
        else:
            lane.breaker.record_success()
        after = lane.breaker.state
        if after != before:
            severity = "warning" if after == "open" else "info"
            self._diag("service-breaker", severity,
                       "tenant %r circuit breaker: %s -> %s"
                       % (tenant, before, after), jobs=jobs,
                       tenant=tenant, before=before, after=after)

    # -- the query side ----------------------------------------------------

    def _job(self, job_id):
        value = job_id.value if isinstance(job_id, JobId) else str(job_id)
        job = self._jobs.get(value)
        if job is None:
            raise JobNotFound("unknown job id %r" % value)
        return job

    def status(self, job_id):
        """Immutable :class:`~repro.service.jobs.JobStatus` snapshot."""
        return self._job(job_id).snapshot()

    def result(self, job_id, timeout=None):
        """Block until the job settles; returns its ``SimOutcome``.

        Failed jobs *return* their error outcome (``outcome.error`` /
        ``error_kind`` set) — mirroring ``catch_errors=True`` batch
        semantics — while a cancelled job raises
        :class:`~repro.core.errors.JobCancelled`.  In sync mode this
        call drives the scheduler itself.
        """
        job = self._job(job_id)
        if not self.async_mode:
            while not job.done:
                if self.step() == 0 and not job.done:
                    raise ServiceError(
                        "job %s cannot make progress (state %s)"
                        % (job.id, job.state))
        # One absolute deadline for the whole wait: every job event
        # notifies the condition, so restarting ``timeout`` per wake-up
        # would let a slow, chatty job stretch the bound indefinitely.
        deadline = None if timeout is None else time.monotonic() + timeout
        with job.cond:
            while not job.done:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ServiceError(
                            "timed out waiting for job %s" % job.id)
                job.cond.wait(remaining)
        if job.state == "cancelled":
            raise JobCancelled("job %s was cancelled" % job.id)
        return job.outcome

    def stream(self, job_id, timeout=None):
        """Yield the job's live event feed until it settles.

        Events are dicts: lifecycle transitions (``job.accepted``,
        ``job.queued``, ``job.running``, ``job.completed``, ...) and
        ``diagnostic`` events carrying the stable DG code of every
        recovery/service event the executing batch attributed to this
        job.  In sync mode the scheduler is driven to completion
        first, then the feed replays.
        """
        job = self._job(job_id)
        if not self.async_mode and not job.done:
            self.result(job_id)
        idx = 0
        while True:
            with job.cond:
                # ``timeout`` bounds the wait for the *next* batch of
                # events as one absolute deadline — spurious wake-ups
                # (every event notifies all waiters) must not reset it.
                deadline = None if timeout is None \
                    else time.monotonic() + timeout
                while len(job.events) <= idx and not job.done:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise ServiceError(
                                "timed out streaming job %s" % job.id)
                    job.cond.wait(remaining)
                events = job.events[idx:]
                idx += len(events)
                done = job.done
            for ev in events:
                yield ev
            if done and idx >= len(job.events):
                return

    def cancel(self, job_id):
        """Cancel a job that has not finished; returns True on success.

        A queued primary with coalesced waiters hands the computation
        to the next waiter rather than aborting it; a coalesced waiter
        detaches alone (the shared computation continues).  Running
        jobs cannot be cancelled (the worker owns them).
        """
        job = self._job(job_id)
        with self._lock:
            if job.done or job.state == "running":
                return False
            flight = self._inflight.get(job.key)
            if flight and job in flight:
                flight.remove(job)
                if not flight:
                    del self._inflight[job.key]
                    self.admission.discard(job)
                elif not job.coalesced:
                    # The primary leaves: promote the first waiter into
                    # the queue slot (it inherits the computation).
                    heir = flight[0]
                    heir.coalesced = False
                    self.admission.discard(job)
                    self.admission.enqueue(heir)
            job.advance("cancelled")
            self._journal_submission(job, "cancelled")
            # A cancelled job never reports a breaker verdict; if it
            # held its tenant's half-open probe slot, release it so
            # the next submission can probe instead.
            self.admission.lane(job.tenant).breaker.abort_probe()
            obs_counters.inc("service.cancelled")
            self._diag("service-cancel", "info",
                       "job %s cancelled (%s)" % (job.id, job.tenant),
                       jobs=(job,), job=job.id.value)
        return True

    def jobs(self, tenant=None):
        """Snapshots of every known job (optionally one tenant's)."""
        with self._lock:
            return [j.snapshot() for j in self._jobs.values()
                    if tenant is None or j.tenant == tenant]

    # -- batch + drain convenience -----------------------------------------

    def run_batch(self, factory, configs, tenant="default",
                  seeded_factory=None, engine=None,
                  deadline_seconds=None):
        """Submit a whole batch and wait; outcomes in config order.

        The service-flavored ``run_simulations``: same outcome list a
        direct call would produce, with admission, dedupe and journal
        recovery applied per job.  Used by the gallery matrix to run
        as the service's first heavy tenant.
        """
        ids = [self.submit(factory, cfg, tenant=tenant,
                           seeded_factory=seeded_factory, engine=engine,
                           deadline_seconds=deadline_seconds)
               for cfg in configs]
        self.drain()
        return [self.result(jid) for jid in ids]

    def drain(self, timeout=None):
        """Run (sync) or wait (async) until the backlog is empty."""
        if not self.async_mode:
            while self.admission.n_queued:
                self.step()
            return
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self.admission.n_queued or self._n_running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ServiceError(
                            "timed out draining the service")
                self._work.wait(remaining)

    # -- crash recovery ----------------------------------------------------

    def recover(self, factories=None, tenant_override=None):
        """Resume a predecessor process's accepted-but-unfinished jobs.

        Scans the submission journal for records whose latest state is
        still ``accepted``.  Each one is settled the cheapest way that
        preserves bit-exactness:

        1. its content key is already in the result store — the job is
           re-created and completed instantly from the stored outcome;
        2. ``factories`` (a ``{factory_fingerprint: factory}`` or
           ``{factory_fingerprint: (factory, seeded_factory)}`` map)
           knows its design factory — the job is re-enqueued *without*
           a quota charge (the original accept already paid);
        3. otherwise it is parked: the next :meth:`submit` with the
           same content fingerprint is admitted quota-free.

        Returns ``{"completed": n, "requeued": n, "parked": n}``.
        """
        if self._subs is None:
            return {"completed": 0, "requeued": 0, "parked": 0}
        factories = dict(factories or {})
        stats = {"completed": 0, "requeued": 0, "parked": 0}
        with self._lock:
            pending = [sub for sub in self._subs.entries().values()
                       if getattr(sub, "state", None) == "accepted"]
            pending.sort(key=lambda s: s.job)
            for sub in pending:
                self._bump_seq(sub.job)
                tenant = tenant_override or sub.tenant
                hit = self.store.get(sub.key)
                entry = factories.get(sub.factory_fp)
                if hit is None and entry is None:
                    self._pending_recovery[sub.key] = sub
                    stats["parked"] += 1
                    continue
                factory, seeded = entry if isinstance(entry, tuple) \
                    else (entry, None)
                job = Job(self._next_id(tenant), tenant, sub.key,
                          sub.config, factory, seeded, sub.engine)
                self._jobs[job.id.value] = job
                obs_counters.inc("service.recovered")
                self._journal_submission(job, "accepted")
                self._supersede(sub, job.id.value)
                if hit is not None:
                    self._finish(job, hit)
                    stats["completed"] += 1
                else:
                    flight = self._inflight.setdefault(sub.key, [])
                    flight.append(job)
                    if len(flight) == 1:
                        # This job became the primary for its key.
                        self.admission.enqueue(job)
                        job.advance("queued", recovered=True)
                    else:
                        # A second journaled submission with the same
                        # content key (a coalesced waiter that crashed
                        # mid-flight): re-coalesce instead of queueing
                        # the identical computation twice.
                        job.coalesced = True
                        obs_counters.inc("service.dedupe_hits")
                        obs_counters.inc("service.coalesced")
                        job.advance("queued", recovered=True,
                                    coalesced=True)
                    stats["requeued"] += 1
            if stats["completed"] or stats["requeued"] or stats["parked"]:
                self._diag(
                    "service-recover", "info",
                    "submission journal replayed: %(completed)d "
                    "completed from the store, %(requeued)d re-queued, "
                    "%(parked)d parked awaiting factories" % stats,
                    **stats)
            self._work.notify_all()
        return stats

    def _bump_seq(self, job_value):
        """Keep fresh ids above a recovered job's sequence number."""
        tenant, _, seq = job_value.rpartition("/")
        try:
            seq = int(seq)
        except ValueError:
            return
        counter = self._seq.get(tenant)
        start = seq + 1
        if counter is not None:
            nxt = next(counter)
            start = max(nxt, start)
        self._seq[tenant] = itertools.count(start)

    # -- observability -----------------------------------------------------

    def stats(self):
        """One merged service snapshot: store, admission, jobs."""
        with self._lock:
            states = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "jobs": states,
                "queued": self.admission.n_queued,
                "running": self._n_running,
                "store": self.store.stats(),
                "tenants": self.admission.stats(),
                "parked_recoveries": len(self._pending_recovery),
            }

    # -- lifecycle ---------------------------------------------------------

    def close(self, drain=False):
        """Shut down; ``drain=True`` finishes the backlog first."""
        if drain:
            self.drain()
        with self._lock:
            self._closed = True
            self._work.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        if self._subs is not None:
            self._subs.close()
            self._subs = None
        self.store.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        return "RefinementService(%r, %d job(s), %d queued)" % (
            self.root, len(self._jobs), self.admission.n_queued)


def _factory_fp(factory, seeded=None):
    """Stable identity of a (factory, seeded_factory) pair."""
    from repro.parallel.runner import _callable_fingerprint
    fp = _callable_fingerprint(factory)
    if seeded is not None:
        fp += "+" + _callable_fingerprint(seeded)
    return fp
