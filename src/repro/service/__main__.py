"""Entry point for ``python -m repro.service``."""

import sys

from repro.service.cli import main

sys.exit(main())
