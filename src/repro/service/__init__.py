"""Resilient refinement-as-a-service (`repro.service`).

Long fixed-point refinement campaigns — dtype sweeps, gallery
matrices, verification batches — stop being one-shot scripts the
moment several of them share a machine.  This package wraps the
existing batch runner (:func:`repro.parallel.run_simulations`) in an
in-process *service* with the robustness posture of a shared facility:

* **admission control** — per-tenant token-bucket quotas, bounded
  queues with deterministic shedding, and circuit breakers that
  isolate tenants whose jobs keep poisoning workers
  (:mod:`repro.service.admission`);
* **a content-addressed result store** — results are keyed by the
  sha256 fingerprint of the work itself, so identical submissions from
  any tenant are computed exactly once and concurrent duplicates
  coalesce onto one in-flight computation
  (:mod:`repro.service.store`);
* **durability** — every accepted job is journaled before it is
  queued; after ``kill -9`` the restarted service replays its
  submission journal and completes the backlog bit-exactly
  (:meth:`RefinementService.recover`).

The five-line version:

    >>> from repro.service import RefinementService
    >>> svc = RefinementService()          # memory-only, sync mode
    >>> from repro.parallel import SimConfig
    >>> # job = svc.submit(my_factory, SimConfig(label="q12"))
    >>> # outcome = svc.result(job)

``python -m repro.service demo`` runs the full story end to end;
``python -m repro.service bench`` measures the dedupe win.  See
``docs/service.md`` for the API contract and recovery semantics.
"""

from repro.core.errors import (AdmissionError, CircuitOpen, JobCancelled,
                               JobNotFound, QueueFull, QuotaExceeded,
                               ServiceError)
from repro.service.admission import (AdmissionController, CircuitBreaker,
                                     TenantPolicy, TokenBucket)
from repro.service.jobs import (JOB_STATES, TERMINAL_STATES, Job, JobId,
                                JobStatus, Submission)
from repro.service.service import RefinementService
from repro.service.store import ContentStore

__all__ = [
    "RefinementService", "ContentStore", "AdmissionController",
    "TenantPolicy", "TokenBucket", "CircuitBreaker",
    "Job", "JobId", "JobStatus", "Submission",
    "JOB_STATES", "TERMINAL_STATES",
    "ServiceError", "AdmissionError", "QuotaExceeded", "QueueFull",
    "CircuitOpen", "JobNotFound", "JobCancelled",
]
