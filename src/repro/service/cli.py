"""``python -m repro.service`` — demo and bench the refinement service.

Two subcommands:

* ``demo`` — the full service story against a scratch (or ``--root``)
  directory: multi-tenant admission, quota shedding with retry-after
  hints, duplicate coalescing, then a simulated restart that serves a
  re-submission bit-exactly from the content store.
* ``bench`` — measures the dedupe win: one batch submitted by ``--dup``
  tenants through the service versus the same work run naively, with
  the ``service.dedupe_hits`` accounting printed.

Exit status: 0 ok, 1 when a demo/bench self-check fails.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.core.dtype import DType
from repro.core.errors import QuotaExceeded
from repro.obs import counters as obs_counters
from repro.parallel.runner import SimConfig, run_simulations
from repro.refine.flow import Design
from repro.service.admission import TenantPolicy, _FakeClock
from repro.service.service import RefinementService
from repro.signal import Reg, Sig

__all__ = ["main", "build_parser", "demo_factory", "DEMO_TYPES"]

T_IN = DType("T_in", 9, 7, "tc", "saturate", "round")
T_ACC = DType("T_acc", 12, 9, "tc", "saturate", "round")

DEMO_TYPES = {"x": T_IN, "p": T_ACC, "acc": T_ACC, "y": T_ACC}


class _DemoDesign(Design):
    """Leaky accumulator — the service CLI's probe workload."""

    name = "service-demo"
    inputs = ("x",)
    output = "y"

    def __init__(self, seed=2026):
        self.seed = seed

    def build(self, ctx):
        self.x = Sig("x")
        self.p = Sig("p")
        self.acc = Reg("acc")
        self.y = Sig("y")
        rng = np.random.default_rng(self.seed)
        self._stim = iter(rng.uniform(-1, 1, size=65536).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.p.assign(self.x * 0.5)
            self.acc.assign(self.acc * 0.75 + self.p)
            self.y.assign(self.acc + self.x * 0.125)
            ctx.tick()


def demo_factory():
    return _DemoDesign()


demo_factory.fingerprint = "service-demo-v1"


def _configs(n, samples=128):
    return [SimConfig(label="sweep%d" % i, dtypes=DEMO_TYPES,
                      n_samples=samples, seed=300 + i)
            for i in range(n)]


def _cmd_demo(args):
    root = args.root or tempfile.mkdtemp(prefix="repro-service-demo-")
    own_root = args.root is None
    clock = _FakeClock()
    obs_counters.reset()
    ok = True
    print("service root: %s" % root)
    try:
        svc = RefinementService(
            root=root,
            tenants={
                "alice": TenantPolicy(rate=1.0, burst=2, max_queued=8),
                "bob": TenantPolicy(),         # unmetered
            },
            clock=clock, workers=args.workers)
        with svc:
            cfg = _configs(1)[0]
            print("\n-- dedupe: three identical submissions, two tenants")
            j1 = svc.submit(demo_factory, cfg, tenant="alice")
            j2 = svc.submit(demo_factory, cfg, tenant="alice")
            j3 = svc.submit(demo_factory, cfg, tenant="bob")
            outs = [svc.result(j) for j in (j1, j2, j3)]
            same = (outs[0].output == outs[1].output
                    and outs[1].output == outs[2].output)
            print("   3 jobs -> 1 simulation; outputs bit-identical: %s"
                  % same)
            print("   dedupe hits: %d (expected 2)"
                  % obs_counters.get("service.dedupe_hits"))
            ok &= same and obs_counters.get("service.dedupe_hits") == 2

            print("\n-- quota: alice has rate=1/s burst=2 (both spent "
                  "above — dedupe saves compute, not quota)")
            try:
                svc.submit(demo_factory, _configs(2)[1], tenant="alice")
                print("   NOT rejected (unexpected)")
                ok = False
            except QuotaExceeded as exc:
                print("   rejected: %s" % exc)
                print("   retry_after=%.1fs" % exc.retry_after)
            clock.advance(1.5)
            j4 = svc.submit(demo_factory, _configs(2)[1], tenant="alice")
            print("   after advancing the clock 1.5s: admitted as %s"
                  % j4)
            svc.result(j4)

            print("\n-- bob (unmetered) was never affected")
            j5 = svc.submit(demo_factory, _configs(3)[2], tenant="bob")
            svc.result(j5)
            print("   " + json.dumps(svc.stats()["tenants"]))

        print("\n-- restart: a new service on the same root")
        svc2 = RefinementService(root=root, clock=clock,
                                 workers=args.workers)
        with svc2:
            before = obs_counters.get("service.store_hits")
            j6 = svc2.submit(demo_factory, cfg, tenant="carol")
            out6 = svc2.result(j6)
            served = obs_counters.get("service.store_hits") > before
            same = out6.output == outs[0].output
            print("   carol's identical submission served from the "
                  "content store: %s; bit-identical: %s"
                  % (served, same))
            ok &= served and same
    finally:
        if own_root:
            shutil.rmtree(root, ignore_errors=True)
    print("\ndemo %s" % ("ok" if ok else "FAILED"))
    return 0 if ok else 1


def _cmd_bench(args):
    configs = _configs(args.jobs, samples=args.samples)
    t0 = time.perf_counter()
    for _ in range(args.dup):
        run_simulations(demo_factory, configs, workers=args.workers)
    t_naive = time.perf_counter() - t0

    obs_counters.reset()
    t0 = time.perf_counter()
    with RefinementService(workers=args.workers) as svc:
        batches = [svc.run_batch(demo_factory, configs,
                                 tenant="tenant%d" % d)
                   for d in range(args.dup)]
    t_svc = time.perf_counter() - t0
    dedupe = obs_counters.get("service.dedupe_hits")
    expected = args.jobs * (args.dup - 1)
    ref = batches[0]
    identical = all(o.output == r.output
                    for b in batches[1:] for o, r in zip(b, ref))
    print("naive   : %d tenants x %d jobs  %.3fs"
          % (args.dup, args.jobs, t_naive))
    print("service : same work             %.3fs  (%.1fx)"
          % (t_svc, t_naive / max(t_svc, 1e-9)))
    print("dedupe  : %d/%d duplicate jobs served without simulating; "
          "outputs bit-identical: %s" % (dedupe, expected, identical))
    return 0 if (dedupe == expected and identical) else 1


def build_parser():
    p = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Refinement-as-a-service: demo and dedupe bench.")
    sub = p.add_subparsers(dest="cmd", required=True)

    pd = sub.add_parser("demo", help="end-to-end multi-tenant demo")
    pd.add_argument("--root", metavar="DIR", default=None,
                    help="service directory (default: scratch tempdir)")
    pd.add_argument("--workers", type=int, default=0,
                    help="worker processes (default: serial)")

    pb = sub.add_parser("bench", help="measure the dedupe win")
    pb.add_argument("--jobs", type=int, default=6,
                    help="distinct jobs per tenant (default: 6)")
    pb.add_argument("--dup", type=int, default=3,
                    help="tenants submitting the same batch (default: 3)")
    pb.add_argument("--samples", type=int, default=256,
                    help="samples per job (default: 256)")
    pb.add_argument("--workers", type=int, default=0,
                    help="worker processes (default: serial)")
    return p


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.cmd == "demo":
        return _cmd_demo(args)
    return _cmd_bench(args)


if __name__ == "__main__":
    sys.exit(main())
