"""Fault-injection campaigns against a refined fixed-point design.

A refinement result is only trustworthy if the synthesized types keep
working when the world misbehaves.  The campaign takes a design factory
plus the synthesized type assignment and re-simulates once per fault,
perturbing the quantized implementation while the float reference stays
clean — so each signal's produced-error monitor measures the fault's
impact directly and the output SQNR degradation quantifies it.

Fault models (the SMT-based verification line of work stresses designs
the same way, just symbolically):

* :class:`BitFlip` — transient or periodic single-bit upset in the
  quantized word of one signal (SEU-style storage fault);
* :class:`StuckAt` — a signal's implementation output frozen at a value;
* :class:`InputScale` — incoming amplitude scaled (headroom stress);
* :class:`NanInject` — a NaN pushed into a signal to exercise the guard
  layer end to end;
* :class:`ChannelDrop` — values lost in a processor-to-processor FIFO
  (engine-based designs exposing the channel as an attribute);
* :class:`SeedPerturb` — the whole run repeated under a different
  stimulus seed (the refined types must not be overfit to one seed);
* :class:`WorkerCrash` / :class:`WorkerHang` — *infrastructure* faults:
  the simulation process dies mid-run (``os._exit``) or stops making
  progress.  They exercise the crash-tolerance layer itself — the
  campaign must complete with the poison job quarantined / deadlined
  and every other fault still measured (see ``docs/robustness.md``).

:func:`standard_faults` derives a default campaign from a type
assignment; :class:`FaultCampaign` executes any fault list and returns a
:class:`CampaignResult` with per-fault SQNR degradation, overflow counts
and guard trips.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field

from repro.core import word
from repro.core.errors import DesignError, SimulationError
from repro.obs import trace as obs_trace
from repro.parallel.runner import SimConfig, in_worker, run_simulations
from repro.refine.flow import Annotations
from repro.refine.monitors import collect
from repro.refine.report import format_table
from repro.signal.context import DesignContext

__all__ = ["Fault", "BitFlip", "StuckAt", "InputScale", "NanInject",
           "ChannelDrop", "SeedPerturb", "WorkerCrash", "WorkerHang",
           "FaultOutcome", "CampaignResult", "FaultCampaign",
           "standard_faults"]


class Fault:
    """Base class of all fault models.

    ``n_fired`` counts how often the fault actually perturbed the run
    (``None`` for whole-run faults like :class:`SeedPerturb`).  A fault
    that never fired — e.g. a :class:`BitFlip` on a signal only assigned
    during ``build()``, before hooks are installed — is flagged
    ``triggered=False`` in its :class:`FaultOutcome` so a clean-looking
    campaign row cannot hide an unexercised fault.
    """

    kind = "fault"
    n_fired = None

    def describe(self):
        raise NotImplementedError

    def install(self, ctx, design):
        """Hook the fault into a freshly built design (override)."""

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.describe())


@dataclass(repr=False)
class BitFlip(Fault):
    """Flip bit ``bit`` (LSB = 0) of ``signal``'s quantized word.

    Fires on the ``at``-th assignment; with ``every`` set it re-fires
    periodically from there on.  The flipped code wraps within the
    signal's word, exactly like a storage upset in hardware.
    """

    signal: str
    bit: int = 0
    at: int = 100
    every: object = None

    kind = "bit-flip"

    def describe(self):
        rate = "once" if self.every is None else "every %d" % self.every
        return "bit-flip %s bit %d @%d (%s)" % (self.signal, self.bit,
                                                self.at, rate)

    def install(self, ctx, design):
        sig = ctx.get(self.signal)
        dt = sig.dtype
        if dt is None:
            raise DesignError("bit flip on %r needs a fixed-point type"
                              % self.signal)
        if not 0 <= self.bit < dt.n:
            raise DesignError("bit %d outside the %d-bit word of %r"
                              % (self.bit, dt.n, self.signal))
        self.n_fired = 0
        state = {"n": 0}
        # Hoist the per-call constants out of the hot hook.
        scale = 2.0 ** dt.f
        inv = 2.0 ** -dt.f
        flip = 1 << self.bit
        n_bits = dt.n
        signed = dt.signed

        def hook(s, qfx):
            i = state["n"]
            state["n"] += 1
            fire = (i == self.at if self.every is None
                    else i >= self.at and (i - self.at) % self.every == 0)
            if not fire:
                return qfx
            self.n_fired += 1
            code = int(round(qfx * scale)) ^ flip
            code = word.wrap_code(code, n_bits, signed)
            return code * inv

        sig.fault_post(hook)


@dataclass(repr=False)
class StuckAt(Fault):
    """Freeze ``signal``'s implementation value from one assignment on.

    The float reference keeps computing the true values, so the SQNR
    collapse measures how catastrophic the stuck node is.
    """

    signal: str
    value: float = 0.0
    from_assign: int = 0

    kind = "stuck-at"

    def describe(self):
        return "stuck-at %s=%g from #%d" % (self.signal, self.value,
                                            self.from_assign)

    def install(self, ctx, design):
        sig = ctx.get(self.signal)
        self.n_fired = 0
        state = {"n": 0}

        def hook(s, qfx):
            i = state["n"]
            state["n"] += 1
            if i >= self.from_assign:
                self.n_fired += 1
                return self.value
            return qfx

        sig.fault_post(hook)


@dataclass(repr=False)
class InputScale(Fault):
    """Scale every value arriving at ``signal`` by ``factor``.

    Both the implementation and the reference see the scaled value: the
    fault stresses range headroom (overflow counts), not precision.
    """

    signal: str
    factor: float = 2.0

    kind = "input-scale"

    def describe(self):
        return "input-scale %s x%g" % (self.signal, self.factor)

    def install(self, ctx, design):
        sig = ctx.get(self.signal)
        self.n_fired = 0

        def hook(s, fx, fl):
            self.n_fired += 1
            return fx * self.factor, fl * self.factor

        sig.fault_pre(hook)


@dataclass(repr=False)
class NanInject(Fault):
    """Push a NaN into ``signal`` on the ``at``-th assignment.

    Exercises the guard layer end to end: under a ``record`` guard the
    run completes with a logged trip, under ``raise`` it aborts (the
    campaign reports the abort as the fault outcome).
    """

    signal: str
    at: int = 50

    kind = "nan-inject"

    def describe(self):
        return "nan-inject %s @%d" % (self.signal, self.at)

    def install(self, ctx, design):
        sig = ctx.get(self.signal)
        self.n_fired = 0
        state = {"n": 0}

        def hook(s, fx, fl):
            i = state["n"]
            state["n"] += 1
            if i == self.at:
                self.n_fired += 1
                return math.nan, fl
            return fx, fl

        sig.fault_pre(hook)


@dataclass(repr=False)
class ChannelDrop(Fault):
    """Drop every ``every``-th value put into a design's channel.

    ``attr`` names an attribute of the design object holding the
    :class:`~repro.sim.channel.Channel` (engine-based designs).
    """

    attr: str
    every: int = 10

    kind = "channel-drop"

    def describe(self):
        return "channel-drop %s 1/%d" % (self.attr, self.every)

    def install(self, ctx, design):
        from repro.sim.channel import DROP
        chan = getattr(design, self.attr, None)
        if chan is None or not hasattr(chan, "set_fault"):
            raise DesignError("design has no channel attribute %r"
                              % self.attr)
        self.n_fired = 0
        state = {"n": 0}

        def hook(value):
            state["n"] += 1
            if state["n"] % self.every == 0:
                self.n_fired += 1
                return DROP
            return value

        chan.set_fault(hook)


@dataclass(repr=False)
class SeedPerturb(Fault):
    """Re-run the whole design under a different stimulus seed.

    Needs the campaign's ``seeded_factory`` to rebuild the design with
    the new seed; without one, only the context seed (``error()``
    injections) changes — the outcome then only probes annotation noise.
    """

    seed: int

    kind = "seed-perturb"

    def describe(self):
        return "seed-perturb seed=%d" % self.seed


@dataclass(repr=False)
class WorkerCrash(Fault):
    """Kill the executing process on ``signal``'s ``at``-th assignment.

    An *infrastructure* fault: in a pool worker it calls ``os._exit``
    (no cleanup, no exception — exactly what a segfaulting native
    kernel or an OOM kill looks like to the parent), exercising the
    runner's incremental harvest, poison-job quarantine and retry
    machinery.  When the job happens to execute in the campaign's own
    process (serial mode), exiting would kill the campaign itself, so
    it degrades to raising a :class:`~repro.core.errors.SimulationError`
    — still an aborted run, just a catchable one.
    """

    signal: str
    at: int = 100
    exit_code: int = 77

    kind = "worker-crash"

    def describe(self):
        return "worker-crash %s @%d (exit %d)" % (self.signal, self.at,
                                                  self.exit_code)

    def install(self, ctx, design):
        sig = ctx.get(self.signal)
        self.n_fired = 0
        state = {"n": 0}

        def hook(s, qfx):
            i = state["n"]
            state["n"] += 1
            if i == self.at:
                self.n_fired += 1
                if in_worker():
                    os._exit(self.exit_code)
                raise SimulationError(
                    "worker-crash fault fired in-process (assignment %d "
                    "of %r); a pool worker would have died here"
                    % (i, self.signal))
            return qfx

        sig.fault_post(hook)


@dataclass(repr=False)
class WorkerHang(Fault):
    """Stall the executing process on ``signal``'s ``at``-th assignment.

    Sleeps ``seconds`` once, simulating a wedged solver or a lost lock.
    Pair it with a per-job deadline (``FaultCampaign(deadline_seconds=...)``
    or ``SimConfig.deadline_seconds``): the in-process ``SIGALRM`` alarm
    interrupts the sleep and aborts the job as a deadline hit, so the
    batch keeps moving instead of waiting out the full hang.
    """

    signal: str
    at: int = 100
    seconds: float = 30.0

    kind = "worker-hang"

    def describe(self):
        return "worker-hang %s @%d (%.3gs)" % (self.signal, self.at,
                                               self.seconds)

    def install(self, ctx, design):
        sig = ctx.get(self.signal)
        self.n_fired = 0
        state = {"n": 0}

        def hook(s, qfx):
            i = state["n"]
            state["n"] += 1
            if i == self.at:
                self.n_fired += 1
                time.sleep(self.seconds)
            return qfx

        sig.fault_post(hook)


@dataclass(frozen=True)
class FaultOutcome:
    """Measured impact of one injected fault."""

    fault: str
    kind: str
    sqnr_db: float
    degradation_db: float
    overflows: int
    guard_trips: int
    error: object = None      # exception text when the run aborted
    #: False when the fault's hook never perturbed the run (e.g. the
    #: target signal is only assigned during build()).
    triggered: bool = True

    @property
    def completed(self):
        return self.error is None


@dataclass
class CampaignResult:
    """All outcomes of one fault-injection campaign."""

    output: str
    baseline_sqnr_db: float
    n_samples: int
    outcomes: list = field(default_factory=list)

    def worst_degradation_db(self):
        """Largest finite SQNR degradation (NaN when nothing finite)."""
        vals = [o.degradation_db for o in self.outcomes
                if o.completed and math.isfinite(o.degradation_db)]
        return max(vals) if vals else math.nan

    def certified(self, margin_db, kinds=None, require_no_overflow=False,
                  require_triggered=False):
        """True when every (selected) fault stayed within ``margin_db``.

        A fault certifies when its run completed, its degradation is
        finite and at most ``margin_db``, and (optionally) it caused no
        overflows.  ``kinds`` restricts the check to a subset of fault
        kinds — stuck-at faults, for instance, are *expected* to be
        catastrophic and are usually excluded.  With
        ``require_triggered=True``, a fault that never actually fired
        (see :class:`FaultOutcome.triggered`) fails certification — a
        margin proven by an unexercised fault proves nothing.
        """
        for o in self.outcomes:
            if kinds is not None and o.kind not in kinds:
                continue
            if not o.completed:
                return False
            if require_triggered and not o.triggered:
                return False
            if not math.isfinite(o.degradation_db):
                return False
            if o.degradation_db > margin_db:
                return False
            if require_no_overflow and o.overflows:
                return False
        return True

    def table(self, title="Fault-injection campaign"):
        headers = ["fault", "kind", "SQNR dB", "degr. dB", "ovf",
                   "guard", "status"]
        rows = []
        for o in self.outcomes:
            rows.append([
                o.fault, o.kind,
                "-" if not math.isfinite(o.sqnr_db) else "%.2f" % o.sqnr_db,
                "-" if not math.isfinite(o.degradation_db)
                else "%+.2f" % o.degradation_db,
                o.overflows, o.guard_trips,
                ("ok" if o.triggered else "IDLE (never fired)")
                if o.completed else "ABORT: %s" % o.error,
            ])
        head = "%s — output %r, baseline %.2f dB, %d samples/run" % (
            title, self.output, self.baseline_sqnr_db, self.n_samples)
        return format_table(headers, rows, title=head)

    def summary(self):
        n_ok = sum(1 for o in self.outcomes if o.completed)
        n_idle = sum(1 for o in self.outcomes
                     if o.completed and not o.triggered)
        worst = self.worst_degradation_db()
        text = ("fault campaign: %d/%d run(s) completed, worst SQNR "
                "degradation %s dB"
                % (n_ok, len(self.outcomes),
                   "%.2f" % worst if math.isfinite(worst) else "n/a"))
        if n_idle:
            text += ", %d fault(s) never fired" % n_idle
        return text

    def to_dict(self):
        def clean(v):
            return None if isinstance(v, float) and not math.isfinite(v) \
                else v
        return {
            "output": self.output,
            "baseline_sqnr_db": clean(self.baseline_sqnr_db),
            "n_samples": self.n_samples,
            "outcomes": [{
                "fault": o.fault, "kind": o.kind,
                "sqnr_db": clean(o.sqnr_db),
                "degradation_db": clean(o.degradation_db),
                "overflows": o.overflows,
                "guard_trips": o.guard_trips,
                "triggered": o.triggered,
                "error": None if o.error is None else str(o.error),
            } for o in self.outcomes],
        }


class FaultCampaign:
    """Runs a list of faults against a refined design.

    Parameters mirror :class:`RefinementFlow`: ``design_factory`` builds
    a fresh design, ``types`` is the (synthesized plus input) type
    assignment to apply, ``errors`` optional ``error()`` annotations
    (usually ``result.lsb.annotations``).  ``seeded_factory(seed)``
    enables :class:`SeedPerturb` faults to rebuild the stimulus.  Guard
    action defaults to ``record`` so injected NaNs are sanitized and
    counted rather than aborting the campaign.

    ``deadline_seconds`` bounds each run's wall clock (see
    ``SimConfig.deadline_seconds``) — essential when the fault list
    contains :class:`WorkerHang` or when perturbed designs can spin.
    """

    def __init__(self, design_factory, types, errors=None, output=None,
                 n_samples=2000, seed=1234, guard_action="record",
                 seeded_factory=None, deadline_seconds=None):
        self.factory = design_factory
        self.types = dict(types)
        self.errors = dict(errors or {})
        self.output = output
        self.n_samples = n_samples
        self.seed = seed
        self.guard_action = guard_action
        self.seeded_factory = seeded_factory
        self.deadline_seconds = deadline_seconds

    # -- single run ---------------------------------------------------------

    def _run_once(self, faults=(), seed=None, label="fault"):
        ctx = DesignContext(label, seed=self.seed if seed is None else seed,
                            overflow_action="record",
                            guard_action=self.guard_action)
        with ctx:
            if seed is not None and self.seeded_factory is not None:
                design = self.seeded_factory(seed)
            else:
                design = self.factory()
            design.build(ctx)
            Annotations(dtypes=self.types, errors=self.errors).apply(ctx)
            for fault in faults:
                fault.install(ctx, design)
            design.run(ctx, self.n_samples)
        records = collect(ctx)
        output = self.output or getattr(design, "output", None)
        return records, output, ctx

    @staticmethod
    def _overflows(records):
        """Overflow count excluding intended wrap-mode modulo events."""
        total = 0
        for rec in records.values():
            if not rec.overflow_count:
                continue
            if rec.dtype is not None and rec.dtype.msbspec == "wrap":
                continue
            total += rec.overflow_count
        return total

    # -- campaign ------------------------------------------------------------

    def _config(self, faults=(), seed=None, label="fault"):
        """Describe one campaign run as a parallel-runner job."""
        return SimConfig(label=label, dtypes=self.types, errors=self.errors,
                         n_samples=self.n_samples,
                         seed=self.seed if seed is None else seed,
                         overflow_action="record",
                         guard_action=self.guard_action,
                         faults=tuple(faults), factory_seed=seed,
                         catch_errors=bool(faults),
                         deadline_seconds=self.deadline_seconds)

    def run(self, faults, workers=None, cache=None, journal=None,
            diagnostics=None, pool_policy=None, engine=None):
        """Execute the campaign; returns a :class:`CampaignResult`.

        The baseline and the per-fault runs are independent and go out
        as one :func:`repro.parallel.run_simulations` batch (``workers``
        / ``cache`` forwarded; ``workers=None`` auto-sizes to the
        visible CPUs, falling back to an in-process serial loop).  The
        numbers are identical either way — each run carries its own
        seed, and fault fire counts travel back inside the outcomes.

        ``journal`` (a :class:`repro.robust.recovery.Journal` or path)
        makes the campaign resumable: per-fault outcomes are journaled
        as they complete, and a re-run after a crash replays them
        bit-exactly.  ``diagnostics`` collects the runner's recovery
        events (deadline hits, quarantines, retries, replays) with
        their stable ``DG2xx`` codes; ``pool_policy`` tunes
        retry/quarantine behaviour.

        ``engine`` is forwarded to the runner.  Under
        ``engine="compiled"`` only the fault-free baseline run is
        batch-eligible — fault injection hooks into the scalar
        assignment path, so every per-fault config automatically takes
        the interpreted pool, composing both levels of parallelism.
        """
        faults = list(faults)
        with obs_trace.span("campaign.run", faults=len(faults),
                            samples=self.n_samples) as sp:
            configs = [self._config(label="fault-baseline")]
            for fault in faults:
                seed = fault.seed if isinstance(fault, SeedPerturb) \
                    else None
                configs.append(self._config([fault], seed=seed,
                                            label="fault-%s" % fault.kind))
            sim_outcomes = run_simulations(
                self.factory, configs, workers=workers, cache=cache,
                seeded_factory=self.seeded_factory, journal=journal,
                diagnostics=diagnostics, pool_policy=pool_policy,
                engine=engine)

            base = sim_outcomes[0]
            output = self.output or base.output
            if output is None or output not in base.records:
                raise DesignError("campaign needs a resolvable output "
                                  "signal (got %r)" % output)
            baseline = base.records[output].sqnr_db()
            result = CampaignResult(output, baseline, self.n_samples)
            for fault, oc in zip(faults, sim_outcomes[1:]):
                if oc.error is not None:
                    outcome = FaultOutcome(fault.describe(), fault.kind,
                                           math.nan, math.nan, 0, 0,
                                           error=str(oc.error))
                else:
                    sqnr = oc.records[output].sqnr_db()
                    n_fired = oc.fault_fired[0] if oc.fault_fired \
                        else None
                    outcome = FaultOutcome(
                        fault.describe(), fault.kind, sqnr,
                        baseline - sqnr, self._overflows(oc.records),
                        oc.guard_trips,
                        triggered=(n_fired is None or n_fired > 0))
                result.outcomes.append(outcome)
                sp.event("campaign.fault", fault=fault.describe(),
                         kind=fault.kind,
                         completed=outcome.completed,
                         triggered=outcome.triggered,
                         degradation_db=outcome.degradation_db,
                         overflows=outcome.overflows,
                         guard_trips=outcome.guard_trips)
            sp.set(baseline_sqnr_db=baseline,
                   completed=sum(1 for o in result.outcomes
                                 if o.completed))
        return result


def standard_faults(types, inputs=(), n_seeds=2, base_seed=20000,
                    bit_flip_at=200, max_bitflip_signals=8,
                    input_scale=2.0):
    """Derive a default fault list from a type assignment.

    Per typed signal (up to ``max_bitflip_signals``, widest words first)
    one transient LSB flip and one MSB flip; per input an amplitude
    scaling and a NaN injection; plus ``n_seeds`` seed perturbations.
    """
    faults = []
    ranked = sorted(types.items(), key=lambda kv: -kv[1].n)
    for name, dt in ranked[:max_bitflip_signals]:
        faults.append(BitFlip(name, bit=0, at=bit_flip_at))
        if dt.n > 1:
            faults.append(BitFlip(name, bit=dt.n - 1, at=bit_flip_at))
    for name in inputs:
        faults.append(InputScale(name, input_scale))
        faults.append(NanInject(name, at=bit_flip_at))
    for k in range(n_seeds):
        faults.append(SeedPerturb(base_seed + 7919 * k))
    return faults
