"""Deterministic infrastructure-fault injection + recovery verification.

PR 5 gave the simulator durability machinery — a write-ahead outcome
journal, poison-job quarantine, checkpointed stage replay.  This module
is its proof layer: instead of trusting a handful of hand-picked crash
tests, it injects faults *deterministically* at every I/O and process
boundary the durability layer depends on, then machine-checks the
recovery against the five invariants of
:mod:`repro.robust.invariants` (durability, exactness, attribution,
monotonicity, termination).

Every fault is addressed by a ``(site, trigger, seed)`` triple:

* ``site`` — which boundary to perturb (see :data:`SITES`);
* ``trigger`` — the 0-based *occurrence* of that boundary event at
  which the fault fires (the 3rd journal write, the 2nd checkpoint
  save, ...);
* ``seed`` — drives the fault's free choices (where to cut a torn
  write, which byte to flip) through a private ``random.Random``.

Nothing else is random: re-running a scenario replays byte-identical
damage, so any red matrix cell reproduces locally with::

    python -m repro.robust.chaos replay run_simulations:journal.torn_write:2:1

A scenario runs one *entry point* (``run_simulations``,
``optimize_wordlengths``, ``analyze_sensitivity``, ``FaultCampaign.run``
or ``RefinementFlow.run(checkpoint=)``) twice against one working
directory: **phase 1** armed (the fault fires; the entry may complete
degraded, raise, or "die" via
:class:`~repro.chaoshooks.ChaosCrash`), then **phase 2** disarmed —
the restarted process, recovering from whatever the journal /
checkpoint survived.  Phase 2's results must be bit-identical to a
memoized fault-free reference run.

CLI::

    python -m repro.robust.chaos list            # the scenario matrix
    python -m repro.robust.chaos run --smoke     # pinned CI subset
    python -m repro.robust.chaos run --full      # everything
    python -m repro.robust.chaos replay SID      # one scenario, verbose
"""

from __future__ import annotations

import argparse
import errno
import hashlib
import json
import os
import random
import sys
import tempfile
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro import chaoshooks
from repro.chaoshooks import ChaosCrash, ChaosHooks
from repro.core.dtype import DType
from repro.core.errors import ReproError
from repro.obs import counters as obs_counters
from repro.parallel.runner import (PoolPolicy, SimCache, SimConfig,
                                   run_simulations)
from repro.refine.flow import Design, FlowConfig, RefinementFlow
from repro.refine.optimizer import optimize_wordlengths
from repro.refine.sensitivity import analyze_sensitivity
from repro.robust.diagnostics import Diagnostics
from repro.robust.faults import BitFlip, FaultCampaign, SeedPerturb, \
    WorkerCrash, WorkerHang
from repro.robust.invariants import (InvariantCheck, batch_digest,
                                     check_attribution, check_durability,
                                     check_exactness, check_monotonicity,
                                     check_termination, digest,
                                     journal_digests)
from repro.robust.recovery import Checkpoint, Journal
from repro.robust.retry import BackoffPolicy
from repro.signal import Reg, Sig

__all__ = ["SITES", "ENTRIES", "ChaosInjector", "ChaosScenario",
           "ScenarioReport", "run_scenario", "build_matrix", "run_matrix",
           "main"]

#: Every injectable fault site, named ``boundary.failure``.
SITES = (
    "journal.torn_write",      # append dies mid-write (partial line)
    "journal.enospc",          # append write raises ENOSPC
    "journal.fsync_fail",      # fsync after a good write raises EIO
    "journal.corrupt_record",  # record bytes garbled on the way to disk
    "journal.compact_crash",   # process dies during an atomic rewrite
    "cache.corrupt",           # cached payload bit-flipped in memory
    "cache.evict_race",        # entry vanishes between check and read
    "worker.crash",            # pool worker os._exit mid-job
    "worker.hang",             # pool worker sleeps past its deadline
    "pool.break",              # all workers SIGKILLed mid-drain
    "checkpoint.torn_save",    # death after temp write, before rename
    "checkpoint.truncate",     # checkpoint file truncated on disk
    "service.submit_torn",     # death mid submission-journal append
    "service.result_corrupt",  # result-store record garbled on disk
    "service.dispatch_crash",  # scheduler dies between accept and dispatch
)

#: Sites where phase 1 legitimately blames the victim job.
_BLAMING_SITES = ("worker.crash", "worker.hang")

#: Sites that need a real fork pool (workers=2); the rest run serial so
#: an injected crash propagates cleanly through the in-process path.
_POOL_SITES = ("worker.crash", "worker.hang", "pool.break")


class ChaosInjector(ChaosHooks):
    """Fires exactly one fault, at one boundary occurrence, repeatably.

    Occurrences are counted per *stream* (all journal writes share one
    stream, all checkpoint saves another); the fault fires when the
    stream count reaches ``trigger``.  ``checkpoint.truncate`` is the
    one *persistent* site — it re-fires on every later save too, so the
    final on-disk checkpoint is guaranteed damaged no matter how many
    stages follow the trigger.

    All free choices come from a private PRNG seeded by the
    ``(site, trigger, seed)`` triple, so the injected damage is
    byte-identical across replays.
    """

    #: the signal name worker faults latch onto — assigned once per
    #: sample by :class:`ChaosProbeDesign`.
    CRASH_SIGNAL = "y"

    def __init__(self, site, trigger=0, seed=0):
        if site not in SITES:
            raise ValueError("unknown chaos site %r (see chaos.SITES)"
                             % (site,))
        self.site = site
        self.trigger = int(trigger)
        self.seed = int(seed)
        blob = hashlib.sha256(("%s:%d:%d" % (site, trigger, seed))
                              .encode("ascii")).digest()
        self.rng = random.Random(int.from_bytes(blob[:8], "big"))
        self.counts = {}
        #: structured log of every injection this instance performed.
        self.events = []
        #: label of the job the fault was injected into (None for
        #: infrastructure-level sites — nothing may be blamed then).
        self.victim = None

    def _tick(self, stream):
        n = self.counts.get(stream, 0)
        self.counts[stream] = n + 1
        return n

    def _record(self, stream, occurrence, **detail):
        obs_counters.inc("chaos.injected")
        self.events.append(dict(site=self.site, stream=stream,
                                occurrence=occurrence, **detail))

    # -- journal -----------------------------------------------------------

    def on_journal_write(self, journal, data):
        if self.site in ("service.submit_torn", "service.result_corrupt"):
            return self._on_service_journal_write(journal, data)
        if self.site not in ("journal.torn_write", "journal.enospc",
                             "journal.corrupt_record"):
            return data
        n = self._tick("journal.write")
        if n != self.trigger:
            return data
        if self.site == "journal.torn_write":
            cut = self.rng.randrange(1, max(2, len(data) - 1))
            journal._fh.write(data[:cut])
            journal._fh.flush()
            self._record("journal.write", n, action="torn", cut=cut,
                         length=len(data))
            raise ChaosCrash("torn journal write (%d of %d bytes hit "
                             "disk)" % (cut, len(data)))
        if self.site == "journal.enospc":
            self._record("journal.write", n, action="enospc")
            raise OSError(errno.ENOSPC,
                          "No space left on device (injected)")
        # journal.corrupt_record: garble bytes inside the payload so the
        # line stays parseable JSON but fails its sha — the torn-tail
        # detector must drop it (and everything after) on reopen.
        marker = '"payload": "'
        pos = data.find(marker)
        if pos >= 0:
            start = pos + len(marker) + 8 + self.rng.randrange(8)
        else:
            start = max(1, len(data) // 2)   # header line: tear it up
        garbled = data[:start] + "!!CHAOS!!" + data[start + 9:]
        self._record("journal.write", n, action="corrupt", offset=start)
        return garbled

    def _on_service_journal_write(self, journal, data):
        """Service-boundary journal faults, addressed by journal *role*.

        The service owns two journals in one directory; the role tag in
        the journal header meta says which one a write belongs to, so
        these sites perturb exactly the boundary they name and leave
        the sibling journal untouched.
        """
        role = journal.meta.get("role") \
            if isinstance(journal.meta, dict) else None
        if self.site == "service.submit_torn":
            if role != "service-submissions":
                return data
            n = self._tick("service.submit")
            if n != self.trigger:
                return data
            cut = self.rng.randrange(1, max(2, len(data) - 1))
            journal._fh.write(data[:cut])
            journal._fh.flush()
            self._record("service.submit", n, action="torn", cut=cut,
                         length=len(data))
            raise ChaosCrash("service died mid submission-journal "
                             "append (%d of %d bytes hit disk)"
                             % (cut, len(data)))
        # service.result_corrupt: garble the result-store record so it
        # stays JSON but fails its sha — the restarted store must drop
        # it (and the tail) and recompute, bit-exactly.
        if role != "service-results":
            return data
        n = self._tick("service.result")
        if n != self.trigger:
            return data
        marker = '"payload": "'
        pos = data.find(marker)
        if pos >= 0:
            start = pos + len(marker) + 8 + self.rng.randrange(8)
        else:
            start = max(1, len(data) // 2)
        garbled = data[:start] + "!!CHAOS!!" + data[start + 9:]
        self._record("service.result", n, action="corrupt", offset=start)
        return garbled

    def on_journal_fsync(self, journal):
        if self.site != "journal.fsync_fail":
            return
        n = self._tick("journal.fsync")
        if n == self.trigger:
            self._record("journal.fsync", n, action="eio")
            raise OSError(errno.EIO, "fsync failed (injected)")

    def on_journal_replace(self, journal):
        if self.site != "journal.compact_crash":
            return
        n = self._tick("journal.replace")
        if n == self.trigger:
            self._record("journal.replace", n, action="crash")
            raise ChaosCrash("process died during atomic journal rewrite")

    # -- cache -------------------------------------------------------------

    def on_cache_store(self, key, payload):
        if self.site != "cache.corrupt":
            return payload
        n = self._tick("cache.store")
        if n != self.trigger:
            return payload
        pos = self.rng.randrange(len(payload))
        self._record("cache.store", n, action="bit_flip", offset=pos,
                     key=key[:12])
        return payload[:pos] + bytes([payload[pos] ^ 0x40]) \
            + payload[pos + 1:]

    def on_cache_lookup(self, key):
        if self.site != "cache.evict_race":
            return False
        n = self._tick("cache.lookup")
        if n == self.trigger:
            self._record("cache.lookup", n, action="evict", key=key[:12])
            return True
        return False

    # -- workers / pool ----------------------------------------------------

    def on_job(self, position, config):
        if self.site not in ("worker.crash", "worker.hang"):
            return config
        n = self._tick("job")
        if n != self.trigger:
            return config
        self.victim = config.label
        if self.site == "worker.crash":
            fault = WorkerCrash(self.CRASH_SIGNAL, at=5)
            self._record("job", n, action="worker_crash",
                         label=config.label)
            return replace(config, faults=config.faults + (fault,))
        fault = WorkerHang(self.CRASH_SIGNAL, at=5, seconds=8.0)
        self._record("job", n, action="worker_hang", label=config.label)
        # The hang needs a deadline to be survivable; 1.5s bounds the
        # job, the parent's 2*deadline+grace kill bounds even a worker
        # that blocks its alarm.
        return replace(config, faults=config.faults + (fault,),
                       deadline_seconds=1.5)

    def on_pool_drain(self, pool, n_delivered):
        if self.site != "pool.break":
            return
        n = self._tick("pool.drain")
        if n == self.trigger:
            from repro.parallel.runner import _kill_pool_workers
            killed = _kill_pool_workers(pool)
            self._record("pool.drain", n, action="kill_workers",
                         workers=killed, delivered=n_delivered)

    # -- refinement service ------------------------------------------------

    def on_service_dispatch(self, jobs):
        if self.site != "service.dispatch_crash":
            return
        n = self._tick("service.dispatch")
        if n == self.trigger:
            self._record("service.dispatch", n, action="crash",
                         jobs=len(jobs))
            raise ChaosCrash("scheduler died between accept and "
                             "dispatch (%d job(s) taken)" % len(jobs))

    # -- checkpoints -------------------------------------------------------

    def on_checkpoint_save(self, checkpoint):
        if self.site != "checkpoint.torn_save":
            return
        n = self._tick("checkpoint.save")
        if n == self.trigger:
            self._record("checkpoint.save", n, action="crash")
            raise ChaosCrash("process died between checkpoint temp "
                             "write and rename")

    def on_checkpoint_saved(self, checkpoint):
        if self.site != "checkpoint.truncate":
            return
        n = self._tick("checkpoint.saved")
        if n >= self.trigger:                     # persistent site
            try:
                size = os.path.getsize(checkpoint.path)
            except OSError:
                return
            with open(checkpoint.path, "r+b") as fh:
                fh.truncate(min(size, 7))
            self._record("checkpoint.saved", n, action="truncate",
                         size=size)


# -- the probe workload ------------------------------------------------------

T_IN = DType("T_in", 9, 7, "tc", "saturate", "round")
T_P = DType("T_p", 10, 8, "tc", "saturate", "round")
T_ACC = DType("T_acc", 12, 9, "tc", "saturate", "round")

PROBE_TYPES = {"x": T_IN, "p": T_P, "acc": T_ACC, "y": T_ACC}


class ChaosProbeDesign(Design):
    """Small leaky-accumulator probe: cheap, feedback, 4 signals.

    ``y`` is assigned exactly once per sample, which is what the
    worker-crash/hang faults latch onto
    (:attr:`ChaosInjector.CRASH_SIGNAL`).
    """

    name = "chaos-probe"
    inputs = ("x",)
    output = "y"

    def __init__(self, seed=2024):
        self.seed = seed

    def build(self, ctx):
        self.x = Sig("x")
        self.p = Sig("p")
        self.acc = Reg("acc")
        self.y = Sig("y")
        rng = np.random.default_rng(self.seed)
        self._stim = iter(rng.uniform(-1, 1, size=65536).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.p.assign(self.x * 0.5)
            self.acc.assign(self.acc * 0.75 + self.p)
            self.y.assign(self.acc + self.x * 0.125)
            ctx.tick()


def probe_factory():
    return ChaosProbeDesign()


def probe_seeded(seed):
    return ChaosProbeDesign(seed=seed)


# Explicit identities: journal keys must be stable across the reference
# run, phase 1 and phase 2 — and across processes.
probe_factory.fingerprint = "chaos-probe-v1"
probe_seeded.fingerprint = "chaos-probe-seeded-v1"

#: Fast, jitter-free retries so scenario wall-clock stays test-sized.
FAST_POLICY = PoolPolicy(max_retries=1,
                         backoff=BackoffPolicy(base=0.01, cap=0.05,
                                               jitter=0.0),
                         deadline_grace=2.0)

_JOURNAL_NAME = "journal.jsonl"
_CHECKPOINT_NAME = "flow.ckpt"


# -- entry-point adapters ----------------------------------------------------
#
# Each adapter runs one public fan-out entry against a working directory
# (owning that directory's journal / checkpoint files) and reduces the
# caller-observable result to a canonical digest.  ``diag`` collects
# stable-coded recovery events where the entry accepts a container.

def _entry_run_simulations(workdir, workers, diag):
    """Two passes over one batch, sharing a cache and a journal.

    The second pass turns cache faults into *observed* recoveries: a
    corrupted or raced-away entry must fall through to the journal (or
    recompute) and still produce bit-identical outcomes.
    """
    cache = SimCache()
    journal = Journal(os.path.join(workdir, _JOURNAL_NAME),
                      compact_threshold=4096)
    try:
        configs = [SimConfig(label="job%d" % i, dtypes=PROBE_TYPES,
                             n_samples=96, seed=100 + i)
                   for i in range(6)]
        first = run_simulations(probe_factory, configs, workers=workers,
                                cache=cache, journal=journal,
                                diagnostics=diag, pool_policy=FAST_POLICY)
        second = run_simulations(probe_factory, configs, workers=workers,
                                 cache=cache, journal=journal,
                                 diagnostics=diag, pool_policy=FAST_POLICY)
    finally:
        journal.close()
    return digest([batch_digest(first), batch_digest(second)])


def _entry_optimize(workdir, workers, diag):
    journal = Journal(os.path.join(workdir, _JOURNAL_NAME))
    try:
        result = optimize_wordlengths(
            probe_factory, {"p": T_P, "acc": T_ACC, "y": T_ACC},
            {"x": T_IN}, target_db=30.0, n_samples=64, seed=11,
            max_moves=6, workers=workers, journal=journal)
    finally:
        journal.close()
    return digest(result)


def _entry_sensitivity(workdir, workers, diag):
    journal = Journal(os.path.join(workdir, _JOURNAL_NAME))
    try:
        report = analyze_sensitivity(
            probe_factory, {"p": T_P, "acc": T_ACC, "y": T_ACC},
            {"x": T_IN}, n_samples=64, seed=11, workers=workers,
            journal=journal)
    finally:
        journal.close()
    return digest(report)


def _entry_campaign(workdir, workers, diag):
    journal = Journal(os.path.join(workdir, _JOURNAL_NAME))
    try:
        campaign = FaultCampaign(probe_factory, PROBE_TYPES, n_samples=96,
                                 seed=5, seeded_factory=probe_seeded)
        # One fault per kind, so job labels stay unique and blame is
        # unambiguous for the attribution invariant.
        result = campaign.run([BitFlip("y", bit=2, at=10),
                               SeedPerturb(4242)],
                              workers=workers, journal=journal,
                              diagnostics=diag, pool_policy=FAST_POLICY)
    finally:
        journal.close()
    return digest(result)


def _entry_flow(workdir, workers, diag):
    ck = Checkpoint(os.path.join(workdir, _CHECKPOINT_NAME))
    flow = RefinementFlow(probe_factory, input_types={"x": T_IN},
                          input_ranges={"x": (-1.0, 1.0)},
                          config=FlowConfig(n_samples=256, seed=9,
                                            lint_design=False))
    result = flow.run(strict=True, checkpoint=ck)
    for ev in result.diagnostics.events:
        diag.events.append(ev)
    return digest(result.types)


def _entry_service(workdir, workers, diag):
    """The refinement service, recover-then-resubmit.

    Phase 2 is a faithful restarted service: it first replays the
    submission journal (completing the predecessor's accepted jobs
    from the store or re-running them), then re-submits the same batch
    twice — once to exercise store dedupe against whatever survived,
    once more to exercise in-memory coalescing.  ``max_batch=2``
    splits the five jobs over three dispatches so dispatch-crash
    triggers above 0 are addressable.
    """
    from repro.service import RefinementService
    from repro.service.service import _factory_fp

    svc = RefinementService(root=workdir, workers=workers,
                            pool_policy=FAST_POLICY, max_batch=2)
    configs = [SimConfig(label="svc%d" % i, dtypes=PROBE_TYPES,
                         n_samples=96, seed=200 + i)
               for i in range(5)]
    try:
        svc.recover(factories={_factory_fp(probe_factory):
                               probe_factory})
        svc.drain()
        first = svc.run_batch(probe_factory, configs, tenant="chaos")
        second = svc.run_batch(probe_factory, configs, tenant="chaos")
        for ev in svc.diagnostics.events:
            diag.events.append(ev)
    finally:
        svc.close()
    return digest([batch_digest(first), batch_digest(second)])


ENTRIES = {
    "run_simulations": _entry_run_simulations,
    "optimize_wordlengths": _entry_optimize,
    "analyze_sensitivity": _entry_sensitivity,
    "fault_campaign": _entry_campaign,
    "refinement_flow": _entry_flow,
    "service_submit": _entry_service,
}

#: Which sites make sense against which entry.  Journal sites run the
#: entries that take ``journal=``; cache sites need the double-pass
#: cache of ``run_simulations``; checkpoint sites are the flow's.
SITE_ENTRIES = {
    "journal.torn_write": ("run_simulations", "optimize_wordlengths",
                           "analyze_sensitivity", "fault_campaign"),
    "journal.enospc": ("run_simulations", "optimize_wordlengths",
                       "analyze_sensitivity", "fault_campaign"),
    "journal.fsync_fail": ("run_simulations", "optimize_wordlengths",
                           "analyze_sensitivity", "fault_campaign"),
    "journal.corrupt_record": ("run_simulations", "fault_campaign",
                               "analyze_sensitivity"),
    "journal.compact_crash": ("run_simulations",),
    "cache.corrupt": ("run_simulations",),
    "cache.evict_race": ("run_simulations",),
    "worker.crash": ("run_simulations", "fault_campaign"),
    "worker.hang": ("run_simulations",),
    "pool.break": ("run_simulations", "fault_campaign"),
    "checkpoint.torn_save": ("refinement_flow",),
    "checkpoint.truncate": ("refinement_flow",),
    "service.submit_torn": ("service_submit",),
    "service.result_corrupt": ("service_submit",),
    "service.dispatch_crash": ("service_submit",),
}


# -- scenarios ---------------------------------------------------------------

@dataclass(frozen=True)
class ChaosScenario:
    """One cell of the matrix: an entry point under one addressed fault."""

    entry: str
    site: str
    trigger: int
    seed: int
    workers: int = 1
    #: termination budget (seconds) for fault + recovery together.
    budget: float = 120.0

    @property
    def sid(self):
        return "%s:%s:%d:%d" % (self.entry, self.site, self.trigger,
                                self.seed)


def make_scenario(entry, site, trigger, seed):
    """Build a scenario with the canonical workers/budget for its site."""
    if entry not in ENTRIES:
        raise ValueError("unknown entry %r (one of %s)"
                         % (entry, sorted(ENTRIES)))
    workers = 2 if site in _POOL_SITES else 1
    budget = 60.0 if site == "worker.hang" else 120.0
    return ChaosScenario(entry, site, trigger, seed, workers=workers,
                         budget=budget)


def scenario_from_sid(sid):
    """Parse ``entry:site:trigger:seed`` back into a scenario.

    >>> s = scenario_from_sid("run_simulations:pool.break:1:10")
    >>> (s.entry, s.site, s.trigger, s.seed, s.workers)
    ('run_simulations', 'pool.break', 1, 10, 2)
    """
    parts = sid.split(":")
    if len(parts) != 4:
        raise ValueError("scenario id must be entry:site:trigger:seed, "
                         "got %r" % (sid,))
    return make_scenario(parts[0], parts[1], int(parts[2]), int(parts[3]))


@dataclass
class ScenarioReport:
    """Everything one scenario produced, checks included."""

    scenario: ChaosScenario
    checks: list = field(default_factory=list)
    injections: list = field(default_factory=list)
    phase1: str = ""
    elapsed: float = 0.0

    @property
    def ok(self):
        return all(c.ok for c in self.checks)

    def describe(self):
        lines = ["%s  [%s]" % (self.scenario.sid,
                               "PASS" if self.ok else "FAIL")]
        lines.append("  phase 1: %s; %d injection(s); %.2fs"
                     % (self.phase1, len(self.injections), self.elapsed))
        for chk in self.checks:
            lines.append("  %s" % chk)
        return "\n".join(lines)

    def to_dict(self):
        return {"sid": self.scenario.sid, "ok": self.ok,
                "phase1": self.phase1, "elapsed": round(self.elapsed, 3),
                "injections": self.injections,
                "checks": [{"name": c.name, "ok": c.ok,
                            "detail": c.detail} for c in self.checks]}


# Fault-free references, memoized per (entry, workers): the digest the
# recovered run must reproduce, and the journal content it may survive
# a subset of.
_REFERENCE_CACHE = {}


def _reference(entry, workers):
    key = (entry, workers)
    ref = _REFERENCE_CACHE.get(key)
    if ref is not None:
        return ref
    with tempfile.TemporaryDirectory(prefix="chaos-ref-") as workdir:
        dg = ENTRIES[entry](workdir, workers, Diagnostics())
        jpath = os.path.join(workdir, _JOURNAL_NAME)
        journal = journal_digests(jpath) if os.path.exists(jpath) else {}
    ref = {"digest": dg, "journal": journal}
    _REFERENCE_CACHE[key] = ref
    return ref


def _attributed(diag, exc):
    """Labels the system blamed during phase 1 (quarantine/deadline)."""
    blamed = set()
    for ev in diag.events:
        if ev.category in ("quarantine", "deadline"):
            label = ev.data.get("label")
            if label:
                blamed.add(label)
    label = getattr(exc, "label", None)
    if label:
        blamed.add(label)
    return blamed


def run_scenario(scenario, keep_dir=None):
    """Execute one scenario end to end; returns a :class:`ScenarioReport`.

    ``keep_dir`` pins the working directory (for debugging); by default
    a temporary directory is used and removed.
    """
    obs_counters.inc("chaos.scenarios_run")
    ref = _reference(scenario.entry, scenario.workers)
    adapter = ENTRIES[scenario.entry]
    report = ScenarioReport(scenario)

    tmp = None
    if keep_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="chaos-")
        workdir = tmp.name
    else:
        os.makedirs(keep_dir, exist_ok=True)
        workdir = keep_dir
    jpath = os.path.join(workdir, _JOURNAL_NAME)
    try:
        injector = ChaosInjector(scenario.site, scenario.trigger,
                                 scenario.seed)
        diag1 = Diagnostics()
        phase1_exc = None
        t0 = time.monotonic()
        with chaoshooks.armed(injector):
            try:
                adapter(workdir, scenario.workers, diag1)
                report.phase1 = "completed"
            except ChaosCrash as exc:
                report.phase1 = "died: %s" % exc
            except (ReproError, OSError) as exc:
                phase1_exc = exc
                report.phase1 = "raised %s: %s" % (type(exc).__name__,
                                                   exc)
        for ev in injector.events:
            diag1.add("chaos", "info", None,
                      "injected %s at %s occurrence %d"
                      % (ev["site"], ev["stream"], ev["occurrence"]),
                      **{k: v for k, v in ev.items()
                         if k not in ("site", "stream", "occurrence")})
        report.injections = list(injector.events)

        # What a restarted process would find on disk after the fault.
        surviving = journal_digests(jpath) if os.path.exists(jpath) else {}

        # Phase 2: the restarted process — same directory, no faults.
        final_digest = adapter(workdir, scenario.workers, Diagnostics())
        elapsed = time.monotonic() - t0
        post = journal_digests(jpath) if os.path.exists(jpath) else {}

        victim = injector.victim if scenario.site in _BLAMING_SITES \
            else None
        report.elapsed = elapsed
        report.checks = [
            InvariantCheck("injected", bool(injector.events),
                           "" if injector.events else
                           "fault never fired — trigger %d beyond the "
                           "run's %r occurrences"
                           % (scenario.trigger, scenario.site)),
            check_durability(surviving, ref["journal"]),
            check_exactness(final_digest, ref["digest"]),
            check_attribution(victim, _attributed(diag1, phase1_exc)),
            check_monotonicity(surviving, post),
            check_termination(elapsed, scenario.budget),
        ]
    finally:
        if tmp is not None:
            tmp.cleanup()
    for chk in report.checks:
        if not chk.ok:
            obs_counters.inc("chaos.invariant_failures")
    return report


# -- the matrix --------------------------------------------------------------

#: Pinned CI smoke subset: every entry point, every fault site, fixed
#: (trigger, seed) so failures reproduce byte-identically.  Kept small
#: enough to run on every PR.
SMOKE_MATRIX = (
    ("run_simulations", "journal.torn_write", 2, 1),
    ("run_simulations", "journal.enospc", 3, 2),
    ("run_simulations", "journal.fsync_fail", 2, 3),
    ("run_simulations", "journal.corrupt_record", 2, 4),
    ("run_simulations", "journal.compact_crash", 0, 5),
    ("run_simulations", "cache.corrupt", 1, 6),
    ("run_simulations", "cache.evict_race", 2, 7),
    ("run_simulations", "worker.crash", 1, 8),
    ("run_simulations", "worker.hang", 2, 9),
    ("run_simulations", "pool.break", 1, 10),
    ("optimize_wordlengths", "journal.torn_write", 3, 11),
    ("optimize_wordlengths", "journal.enospc", 1, 12),
    ("analyze_sensitivity", "journal.torn_write", 2, 13),
    ("fault_campaign", "worker.crash", 2, 14),
    ("fault_campaign", "journal.corrupt_record", 1, 15),
    ("refinement_flow", "checkpoint.torn_save", 2, 16),
    ("refinement_flow", "checkpoint.truncate", 1, 17),
    ("service_submit", "service.submit_torn", 3, 18),
    ("service_submit", "service.result_corrupt", 2, 19),
    ("service_submit", "service.dispatch_crash", 0, 20),
)

#: Extra cells for the full (slow-marked) matrix: wider trigger and
#: seed coverage, plus the entry x site combinations smoke skips.
FULL_EXTRA = (
    ("run_simulations", "journal.torn_write", 1, 21),
    ("run_simulations", "journal.torn_write", 4, 22),
    ("run_simulations", "journal.enospc", 0, 23),
    ("run_simulations", "journal.corrupt_record", 4, 24),
    ("run_simulations", "cache.corrupt", 3, 25),
    ("run_simulations", "worker.crash", 4, 26),
    ("run_simulations", "pool.break", 3, 27),
    ("optimize_wordlengths", "journal.fsync_fail", 2, 28),
    ("analyze_sensitivity", "journal.enospc", 2, 29),
    ("analyze_sensitivity", "journal.corrupt_record", 3, 30),
    ("fault_campaign", "journal.torn_write", 1, 31),
    ("fault_campaign", "journal.enospc", 2, 32),
    ("fault_campaign", "journal.fsync_fail", 1, 33),
    ("fault_campaign", "pool.break", 0, 34),
    ("refinement_flow", "checkpoint.torn_save", 0, 35),
    ("refinement_flow", "checkpoint.torn_save", 4, 36),
    ("refinement_flow", "checkpoint.truncate", 3, 37),
    ("service_submit", "service.submit_torn", 1, 38),
    ("service_submit", "service.result_corrupt", 4, 39),
    ("service_submit", "service.dispatch_crash", 1, 40),
)


def build_matrix(full=False, entry=None, site=None):
    """The scenario list, optionally filtered by entry / site."""
    cells = SMOKE_MATRIX + (FULL_EXTRA if full else ())
    scenarios = [make_scenario(*cell) for cell in cells]
    if entry is not None:
        scenarios = [s for s in scenarios if s.entry == entry]
    if site is not None:
        scenarios = [s for s in scenarios if s.site == site]
    return scenarios


def run_matrix(scenarios, verbose=True, stream=None):
    """Run scenarios in order; returns the list of reports."""
    out = stream if stream is not None else sys.stdout
    reports = []
    for scn in scenarios:
        report = run_scenario(scn)
        reports.append(report)
        if verbose:
            status = "pass" if report.ok else "FAIL"
            print("%-55s %s  (%.2fs, %d injection(s))"
                  % (scn.sid, status, report.elapsed,
                     len(report.injections)), file=out)
            if not report.ok:
                for chk in report.checks:
                    if not chk.ok:
                        print("    %s" % chk, file=out)
    return reports


# -- CLI ---------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.robust.chaos",
        description="Deterministic chaos matrix for the durability "
                    "layer: inject infrastructure faults, verify the "
                    "recovery invariants.")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="print the scenario matrix")
    p_run = sub.add_parser("run", help="run the scenario matrix")
    p_run.add_argument("--smoke", action="store_true",
                       help="run the pinned smoke subset (the default)")
    p_run.add_argument("--full", action="store_true",
                       help="run the full matrix (default: smoke subset)")
    p_run.add_argument("--entry", choices=sorted(ENTRIES),
                       help="only scenarios for this entry point")
    p_run.add_argument("--site", choices=SITES,
                       help="only scenarios for this fault site")
    p_run.add_argument("--json", metavar="PATH",
                       help="also write the reports as JSON")
    p_replay = sub.add_parser(
        "replay", help="re-run one scenario by id, verbosely")
    p_replay.add_argument("sid", help="entry:site:trigger:seed")
    p_replay.add_argument("--keep-dir", metavar="DIR",
                          help="keep the working directory for autopsy")
    args = parser.parse_args(argv)

    if args.command == "list":
        for scn in build_matrix(full=True):
            tag = "smoke" if (scn.entry, scn.site, scn.trigger,
                              scn.seed) in SMOKE_MATRIX else "full "
            print("%s  %-55s workers=%d budget=%gs"
                  % (tag, scn.sid, scn.workers, scn.budget))
        return 0
    if args.command == "replay":
        scn = scenario_from_sid(args.sid)
        report = run_scenario(scn, keep_dir=args.keep_dir)
        print(report.describe())
        for ev in report.injections:
            print("  injected: %s" % json.dumps(ev, sort_keys=True))
        return 0 if report.ok else 1
    if args.command == "run":
        scenarios = build_matrix(full=args.full, entry=args.entry,
                                 site=args.site)
        reports = run_matrix(scenarios)
        n_bad = sum(1 for r in reports if not r.ok)
        print("%d scenario(s), %d violation(s)" % (len(reports), n_bad))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump([r.to_dict() for r in reports], fh, indent=2,
                          sort_keys=True)
        return 1 if n_bad else 0
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
