"""Machine-checked recovery invariants of the durability layer.

The chaos harness (:mod:`repro.robust.chaos`) does not eyeball logs; it
reduces every run — faulted or clean — to canonical digests and checks
five explicit invariants against them:

========================  ====================================================
durability                every outcome whose journal append completed
                          survives recovery bit-identically (a journal replay
                          is never an approximation of the original run)
exactness                 the results a caller finally observes after fault +
                          recovery are bit-identical to a fault-free run
attribution               when a job is quarantined, the quarantined culprit
                          is the actual injected victim — never a healthy
                          bystander
monotonicity              retries and re-runs only ever *add* completed
                          results; nothing previously durable is lost or
                          silently rewritten
termination               recovery completes within an explicit wall-clock
                          budget (bounded backoff really bounds time)
========================  ====================================================

"Bit-identical" is made precise by :func:`canonical`: every float in an
outcome is rendered through :meth:`float.hex` (so ``0.1 + 0.2`` and
``0.30000000000000004`` cannot alias through decimal rounding), the
structure is walked through dataclasses, namedtuples, ``__slots__``
classes, dicts and sequences, and the result is hashed with SHA-256.
Two outcomes digest equal iff a serial replay could not tell them
apart.

This module is deliberately light (stdlib only, no imports from the
runner) so test code and the CLI can use it without dragging in the
simulation stack.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import numbers

__all__ = ["canonical", "digest", "outcome_digest", "batch_digest",
           "journal_digests", "InvariantCheck", "check_durability",
           "check_exactness", "check_attribution", "check_monotonicity",
           "check_termination"]


def canonical(obj):
    """JSON-able canonical form of ``obj`` with bit-exact floats.

    >>> canonical(0.5)
    '0x1.0000000000000p-1'
    >>> canonical({"b": 1, "a": (2.0,)})
    ['dict', [['a', ['tuple', '0x1.0000000000000p+1']], ['b', 1]]]
    """
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, numbers.Integral):      # int and numpy ints
        return int(obj)
    if isinstance(obj, numbers.Real):          # float and numpy floats
        return float(obj).hex()
    if isinstance(obj, bytes):
        return ["bytes", base64.b64encode(obj).decode("ascii")]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [type(obj).__name__] + [
            [f.name, canonical(getattr(obj, f.name))]
            for f in dataclasses.fields(obj)]
    if isinstance(obj, tuple) and hasattr(obj, "_fields"):  # namedtuple
        return [type(obj).__name__] + [
            [name, canonical(value)]
            for name, value in zip(obj._fields, obj)]
    if isinstance(obj, dict):
        return ["dict", sorted(([canonical(k), canonical(v)]
                                for k, v in obj.items()), key=repr)]
    if isinstance(obj, (list, tuple)):
        return [type(obj).__name__] + [canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return ["set", sorted((canonical(v) for v in obj), key=repr)]
    if hasattr(obj, "tolist") and hasattr(obj, "dtype"):    # numpy array
        return ["ndarray", canonical(obj.tolist())]
    slots = _all_slots(type(obj))
    if slots is not None:
        # Private slots are skipped: they hold lazily-built caches
        # (e.g. DType._kernel) whose reprs embed memory addresses.
        return [type(obj).__name__] + [
            [name, canonical(getattr(obj, name, None))]
            for name in slots if not name.startswith("_")]
    d = getattr(obj, "__dict__", None)
    if d is not None:
        return [type(obj).__name__] + sorted(
            ([k, canonical(v)] for k, v in d.items()
             if not k.startswith("_")), key=repr)
    return ["repr", repr(obj)]


def _all_slots(klass):
    """All ``__slots__`` names across the MRO, or None if slot-less."""
    found = None
    for base in klass.__mro__:
        slots = base.__dict__.get("__slots__")
        if slots is None:
            continue
        if isinstance(slots, str):
            slots = (slots,)
        found = (found or []) + list(slots)
    return found


def digest(obj):
    """SHA-256 hex digest of :func:`canonical` (order-stable)."""
    blob = json.dumps(canonical(obj), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def outcome_digest(outcome):
    """Digest of one :class:`~repro.parallel.runner.SimOutcome`.

    ``label`` and ``obs_events`` are excluded: a replayed outcome is
    relabeled to the asking config's name, and trace events carry
    timestamps/pids — neither is part of the numerical contract.
    """
    skip = {"label", "obs_events"}
    return digest([[f.name, canonical(getattr(outcome, f.name))]
                   for f in dataclasses.fields(outcome)
                   if f.name not in skip])


def batch_digest(outcomes):
    """One digest over an ordered batch of outcomes."""
    return digest([outcome_digest(o) if o is not None else None
                   for o in outcomes])


def journal_digests(path):
    """``{key: outcome_digest}`` of every record a reopened journal replays.

    Reopening runs the journal's own recovery (torn-tail detection and
    repair) — exactly what a restarted process would see.
    """
    from repro.robust.recovery import Journal

    j = Journal(path)
    try:
        return {key: outcome_digest(o) for key, o in j.entries().items()}
    finally:
        j.close()


# -- the five invariants -----------------------------------------------------

@dataclasses.dataclass(frozen=True)
class InvariantCheck:
    """Outcome of one invariant over one scenario."""

    name: str
    ok: bool
    detail: str = ""

    def __str__(self):
        return "%-12s %s%s" % (self.name, "ok" if self.ok else "VIOLATED",
                               "" if self.ok else " — " + self.detail)


def check_durability(surviving, reference):
    """Surviving journal records are a bit-identical subset of reference.

    ``surviving`` / ``reference`` are ``{key: digest}`` maps — what a
    reopened journal replays after the fault vs. what the fault-free
    run journaled.  The journal's contract is *prefix* durability: a
    torn tail may drop records, but whatever survives must be exactly
    what was originally appended, never a mutation of it.
    """
    bad = sorted(k for k, dg in surviving.items()
                 if reference.get(k) != dg)
    if bad:
        return InvariantCheck(
            "durability", False,
            "%d surviving record(s) differ from the fault-free run "
            "(first key: %s...)" % (len(bad), bad[0][:12]))
    return InvariantCheck("durability", True,
                          "%d surviving record(s) all bit-identical"
                          % len(surviving))


def check_exactness(final_digest, reference_digest):
    """Post-recovery results are bit-identical to the fault-free run."""
    if final_digest != reference_digest:
        return InvariantCheck(
            "exactness", False,
            "recovered batch digest %s... != fault-free %s..."
            % (final_digest[:12], reference_digest[:12]))
    return InvariantCheck("exactness", True, "recovered == fault-free")


def check_attribution(victim, attributed):
    """The blamed job is the injected victim, and no bystander is blamed.

    ``victim`` is the label the scenario injected against (None when
    the fault targets infrastructure, not a job — then nothing may be
    blamed at all... except that a pool break can legitimately blame no
    one, so only *wrong* blame fails).  ``attributed`` is the set of
    labels the system quarantined / error-attributed.
    """
    attributed = set(attributed)
    bystanders = attributed - ({victim} if victim is not None else set())
    if bystanders:
        return InvariantCheck(
            "attribution", False,
            "healthy job(s) blamed: %s (victim: %r)"
            % (sorted(bystanders), victim))
    if victim is not None and not attributed:
        return InvariantCheck(
            "attribution", False,
            "injected victim %r was never attributed" % victim)
    return InvariantCheck("attribution", True,
                          "blame == {%s}" % (victim or ""))


def check_monotonicity(before, after):
    """Completed results only ever accumulate across recovery attempts.

    ``before`` / ``after`` are ``{key: digest}`` maps taken around a
    retry or a re-run.  Every key durable before must still be there
    after, with the same digest.
    """
    lost = sorted(k for k in before if k not in after)
    if lost:
        return InvariantCheck(
            "monotonicity", False,
            "%d completed record(s) lost across recovery (first key: "
            "%s...)" % (len(lost), lost[0][:12]))
    changed = sorted(k for k, dg in before.items() if after.get(k) != dg)
    if changed:
        return InvariantCheck(
            "monotonicity", False,
            "%d completed record(s) rewritten across recovery (first "
            "key: %s...)" % (len(changed), changed[0][:12]))
    return InvariantCheck("monotonicity", True,
                          "%d -> %d records, none lost"
                          % (len(before), len(after)))


def check_termination(elapsed, budget):
    """Fault + recovery completed inside the scenario's time budget."""
    if elapsed > budget:
        return InvariantCheck(
            "termination", False,
            "took %.2fs, budget %.2fs" % (elapsed, budget))
    return InvariantCheck("termination", True,
                          "%.2fs <= %.2fs" % (elapsed, budget))
