"""Robustness subsystem: guards, diagnostics, fault injection, retry.

Four layers that keep a refinement run trustworthy when designs or
stimuli misbehave:

* :mod:`repro.robust.guards` — non-finite value policies and simulation
  watchdogs;
* :mod:`repro.robust.diagnostics` — structured event log attached to a
  :class:`~repro.refine.flow.RefinementResult`;
* :mod:`repro.robust.faults` — fault-injection campaigns measuring SQNR
  degradation of a refined design under bit flips, stuck nodes, input
  overdrive, dropped channel values and seed changes;
* :mod:`repro.robust.retry` — escalation ladder and conservative
  fallback types behind ``RefinementFlow.run(strict=False)``, plus the
  :class:`BackoffPolicy` used between crash retries in the pool;
* :mod:`repro.robust.recovery` — write-ahead outcome :class:`Journal`
  and atomic :class:`Checkpoint` behind resumable batches
  (``run_simulations(journal=...)``, ``optimize_wordlengths(journal=...)``,
  ``RefinementFlow.run(checkpoint=...)``);
* :mod:`repro.robust.invariants` + :mod:`repro.robust.chaos` — the
  proof layer: canonical bit-exact digests, the five recovery
  invariants (durability, exactness, attribution, monotonicity,
  termination), and a deterministic infrastructure-fault injector that
  checks them over a ``{fault site} x {entry point}`` matrix.  Chaos is
  not imported here (it pulls in the whole refine stack); reach it via
  ``python -m repro.robust.chaos``.

Run ``python -m repro.robust.selfcheck`` for an end-to-end smoke test.
"""

from __future__ import annotations

from repro.robust.diagnostics import DiagEvent, Diagnostics
from repro.robust.faults import (BitFlip, CampaignResult, ChannelDrop, Fault,
                                 FaultCampaign, FaultOutcome, InputScale,
                                 NanInject, SeedPerturb, StuckAt, WorkerCrash,
                                 WorkerHang, standard_faults)
from repro.robust.guards import (GuardEvent, GuardPolicy, Watchdog,
                                 guard_summary)
from repro.robust.invariants import (InvariantCheck, canonical, digest,
                                     journal_digests, outcome_digest)
from repro.robust.recovery import Checkpoint, Journal
from repro.robust.retry import (BackoffPolicy, EscalationPolicy,
                                conservative_fallback, escalate_lsb,
                                escalate_msb, run_graceful)

__all__ = [
    "GuardPolicy", "GuardEvent", "Watchdog", "guard_summary",
    "DiagEvent", "Diagnostics",
    "Fault", "BitFlip", "StuckAt", "InputScale", "NanInject", "ChannelDrop",
    "SeedPerturb", "WorkerCrash", "WorkerHang",
    "FaultOutcome", "CampaignResult", "FaultCampaign",
    "standard_faults",
    "Journal", "Checkpoint",
    "InvariantCheck", "canonical", "digest", "outcome_digest",
    "journal_digests",
    "BackoffPolicy", "EscalationPolicy", "escalate_msb", "escalate_lsb",
    "conservative_fallback", "run_graceful",
]
