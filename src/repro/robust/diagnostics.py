"""Structured diagnostics attached to a refinement run.

Instead of burying what happened in log text, every noteworthy event of
a guarded refinement — guard trips, low-confidence automatic range
annotations, escalation retries, fallback type synthesis, watchdog or
verification anomalies — becomes a :class:`DiagEvent` inside one
:class:`Diagnostics` container, which ``RefinementFlow.run`` attaches to
the :class:`RefinementResult`.  The container also carries the outcome
of a fault-injection campaign when one was run against the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.refine.report import format_diagnostics_table

__all__ = ["DiagEvent", "Diagnostics", "SEVERITIES", "CATEGORY_CODES"]

SEVERITIES = ("info", "warning", "error")

#: Stable machine-readable code per diagnostic category.  Lint events
#: carry their own rule id (``FX001``..) in ``data["rule"]``, which wins
#: over the category code; everything else maps here.  Codes are part of
#: the public diagnostics contract (tests and downstream tooling filter
#: on them) — never renumber, only append.
CATEGORY_CODES = {
    "guard": "DG001",
    "watchdog": "DG002",
    "auto-range": "DG101",
    "escalation": "DG102",
    "fallback": "DG103",
    "baseline": "DG104",
    "verification": "DG105",
    # Crash-tolerant execution (repro.parallel + repro.robust.recovery).
    "deadline": "DG201",
    "quarantine": "DG202",
    "journal": "DG203",
    "retry": "DG204",
    # Degraded-mode durability + chaos injection (repro.robust.chaos).
    "journal-degraded": "DG205",
    "cache-corrupt": "DG206",
    "chaos": "DG207",
    "journal-compact": "DG208",
    # Compiled simulation engine (repro.compile).
    "compile-fallback": "DG209",
    # Static verification verdicts (repro.verify).
    "verify-proved": "DG210",
    "verify-counterexample": "DG211",
    "verify-unknown": "DG212",
    # Refinement-as-a-service (repro.service).
    "service-reject": "DG213",
    "service-dedupe": "DG214",
    "service-breaker": "DG215",
    "service-recover": "DG216",
    "service-quarantine": "DG217",
    "service-cancel": "DG218",
}


@dataclass(frozen=True)
class DiagEvent:
    """One structured event of a refinement run."""

    category: str        # e.g. "guard", "auto-range", "escalation", ...
    severity: str        # "info" | "warning" | "error"
    signal: object       # signal name or None for flow-level events
    message: str
    data: dict = field(default_factory=dict)

    @property
    def code(self):
        """Stable diagnostic code (``DG...``, or the lint rule id).

        >>> DiagEvent("guard", "warning", "acc", "sanitized").code
        'DG001'
        >>> DiagEvent("lint", "warning", None, "m",
        ...           {"rule": "FX004"}).code
        'FX004'
        """
        rule = self.data.get("rule")
        if rule:
            return str(rule)
        return CATEGORY_CODES.get(self.category, "DG000")

    def describe(self):
        where = "" if self.signal is None else " [%s]" % self.signal
        return "%-7s %s %s%s: %s" % (self.severity, self.code,
                                     self.category, where, self.message)


class Diagnostics:
    """Ordered collection of :class:`DiagEvent` plus campaign results."""

    def __init__(self):
        self.events = []
        self.fault_campaign = None   # CampaignResult, when one was run

    # -- recording ---------------------------------------------------------

    def add(self, category, severity, signal, message, **data):
        if severity not in SEVERITIES:
            raise ValueError("severity must be one of %s, got %r"
                             % (", ".join(SEVERITIES), severity))
        ev = DiagEvent(category, severity, signal, message, data)
        self.events.append(ev)
        return ev

    def absorb_guards(self, ctx, phase):
        """Fold a context's guard log into per-signal guard events."""
        if ctx.guard_trip_count == 0:
            return
        per_signal = {}
        for ev in ctx.guard_log:
            per_signal.setdefault(ev.signal, []).append(ev)
        for name, evs in per_signal.items():
            first = evs[0]
            self.add("guard", "warning", name,
                     "%d non-finite assignment(s) sanitized during %s "
                     "(first at cycle %d: fx=%r)"
                     % (len(evs), phase, first.cycle, first.fx),
                     phase=phase, count=len(evs), first_cycle=first.cycle)
        untracked = ctx.guard_trip_count - len(ctx.guard_log)
        if untracked > 0:
            self.add("guard", "warning", None,
                     "%d further guard trip(s) during %s beyond the "
                     "event cap" % (untracked, phase), phase=phase)

    # -- queries ------------------------------------------------------------

    def by_category(self, category):
        return [e for e in self.events if e.category == category]

    def by_severity(self, severity):
        return [e for e in self.events if e.severity == severity]

    @property
    def warnings(self):
        return self.by_severity("warning")

    @property
    def errors(self):
        return self.by_severity("error")

    @property
    def guard_trips(self):
        """Total sanitized non-finite assignments across all phases."""
        return sum(e.data.get("count", 1) for e in self.by_category("guard"))

    @property
    def fallback_signals(self):
        """Signals that received a conservative fallback type."""
        return [e.signal for e in self.by_category("fallback")
                if e.signal is not None]

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- reporting ----------------------------------------------------------

    def table(self, title="Diagnostics"):
        return format_diagnostics_table(self.events, title=title)

    def summary(self):
        if not self.events and self.fault_campaign is None:
            return "diagnostics: clean run (no events)"
        counts = {}
        for e in self.events:
            counts[e.category] = counts.get(e.category, 0) + 1
        parts = ["%d %s" % (n, cat) for cat, n in sorted(counts.items())]
        lines = ["diagnostics: %d event(s) (%s)"
                 % (len(self.events), ", ".join(parts))]
        n_err = len(self.errors)
        if n_err:
            lines.append("%d error-severity event(s)" % n_err)
        if self.fault_campaign is not None:
            lines.append(self.fault_campaign.summary())
        return "; ".join(lines)

    def to_dict(self):
        out = {
            "events": [{
                "code": e.code,
                "category": e.category,
                "severity": e.severity,
                "signal": e.signal,
                "message": e.message,
                "data": {k: v for k, v in e.data.items()
                         if isinstance(v, (int, float, str, bool,
                                           type(None)))},
            } for e in self.events],
            "guard_trips": self.guard_trips,
        }
        if self.fault_campaign is not None:
            out["fault_campaign"] = self.fault_campaign.to_dict()
        return out

    def __repr__(self):
        return "Diagnostics(%d events%s)" % (
            len(self.events),
            "" if self.fault_campaign is None else ", fault campaign")
