"""Crash-tolerant execution state: outcome journal and checkpoints.

A refinement campaign is hours of independent simulations; a killed
process must not lose the ones that already finished.  Two persistence
primitives make every batch layer resumable:

* :class:`Journal` — a fingerprint-keyed **write-ahead outcome journal**.
  :func:`repro.parallel.run_simulations` appends every completed
  :class:`~repro.parallel.runner.SimOutcome` to it *as the outcome
  arrives* (not at batch end), so after a ``kill -9`` the same call
  replays the finished jobs bit-exactly from disk and re-runs only the
  missing ones.  The file is append-only JSONL with a versioned header;
  every record carries its own SHA-256, so a torn tail (the one way an
  append-only file can legitimately be damaged) is detected and dropped
  on reopen instead of poisoning the replay.
* :class:`Checkpoint` — atomic whole-state snapshots (temp file +
  ``os.replace``) for coarse-grained search state, used by
  ``RefinementFlow.run(checkpoint=...)`` to resume phase-by-phase.

Outcome payloads are pickled (then base64-wrapped into the JSON line):
a :class:`SimOutcome` holds full :class:`~repro.refine.monitors.SignalRecord`
snapshots whose floats must replay to the last ulp — a lossy textual
encoding would break the bit-identical-resume contract.

Both classes never import the parallel runner, so
``repro.parallel`` <-> ``repro.robust`` stays acyclic: the runner takes
an already-built journal object and only calls ``get``/``append``.
"""

from __future__ import annotations

import base64
import hashlib
import io
import json
import os
import pickle
import tempfile

from repro.core.errors import JournalError
from repro.obs import counters as obs_counters

__all__ = ["Journal", "Checkpoint", "JOURNAL_FORMAT", "JOURNAL_VERSION"]

JOURNAL_FORMAT = "repro-journal"
JOURNAL_VERSION = 1


def _encode(obj):
    payload = base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")
    sha = hashlib.sha256(payload.encode("ascii")).hexdigest()
    return payload, sha


class Journal:
    """Fingerprint-keyed write-ahead journal of completed outcomes.

    ``path`` is created (with its parent directory) on first use; an
    existing journal is loaded and its records become immediately
    replayable through :meth:`get`.  ``sync=True`` (default) fsyncs
    after every append — one completed simulation outcome survives even
    a machine crash; pass ``sync=False`` to trade that for lower
    latency (a ``kill -9`` still loses nothing, only an OS crash can).

    Only *completed* outcomes (``outcome.error is None``) are journaled:
    errors may be environment-dependent (a deadline hit on a loaded
    machine, a crashed worker) and must re-run on resume.

    The journal is design-agnostic — keys are
    :func:`repro.parallel.runner.fingerprint` digests, which already
    encode the design factory identity — so one journal file can back
    any number of sweeps over any number of designs.
    """

    def __init__(self, path, meta=None, sync=True):
        self.path = os.fspath(path)
        self.sync = bool(sync)
        self.meta = dict(meta or {})
        self.hits = 0
        self.misses = 0
        #: records dropped on load because of a torn/corrupt tail.
        self.n_dropped = 0
        self._entries = {}
        self._fh = None
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._load()
        self._open_append()

    # -- loading -----------------------------------------------------------

    def _load(self):
        if not os.path.exists(self.path):
            return
        with io.open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            return
        header = self._parse_header(lines[0])
        if header is None:
            # Torn header: the process died inside the very first write.
            # Nothing recoverable is in the file — start fresh.
            self.n_dropped = len(lines)
            self._note_dropped()
            os.remove(self.path)
            return
        for i, line in enumerate(lines[1:], start=1):
            rec = self._parse_record(line)
            if rec is None:
                # Append-only files can only be damaged at the tail:
                # drop this record and everything after it.
                self.n_dropped = len(lines) - i
                self._note_dropped()
                self._truncate_to(lines[:i])
                break
            key, label, outcome = rec
            self._entries[key] = outcome

    def _parse_header(self, line):
        try:
            h = json.loads(line)
        except ValueError:
            return None
        if not isinstance(h, dict) or h.get("kind") != "header":
            raise JournalError("%s is not a %s file (first line is not a "
                               "journal header)" % (self.path,
                                                    JOURNAL_FORMAT))
        if h.get("format") != JOURNAL_FORMAT:
            raise JournalError("%s has unknown journal format %r"
                               % (self.path, h.get("format")))
        if h.get("v") != JOURNAL_VERSION:
            raise JournalError(
                "%s is journal version %r; this build reads version %d"
                % (self.path, h.get("v"), JOURNAL_VERSION))
        self.meta = dict(h.get("meta") or {})
        return h

    def _parse_record(self, line):
        try:
            rec = json.loads(line)
            if rec.get("kind") != "outcome":
                return None
            payload = rec["payload"]
            sha = hashlib.sha256(payload.encode("ascii")).hexdigest()
            if sha != rec["sha"]:
                return None
            outcome = pickle.loads(base64.b64decode(payload))
        except Exception:
            return None
        return rec["key"], rec.get("label"), outcome

    def _truncate_to(self, good_lines):
        """Rewrite the file without the torn tail (atomic)."""
        text = "\n".join(good_lines) + "\n"
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(
            os.path.abspath(self.path)), prefix=".journal-", suffix=".tmp")
        try:
            with io.open(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise

    def _note_dropped(self):
        if self.n_dropped:
            obs_counters.inc("journal.dropped_records", self.n_dropped)

    # -- appending ---------------------------------------------------------

    def _open_append(self):
        fresh = not os.path.exists(self.path)
        self._fh = io.open(self.path, "a", encoding="utf-8")
        if fresh:
            header = {"v": JOURNAL_VERSION, "format": JOURNAL_FORMAT,
                      "kind": "header", "meta": self.meta}
            self._write_line(json.dumps(header, sort_keys=True))

    def _write_line(self, line):
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())

    def append(self, key, outcome):
        """Journal one completed outcome (no-op for failed outcomes)."""
        if getattr(outcome, "error", None) is not None:
            return False
        if self._fh is None:
            raise JournalError("journal %s is closed" % self.path)
        payload, sha = _encode(outcome)
        rec = {"kind": "outcome", "key": key,
               "label": getattr(outcome, "label", None),
               "sha": sha, "payload": payload}
        self._write_line(json.dumps(rec, sort_keys=True))
        self._entries[key] = outcome
        obs_counters.inc("journal.appends")
        return True

    # -- lookup ------------------------------------------------------------

    def get(self, key):
        outcome = self._entries.get(key)
        if outcome is None:
            self.misses += 1
        else:
            self.hits += 1
        return outcome

    def __contains__(self, key):
        return key in self._entries

    def __len__(self):
        return len(self._entries)

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self):
        return "Journal(%r, %d entrie(s), %d dropped)" % (
            self.path, len(self._entries), self.n_dropped)


class Checkpoint:
    """Atomic whole-state snapshot (pickle via temp file + rename).

    Unlike the append-only :class:`Journal`, a checkpoint is replaced
    wholesale on every :meth:`save`; ``os.replace`` makes the swap
    atomic, so a reader only ever sees the previous complete state or
    the new complete state — never a torn one.  :meth:`load` returns
    ``None`` when no (readable) checkpoint exists; an unreadable file is
    remembered in :attr:`corrupt` so callers can surface a diagnostic
    instead of silently restarting.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self.corrupt = False

    def save(self, state):
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=parent, prefix=".ckpt-",
                                   suffix=".tmp")
        try:
            with io.open(fd, "wb") as fh:
                pickle.dump(state, fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        obs_counters.inc("checkpoint.saves")

    def load(self):
        if not os.path.exists(self.path):
            return None
        try:
            with io.open(self.path, "rb") as fh:
                state = pickle.load(fh)
        except Exception:
            self.corrupt = True
            return None
        obs_counters.inc("checkpoint.loads")
        return state

    def remove(self):
        try:
            os.remove(self.path)
        except OSError:
            pass

    def __repr__(self):
        return "Checkpoint(%r)" % self.path
