"""Crash-tolerant execution state: outcome journal and checkpoints.

A refinement campaign is hours of independent simulations; a killed
process must not lose the ones that already finished.  Two persistence
primitives make every batch layer resumable:

* :class:`Journal` — a fingerprint-keyed **write-ahead outcome journal**.
  :func:`repro.parallel.run_simulations` appends every completed
  :class:`~repro.parallel.runner.SimOutcome` to it *as the outcome
  arrives* (not at batch end), so after a ``kill -9`` the same call
  replays the finished jobs bit-exactly from disk and re-runs only the
  missing ones.  The file is append-only JSONL with a versioned header;
  every record carries its own SHA-256, so a torn tail (the one way an
  append-only file can legitimately be damaged) is detected and dropped
  on reopen instead of poisoning the replay.
* :class:`Checkpoint` — atomic whole-state snapshots (temp file +
  ``os.replace``) for coarse-grained search state, used by
  ``RefinementFlow.run(checkpoint=...)`` to resume phase-by-phase.

Two robustness behaviors are part of the journal's contract (and are
exercised by the chaos matrix, :mod:`repro.robust.chaos`):

* **Graceful ENOSPC** — an :class:`OSError` while appending (disk full,
  permission lost, file system gone read-only) *degrades* the journal
  to in-memory-only operation instead of aborting the fan-out: the
  batch finishes, results stay replayable within the process, and the
  runner emits a single ``DG205`` warning.  Pass
  ``on_io_error="raise"`` to get the old fail-fast behavior.
* **Compaction** — long campaigns re-append the same fingerprints
  (reruns, retries after quarantine); :meth:`Journal.compact` atomically
  rewrites the file keeping only the latest record per key, and
  :meth:`Journal.maybe_compact` does so opportunistically once the file
  passes ``compact_threshold`` bytes *and* holds superseded records.

Every I/O boundary consults :data:`repro.chaoshooks.ACTIVE` (one
attribute load + ``is None`` test when disarmed) so the chaos injector
can tear a write, fail an fsync or crash mid-rename deterministically.

Outcome payloads are pickled (then base64-wrapped into the JSON line):
a :class:`SimOutcome` holds full :class:`~repro.refine.monitors.SignalRecord`
snapshots whose floats must replay to the last ulp — a lossy textual
encoding would break the bit-identical-resume contract.

Both classes never import the parallel runner, so
``repro.parallel`` <-> ``repro.robust`` stays acyclic: the runner takes
an already-built journal object and only calls ``get``/``append``.
"""

from __future__ import annotations

import base64
import hashlib
import io
import json
import os
import pickle
import tempfile

try:                                   # POSIX advisory locks
    import fcntl
except ImportError:                    # pragma: no cover - non-POSIX
    fcntl = None

from repro import chaoshooks
from repro.core.errors import JournalError
from repro.obs import counters as obs_counters

__all__ = ["Journal", "Checkpoint", "JOURNAL_FORMAT", "JOURNAL_VERSION"]

JOURNAL_FORMAT = "repro-journal"
JOURNAL_VERSION = 1


def _encode(obj):
    payload = base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")
    sha = hashlib.sha256(payload.encode("ascii")).hexdigest()
    return payload, sha


class Journal:
    """Fingerprint-keyed write-ahead journal of completed outcomes.

    ``path`` is created (with its parent directory) on first use; an
    existing journal is loaded and its records become immediately
    replayable through :meth:`get`.  ``sync=True`` (default) fsyncs
    after every append — one completed simulation outcome survives even
    a machine crash; pass ``sync=False`` to trade that for lower
    latency (a ``kill -9`` still loses nothing, only an OS crash can).

    Only *completed* outcomes (``outcome.error is None``) are journaled:
    errors may be environment-dependent (a deadline hit on a loaded
    machine, a crashed worker) and must re-run on resume.

    The journal is design-agnostic — keys are
    :func:`repro.parallel.runner.fingerprint` digests, which already
    encode the design factory identity — so one journal file can back
    any number of sweeps over any number of designs.

    ``on_io_error`` selects what an :class:`OSError` during an append
    does: ``"degrade"`` (default) switches to in-memory-only operation
    (:attr:`degraded` set, original error kept in :attr:`io_error`),
    ``"raise"`` wraps it in a :class:`JournalError`.  A non-``None``
    ``compact_threshold`` (bytes) arms :meth:`maybe_compact`, which the
    runner calls at the end of every batch.
    """

    def __init__(self, path, meta=None, sync=True, on_io_error="degrade",
                 compact_threshold=None):
        if on_io_error not in ("degrade", "raise"):
            raise ValueError("on_io_error must be 'degrade' or 'raise', "
                             "got %r" % (on_io_error,))
        self.path = os.fspath(path)
        self.sync = bool(sync)
        self.meta = dict(meta or {})
        self.on_io_error = on_io_error
        self.compact_threshold = compact_threshold
        self.hits = 0
        self.misses = 0
        #: records dropped on load because of a torn/corrupt tail.
        self.n_dropped = 0
        #: compactions skipped because another process held the lock.
        self.n_compact_skipped = 0
        #: True once an append-time OSError demoted this journal to
        #: in-memory-only operation (see ``on_io_error``).
        self.degraded = False
        #: the OSError that caused the degrade, for diagnostics.
        self.io_error = None
        self._degrade_noted = False   # runner emitted DG205 already
        self._entries = {}
        self._n_records = 0           # record lines on disk (incl. stale)
        self._fh = None
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._load()
        self._open_append()
        self._last_compact_size = self.size_bytes()

    # -- loading -----------------------------------------------------------

    def _load(self):
        if not os.path.exists(self.path):
            return
        with io.open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            return
        header = self._parse_header(lines[0])
        if header is None:
            # Torn header: the process died inside the very first write.
            # Nothing recoverable is in the file — start fresh.
            self.n_dropped = len(lines)
            self._note_dropped()
            os.remove(self.path)
            return
        for i, line in enumerate(lines[1:], start=1):
            rec = self._parse_record(line)
            if rec is None:
                # Append-only files can only be damaged at the tail:
                # drop this record and everything after it.
                self.n_dropped = len(lines) - i
                self._note_dropped()
                self._truncate_to(lines[:i])
                break
            key, label, outcome = rec
            self._entries[key] = outcome
            self._n_records += 1

    def _parse_header(self, line):
        try:
            h = json.loads(line)
        except ValueError:
            return None
        if not isinstance(h, dict) or h.get("kind") != "header":
            raise JournalError("%s is not a %s file (first line is not a "
                               "journal header)" % (self.path,
                                                    JOURNAL_FORMAT))
        if h.get("format") != JOURNAL_FORMAT:
            raise JournalError("%s has unknown journal format %r"
                               % (self.path, h.get("format")))
        if h.get("v") != JOURNAL_VERSION:
            raise JournalError(
                "%s is journal version %r; this build reads version %d"
                % (self.path, h.get("v"), JOURNAL_VERSION))
        self.meta = dict(h.get("meta") or {})
        return h

    def _parse_record(self, line):
        try:
            rec = json.loads(line)
            if rec.get("kind") != "outcome":
                return None
            payload = rec["payload"]
            sha = hashlib.sha256(payload.encode("ascii")).hexdigest()
            if sha != rec["sha"]:
                return None
            outcome = pickle.loads(base64.b64decode(payload))
        except Exception:
            return None
        return rec["key"], rec.get("label"), outcome

    def _truncate_to(self, good_lines):
        """Rewrite the file without the torn tail (atomic)."""
        text = "\n".join(good_lines) + "\n"
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(
            os.path.abspath(self.path)), prefix=".journal-", suffix=".tmp")
        try:
            with io.open(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            hook = chaoshooks.ACTIVE
            if hook is not None:
                hook.on_journal_replace(self)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise

    def _note_dropped(self):
        if self.n_dropped:
            obs_counters.inc("journal.dropped_records", self.n_dropped)

    # -- appending ---------------------------------------------------------

    def _open_append(self):
        # A 0-byte file counts as fresh: a crash (or ENOSPC) between
        # file creation and the header write must not leave a journal
        # that appends records under no header.
        fresh = not os.path.exists(self.path) \
            or os.path.getsize(self.path) == 0
        try:
            self._fh = io.open(self.path, "a", encoding="utf-8")
            if fresh:
                header = {"v": JOURNAL_VERSION, "format": JOURNAL_FORMAT,
                          "kind": "header", "meta": self.meta}
                self._write_line(json.dumps(header, sort_keys=True))
        except OSError as exc:
            self._degrade(exc)

    def _write_line(self, line):
        data = line + "\n"
        hook = chaoshooks.ACTIVE
        if hook is not None:
            data = hook.on_journal_write(self, data)
        self._fh.write(data)
        self._fh.flush()
        if self.sync:
            if hook is not None:
                hook.on_journal_fsync(self)
            os.fsync(self._fh.fileno())

    def _degrade(self, exc):
        """Demote to in-memory-only after an append-time OSError."""
        obs_counters.inc("journal.io_errors")
        self.degraded = True
        self.io_error = exc
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        if self.on_io_error == "raise":
            raise JournalError("journal %s: write failed (%s); pass "
                               "on_io_error='degrade' to continue "
                               "in-memory" % (self.path, exc)) from exc

    def append(self, key, outcome):
        """Journal one completed outcome (no-op for failed outcomes).

        Returns True when the outcome is replayable through :meth:`get`
        afterwards — including on the degraded in-memory path; only the
        ``journal.appends`` counter distinguishes a durable append.
        """
        if getattr(outcome, "error", None) is not None:
            return False
        if self.degraded:
            self._entries[key] = outcome
            return True
        if self._fh is None:
            raise JournalError("journal %s is closed" % self.path)
        payload, sha = _encode(outcome)
        rec = {"kind": "outcome", "key": key,
               "label": getattr(outcome, "label", None),
               "sha": sha, "payload": payload}
        try:
            self._write_line(json.dumps(rec, sort_keys=True))
        except OSError as exc:
            self._degrade(exc)
            self._entries[key] = outcome
            return True
        self._entries[key] = outcome
        self._n_records += 1
        obs_counters.inc("journal.appends")
        return True

    # -- compaction --------------------------------------------------------

    def _acquire_compact_lock(self):
        """Try to take the cross-process compaction lock.

        Two processes sharing one journal file must not rewrite it
        concurrently (two temp-file + ``os.replace`` dances would
        silently drop one side's records).  The lock is advisory —
        ``flock(LOCK_EX | LOCK_NB)`` on a ``<path>.lock`` sidecar, with
        an ``O_EXCL`` lock *file* fallback where ``fcntl`` is missing —
        and contention is not an error: the loser degrades to a no-op
        (the winner's compaction serves both).

        Returns an opaque token for :meth:`_release_compact_lock`, or
        None when another process holds the lock.
        """
        lock_path = self.path + ".lock"
        if fcntl is not None:
            try:
                fh = io.open(lock_path, "a")
            except OSError:
                return None
            try:
                fcntl.flock(fh.fileno(),
                            fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                fh.close()
                return None
            return ("flock", fh, lock_path)
        try:                           # pragma: no cover - non-POSIX
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError:                # pragma: no cover - non-POSIX
            return None
        return ("excl", fd, lock_path)

    def _release_compact_lock(self, token):
        kind, handle, lock_path = token
        if kind == "flock":
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            except OSError:
                pass
            handle.close()
        else:                          # pragma: no cover - non-POSIX
            os.close(handle)
            try:
                os.unlink(lock_path)
            except OSError:
                pass

    def size_bytes(self):
        """Current on-disk size (0 when the file does not exist)."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def compact(self):
        """Atomically rewrite the file keeping the latest record per key.

        Long campaigns re-append fingerprints (quarantine retries,
        overlapping sweeps); compaction drops the superseded lines via
        the same temp-file + ``os.replace`` dance as torn-tail repair,
        then reopens the append handle on the new file.  Returns the
        number of stale records dropped.  A degraded or closed journal
        compacts to nothing (returns 0) — and so does one whose
        cross-process compaction lock is held by somebody else: the
        racing compactor degrades to a no-op (counted in
        :attr:`n_compact_skipped` and ``journal.compact_contended``;
        the runner surfaces it as a ``journal-compact`` diagnostic)
        rather than risking two concurrent atomic rewrites.
        """
        if self.degraded or self._fh is None:
            return 0
        lock = self._acquire_compact_lock()
        if lock is None:
            self.n_compact_skipped += 1
            obs_counters.inc("journal.compact_contended")
            return 0
        try:
            return self._compact_locked()
        finally:
            self._release_compact_lock(lock)

    def _compact_locked(self):
        stale = self._n_records - len(self._entries)
        lines = [json.dumps({"v": JOURNAL_VERSION, "format": JOURNAL_FORMAT,
                             "kind": "header", "meta": self.meta},
                            sort_keys=True)]
        for key, outcome in self._entries.items():
            payload, sha = _encode(outcome)
            lines.append(json.dumps(
                {"kind": "outcome", "key": key,
                 "label": getattr(outcome, "label", None),
                 "sha": sha, "payload": payload}, sort_keys=True))
        self._fh.close()
        self._fh = None
        try:
            self._truncate_to(lines)
        finally:
            # Reopen even if the rewrite died: the old (intact) file is
            # still in place and further appends must keep working.
            if not self.degraded:
                self._fh = io.open(self.path, "a", encoding="utf-8")
        self._n_records = len(self._entries)
        self._last_compact_size = self.size_bytes()
        obs_counters.inc("journal.compactions")
        return max(stale, 0)

    def maybe_compact(self):
        """Compact when past ``compact_threshold`` and worth doing.

        "Worth doing" means the file holds superseded records, or it
        doubled since the last compaction check (so a pathological file
        is not re-scanned on every batch).  Returns records dropped.
        """
        if (self.compact_threshold is None or self.degraded
                or self._fh is None):
            return 0
        size = self.size_bytes()
        if size <= self.compact_threshold:
            return 0
        if (self._n_records <= len(self._entries)
                and size < 2 * self._last_compact_size):
            return 0
        return self.compact()

    # -- lookup ------------------------------------------------------------

    def get(self, key):
        outcome = self._entries.get(key)
        if outcome is None:
            self.misses += 1
        else:
            self.hits += 1
        return outcome

    def entries(self):
        """Snapshot of all replayable outcomes, ``{key: outcome}``."""
        return dict(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def __len__(self):
        return len(self._entries)

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self):
        return "Journal(%r, %d entrie(s), %d dropped)" % (
            self.path, len(self._entries), self.n_dropped)


class Checkpoint:
    """Atomic whole-state snapshot (pickle via temp file + rename).

    Unlike the append-only :class:`Journal`, a checkpoint is replaced
    wholesale on every :meth:`save`; ``os.replace`` makes the swap
    atomic, so a reader only ever sees the previous complete state or
    the new complete state — never a torn one.  :meth:`load` returns
    ``None`` when no (readable) checkpoint exists; an unreadable file is
    remembered in :attr:`corrupt` so callers can surface a diagnostic
    instead of silently restarting.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self.corrupt = False

    def save(self, state):
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=parent, prefix=".ckpt-",
                                   suffix=".tmp")
        try:
            with io.open(fd, "wb") as fh:
                pickle.dump(state, fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            hook = chaoshooks.ACTIVE
            if hook is not None:
                hook.on_checkpoint_save(self)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        obs_counters.inc("checkpoint.saves")
        hook = chaoshooks.ACTIVE
        if hook is not None:
            hook.on_checkpoint_saved(self)

    def load(self):
        if not os.path.exists(self.path):
            return None
        try:
            with io.open(self.path, "rb") as fh:
                state = pickle.load(fh)
        except Exception:
            self.corrupt = True
            return None
        obs_counters.inc("checkpoint.loads")
        return state

    def remove(self):
        try:
            os.remove(self.path)
        except OSError:
            pass

    def __repr__(self):
        return "Checkpoint(%r)" % self.path
