"""Simulation guards: non-finite-value policies and watchdogs.

Two failure classes the refinement flow must survive are *silent value
corruption* (a NaN or infinity sneaking through ``Signal.assign`` and
poisoning every downstream statistic) and *runaway simulations* (a
stalled feedback loop or free-running processor spinning forever).  This
module packages the counter-measures:

* :class:`GuardPolicy` — a declarative non-finite policy applied to a
  :class:`~repro.signal.context.DesignContext` (the enforcement itself
  lives in ``DesignContext.guard_non_finite``, called on every signal
  assignment);
* :class:`Watchdog` — a max-cycles / wall-clock budget checked on every
  ``ctx.tick()`` (and by :meth:`Engine.run` when passed explicitly);
* :func:`guard_summary` — a compact report of the guard trips of a run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.errors import DesignError, WatchdogTimeout
from repro.signal.context import (GUARD_ACTIONS, GUARD_REPLACEMENTS,
                                  GuardEvent)

__all__ = ["GuardPolicy", "GuardEvent", "Watchdog", "guard_summary"]


@dataclass(frozen=True)
class GuardPolicy:
    """Declarative non-finite-value policy for a design context.

    ``action`` is one of ``"raise"`` (abort on the first NaN/Inf that
    reaches a signal), ``"record"`` (sanitize, log a
    :class:`GuardEvent`, continue) or ``"sanitize"`` (sanitize and only
    count).  ``replacement`` selects what a sanitized value becomes:
    ``"hold"`` keeps the signal's last good value, ``"zero"`` forces 0.
    """

    action: str = "raise"
    replacement: str = "hold"
    max_events: int = 1000

    def __post_init__(self):
        if self.action not in GUARD_ACTIONS:
            raise DesignError("guard action must be one of %s, got %r"
                              % (", ".join(GUARD_ACTIONS), self.action))
        if self.replacement not in GUARD_REPLACEMENTS:
            raise DesignError("guard replacement must be one of %s, got %r"
                              % (", ".join(GUARD_REPLACEMENTS),
                                 self.replacement))

    def apply_to(self, ctx):
        """Install this policy on an existing context."""
        ctx.guard_action = self.action
        ctx.guard_replacement = self.replacement
        ctx.guard_max_events = self.max_events
        return ctx

    def context_kwargs(self):
        """Keyword arguments for the ``DesignContext`` constructor."""
        return {"guard_action": self.action,
                "guard_replacement": self.replacement,
                "guard_max_events": self.max_events}


class Watchdog:
    """Cycle-count and wall-clock budget for one simulation run.

    Attach to a context (``ctx.watchdog = Watchdog(...)``) to have every
    ``ctx.tick()`` checked, or pass to :meth:`Engine.run`.  ``check``
    raises :class:`~repro.core.errors.WatchdogTimeout` once either budget
    is exhausted.  The wall-clock budget is only consulted every
    ``clock_stride`` cycles to keep the per-tick overhead negligible.
    """

    def __init__(self, max_cycles=None, max_seconds=None, clock_stride=256):
        if max_cycles is None and max_seconds is None:
            raise DesignError("watchdog needs max_cycles and/or max_seconds")
        if max_cycles is not None and max_cycles <= 0:
            raise DesignError("max_cycles must be positive")
        if max_seconds is not None and max_seconds <= 0:
            raise DesignError("max_seconds must be positive")
        self.max_cycles = max_cycles
        self.max_seconds = max_seconds
        self.clock_stride = max(1, int(clock_stride))
        self._t0 = None
        self._n_checks = 0

    def start(self):
        """(Re-)arm the watchdog; called automatically on first check."""
        self._t0 = time.monotonic()
        self._n_checks = 0
        return self

    @property
    def elapsed(self):
        return 0.0 if self._t0 is None else time.monotonic() - self._t0

    def check(self, cycles):
        """Raise :class:`WatchdogTimeout` when a budget is exhausted."""
        if self._t0 is None:
            self.start()
        self._n_checks += 1
        if self.max_cycles is not None and cycles >= self.max_cycles:
            raise WatchdogTimeout(
                "simulation exceeded the %d-cycle watchdog budget"
                % self.max_cycles, cycles=cycles, elapsed=self.elapsed)
        if (self.max_seconds is not None
                and self._n_checks % self.clock_stride == 0):
            elapsed = self.elapsed
            if elapsed >= self.max_seconds:
                raise WatchdogTimeout(
                    "simulation exceeded the %.3gs wall-clock watchdog "
                    "budget after %d cycles" % (self.max_seconds, cycles),
                    cycles=cycles, elapsed=elapsed)

    def __repr__(self):
        return "Watchdog(max_cycles=%r, max_seconds=%r)" % (
            self.max_cycles, self.max_seconds)


def guard_summary(ctx):
    """One-paragraph summary of a context's guard activity."""
    if ctx.guard_trip_count == 0:
        return "no guard trips"
    per_signal = {}
    for ev in ctx.guard_log:
        per_signal[ev.signal] = per_signal.get(ev.signal, 0) + 1
    detail = ", ".join("%s x%d" % (name, n)
                       for name, n in sorted(per_signal.items()))
    extra = ctx.guard_trip_count - len(ctx.guard_log)
    lines = ["%d non-finite assignment(s) sanitized (%s)"
             % (ctx.guard_trip_count, detail or "events not retained")]
    if extra > 0:
        lines.append("%d trip(s) beyond the event cap" % extra)
    return "; ".join(lines)
