"""End-to-end smoke test of the robustness subsystem.

Run as ``python -m repro.robust.selfcheck``.  Exercises each robustness
layer against tiny designs in a few seconds — guards (raise and record),
the quantizer's non-finite rejection, the watchdog, the engine stall
detector, graceful flow degradation and a miniature fault campaign —
and exits non-zero on the first broken invariant.  Meant for CI images
and fresh checkouts, not as a replacement for the pytest suite.
"""

from __future__ import annotations

import math
import sys

import numpy as np

from repro.core.dtype import DType
from repro.core.errors import (DeadlockError, NonFiniteError,
                               RefinementError, WatchdogTimeout)
from repro.core.quantize import quantize_array
from repro.refine import Design, FlowConfig, RefinementFlow
from repro.robust.faults import BitFlip, FaultCampaign, NanInject, StuckAt
from repro.robust.guards import GuardPolicy, Watchdog
from repro.robust.retry import EscalationPolicy
from repro.signal import DesignContext, Reg, Sig
from repro.sim import Engine, FuncProcessor

T_IN = DType("T_in", 8, 6, "tc", "saturate", "round")


class ScaleToy(Design):
    """Feed-forward toy: y = 0.5*x + 0.25."""

    name = "scale"
    inputs = ("x",)
    output = "y"

    def build(self, ctx):
        self.x = Sig("x")
        self.y = Sig("y")
        rng = np.random.default_rng(3)
        self._stim = iter(rng.uniform(-1, 1, size=100000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            self.y.assign(self.x * 0.5 + 0.25)
            ctx.tick()


class ExplodingToy(Design):
    """Adaptive feedback whose propagated range explodes (paper case d)."""

    name = "acc"
    inputs = ("x",)
    output = "acc"

    def build(self, ctx):
        self.x = Sig("x")
        self.acc = Reg("acc")
        rng = np.random.default_rng(5)
        self._stim = iter(rng.uniform(0.5, 1.0, size=100000).tolist())

    def run(self, ctx, n):
        for _ in range(n):
            self.x.assign(next(self._stim))
            err = self.x - self.acc * self.x
            self.acc.assign(self.acc + err * 0.05)
            ctx.tick()


def check_guard_raise():
    with DesignContext("g-raise", guard_action="raise"):
        s = Sig("s")
        s.assign(1.0)
        try:
            s.assign(float("nan"))
        except NonFiniteError:
            return
    raise AssertionError("NaN assignment survived a raise guard")


def check_guard_record():
    with DesignContext("g-rec", guard_action="record",
                       guard_replacement="hold") as ctx:
        s = Sig("s")
        s.assign(0.75)
        s.assign(float("nan"))
    assert ctx.guard_trip_count == 1, ctx.guard_trip_count
    assert len(ctx.guard_log) == 1
    assert s.fx == 0.75, "hold replacement should keep the last good value"


def check_guard_policy_object():
    with DesignContext("g-pol") as ctx:
        GuardPolicy(action="sanitize", replacement="zero").apply_to(ctx)
        s = Sig("s")
        s.assign(0.5)
        s.assign(float("inf"))
    assert s.fx == 0.0
    assert ctx.guard_trip_count == 1
    assert not ctx.guard_log, "sanitize mode must not retain events"


def check_quantize_rejects_nonfinite():
    try:
        quantize_array([0.5, float("inf")], T_IN.n, T_IN.f)
    except NonFiniteError:
        return
    raise AssertionError("quantize_array accepted a non-finite input")


def check_watchdog():
    with DesignContext("wd") as ctx:
        ctx.watchdog = Watchdog(max_cycles=10)
        try:
            for _ in range(100):
                ctx.tick()
        except WatchdogTimeout:
            assert ctx.cycle <= 11
            return
    raise AssertionError("watchdog never fired")


def check_engine_stall():
    ctx = DesignContext("stall")
    eng = Engine(ctx)
    eng.add(FuncProcessor("idle", lambda p: None))
    eng.channel("c")    # present but never touched -> zero activity
    try:
        eng.run(cycles=100, stall_limit=5)
    except DeadlockError as exc:
        assert "idle" in exc.processors
        return
    raise AssertionError("stalled engine ran to completion")


def _flow(design, **kw):
    cfg = kw.pop("config", FlowConfig(n_samples=800, seed=9))
    return RefinementFlow(design, input_types={"x": T_IN},
                          input_ranges={"x": (-1, 1)}, config=cfg, **kw)


def check_strict_still_raises():
    cfg = FlowConfig(n_samples=400, seed=9, auto_range=False)
    try:
        _flow(ExplodingToy, config=cfg).run(strict=True)
    except RefinementError:
        return
    raise AssertionError("strict run of an unresolvable design succeeded")


def check_graceful_fallback():
    policy = EscalationPolicy(max_rounds=1, force_auto_range=False)
    cfg = FlowConfig(n_samples=400, seed=9, auto_range=False,
                     escalation=policy)
    res = _flow(ExplodingToy, config=cfg).run(strict=False)
    assert "acc" in res.fallbacks, "expected a conservative fallback type"
    assert res.types["acc"].msbspec == "saturate"
    assert res.diagnostics is not None
    assert res.diagnostics.fallback_signals == ["acc"]


def check_graceful_escalation_resolves():
    cfg = FlowConfig(n_samples=400, seed=9, auto_range=False)
    res = _flow(ExplodingToy, config=cfg).run(strict=False)
    assert not res.fallbacks, "default escalation should resolve the range"
    assert res.diagnostics.by_category("escalation")


def check_fault_campaign():
    res = _flow(ScaleToy).run()
    campaign = FaultCampaign(ScaleToy, res.types,
                             errors=res.lsb.annotations, output="y",
                             n_samples=800)
    out = campaign.run([BitFlip("y", bit=0, at=100),
                        StuckAt("y", 0.0),
                        NanInject("x", at=50)])
    assert len(out.outcomes) == 3
    assert math.isfinite(out.baseline_sqnr_db)
    flip, stuck, nan = out.outcomes
    assert flip.completed and stuck.completed and nan.completed
    assert stuck.degradation_db > flip.degradation_db
    assert nan.guard_trips >= 1, "record guard should log the injected NaN"
    assert out.certified(60.0, kinds=("bit-flip",))


def check_deadline():
    from repro.parallel.runner import SimConfig, run_simulations
    from repro.robust.faults import WorkerHang
    cfg = SimConfig(label="hang", dtypes={"x": T_IN}, n_samples=200,
                    seed=3, faults=(WorkerHang("y", at=20, seconds=30.0),),
                    catch_errors=True, deadline_seconds=0.5)
    out = run_simulations(ScaleToy, [cfg], workers=1)[0]
    assert out.error_kind == "deadline", out
    assert "deadline" in (out.error or "")


def check_journal_roundtrip():
    import os
    import tempfile

    from repro.parallel.runner import SimConfig, run_simulations
    from repro.robust.recovery import Journal

    factory = ScaleToy
    path = os.path.join(tempfile.mkdtemp(prefix="repro-selfcheck-"),
                        "journal.jsonl")
    cfg = SimConfig(label="j", dtypes={"x": T_IN}, n_samples=200, seed=4)
    first = run_simulations(factory, [cfg], workers=1, journal=path)[0]
    again = run_simulations(factory, [cfg], workers=1, journal=path)[0]
    assert again.sqnr_db() == first.sqnr_db(), "journal replay not bit-exact"
    j = Journal(path)
    assert len(j) == 1 and j.n_dropped == 0
    j.close()


def check_journal_degrade_and_compact():
    import os
    import tempfile

    from repro.parallel.runner import SimConfig, run_simulations
    from repro.robust.recovery import Journal

    path = os.path.join(tempfile.mkdtemp(prefix="repro-selfcheck-"),
                        "journal.jsonl")
    cfg = SimConfig(label="c", dtypes={"x": T_IN}, n_samples=200, seed=6)
    out = run_simulations(ScaleToy, [cfg], workers=1, journal=path)[0]
    j = Journal(path, compact_threshold=1)
    key = next(iter(j.entries()))
    j.append(key, out)               # superseding duplicate
    assert j.maybe_compact() == 1, "compaction did not drop the dup"
    os.close(j._fh.fileno())         # provoke an append-time OSError
    assert j.append(key + "-x", out), "degrade path lost the outcome"
    assert j.degraded and j.get(key + "-x") is not None
    j.close()
    assert len(Journal(path)) == 1, "compacted journal must reload"


def check_chaos_scenario():
    from repro.robust.chaos import run_scenario, scenario_from_sid
    report = run_scenario(
        scenario_from_sid("run_simulations:journal.torn_write:2:1"))
    assert report.injections, "chaos fault never fired"
    assert report.ok, "\n" + report.describe()


CHECKS = [
    check_guard_raise,
    check_guard_record,
    check_guard_policy_object,
    check_quantize_rejects_nonfinite,
    check_watchdog,
    check_engine_stall,
    check_strict_still_raises,
    check_graceful_fallback,
    check_graceful_escalation_resolves,
    check_fault_campaign,
    check_deadline,
    check_journal_roundtrip,
    check_journal_degrade_and_compact,
    check_chaos_scenario,
]


def main(argv=None):
    failed = 0
    for check in CHECKS:
        name = check.__name__
        try:
            check()
        except Exception as exc:   # noqa: BLE001 - report and keep going
            failed += 1
            print("FAIL %-36s %s: %s" % (name, type(exc).__name__, exc))
        else:
            print("ok   %s" % name)
    if failed:
        print("%d/%d robustness self-check(s) FAILED" % (failed, len(CHECKS)))
        return 1
    print("all %d robustness self-checks passed" % len(CHECKS))
    return 0


if __name__ == "__main__":
    sys.exit(main())
