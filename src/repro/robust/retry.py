"""Retry, escalation and graceful degradation for the refinement flow.

The strict flow dead-ends when an MSB or LSB phase stays unresolved
(range explosion without knowledge, divergent error statistics without
an ``error()`` annotation).  This module turns those dead ends into a
ladder:

1. **reseed & retry** — rerun the phase under a perturbed seed (a phase
   that only failed on one unlucky stimulus resolves here);
2. **policy escalation** — enable automatic annotations and widen the
   auto-range margin step by step;
3. **conservative fallback** — signals that still resolve to nothing get
   a saturating type wide enough for everything the simulation observed
   (plus guard bits), flagged low-confidence in the diagnostics.

``RefinementFlow.run(strict=False)`` drives :func:`run_graceful`; every
rung taken is recorded as an ``escalation`` / ``fallback`` event in the
run's :class:`~repro.robust.diagnostics.Diagnostics`.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, replace

from repro.core import word
from repro.core.dtype import DType
from repro.core.errors import WatchdogTimeout

__all__ = ["BackoffPolicy", "EscalationPolicy", "escalate_msb",
           "escalate_lsb", "conservative_fallback", "run_graceful"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Used by the parallel runner between retries of a job whose worker
    died: ``delay(attempt)`` grows as ``base * factor**(attempt-1)``,
    capped at ``cap``, plus up to ``jitter`` fractional spread derived
    from a hash of ``(token, attempt)`` — deterministic (no global RNG
    state touched, reproducible across runs) yet decorrelated between
    jobs, so a herd of retried jobs does not slam the pool in lockstep.

    >>> p = BackoffPolicy(base=0.1, factor=2.0, cap=1.0, jitter=0.0)
    >>> p.delay(1), p.delay(2), p.delay(5)
    (0.1, 0.2, 1.0)
    """

    #: delay of the first retry, in seconds.
    base: float = 0.1
    #: multiplicative growth per further attempt.
    factor: float = 2.0
    #: upper bound on any single delay, in seconds.
    cap: float = 2.0
    #: fraction of the delay added as deterministic jitter (0..1).
    jitter: float = 0.25

    def delay(self, attempt, token=""):
        """Seconds to wait before retry ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        d = min(self.base * self.factor ** (attempt - 1), self.cap)
        if self.jitter:
            h = hashlib.sha256(("%s|%d" % (token, attempt)).encode())
            frac = int.from_bytes(h.digest()[:4], "big") / 2.0 ** 32
            d = min(d * (1.0 + self.jitter * frac), self.cap)
        return d


@dataclass(frozen=True)
class EscalationPolicy:
    """Knobs of the escalation ladder."""

    #: maximum extra phase attempts after the first unresolved one.
    max_rounds: int = 2
    #: seed offset between attempts (prime, to decorrelate streams).
    reseed_step: int = 7919
    #: enable automatic range annotations during escalation.
    force_auto_range: bool = True
    #: multiply the auto-range margin by this factor per attempt.
    margin_growth: float = 2.0
    #: enable automatic error annotations during escalation.
    force_auto_error: bool = True
    #: extra LSB bits granted to auto error annotations per attempt.
    error_extra_bits_step: int = 2
    #: extra MSB headroom bits of a conservative fallback type.
    fallback_guard_bits: int = 2
    #: assumed |range| for fallback types of never-observed signals.
    fallback_magnitude: float = 1.0


def _retry_config(cfg, policy, attempt):
    """Escalated copy of a FlowConfig for the given retry attempt."""
    return replace(
        cfg,
        seed=cfg.seed + policy.reseed_step * attempt,
        auto_range=cfg.auto_range or policy.force_auto_range,
        auto_range_margin=cfg.auto_range_margin
        * (policy.margin_growth ** attempt),
        auto_error=cfg.auto_error or policy.force_auto_error,
        auto_error_extra_bits=cfg.auto_error_extra_bits
        + policy.error_extra_bits_step * attempt,
    )


def _run_phase_guarded(run, cfg, diagnostics, policy, phase_name):
    """Run one phase, degrading the sample budget on watchdog timeouts.

    In the graceful flow a :class:`WatchdogTimeout` is a recoverable
    condition, not a dead end: record a ``watchdog`` diagnostic and
    retry the phase with the sample count halved, up to
    ``policy.max_rounds`` times.  Re-raises when even the smallest
    budget still blows the watchdog — at that point the budget itself is
    wrong and the caller must know.
    """
    for shrink in range(policy.max_rounds + 1):
        try:
            return run(cfg)
        except WatchdogTimeout as exc:
            if shrink >= policy.max_rounds:
                diagnostics.add(
                    "watchdog", "error", None,
                    "%s phase still exceeds the watchdog budget after "
                    "%d sample halving(s) (%s) — giving up"
                    % (phase_name, shrink, exc),
                    phase=phase_name, halvings=shrink)
                raise
            cfg = replace(cfg, n_samples=max(1, cfg.n_samples // 2))
            diagnostics.add(
                "watchdog", "warning", None,
                "%s phase hit the watchdog budget (%s); retrying with "
                "%d samples" % (phase_name, exc, cfg.n_samples),
                phase=phase_name, n_samples=cfg.n_samples)
    raise AssertionError("unreachable")


def escalate_msb(flow, diagnostics, policy=None):
    """MSB phase with the retry/escalation ladder applied."""
    policy = policy or EscalationPolicy()
    phase = _run_phase_guarded(
        lambda c: flow.run_msb_phase(config=c, diagnostics=diagnostics),
        flow.cfg, diagnostics, policy, "msb")
    attempt = 0
    while not phase.resolved and attempt < policy.max_rounds:
        attempt += 1
        cfg = _retry_config(flow.cfg, policy, attempt)
        diagnostics.add(
            "escalation", "info", None,
            "MSB phase unresolved after %d iteration(s); retry %d with "
            "seed %d, auto_range=%s, margin %.3g"
            % (phase.n_iterations, attempt, cfg.seed, cfg.auto_range,
               cfg.auto_range_margin),
            phase="msb", attempt=attempt, seed=cfg.seed)
        phase = _run_phase_guarded(
            lambda c: flow.run_msb_phase(config=c,
                                         diagnostics=diagnostics),
            cfg, diagnostics, policy, "msb")
    if not phase.resolved:
        exploded = phase.final.exploded
        diagnostics.add(
            "escalation", "warning", None,
            "MSB phase still unresolved after %d escalation round(s); "
            "unresolved signals: %s — falling back to conservative "
            "saturating types" % (attempt, ", ".join(exploded) or "none"),
            phase="msb", unresolved=", ".join(exploded))
    return phase


def escalate_lsb(flow, msb_ranges, diagnostics, policy=None):
    """LSB phase with the retry/escalation ladder applied."""
    policy = policy or EscalationPolicy()
    phase = _run_phase_guarded(
        lambda c: flow.run_lsb_phase(msb_ranges, config=c,
                                     diagnostics=diagnostics),
        flow.cfg, diagnostics, policy, "lsb")
    attempt = 0
    while not phase.resolved and attempt < policy.max_rounds:
        attempt += 1
        cfg = _retry_config(flow.cfg, policy, attempt)
        diagnostics.add(
            "escalation", "info", None,
            "LSB phase unresolved; retry %d with seed %d, auto_error=%s"
            % (attempt, cfg.seed, cfg.auto_error),
            phase="lsb", attempt=attempt, seed=cfg.seed)
        phase = _run_phase_guarded(
            lambda c: flow.run_lsb_phase(msb_ranges, config=c,
                                         diagnostics=diagnostics),
            cfg, diagnostics, policy, "lsb")
    if not phase.resolved:
        divergent = sorted(phase.final.divergent)
        diagnostics.add(
            "escalation", "warning", None,
            "LSB phase still unresolved after %d escalation round(s); "
            "divergent signals %s keep the maximum fractional bits"
            % (attempt, ", ".join(divergent) or "none"),
            phase="lsb", divergent=", ".join(divergent))
    return phase


def conservative_fallback(flow, diagnostics, policy=None):
    """Callback for ``synthesize_types(on_unresolved=...)``.

    Builds a saturating type wide enough for the simulated range plus
    guard bits (or ``fallback_magnitude`` when the signal was never
    observed), with the LSB decision when one exists and the policy cap
    otherwise.  Every fallback is recorded as a low-confidence
    ``fallback`` diagnostic.
    """
    policy = policy or EscalationPolicy()
    cfg = flow.cfg

    def on_unresolved(name, mdec, ldec, record):
        msb = None
        basis = "never observed; assumed |x| <= %g" % policy.fallback_magnitude
        if record is not None and record.observed:
            lo, hi = record.stat_min, record.stat_max
            if math.isfinite(lo) and math.isfinite(hi):
                msb = word.required_msb(lo, hi)
                basis = "simulated range [%.4g, %.4g]" % (lo, hi)
        if msb is None or isinstance(msb, float):
            m = policy.fallback_magnitude
            msb = word.required_msb(-m, m)
        msb = int(msb) + policy.fallback_guard_bits
        if ldec is not None and ldec.lsb is not None:
            f = ldec.lsb
        else:
            f = cfg.lsb_policy.max_frac_bits
        f = max(f, -msb)    # keep the word at least one bit wide
        dt = DType("%s_t" % name, msb + f + 1, f, "tc", "saturate", "round")
        diagnostics.add(
            "fallback", "warning", name,
            "unresolved after escalation; conservative saturating "
            "fallback %s (%s, +%d guard bit(s)) — LOW CONFIDENCE"
            % (dt.spec(), basis, policy.fallback_guard_bits),
            spec=dt.spec(), guard_bits=policy.fallback_guard_bits)
        return dt

    return on_unresolved


def run_graceful(flow, diagnostics, policy=None):
    """Graceful-degradation flow: never dead-ends mid-flow.

    Returns ``(msb_phase, lsb_phase, types, fallbacks)`` where
    ``fallbacks`` maps the signals that needed a conservative type to
    their :class:`DType`.
    """
    policy = policy or getattr(flow.cfg, "escalation", None) \
        or EscalationPolicy()
    msb = escalate_msb(flow, diagnostics, policy)
    lsb = escalate_lsb(flow, msb.annotations, diagnostics, policy)
    fallbacks = {}
    fallback_cb = conservative_fallback(flow, diagnostics, policy)

    def on_unresolved(name, mdec, ldec, record):
        dt = fallback_cb(name, mdec, ldec, record)
        if dt is not None:
            fallbacks[name] = dt
        return dt

    types = flow.synthesize_types(msb, lsb, on_unresolved=on_unresolved)
    return msb, lsb, types, fallbacks
