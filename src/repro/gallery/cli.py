"""``python -m repro.gallery`` — list designs, run one, run the matrix.

Three subcommands:

* ``list`` — the registry with targets and verify expectations,
* ``run NAME`` — one fully annotated simulation (plus lint + verify
  pre-flight) of a single design,
* ``matrix`` — the scenario matrix; ``--out`` writes
  ``GALLERY_MATRIX.json``, ``--check PATH`` re-runs the grid and exits
  1 when the fresh result regresses against the committed artifact
  (digest, SQNR targets, per-cell SQNR drift).

Exit status: 0 ok, 1 regression/SQNR miss, 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.gallery.matrix import (CHANNEL_MODELS, FAULT_CAMPAIGNS,
                                  check_artifact, load_artifact,
                                  run_matrix, write_artifact)
from repro.gallery.registry import (gallery, lint_entry, single_run,
                                    verify_entry)

__all__ = ["main", "build_parser"]


def _split_csv(values):
    out = []
    for v in values or ():
        out.extend(p.strip() for p in v.split(",") if p.strip())
    return out


def build_parser():
    p = argparse.ArgumentParser(
        prog="python -m repro.gallery",
        description="Design gallery: registry, single runs and the "
                    "scenario matrix.")
    sub = p.add_subparsers(dest="cmd", required=True)

    sub.add_parser("list", help="list registered designs")

    pr = sub.add_parser("run", help="run one design (sim+lint+verify)")
    pr.add_argument("design", help="gallery design name")
    pr.add_argument("--samples", type=int, default=None,
                    help="override the entry's sample count")
    pr.add_argument("--seed", type=int, default=None,
                    help="stimulus seed (default: entry base seed)")
    pr.add_argument("--channel", choices=sorted(CHANNEL_MODELS),
                    default="clean", help="channel model (default: clean)")
    pr.add_argument("--json", action="store_true",
                    help="machine-readable output")

    pm = sub.add_parser("matrix", help="run the scenario matrix")
    grid = pm.add_mutually_exclusive_group()
    grid.add_argument("--smoke", action="store_true", default=True,
                      help="pinned small grid (default)")
    grid.add_argument("--full", action="store_true",
                      help="full grid (slow)")
    pm.add_argument("--out", metavar="PATH",
                    help="write the artifact JSON here")
    pm.add_argument("--check", metavar="PATH",
                    help="compare against a committed artifact; exit 1 "
                         "on regression")
    pm.add_argument("--journal", metavar="PATH",
                    help="write-ahead journal for bit-exact resume")
    pm.add_argument("--service", metavar="DIR", nargs="?", const="",
                    default=None,
                    help="run the grid through repro.service as tenant "
                         "'gallery' (optional DIR = durable service "
                         "root; default scratch)")
    pm.add_argument("--designs", action="append", default=[],
                    metavar="NAME", help="subset of designs (csv ok)")
    pm.add_argument("--channels", action="append", default=[],
                    metavar="CH", help="subset of channel models")
    pm.add_argument("--campaigns", action="append", default=[],
                    metavar="CAMP", help="subset of fault campaigns")
    pm.add_argument("--seeds", action="append", default=[],
                    metavar="SEED", help="subset of seeds")
    pm.add_argument("--samples", type=int, default=None,
                    help="override samples per cell")
    pm.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: auto)")
    return p


def _cmd_list():
    entries = gallery()
    width = max(len(n) for n in entries)
    for name in sorted(entries):
        e = entries[name]
        verify = (", ".join("%s@k=%d" % (prop, k)
                            for prop, k, _ in e.verify_checks)
                  or "skipped")
        print("%-*s  target %5.1f dB  engine %-11s  verify %-28s  %s"
              % (width, name, e.sqnr_target_db,
                 "compiled" if e.compiled_ok else "interpreted",
                 verify, e.description))
    return 0


def _cmd_run(args):
    entries = gallery()
    if args.design not in entries:
        print("unknown design %r (try `list`)" % args.design,
              file=sys.stderr)
        return 2
    entry = entries[args.design]
    channel = CHANNEL_MODELS[args.channel]
    out = single_run(entry, seed=args.seed, channel=channel,
                     n_samples=args.samples)
    lint_report = lint_entry(entry)
    verdicts = verify_entry(entry)
    sqnr = out.sqnr_db()
    ok = out.completed and sqnr >= entry.sqnr_target_db
    if args.json:
        print(json.dumps({
            "design": entry.name,
            "channel": args.channel,
            "completed": out.completed,
            "sqnr_db": round(float(sqnr), 2),
            "sqnr_target_db": entry.sqnr_target_db,
            "meets_target": bool(ok),
            "lint_findings": len(lint_report),
            "verify": [v.to_dict() for v in verdicts],
        }, indent=2, sort_keys=True))
    else:
        print("%s [%s]: SQNR %.2f dB (target %.1f dB) -> %s"
              % (entry.name, args.channel, sqnr, entry.sqnr_target_db,
                 "ok" if ok else "MISS"))
        print(lint_report.summary())
        for v in verdicts:
            print("  " + v.describe())
    return 0 if ok else 1


def _cmd_matrix(args):
    smoke = not args.full
    service = None
    if args.service is not None:
        from repro.service import RefinementService
        service = RefinementService(root=args.service or None,
                                    workers=args.workers)
    try:
        result = run_matrix(
            designs=_split_csv(args.designs) or None,
            channels=_split_csv(args.channels) or None,
            campaigns=_split_csv(args.campaigns) or None,
            seeds=[int(s) for s in _split_csv(args.seeds)] or None,
            n_samples=args.samples, smoke=smoke, journal=args.journal,
            workers=args.workers, service=service)
    finally:
        if service is not None:
            print("service stats: %d job(s), %d dedupe hit(s)"
                  % (len(service.jobs()),
                     service.store.dedupe_hits))
            service.close()
    print(result.summary())
    if args.out:
        write_artifact(result, args.out)
        print("artifact written to %s" % args.out)
    status = 0
    if not result.all_targets_met:
        print("SQNR target missed", file=sys.stderr)
        status = 1
    if args.check:
        problems = check_artifact(result.to_artifact(),
                                  load_artifact(args.check))
        for p in problems:
            print("REGRESSION: %s" % p, file=sys.stderr)
        if problems:
            status = 1
        else:
            print("artifact check against %s: ok" % args.check)
    return status


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.cmd == "list":
        return _cmd_list()
    if args.cmd == "run":
        return _cmd_run(args)
    return _cmd_matrix(args)
