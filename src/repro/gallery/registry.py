"""The gallery registry — designs plus their documented refinement facts.

A :class:`GalleryEntry` bundles everything ``docs/gallery.md`` documents
per design and everything the tooling needs to drive it:

* the declared input **envelope** (the AD-converter knowledge the paper
  starts from),
* the chosen **dtypes** (the refinement result, applied through
  :class:`~repro.refine.flow.Annotations` so the design class itself
  stays float),
* knowledge-based **ranges** / **errors** annotations (``range()`` on
  resonant state, ``error()`` on wrapping accumulators — Sections 4.1
  and 6.1 of the paper),
* the documented **SQNR target** checked by CI's gallery-smoke job,
* the **verify** pre-flight checks with their expected statuses (or an
  honest skip reason when the design is outside the encoder's model).

>>> sorted(gallery())[:3]
['ddc', 'decim-interp', 'fft-butterfly']
>>> gallery()["kalman"].output
'kf.x'
>>> get_design("goertzel").sqnr_target_db > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dtype import DType
from repro.gallery import designs as _d
from repro.parallel import SimConfig, run_simulations
from repro.refine.flow import Annotations
from repro.sfg import trace
from repro.signal.context import DesignContext
from repro.verify import (UNKNOWN, Verdict, prove_no_limit_cycle,
                          prove_no_overflow)

__all__ = [
    "GalleryEntry", "gallery", "get_design",
    "factory", "seeded_factory",
    "reference_check", "single_run", "lint_entry", "verify_entry",
    "T_IN",
]

#: the shared AD-converter input type: 10 bits, 8 fractional (+-2).
T_IN = DType("TGIN", 10, 8, "tc", "saturate", "round")

#: butterfly / lattice internal word: one-carry headroom over T_IN.
_T_S12 = DType("TG12", 12, 9, "tc", "saturate", "round")
#: resonator state word (+-8): the Goertzel gain needs 3 integer bits.
_T_S13 = DType("TG13", 13, 9, "tc", "saturate", "round")
#: filter-bank accumulator word (+-4).
_T_ACC = DType("TGA", 12, 9, "tc", "saturate", "round")
#: filter-bank output word (+-4, input grid).
_T_OUT = DType("TGO", 11, 8, "tc", "saturate", "round")
#: CIC wrap-domain word: modulo arithmetic, exact on the 2^-8 grid.
_T_CIC = DType("TGW", 16, 8, "tc", "wrap", "floor")
#: DDC baseband output word.
_T_BB = DType("TGB", 12, 10, "tc", "saturate", "round")
#: Kalman state word: truncating write-back => strict zero-input decay.
_T_KST = DType("TGK", 11, 9, "tc", "saturate", "trunc")
#: Kalman innovation word (input grid difference, one carry bit).
_T_KE = DType("TGE", 12, 9, "tc", "saturate", "round")


@dataclass
class GalleryEntry:
    """One gallery design plus its documented refinement artefacts."""

    name: str
    cls: type
    description: str
    envelope: dict
    dtypes: dict
    sqnr_target_db: float
    ranges: dict = field(default_factory=dict)
    errors: dict = field(default_factory=dict)
    extra_outputs: tuple = ()
    n_samples: int = 2048
    compiled_ok: bool = False
    #: ``(property, k, expected_status)`` triples for the verifier.
    verify_checks: tuple = ()
    #: non-empty => verification skipped, with this documented reason.
    verify_skip_reason: str = ""

    @property
    def inputs(self):
        return self.cls.inputs

    @property
    def output(self):
        return self.cls.output

    @property
    def base_seed(self):
        return self.cls.base_seed


def _channel_key(channel):
    if channel is None:
        return "clean"
    taps, noise_std, salt = channel
    return "t%s-n%g-s%d" % (",".join("%g" % t for t in taps),
                            noise_std, salt)


def factory(entry, channel=None, record_output=False):
    """Zero-argument design factory with a stable journal fingerprint."""
    def make():
        return entry.cls(seed=entry.base_seed, channel=channel,
                         record_output=record_output)
    make.fingerprint = "gallery:%s:%s:v1" % (entry.name,
                                             _channel_key(channel))
    return make


def seeded_factory(entry, channel=None):
    """Seed-taking factory (``SimConfig.factory_seed``), fingerprinted."""
    def make(seed):
        return entry.cls(seed=seed, channel=channel)
    make.fingerprint = "gallery:%s:%s:v1:seeded" % (entry.name,
                                                    _channel_key(channel))
    return make


def gallery():
    """Gallery entries keyed by design name.

    >>> entries = gallery()
    >>> len(entries) >= 6
    True
    >>> all(e.sqnr_target_db > 0 for e in entries.values())
    True
    """
    entries = [
        GalleryEntry(
            "fft-butterfly", _d.FftButterflyDesign,
            "radix-2 DIT FFT butterfly stage, W8 twiddle",
            envelope={"ar": (-1.0, 1.0), "ai": (-1.0, 1.0),
                      "br": (-1.0, 1.0), "bi": (-1.0, 1.0)},
            dtypes={"ar": T_IN, "ai": T_IN, "br": T_IN, "bi": T_IN,
                    "tr": _T_S12, "ti": _T_S12,
                    "xr": _T_S12, "xi": _T_S12,
                    "yr": _T_S12, "yi": _T_S12},
            extra_outputs=("xi", "yr", "yi"),
            sqnr_target_db=59.0,
            compiled_ok=True,
            verify_checks=(("no-overflow", 2, "PROVED"),)),
        GalleryEntry(
            "polyphase-fir", _d.PolyphaseFirDesign,
            "polyphase decimate-by-2 halfband filter bank",
            envelope={"x0": (-1.0, 1.0), "x1": (-1.0, 1.0)},
            dtypes={"x0": T_IN, "x1": T_IN,
                    "pe.c": T_IN, "po.c": T_IN,
                    "pe.d": T_IN, "po.d": T_IN,
                    # v[0] is the constant-zero accumulator seed; a
                    # wide dtype there is dead integer bits (FX003),
                    # so annotate the live partials individually.
                    "pe.v[1]": _T_ACC, "pe.v[2]": _T_ACC,
                    "pe.v[3]": _T_ACC, "pe.v[4]": _T_ACC,
                    "po.v[1]": _T_ACC, "po.v[2]": _T_ACC,
                    "y": _T_OUT},
            sqnr_target_db=43.0,
            compiled_ok=True,
            verify_checks=(("no-overflow", 3, "PROVED"),)),
        GalleryEntry(
            "goertzel", _d.GoertzelDesign,
            "damped Goertzel resonator at w0 = pi/4 (r = 0.9)",
            envelope={"x": (-1.0, 1.0)},
            dtypes={"x": T_IN,
                    "gz.s": _T_S13, "gz.s1": _T_S13, "gz.s2": _T_S13,
                    "gz.y": _T_S13},
            ranges={"gz.s": (-6.0, 6.0), "gz.s1": (-6.0, 6.0),
                    "gz.s2": (-6.0, 6.0), "gz.y": (-6.0, 6.0)},
            sqnr_target_db=59.0,
            compiled_ok=True,
            verify_checks=(("no-overflow", 3, "PROVED"),)),
        GalleryEntry(
            "iir-lattice", _d.IirLatticeDesign,
            "two-stage all-pole IIR lattice (k1=19/32, k2=-13/32)",
            envelope={"x": (-1.0, 1.0)},
            dtypes={"x": T_IN,
                    "lat.f1": _T_S12, "lat.y": _T_S12,
                    "lat.b0": _T_S13, "lat.b1": _T_S13},
            ranges={"lat.y": (-3.5, 3.5), "lat.f1": (-3.5, 3.5),
                    "lat.b0": (-6.0, 6.0), "lat.b1": (-6.0, 6.0)},
            sqnr_target_db=50.0,
            compiled_ok=True,
            verify_checks=(("no-overflow", 3, "PROVED"),)),
        GalleryEntry(
            "ddc", _d.DdcDesign,
            "DDC: quarter-rate LO mixer + 2-stage CIC decimate-by-4",
            envelope={"x": (-1.0, 1.0)},
            dtypes={"x": T_IN, "ddc.i": T_IN, "ddc.q": T_IN,
                    "ddc.ii1": _T_CIC, "ddc.ii2": _T_CIC,
                    "ddc.qi1": _T_CIC, "ddc.qi2": _T_CIC,
                    "ddc.id1": _T_CIC, "ddc.id2": _T_CIC,
                    "ddc.qd1": _T_CIC, "ddc.qd2": _T_CIC,
                    "ddc.ci1": _T_CIC, "ddc.ci2": _T_CIC,
                    "ddc.cq1": _T_CIC, "ddc.cq2": _T_CIC,
                    "ddc.yi": _T_BB, "ddc.yq": _T_BB},
            ranges={"ddc.ii1": (-100.0, 100.0), "ddc.ii2": (-100.0, 100.0),
                    "ddc.qi1": (-100.0, 100.0), "ddc.qi2": (-100.0, 100.0),
                    "ddc.ci1": (-100.0, 100.0), "ddc.ci2": (-100.0, 100.0),
                    "ddc.cq1": (-100.0, 100.0), "ddc.cq2": (-100.0, 100.0),
                    "ddc.yi": (-1.5, 1.5), "ddc.yq": (-1.5, 1.5)},
            errors={"ddc.ii1": 2.0 ** -9, "ddc.ii2": 2.0 ** -9,
                    "ddc.qi1": 2.0 ** -9, "ddc.qi2": 2.0 ** -9,
                    "ddc.ci1": 2.0 ** -9, "ddc.ci2": 2.0 ** -9,
                    "ddc.cq1": 2.0 ** -9, "ddc.cq2": 2.0 ** -9},
            extra_outputs=("ddc.yq",),
            sqnr_target_db=51.0,
            compiled_ok=False,
            verify_skip_reason=(
                "non-uniform decimated control flow: the CIC comb "
                "updates every R-th tick, outside the step encoder's "
                "uniform-tick model (and the wrapping integrators "
                "overflow by design)")),
        GalleryEntry(
            "kalman", _d.KalmanTrackerDesign,
            "one-state steady-state Kalman tracker (K = 1/4)",
            envelope={"z": (-1.0, 1.0)},
            dtypes={"z": T_IN, "kf.e": _T_KE, "kf.x": _T_KST},
            ranges={"kf.x": (-1.5, 1.5), "kf.e": (-2.5, 2.5)},
            sqnr_target_db=39.5,
            compiled_ok=True,
            verify_checks=(("no-overflow", 3, "PROVED"),
                           ("no-limit-cycle", 2, "PROVED"))),
        GalleryEntry(
            "decim-interp", _d.DecimInterpDesign,
            "halfband decimate-by-2 then interpolate-by-2 cascade",
            envelope={"x0": (-1.0, 1.0), "x1": (-1.0, 1.0)},
            dtypes={"x0": T_IN, "x1": T_IN,
                    "di.e.c": T_IN, "di.o.c": T_IN,
                    "di.f0.c": T_IN, "di.f1.c": T_IN,
                    "di.e.d": T_IN, "di.o.d": T_IN,
                    # skip each v[0] (constant-zero accumulator seed)
                    # to keep the FX003 dead-bits check quiet.
                    "di.e.v[1]": _T_ACC, "di.e.v[2]": _T_ACC,
                    "di.e.v[3]": _T_ACC, "di.e.v[4]": _T_ACC,
                    "di.o.v[1]": _T_ACC, "di.o.v[2]": _T_ACC,
                    "di.d": _T_OUT,
                    "di.f0.d": _T_OUT, "di.f1.d": _T_OUT,
                    "di.f0.v[1]": _T_ACC, "di.f0.v[2]": _T_ACC,
                    "di.f0.v[3]": _T_ACC, "di.f0.v[4]": _T_ACC,
                    "di.f1.v[1]": _T_ACC, "di.f1.v[2]": _T_ACC,
                    "di.y0": _T_OUT, "di.y1": _T_OUT},
            extra_outputs=("di.y1",),
            sqnr_target_db=37.0,
            compiled_ok=True,
            verify_checks=(("no-overflow", 3, "PROVED"),)),
    ]
    return {e.name: e for e in entries}


def get_design(name):
    """Look up one entry; raises ``KeyError`` with the known names.

    >>> get_design("fft-butterfly").compiled_ok
    True
    """
    entries = gallery()
    if name not in entries:
        raise KeyError("unknown gallery design %r (known: %s)"
                       % (name, ", ".join(sorted(entries))))
    return entries[name]


def reference_check(entry, seed=None, n=512, channel=None):
    """Max |design - reference| over ``n`` unannotated (float) ticks.

    Without annotations the traced design computes in doubles, so any
    disagreement with the numpy reference model is a structural bug,
    not quantization; the gallery keeps this at double-precision zero.
    """
    seed = entry.base_seed if seed is None else int(seed)
    ctx = DesignContext("gallery-ref-%s" % entry.name)
    with ctx:
        design = entry.cls(seed=seed, channel=channel, record_output=True)
        design.build(ctx)
        design.run(ctx, n)
    ref = entry.cls.reference(entry.cls.samples(seed, n, channel))
    got = np.asarray(design.out_fx, dtype=float)
    return float(np.max(np.abs(got - ref)))


def single_run(entry, seed=None, channel=None, n_samples=None,
               faults=(), engine=None, journal=None, workers=0):
    """One fully annotated simulation of ``entry``; returns SimOutcome.

    >>> out = single_run(get_design("kalman"), n_samples=256)
    >>> out.completed and out.sqnr_db() > 40.0
    True
    """
    seed = entry.base_seed if seed is None else int(seed)
    n = entry.n_samples if n_samples is None else int(n_samples)
    cfg = SimConfig(
        label="%s@%d" % (entry.name, seed),
        dtypes=entry.dtypes, ranges=entry.ranges, errors=entry.errors,
        n_samples=n, overflow_action="record", guard_action="record",
        faults=tuple(faults), factory_seed=seed,
        catch_errors=bool(faults))
    if engine is None and entry.compiled_ok and not faults:
        engine = "compiled"
    outs = run_simulations(factory(entry, channel), [cfg],
                           seeded_factory=seeded_factory(entry, channel),
                           journal=journal, workers=workers, engine=engine)
    return outs[0]


def lint_entry(entry, config=None, samples=32):
    """Lint one gallery design with its registry annotations applied.

    Mirrors :func:`repro.lint.cli.lint_design` but also applies the
    registry's chosen ``dtypes`` so the type-aware rules (dead integer
    bits, wrap hazards, coarse grids) see the refinement result.
    """
    from repro.lint.core import run_lint

    ctx = DesignContext("gallery-lint-%s" % entry.name,
                        overflow_action="record", guard_action="sanitize")
    with ctx:
        design = entry.cls(seed=entry.base_seed)
        design.build(ctx)
        Annotations(dtypes=entry.dtypes, ranges=entry.ranges,
                    errors=entry.errors).apply(ctx)
        with trace(ctx) as tracer:
            design.run(ctx, samples)
    outputs = set(entry.extra_outputs)
    if entry.output:
        outputs.add(entry.output)
    return run_lint(tracer.sfg, input_ranges=entry.envelope,
                    outputs=outputs, design_name=entry.name,
                    config=config)


def verify_entry(entry, backend="enumeration", budget=None):
    """Run the entry's documented verify pre-flight checks.

    Returns a list of :class:`~repro.verify.Verdict`; entries outside
    the encoder's model return one synthesized UNKNOWN verdict whose
    reason documents why (the matrix artifact records it verbatim).
    """
    if entry.verify_skip_reason:
        return [Verdict("no-overflow", UNKNOWN, entry.name, 0,
                        "skipped", reason=entry.verify_skip_reason,
                        envelope=entry.envelope)]
    fac = factory(entry)
    verdicts = []
    for prop, k, _expected in entry.verify_checks:
        if prop == "no-overflow":
            v = prove_no_overflow(fac, entry.envelope, k=k,
                                  backend=backend, budget=budget,
                                  dtypes=entry.dtypes)
        elif prop == "no-limit-cycle":
            v = prove_no_limit_cycle(fac, k=k, backend=backend,
                                     budget=budget, dtypes=entry.dtypes)
        else:
            raise ValueError("unknown verify property %r" % (prop,))
        verdicts.append(v)
    return verdicts
