"""Gallery designs — seven traced DSP blocks beyond ``repro.dsp``.

Every design here follows one contract so the registry, the lint pass,
the verifier and the scenario matrix can drive them uniformly:

* the constructor is ``Design(seed=..., channel=..., record_output=...)``
  — ``seed`` feeds an internal :func:`numpy.random.default_rng` stimulus
  (the flow requires internally seeded stimuli), ``channel`` is an
  optional ``(taps, noise_std, salt)`` spec realised as a streaming
  :class:`repro.dsp.chan.Channel` per stimulus column,
* ``build()`` creates *untyped* signals — the chosen fixed-point types
  live in the registry (:mod:`repro.gallery.registry`) and are applied
  through :class:`~repro.refine.flow.Annotations`, so the same class
  serves the float reference check, the lint pass and the quantized
  matrix runs,
* every class carries a pure-numpy/python ``reference()`` — the float
  reference model the ISSUE and ``docs/gallery.md`` document.  A design
  run without annotations must agree with it to double precision
  (``tests/test_gallery_designs.py`` asserts this for every entry),
* with ``record_output=True`` the design appends the output's ``fx``
  track per tick (reference-agreement tests only; the default keeps the
  per-tick hot path free of Python-side reads so the compiled engine
  stays eligible).

``stimulus()`` / ``samples()`` are classmethods: the reference model
consumes exactly the same channel-processed sample stream the traced
design consumes.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.chan import Channel
from repro.dsp.fir import FirFilter, fir_reference
from repro.refine.flow import Design
from repro.signal import Reg, Sig

__all__ = [
    "GalleryDesignBase",
    "FftButterflyDesign", "PolyphaseFirDesign", "GoertzelDesign",
    "IirLatticeDesign", "DdcDesign", "KalmanTrackerDesign",
    "DecimInterpDesign",
    "HALFBAND", "HALFBAND_E0", "HALFBAND_E1", "INTERP_F0",
]

#: stimulus generation block size (channel models process per block).
_BLOCK = 256

#: classic dyadic 7-tap halfband lowpass: h = [-1, 0, 9, 16, 9, 0, -1]/32.
HALFBAND = (-0.03125, 0.0, 0.28125, 0.5, 0.28125, 0.0, -0.03125)
#: even polyphase branch of :data:`HALFBAND` (taps h0,h2,h4,h6).
HALFBAND_E0 = (-0.03125, 0.28125, 0.28125, -0.03125)
#: odd polyphase branch — the centre tap 1/2, aligned with E0's delay.
HALFBAND_E1 = (0.0, 0.5)
#: interpolator mid-point branch: 2 * even taps of :data:`HALFBAND`.
INTERP_F0 = (-0.0625, 0.5625, 0.5625, -0.0625)


class GalleryDesignBase(Design):
    """Shared scaffolding: seeded, channel-aware stimulus generation."""

    #: default stimulus seed (overridden per matrix cell).
    base_seed = 20260808
    #: stimulus columns consumed per tick (1 = scalar rows).
    stim_width = 1

    def __init__(self, seed=None, channel=None, record_output=False):
        self.seed = int(self.base_seed if seed is None else seed)
        self.channel = channel
        self.record_output = bool(record_output)
        self.out_fx = []
        self.out_fl = []

    # -- stimulus --------------------------------------------------------

    @classmethod
    def _clean_blocks(cls, rng):
        """Yield clean stimulus blocks of shape ``(B, stim_width)``."""
        raise NotImplementedError

    @classmethod
    def stimulus(cls, seed, channel=None):
        """Generator of per-tick stimulus rows (channel applied).

        ``channel`` is ``None`` or ``(taps, noise_std, salt)``; each
        stimulus column gets its own streaming :class:`Channel` seeded
        deterministically from ``seed`` and ``salt``.
        """
        seed = int(seed)
        rng = np.random.default_rng(seed)
        chans = None
        if channel is not None:
            taps, noise_std, salt = channel
            chans = [Channel(taps, noise_std,
                             seed=(seed * 131 + int(salt) + 7 * i)
                             & 0x7FFFFFFF)
                     for i in range(cls.stim_width)]
        for blk in cls._clean_blocks(rng):
            blk = np.asarray(blk, dtype=float)
            if blk.ndim == 1:
                blk = blk[:, None]
            if chans is not None:
                for i, ch in enumerate(chans):
                    blk[:, i] = ch.process(blk[:, i])
            # Snap stimulus to the 2^-8 input grid.  The 10-bit input
            # dtype quantizes to this grid anyway, and grid-exact
            # stimulus keeps traced SFGs inside the bit-vector
            # encoder's exactness budget (repro.verify encodes every
            # traced constant as a dyadic code).
            blk = np.round(blk * 256.0) / 256.0
            for row in blk:
                if cls.stim_width == 1:
                    yield float(row[0])
                else:
                    yield tuple(float(v) for v in row)

    @classmethod
    def samples(cls, seed, n, channel=None):
        """First ``n`` stimulus rows as an ``(n,)`` or ``(n, w)`` array."""
        gen = cls.stimulus(seed, channel)
        return np.array([next(gen) for _ in range(int(n))], dtype=float)

    @classmethod
    def reference(cls, xs):
        """Float reference model: stimulus rows in, output track out."""
        raise NotImplementedError

    # -- hooks -----------------------------------------------------------

    def _start_stimulus(self):
        self._stim = self.stimulus(self.seed, self.channel)

    def _record(self, sig):
        if self.record_output:
            self.out_fx.append(sig.fx)
            self.out_fl.append(sig.fl)


class FftButterflyDesign(GalleryDesignBase):
    """Radix-2 DIT FFT butterfly stage, fixed W_8^1 twiddle.

    ``t = W * b`` (complex), ``x = a + t``, ``y = a - t`` — purely
    combinational, the canonical headroom exercise: one carry bit per
    add, so inputs in ``<10,8>`` need ``<12,9>`` products and sums.
    """

    name = "fft-butterfly"
    inputs = ("ar", "ai", "br", "bi")
    output = "xr"
    stim_width = 4
    #: W = exp(-j*pi/4), rounded to the 2^-8 coefficient grid
    #: (181/256 = 0.70703125; dyadic so the bit-vector prover can
    #: encode it exactly).
    twiddle = (0.70703125, -0.70703125)

    @classmethod
    def _clean_blocks(cls, rng):
        while True:
            yield rng.uniform(-0.9, 0.9, size=(_BLOCK, 4))

    @classmethod
    def reference(cls, xs):
        xs = np.asarray(xs, dtype=float)
        wr, wi = cls.twiddle
        ar, br, bi = xs[:, 0], xs[:, 2], xs[:, 3]
        return ar + (br * wr - bi * wi)

    def build(self, ctx):
        self.ar = Sig("ar")
        self.ai = Sig("ai")
        self.br = Sig("br")
        self.bi = Sig("bi")
        for s in (self.ar, self.ai, self.br, self.bi):
            s.role = "input"
        self.tr = Sig("tr")
        self.ti = Sig("ti")
        self.xr = Sig("xr")
        self.xi = Sig("xi")
        self.yr = Sig("yr")
        self.yi = Sig("yi")
        self.xr.role = "output"
        self._start_stimulus()

    def run(self, ctx, n_samples):
        wr, wi = self.twiddle
        for _ in range(int(n_samples)):
            ar, ai, br, bi = next(self._stim)
            self.ar.assign(ar)
            self.ai.assign(ai)
            self.br.assign(br)
            self.bi.assign(bi)
            self.tr.assign(self.br * wr - self.bi * wi)
            self.ti.assign(self.br * wi + self.bi * wr)
            self.xr.assign(self.ar + self.tr)
            self.xi.assign(self.ai + self.ti)
            self.yr.assign(self.ar - self.tr)
            self.yi.assign(self.ai - self.ti)
            self._record(self.xr)
            ctx.tick()


class PolyphaseFirDesign(GalleryDesignBase):
    """Polyphase decimate-by-2 halfband FIR (two-branch filter bank).

    Each tick consumes one even/odd input pair and produces one output
    sample: ``y[m] = E0 * x_even + E1 * x_odd`` with the branches of
    :data:`HALFBAND`.  Both branches are :class:`FirFilter` instances,
    so the delay lines and partial-sum chains are monitored signals.
    """

    name = "polyphase-fir"
    inputs = ("x0", "x1")
    output = "y"
    stim_width = 2

    @classmethod
    def _clean_blocks(cls, rng):
        phi = rng.uniform(0.0, 2.0 * np.pi)
        k0 = 0
        while True:
            k = k0 + np.arange(2 * _BLOCK)
            x = (0.55 * np.sin(2.0 * np.pi * 0.021 * k + phi)
                 + rng.uniform(-0.3, 0.3, size=2 * _BLOCK))
            yield x.reshape(_BLOCK, 2)
            k0 += 2 * _BLOCK

    @classmethod
    def reference(cls, xs):
        xs = np.asarray(xs, dtype=float)
        return (fir_reference(HALFBAND_E0, xs[:, 0])
                + fir_reference(HALFBAND_E1, xs[:, 1]))

    def build(self, ctx):
        self.x0 = Sig("x0")
        self.x1 = Sig("x1")
        self.x0.role = self.x1.role = "input"
        self.pe = FirFilter("pe", HALFBAND_E0, ctx=ctx)
        self.po = FirFilter("po", HALFBAND_E1, ctx=ctx)
        self.y = Sig("y")
        self.y.role = "output"
        self._start_stimulus()

    def run(self, ctx, n_samples):
        for _ in range(int(n_samples)):
            x0, x1 = next(self._stim)
            self.x0.assign(x0)
            self.x1.assign(x1)
            a = self.pe.step(self.x0)
            b = self.po.step(self.x1)
            self.y.assign(a + b)
            self._record(self.y)
            ctx.tick()


class GoertzelDesign(GalleryDesignBase):
    """Damped Goertzel resonator tuned to ``w0 = pi/4`` (r = 0.9).

    ``s[n] = x[n] + 2 r cos(w0) s[n-1] - r^2 s[n-2]`` with the real
    output ``y[n] = s[n] - r cos(w0) s[n-1]``.  The resonance gain
    (~5x) makes the state the classic range-explosion candidate: the
    registry pins ``range()`` annotations on the state signals exactly
    like the paper's knowledge-based ``b.range(-0.2, 0.2)``.
    """

    name = "goertzel"
    inputs = ("x",)
    output = "gz.y"
    pole_r = 0.9
    omega0 = np.pi / 4.0
    #: a1 = 2 r cos(w0), a2 = r^2, c1 = r cos(w0) — each rounded to
    #: the 2^-8 coefficient grid (dyadic, so the bit-vector prover
    #: can encode them exactly): c1 = 163/256, a1 = 2*c1, a2 = 207/256.
    c1 = 0.63671875
    a1 = 1.2734375
    a2 = 0.80859375

    @classmethod
    def _clean_blocks(cls, rng):
        phi = rng.uniform(0.0, 2.0 * np.pi)
        k0 = 0
        while True:
            k = k0 + np.arange(_BLOCK)
            x = (0.45 * np.sin(cls.omega0 * k + phi)
                 + rng.uniform(-0.2, 0.2, size=_BLOCK))
            yield x
            k0 += _BLOCK

    @classmethod
    def reference(cls, xs):
        xs = np.asarray(xs, dtype=float)
        out = np.empty(len(xs))
        s1 = s2 = 0.0
        for i, v in enumerate(xs):
            s = v + cls.a1 * s1 - cls.a2 * s2
            out[i] = s - cls.c1 * s1
            s2, s1 = s1, s
        return out

    def build(self, ctx):
        self.x = Sig("x")
        self.x.role = "input"
        self.s = Sig("gz.s")
        self.s1 = Reg("gz.s1")
        self.s2 = Reg("gz.s2")
        self.y = Sig("gz.y")
        self.y.role = "output"
        self._start_stimulus()

    def run(self, ctx, n_samples):
        for _ in range(int(n_samples)):
            self.x.assign(next(self._stim))
            self.s.assign(self.x + self.s1 * self.a1 - self.s2 * self.a2)
            self.y.assign(self.s - self.s1 * self.c1)
            self.s2.assign(self.s1)
            self.s1.assign(self.s)
            self._record(self.y)
            ctx.tick()


class IirLatticeDesign(GalleryDesignBase):
    """Two-stage all-pole IIR lattice (Gray-Markel structure).

    Reflection coefficients ``k1 = 19/32``, ``k2 = -13/32`` (stable
    since |k| < 1; dyadic so the bit-vector prover can encode them
    exactly).  Per tick::

        f1 = x  - k2 * b1      b1' = b0 + k1 * y
        y  = f1 - k1 * b0      b0' = y

    which is the direct-form recurrence
    ``y[n] = x[n] - k1 (1 + k2) y[n-1] - k2 y[n-2]``.
    """

    name = "iir-lattice"
    inputs = ("x",)
    output = "lat.y"
    k1 = 0.59375
    k2 = -0.40625

    @classmethod
    def _clean_blocks(cls, rng):
        while True:
            yield rng.uniform(-0.6, 0.6, size=_BLOCK)

    @classmethod
    def reference(cls, xs):
        xs = np.asarray(xs, dtype=float)
        out = np.empty(len(xs))
        b0 = b1 = 0.0
        for i, v in enumerate(xs):
            f1 = v - cls.k2 * b1
            y = f1 - cls.k1 * b0
            b1 = b0 + cls.k1 * y
            b0 = y
            out[i] = y
        return out

    def build(self, ctx):
        self.x = Sig("x")
        self.x.role = "input"
        self.f1 = Sig("lat.f1")
        self.y = Sig("lat.y")
        self.b0 = Reg("lat.b0")
        self.b1 = Reg("lat.b1")
        self.y.role = "output"
        self._start_stimulus()

    def run(self, ctx, n_samples):
        for _ in range(int(n_samples)):
            self.x.assign(next(self._stim))
            self.f1.assign(self.x - self.b1 * self.k2)
            self.y.assign(self.f1 - self.b0 * self.k1)
            self.b1.assign(self.b0 + self.y * self.k1)
            self.b0.assign(self.y)
            self._record(self.y)
            ctx.tick()


#: quarter-rate local oscillator: cos(pi/2 * k) and -sin(pi/2 * k).
_LO_COS = (1.0, 0.0, -1.0, 0.0)
_LO_SIN = (0.0, -1.0, 0.0, 1.0)


class DdcDesign(GalleryDesignBase):
    """Digital down-converter: quarter-rate LO mixer + CIC decimator.

    The passband input ``x[k] = m[k] cos(pi/2 k)`` is mixed with the
    exact quarter-rate LO (values {1, 0, -1, 0} — every product is
    exact on the input grid) and both I/Q branches run a 2-stage CIC
    decimate-by-4: two wrapping integrators per branch, comb pairs and
    the ``1/16`` gain correction at the decimated rate.  The wrapping
    accumulators are the paper's Section 6.1 story: their float
    companions diverge (the reference never wraps), so the registry
    pins ``error()`` annotations on the wrap-domain signals instead of
    widening them — exactly the methodology the NCO worked example
    uses.  The decimated comb runs every 4th tick, so the per-tick
    structure is non-uniform and the design stays on the interpreted
    engine (and outside the verifier's uniform-tick model).
    """

    name = "ddc"
    inputs = ("x",)
    output = "ddc.yi"
    R = 4

    @classmethod
    def _clean_blocks(cls, rng):
        phi = rng.uniform(0.0, 2.0 * np.pi)
        k0 = 0
        while True:
            k = k0 + np.arange(_BLOCK)
            m = (0.55 * np.sin(2.0 * np.pi * 0.03 * k + phi)
                 + 0.2 * np.sin(2.0 * np.pi * 0.011 * k + 1.3 * phi))
            yield m * np.cos(0.5 * np.pi * k)
            k0 += _BLOCK

    @classmethod
    def reference(cls, xs):
        xs = np.asarray(xs, dtype=float)
        out = np.empty(len(xs))
        ii1 = ii2 = id1 = id2 = 0.0
        yi = 0.0
        for k, v in enumerate(xs):
            i = v * _LO_COS[k & 3]
            if (k & 3) == 3:
                c1 = ii2 - id1
                id1 = ii2
                c2 = c1 - id2
                id2 = c1
                yi = c2 * 0.0625
            ii1, ii2 = ii1 + i, ii2 + ii1
            out[k] = yi
        return out

    def build(self, ctx):
        self.x = Sig("x")
        self.x.role = "input"
        self.i = Sig("ddc.i")
        self.q = Sig("ddc.q")
        self.ii1 = Reg("ddc.ii1")
        self.ii2 = Reg("ddc.ii2")
        self.qi1 = Reg("ddc.qi1")
        self.qi2 = Reg("ddc.qi2")
        self.id1 = Reg("ddc.id1")
        self.id2 = Reg("ddc.id2")
        self.qd1 = Reg("ddc.qd1")
        self.qd2 = Reg("ddc.qd2")
        self.ci1 = Sig("ddc.ci1")
        self.ci2 = Sig("ddc.ci2")
        self.cq1 = Sig("ddc.cq1")
        self.cq2 = Sig("ddc.cq2")
        self.yi = Sig("ddc.yi")
        self.yq = Sig("ddc.yq")
        self.yi.role = "output"
        self._k = 0
        self._start_stimulus()

    def run(self, ctx, n_samples):
        for _ in range(int(n_samples)):
            k = self._k
            self.x.assign(next(self._stim))
            self.i.assign(self.x * _LO_COS[k & 3])
            self.q.assign(self.x * _LO_SIN[k & 3])
            if (k & 3) == 3:
                # Comb pair at the decimated rate; register reads see
                # the pre-tick integrator state, matching reference().
                self.ci1.assign(self.ii2 - self.id1)
                self.id1.assign(self.ii2)
                self.ci2.assign(self.ci1 - self.id2)
                self.id2.assign(self.ci1)
                self.yi.assign(self.ci2 * 0.0625)
                self.cq1.assign(self.qi2 - self.qd1)
                self.qd1.assign(self.qi2)
                self.cq2.assign(self.cq1 - self.qd2)
                self.qd2.assign(self.cq1)
                self.yq.assign(self.cq2 * 0.0625)
            self.ii1.assign(self.ii1 + self.i)
            self.ii2.assign(self.ii2 + self.ii1)
            self.qi1.assign(self.qi1 + self.q)
            self.qi2.assign(self.qi2 + self.qi1)
            self._k += 1
            self._record(self.yi)
            ctx.tick()


class KalmanTrackerDesign(GalleryDesignBase):
    """One-state steady-state Kalman tracker (alpha filter), K = 1/4.

    ``e[n] = z[n] - xhat[n-1]``; ``xhat[n] = xhat[n-1] + K e[n]`` —
    i.e. ``xhat' = 0.75 xhat + 0.25 z``, a contraction: with ``z`` in
    the declared envelope the state never clips, and the truncating
    (toward-zero) state write-back makes zero-input orbits strictly
    decay, so both verifier properties are theorems.
    """

    name = "kalman"
    inputs = ("z",)
    output = "kf.x"
    gain = 0.25

    @classmethod
    def _clean_blocks(cls, rng):
        phi = rng.uniform(0.0, 2.0 * np.pi)
        k0 = 0
        while True:
            k = k0 + np.arange(_BLOCK)
            z = (0.6 * np.sin(2.0 * np.pi * 0.005 * k + phi)
                 + rng.normal(0.0, 0.04, size=_BLOCK))
            yield z
            k0 += _BLOCK

    @classmethod
    def reference(cls, xs):
        xs = np.asarray(xs, dtype=float)
        out = np.empty(len(xs))
        x = 0.0
        for i, z in enumerate(xs):
            x = x + cls.gain * (z - x)
            out[i] = x
        return out

    def build(self, ctx):
        self.z = Sig("z")
        self.z.role = "input"
        self.e = Sig("kf.e")
        self.x = Reg("kf.x")
        self._start_stimulus()

    def run(self, ctx, n_samples):
        for _ in range(int(n_samples)):
            self.z.assign(next(self._stim))
            self.e.assign(self.z - self.x)
            self.x.assign(self.x + self.e * self.gain)
            ctx.tick()
            # The state is a register: read it after the clock edge so
            # the recorded track aligns with reference().
            self._record(self.x)


class DecimInterpDesign(GalleryDesignBase):
    """Halfband decimate-by-2 followed by interpolate-by-2.

    The decimator is the :class:`PolyphaseFirDesign` structure; the
    interpolator's polyphase branches reconstruct the even samples as a
    pure delay and the odd (mid-point) samples through
    :data:`INTERP_F0` (twice the even halfband taps, absorbing the
    zero-stuffing gain).  Output is the interpolated mid-point stream —
    an end-to-end multirate chain whose per-tick structure stays
    uniform (2 samples in, 2 out), so it rides the compiled engine.
    """

    name = "decim-interp"
    inputs = ("x0", "x1")
    output = "di.y0"
    stim_width = 2

    @classmethod
    def _clean_blocks(cls, rng):
        phi = rng.uniform(0.0, 2.0 * np.pi)
        k0 = 0
        while True:
            k = k0 + np.arange(2 * _BLOCK)
            x = (0.5 * np.sin(2.0 * np.pi * 0.013 * k + phi)
                 + rng.uniform(-0.25, 0.25, size=2 * _BLOCK))
            yield x.reshape(_BLOCK, 2)
            k0 += 2 * _BLOCK

    @classmethod
    def reference(cls, xs):
        xs = np.asarray(xs, dtype=float)
        d = (fir_reference(HALFBAND_E0, xs[:, 0])
             + fir_reference(HALFBAND_E1, xs[:, 1]))
        return fir_reference(INTERP_F0, d)

    def build(self, ctx):
        self.x0 = Sig("x0")
        self.x1 = Sig("x1")
        self.x0.role = self.x1.role = "input"
        self.de = FirFilter("di.e", HALFBAND_E0, ctx=ctx)
        self.do = FirFilter("di.o", HALFBAND_E1, ctx=ctx)
        self.d = Sig("di.d")
        self.f0 = FirFilter("di.f0", INTERP_F0, ctx=ctx)
        self.f1 = FirFilter("di.f1", (0.0, 1.0), ctx=ctx)
        self.y0 = Sig("di.y0")
        self.y1 = Sig("di.y1")
        self.y0.role = "output"
        self._start_stimulus()

    def run(self, ctx, n_samples):
        for _ in range(int(n_samples)):
            x0, x1 = next(self._stim)
            self.x0.assign(x0)
            self.x1.assign(x1)
            a = self.de.step(self.x0)
            b = self.do.step(self.x1)
            self.d.assign(a + b)
            self.y0.assign(self.f0.step(self.d))
            self.y1.assign(self.f1.step(self.d))
            self._record(self.y0)
            ctx.tick()
