"""The scenario matrix: {designs} x {channels} x {faults} x {seeds}.

``run_matrix`` fans every cell of the requested grid through
:func:`repro.parallel.run_simulations` — one batch per (design,
channel) group so the compiled engine can batch eligible cells and a
shared write-ahead :class:`~repro.robust.recovery.Journal` makes the
whole matrix resumable bit-exactly (kill it mid-run, call again with
the same journal: completed cells replay, the rest execute).  Each
design additionally gets an analysis pass — lint cleanliness, the
documented verify pre-flight verdicts and the float reference-model
agreement — all recorded in the artifact.

The committed artifact ``GALLERY_MATRIX.json`` (repo root, next to
``BENCH_throughput.json``) is the CI contract: its ``digest`` covers
the *structural* cell facts (completion, error kinds, fault
attribution, lint/verify statuses) so it is reproducible across
platforms, while measured SQNRs are compared within a tolerance —
see :func:`check_artifact`.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.gallery.registry import (factory, gallery, lint_entry,
                                    reference_check, seeded_factory,
                                    verify_entry)
from repro.obs import counters as obs_counters
from repro.obs import trace as obs_trace
from repro.parallel import SimConfig, run_simulations
from repro.robust.faults import BitFlip, InputScale, NanInject
from repro.robust.invariants import digest as _digest

__all__ = [
    "CHANNEL_MODELS", "FAULT_CAMPAIGNS",
    "SMOKE_AXES", "FULL_AXES",
    "MatrixResult", "run_matrix",
    "matrix_digest", "check_artifact", "write_artifact", "load_artifact",
]

#: named channel models: ``None`` or ``(taps, noise_std, salt)`` specs
#: realised per stimulus column as a :class:`repro.dsp.chan.Channel`.
CHANNEL_MODELS = {
    "clean": None,
    "awgn": ((1.0,), 0.02, 11),
    "multipath": ((1.0, 0.25, -0.1), 0.01, 13),
}


def _faults_clean(entry, n):
    return ()


def _faults_bitflip(entry, n):
    """One storage upset: flip the output word's LSB mid-run."""
    return (BitFlip(entry.output, bit=0, at=n // 2),)


def _faults_input_scale(entry, n):
    """Overdrive the first input by 1.35x (range-headroom stress)."""
    return (InputScale(entry.inputs[0], 1.35),)


def _faults_nan(entry, n):
    """Push one NaN through the first input (guard-layer stress)."""
    return (NanInject(entry.inputs[0], at=n // 3),)


#: named fault campaigns: callables ``(entry, n_samples) -> faults``.
FAULT_CAMPAIGNS = {
    "clean": _faults_clean,
    "bitflip-lsb": _faults_bitflip,
    "input-scale": _faults_input_scale,
    "nan-inject": _faults_nan,
}

#: the pinned CI smoke grid (every axis >= 2 where the ISSUE demands).
SMOKE_AXES = {
    "channels": ("clean", "awgn"),
    "campaigns": ("clean", "bitflip-lsb"),
    "seeds": (101, 202),
    "n_samples": 1024,
}

#: the full grid, CI's ``slow`` lane.
FULL_AXES = {
    "channels": ("clean", "awgn", "multipath"),
    "campaigns": ("clean", "bitflip-lsb", "input-scale", "nan-inject"),
    "seeds": (101, 202, 303),
    "n_samples": 4096,
}

#: artifact schema identifier.
SCHEMA = "repro.gallery.matrix/v1"


class MatrixResult:
    """Everything one matrix run produced.

    ``cells`` are JSON-ready per-cell records (in grid order);
    ``outcomes`` keeps the raw :class:`~repro.parallel.SimOutcome`
    objects aligned with ``cells`` for digest/resume assertions;
    ``design_reports`` maps design name to its analysis summary.
    """

    def __init__(self, mode, axes, cells, outcomes, design_reports):
        self.mode = mode
        self.axes = axes
        self.cells = list(cells)
        self.outcomes = list(outcomes)
        self.design_reports = dict(design_reports)

    def digest(self):
        return matrix_digest(self.cells, self.design_reports)

    @property
    def all_targets_met(self):
        return all(r["meets_target"]
                   for r in self.design_reports.values())

    def to_artifact(self):
        """The committed ``GALLERY_MATRIX.json`` payload."""
        completed = sum(1 for c in self.cells if c["completed"])
        faulted = sum(1 for c in self.cells if c["fault_fired"])
        return {
            "schema": SCHEMA,
            "mode": self.mode,
            "generated_by": "python -m repro.gallery matrix --%s"
                            % self.mode,
            "axes": self.axes,
            "cells": self.cells,
            "designs": self.design_reports,
            "counts": {
                "cells": len(self.cells),
                "completed": completed,
                "fault_fired": faulted,
                "designs": len(self.design_reports),
            },
            "digest": self.digest(),
        }

    def summary(self):
        lines = ["gallery matrix [%s]: %d cell(s), %d design(s)"
                 % (self.mode, len(self.cells),
                    len(self.design_reports))]
        for name in sorted(self.design_reports):
            r = self.design_reports[name]
            lines.append(
                "  %-14s sqnr %6.1f dB (target %5.1f, %s)  lint:%s  "
                "verify:%s"
                % (name, r["sqnr_db_min_clean"], r["sqnr_target_db"],
                   "ok" if r["meets_target"] else "MISS",
                   "clean" if r["lint_clean"] else "FINDINGS",
                   ",".join(v["status"] for v in r["verify"])))
        return "\n".join(lines)


def _structural_cell(cell):
    """The platform-independent subset of one cell record."""
    keys = ("design", "channel", "campaign", "seed", "n_samples",
            "engine", "completed", "error_kind", "fault_fired")
    return {k: cell[k] for k in keys}


def matrix_digest(cells, design_reports):
    """Canonical digest of the matrix's structural facts.

    Measured floats (SQNRs, reference errors) are deliberately outside
    the digest — they are compared within tolerance instead, so the
    committed artifact survives BLAS/libm differences across platforms
    while any change in coverage, completion, fault attribution, lint
    cleanliness or verify status changes the digest.
    """
    structural = {
        "cells": [_structural_cell(c) for c in cells],
        "designs": {
            name: {
                "sqnr_target_db": r["sqnr_target_db"],
                "meets_target": r["meets_target"],
                "lint_clean": r["lint_clean"],
                "verify": [
                    {"property": v["property"], "status": v["status"],
                     "k": v["k"]}
                    for v in r["verify"]],
            }
            for name, r in design_reports.items()},
    }
    return _digest(structural)


def run_matrix(designs=None, channels=None, campaigns=None, seeds=None,
               n_samples=None, smoke=True, journal=None, workers=None,
               analyze=True, verify_backend="enumeration", service=None):
    """Run the scenario matrix; returns a :class:`MatrixResult`.

    Axes default to :data:`SMOKE_AXES` (``smoke=True``, the pinned CI
    grid) or :data:`FULL_AXES`.  ``journal`` (path or Journal) makes
    the run resumable: completed cells replay bit-exactly on a rerun.
    ``analyze=False`` skips the per-design lint/verify/reference pass
    (the resume tests exercise only the simulation grid).

    ``service`` (a :class:`repro.service.RefinementService`) routes
    every (design, channel) batch through the service as tenant
    ``"gallery"`` instead of calling the runner directly — same
    outcomes, bit-exactly, but with the service's admission control,
    content-store dedupe and submission-journal durability applied per
    cell.  The service owns its own result store, so ``journal`` is
    ignored in that mode.
    """
    axes = SMOKE_AXES if smoke else FULL_AXES
    reg = gallery()
    names = list(designs) if designs else sorted(reg)
    channels = list(channels) if channels else list(axes["channels"])
    campaigns = list(campaigns) if campaigns else list(axes["campaigns"])
    seeds = [int(s) for s in seeds] if seeds else list(axes["seeds"])
    n = int(n_samples) if n_samples else axes["n_samples"]
    mode = "smoke" if smoke else "full"

    for name in names:
        if name not in reg:
            raise KeyError("unknown gallery design %r (known: %s)"
                           % (name, ", ".join(sorted(reg))))
    for ch in channels:
        if ch not in CHANNEL_MODELS:
            raise KeyError("unknown channel model %r (known: %s)"
                           % (ch, ", ".join(sorted(CHANNEL_MODELS))))
    for camp in campaigns:
        if camp not in FAULT_CAMPAIGNS:
            raise KeyError("unknown fault campaign %r (known: %s)"
                           % (camp, ", ".join(sorted(FAULT_CAMPAIGNS))))

    cells = []
    outcomes = []
    with obs_trace.span("gallery.matrix", mode=mode, designs=len(names),
                        channels=len(channels), campaigns=len(campaigns),
                        seeds=len(seeds)) as span:
        for name in names:
            entry = reg[name]
            with obs_trace.span("gallery.design", design=name):
                for ch_name in channels:
                    spec = CHANNEL_MODELS[ch_name]
                    grid = [(camp, seed) for camp in campaigns
                            for seed in seeds]
                    configs = []
                    for camp, seed in grid:
                        faults = FAULT_CAMPAIGNS[camp](entry, n)
                        configs.append(SimConfig(
                            label="%s|%s|%s|%d" % (name, ch_name, camp,
                                                   seed),
                            dtypes=entry.dtypes, ranges=entry.ranges,
                            errors=entry.errors, n_samples=n,
                            overflow_action="record",
                            guard_action="record",
                            faults=faults, factory_seed=seed,
                            catch_errors=True))
                    engine = "compiled" if entry.compiled_ok else None
                    if service is not None:
                        outs = service.run_batch(
                            factory(entry, spec), configs,
                            seeded_factory=seeded_factory(entry, spec),
                            engine=engine, tenant="gallery")
                    else:
                        outs = run_simulations(
                            factory(entry, spec), configs,
                            seeded_factory=seeded_factory(entry, spec),
                            journal=journal, workers=workers,
                            engine=engine)
                    for (camp, seed), cfg, out in zip(grid, configs,
                                                      outs):
                        cells.append(_cell_record(
                            entry, ch_name, camp, seed, n,
                            engine or "interpreted", out))
                        outcomes.append(out)
                    obs_counters.inc("gallery.cells", len(configs))
        span.set(cells=len(cells))

        design_reports = {}
        if analyze:
            for name in names:
                with obs_trace.span("gallery.analyze", design=name):
                    design_reports[name] = _analyze_design(
                        reg[name], cells, verify_backend)
                obs_counters.inc("gallery.analyzed")

    return MatrixResult(mode,
                        {"designs": names, "channels": channels,
                         "campaigns": campaigns, "seeds": seeds,
                         "n_samples": n},
                        cells, outcomes, design_reports)


def _cell_record(entry, ch_name, camp, seed, n, engine, out):
    sqnr = None
    overflows = None
    if out.completed:
        try:
            v = out.sqnr_db()
            sqnr = None if not np.isfinite(v) else round(float(v), 2)
        except KeyError:
            sqnr = None
        overflows = int(sum(r.overflow_count
                            for r in out.records.values()))
    return {
        "design": entry.name,
        "channel": ch_name,
        "campaign": camp,
        "seed": seed,
        "n_samples": n,
        "engine": engine,
        "completed": out.completed,
        "error_kind": out.error_kind,
        "fault_fired": bool(out.fault_fired) and any(out.fault_fired),
        "sqnr_db": sqnr,
        "overflows": overflows,
        "guard_trips": int(out.guard_trips) if out.completed else None,
    }


def _analyze_design(entry, cells, verify_backend):
    """Lint + verify + reference agreement + clean-cell SQNR summary."""
    clean = [c["sqnr_db"] for c in cells
             if c["design"] == entry.name and c["campaign"] == "clean"
             and c["channel"] == "clean" and c["sqnr_db"] is not None]
    sqnr_min = round(min(clean), 2) if clean else float("nan")
    sqnr_mean = round(float(np.mean(clean)), 2) if clean else float("nan")
    lint_report = lint_entry(entry)
    lint_errors = [f for f in lint_report if f.severity == "error"]
    verdicts = verify_entry(entry, backend=verify_backend)
    ref_err = reference_check(entry)
    return {
        "description": entry.description,
        "output": entry.output,
        "sqnr_target_db": entry.sqnr_target_db,
        "sqnr_db_min_clean": sqnr_min,
        "sqnr_db_mean_clean": sqnr_mean,
        "meets_target": bool(clean) and sqnr_min >= entry.sqnr_target_db,
        "lint_clean": not lint_errors,
        "lint_findings": len(lint_report),
        "verify": [
            {"property": v.property, "status": v.status, "k": v.k,
             "backend": v.backend, "reason": v.reason}
            for v in verdicts],
        "reference_max_abs_err": float(ref_err),
        "compiled_ok": entry.compiled_ok,
    }


def write_artifact(result, path):
    """Write the matrix artifact atomically; returns the payload."""
    payload = result.to_artifact()
    tmp = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return payload


def load_artifact(path):
    with open(path) as fh:
        return json.load(fh)


def check_artifact(fresh, committed, tol_db=0.5):
    """Compare a fresh artifact against the committed one.

    Returns a list of human-readable problems (empty = pass):

    * structural digest mismatch (coverage/completion/lint/verify
      drift),
    * any design missing its documented SQNR target in the fresh run,
    * clean-cell SQNRs drifting more than ``tol_db`` from the committed
      measurement.
    """
    problems = []
    if fresh.get("schema") != committed.get("schema"):
        problems.append("schema mismatch: %r != %r"
                        % (fresh.get("schema"), committed.get("schema")))
        return problems
    if fresh.get("digest") != committed.get("digest"):
        problems.append("matrix digest mismatch: %s != %s (structural "
                        "regression: coverage, completion, lint or "
                        "verify status changed)"
                        % (fresh.get("digest"), committed.get("digest")))
    for name, rep in sorted(fresh.get("designs", {}).items()):
        if not rep.get("meets_target"):
            problems.append(
                "%s: SQNR %.2f dB misses its documented target %.1f dB"
                % (name, rep.get("sqnr_db_min_clean", float("nan")),
                   rep.get("sqnr_target_db", float("nan"))))
    committed_cells = {
        (c["design"], c["channel"], c["campaign"], c["seed"]): c
        for c in committed.get("cells", ())}
    for c in fresh.get("cells", ()):
        if c["campaign"] != "clean" or c["sqnr_db"] is None:
            continue
        key = (c["design"], c["channel"], c["campaign"], c["seed"])
        old = committed_cells.get(key)
        if old is None or old.get("sqnr_db") is None:
            continue
        drift = abs(c["sqnr_db"] - old["sqnr_db"])
        if drift > tol_db:
            problems.append(
                "%s|%s|%s|%d: SQNR drifted %.2f dB (%.2f -> %.2f, "
                "tolerance %.2f)"
                % (key + (drift, old["sqnr_db"], c["sqnr_db"], tol_db)))
    return problems
