"""``repro.gallery`` — the design gallery and its scenario matrix.

A registry of seven traced designs beyond :mod:`repro.dsp` — FFT
butterfly stage, polyphase halfband filter bank, Goertzel detector, IIR
lattice, DDC chain (quarter-rate LO + CIC decimator), one-state Kalman
tracker and a decimation/interpolation cascade — each paired with a
float reference model, a declared input envelope, registry-pinned
fixed-point types and a documented SQNR target (``docs/gallery.md``
documents every entry).

Registry lookup:

>>> from repro.gallery import gallery, get_design
>>> len(gallery()) >= 6
True
>>> get_design("kalman").description
'one-state steady-state Kalman tracker (K = 1/4)'

One matrix cell — a fully annotated, monitored simulation:

>>> from repro.gallery import single_run
>>> out = single_run(get_design("fft-butterfly"), n_samples=128)
>>> out.completed and out.sqnr_db() > 40.0
True

The scenario matrix (:func:`run_matrix`) fans
{designs} x {channel models} x {fault campaigns} x {seeds} through
:func:`repro.parallel.run_simulations` — compiled engine where
eligible, journal-backed resume, obs spans — and its committed artifact
``GALLERY_MATRIX.json`` is regenerated/checked by
``python -m repro.gallery matrix`` (see ``EXPERIMENTS.md``).
"""

from repro.gallery.designs import (DdcDesign, DecimInterpDesign,
                                   FftButterflyDesign, GalleryDesignBase,
                                   GoertzelDesign, IirLatticeDesign,
                                   KalmanTrackerDesign, PolyphaseFirDesign)
from repro.gallery.matrix import (CHANNEL_MODELS, FAULT_CAMPAIGNS,
                                  MatrixResult, check_artifact,
                                  load_artifact, run_matrix,
                                  write_artifact)
from repro.gallery.registry import (GalleryEntry, T_IN, factory, gallery,
                                    get_design, lint_entry,
                                    reference_check, seeded_factory,
                                    single_run, verify_entry)

__all__ = [
    "GalleryDesignBase", "FftButterflyDesign", "PolyphaseFirDesign",
    "GoertzelDesign", "IirLatticeDesign", "DdcDesign",
    "KalmanTrackerDesign", "DecimInterpDesign",
    "GalleryEntry", "gallery", "get_design", "T_IN",
    "factory", "seeded_factory",
    "reference_check", "single_run", "lint_entry", "verify_entry",
    "CHANNEL_MODELS", "FAULT_CAMPAIGNS", "MatrixResult", "run_matrix",
    "check_artifact", "write_artifact", "load_artifact",
]
