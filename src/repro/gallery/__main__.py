"""``python -m repro.gallery`` — see :mod:`repro.gallery.cli`."""

import sys

from repro.gallery.cli import main

sys.exit(main())
