"""Entry point: ``python -m repro.verify``."""

import sys

from repro.verify.cli import main

sys.exit(main())
