"""Verdicts — the checker's output records.

Every property check ends in exactly one of three states:

* ``PROVED`` — the violation formula is unsatisfiable over the declared
  envelope and horizon: a theorem, not a statistic,
* ``COUNTEREXAMPLE`` — a concrete stimulus violating the property; it
  is replayed through the interpreted engine bit-for-bit before being
  reported (see :mod:`repro.verify.replay`),
* ``UNKNOWN`` — the encoding or the budget could not cover the
  question; the reason says why and what to raise.

Each verdict maps onto the existing diagnostics vocabulary: a stable
DG code (DG210–DG212), a :class:`repro.lint.core.Finding`-compatible
record for report/SARIF reuse, and a ``verify.*`` counter name.
"""

from __future__ import annotations

from repro.lint.core import Finding, LintReport

__all__ = [
    "PROVED", "COUNTEREXAMPLE", "UNKNOWN",
    "DG_CODES", "CATEGORIES", "SEVERITIES", "VERIFY_RULE_METAS",
    "Counterexample", "Verdict", "VerifyReport",
]

PROVED = "PROVED"
COUNTEREXAMPLE = "COUNTEREXAMPLE"
UNKNOWN = "UNKNOWN"

#: Stable diagnostic codes (see repro.robust.diagnostics.CATEGORY_CODES).
DG_CODES = {
    PROVED: "DG210",
    COUNTEREXAMPLE: "DG211",
    UNKNOWN: "DG212",
}

#: Diagnostics stream categories carrying the codes above.
CATEGORIES = {
    PROVED: "verify-proved",
    COUNTEREXAMPLE: "verify-counterexample",
    UNKNOWN: "verify-unknown",
}

SEVERITIES = {
    PROVED: "info",
    COUNTEREXAMPLE: "error",
    UNKNOWN: "warning",
}


class _RuleMeta:
    """Rule-shaped metadata so SARIF output can describe DG210–DG212."""

    def __init__(self, id, title, severity, description, hint):
        self.id = id
        self.title = title
        self.severity = severity
        self.description = description
        self.hint = hint


#: SARIF rule metadata for verify findings (pass as ``extra_rules`` to
#: :func:`repro.lint.output.to_sarif_dict`).
VERIFY_RULE_METAS = (
    _RuleMeta("DG210", "property proved", "info",
              "Bounded model checking proved the property for the "
              "declared envelope and horizon.", ""),
    _RuleMeta("DG211", "property counterexample", "error",
              "Bounded model checking found a concrete stimulus "
              "violating the property; it was replayed through the "
              "interpreted engine bit for bit.",
              "replay the recorded stimulus, then widen the type or "
              "saturate"),
    _RuleMeta("DG212", "property undecided", "warning",
              "The encoding or the verification budget could not cover "
              "the question.",
              "raise the VerifyBudget, shorten the horizon or install "
              "z3-solver"),
)


class Counterexample:
    """A concrete violating execution.

    ``inputs`` maps each input name to its per-step stimulus (real
    values on the input grid, length = horizon); ``init_state`` maps
    register names to their power-on values (non-trivial only for
    limit-cycle counterexamples).  ``signal``/``step``/``value`` locate
    the first violation: for overflow, the pre-quantization value the
    engine would log.
    """

    __slots__ = ("inputs", "init_state", "signal", "step", "value",
                 "detail", "replayed")

    def __init__(self, inputs, init_state, signal=None, step=None,
                 value=None, detail="", replayed=False):
        self.inputs = {k: list(v) for k, v in dict(inputs).items()}
        self.init_state = dict(init_state)
        self.signal = signal
        self.step = step
        self.value = value
        self.detail = detail
        self.replayed = replayed

    @property
    def horizon(self):
        return max((len(v) for v in self.inputs.values()), default=0)

    def to_dict(self):
        return {
            "inputs": {k: list(v) for k, v in self.inputs.items()},
            "init_state": dict(self.init_state),
            "signal": self.signal,
            "step": self.step,
            "value": self.value,
            "detail": self.detail,
            "replayed": self.replayed,
        }

    def __repr__(self):
        return ("Counterexample(signal=%r, step=%r, replayed=%r)"
                % (self.signal, self.step, self.replayed))


class Verdict:
    """Outcome of one property check on one design."""

    __slots__ = ("property", "status", "design_name", "k", "backend",
                 "message", "counterexample", "reason", "stats",
                 "envelope")

    def __init__(self, prop, status, design_name, k, backend,
                 message="", counterexample=None, reason="", stats=None,
                 envelope=None):
        if status not in (PROVED, COUNTEREXAMPLE, UNKNOWN):
            raise ValueError("bad verdict status %r" % (status,))
        self.property = prop              # no-overflow | no-limit-cycle
        self.status = status              # | response-error
        self.design_name = design_name
        self.k = int(k)
        self.backend = backend
        self.message = message
        self.counterexample = counterexample
        self.reason = reason
        self.stats = dict(stats or {})
        self.envelope = envelope          # {input: (lo, hi)} or None

    @property
    def code(self):
        """Stable DG diagnostic code of this verdict."""
        return DG_CODES[self.status]

    @property
    def category(self):
        return CATEGORIES[self.status]

    @property
    def severity(self):
        return SEVERITIES[self.status]

    def describe(self):
        text = "%s %s [%s, k=%d, %s]" % (
            self.status, self.property, self.design_name, self.k,
            self.backend)
        if self.message:
            text += ": %s" % self.message
        if self.status == UNKNOWN and self.reason:
            text += ": %s" % self.reason
        return text

    def to_finding(self):
        """Finding-compatible record for lint report / SARIF reuse."""
        cex = self.counterexample
        data = {
            "property": self.property,
            "verdict": self.status,
            "k": self.k,
            "backend": self.backend,
        }
        if self.envelope is not None:
            data["envelope"] = {k: list(v)
                                for k, v in self.envelope.items()}
        if self.reason:
            data["reason"] = self.reason
        if cex is not None:
            data["counterexample"] = cex.to_dict()
        hint = ""
        if self.status == COUNTEREXAMPLE:
            hint = ("replay the recorded stimulus with "
                    "repro.verify.replay_counterexample, then widen the "
                    "type or saturate")
        elif self.status == UNKNOWN:
            hint = ("raise the VerifyBudget, shorten the horizon or "
                    "install z3-solver")
        return Finding(
            self.code, SEVERITIES[self.status], self.describe(),
            hint=hint,
            signal=None if cex is None else cex.signal,
            data=data)

    def to_dict(self):
        d = {
            "property": self.property,
            "status": self.status,
            "design": self.design_name,
            "k": self.k,
            "backend": self.backend,
            "code": self.code,
            "message": self.message,
            "reason": self.reason,
            "stats": dict(self.stats),
        }
        if self.envelope is not None:
            d["envelope"] = {k: list(v) for k, v in self.envelope.items()}
        if self.counterexample is not None:
            d["counterexample"] = self.counterexample.to_dict()
        return d

    def __repr__(self):
        return "Verdict(%s)" % self.describe()


class VerifyReport:
    """All verdicts for one design, with lint-report interoperability."""

    def __init__(self, verdicts, design_name="", artifact=None):
        self.verdicts = list(verdicts)
        self.design_name = design_name
        self.artifact = artifact

    def __iter__(self):
        return iter(self.verdicts)

    def __len__(self):
        return len(self.verdicts)

    def by_status(self, status):
        return [v for v in self.verdicts if v.status == status]

    @property
    def all_proved(self):
        return all(v.status == PROVED for v in self.verdicts)

    @property
    def has_counterexample(self):
        return any(v.status == COUNTEREXAMPLE for v in self.verdicts)

    def to_lint_report(self):
        """Reuse the lint text/JSON/SARIF machinery for verify output."""
        return LintReport([v.to_finding() for v in self.verdicts],
                          design_name=self.design_name,
                          artifact=self.artifact)

    def to_dict(self):
        return {
            "design": self.design_name,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    def summary(self):
        counts = {PROVED: 0, COUNTEREXAMPLE: 0, UNKNOWN: 0}
        for v in self.verdicts:
            counts[v.status] += 1
        return ("%s: %d proved, %d counterexamples, %d unknown"
                % (self.design_name or "design", counts[PROVED],
                   counts[COUNTEREXAMPLE], counts[UNKNOWN]))

    def table(self):
        lines = [self.summary()]
        for v in self.verdicts:
            lines.append("  " + v.describe())
        return "\n".join(lines)
