"""Arbitrary-precision bit-vector expression IR of the verifier.

The encoder (:mod:`repro.verify.encode`) lowers a traced design onto
expressions over *integer codes*: every wire is a pair ``(expr, f)``
whose real value is ``expr * 2**-f``.  This module provides the
expression nodes, exact integer interval tracking (used both to size
solver bit-vectors and to enforce the double-exactness budget), a
non-recursive linearizer and an evaluator — everything the enumeration
backend needs, with no third-party dependency.  The z3 backend maps the
same nodes onto fixed-width ``BitVec`` terms.

Semantics are plain Python integer arithmetic:

* ``ashr`` is an arithmetic (floor) shift right — identical to Python's
  ``>>`` on negative ints,
* ``wrap`` is two's-complement (or unsigned) reduction modulo ``2**n``
  — identical to :func:`repro.core.word.wrap_code`,
* comparisons are signed integer comparisons.

Constructors constant-fold eagerly, so structurally trivial formulas
(e.g. multiplication by a literal coefficient) stay small.

>>> x = var("x", -4, 3)
>>> e = add(mul(x, const(3)), const(1))
>>> (e.lo, e.hi)
(-11, 10)
>>> ev = Evaluator([e])
>>> ev.run({"x": -2})[e]
-5
"""

from __future__ import annotations

from repro.core import word

__all__ = [
    "BV", "Bool", "Evaluator",
    "const", "var", "add", "sub", "mul", "neg", "shl", "ashr", "ite",
    "wrap",
    "lt", "le", "gt", "ge", "eq", "ne",
    "band", "bor", "bnot", "bool_const", "TRUE", "FALSE",
    "any_of", "all_of", "width_bits", "collect_nodes", "variables_of",
]


class BV:
    """One integer-valued expression node with exact bounds."""

    __slots__ = ("op", "args", "lo", "hi")

    def __init__(self, op, args, lo, hi):
        self.op = op          # const|var|add|sub|mul|neg|shl|ashr|ite|wrap
        self.args = args      # operands: BV/Bool nodes or literals
        self.lo = lo          # exact integer lower bound
        self.hi = hi          # exact integer upper bound

    def __repr__(self):
        return "BV(%s, lo=%d, hi=%d)" % (self.op, self.lo, self.hi)


class Bool:
    """One boolean-valued expression node."""

    __slots__ = ("op", "args")

    def __init__(self, op, args):
        self.op = op          # true|false|lt|le|eq|and|or|not
        self.args = args

    def __repr__(self):
        return "Bool(%s)" % self.op


TRUE = Bool("true", ())
FALSE = Bool("false", ())


def bool_const(value):
    return TRUE if value else FALSE


# -- constructors (constant-folding) ---------------------------------------


def const(value):
    value = int(value)
    return BV("const", (value,), value, value)


def var(name, lo, hi):
    lo = int(lo)
    hi = int(hi)
    if lo > hi:
        raise ValueError("empty variable domain %r: [%d, %d]"
                         % (name, lo, hi))
    return BV("var", (str(name),), lo, hi)


def _is_const(node):
    return node.op == "const"


def add(a, b):
    if _is_const(a) and _is_const(b):
        return const(a.lo + b.lo)
    if _is_const(a) and a.lo == 0:
        return b
    if _is_const(b) and b.lo == 0:
        return a
    return BV("add", (a, b), a.lo + b.lo, a.hi + b.hi)


def sub(a, b):
    if _is_const(a) and _is_const(b):
        return const(a.lo - b.lo)
    if _is_const(b) and b.lo == 0:
        return a
    return BV("sub", (a, b), a.lo - b.hi, a.hi - b.lo)


def mul(a, b):
    if _is_const(a) and _is_const(b):
        return const(a.lo * b.lo)
    if _is_const(a) and a.lo == 1:
        return b
    if _is_const(b) and b.lo == 1:
        return a
    corners = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
    return BV("mul", (a, b), min(corners), max(corners))


def neg(a):
    if _is_const(a):
        return const(-a.lo)
    return BV("neg", (a,), -a.hi, -a.lo)


def shl(a, k):
    k = int(k)
    if k == 0:
        return a
    if k < 0:
        raise ValueError("shl wants k >= 0, got %d" % k)
    if _is_const(a):
        return const(a.lo << k)
    return BV("shl", (a, k), a.lo << k, a.hi << k)


def ashr(a, k):
    k = int(k)
    if k == 0:
        return a
    if k < 0:
        raise ValueError("ashr wants k >= 0, got %d" % k)
    if _is_const(a):
        return const(a.lo >> k)
    return BV("ashr", (a, k), a.lo >> k, a.hi >> k)


def ite(cond, a, b):
    if cond.op == "true":
        return a
    if cond.op == "false":
        return b
    return BV("ite", (cond, a, b), min(a.lo, b.lo), max(a.hi, b.hi))


def wrap(a, n, signed=True):
    """Two's-complement/unsigned reduction of ``a`` modulo ``2**n``."""
    n = int(n)
    wmin = word.int_min(n, signed)
    wmax = word.int_max(n, signed)
    if a.lo >= wmin and a.hi <= wmax:
        return a                      # provably in range: wrap is identity
    if _is_const(a):
        return const(word.wrap_code(a.lo, n, signed))
    return BV("wrap", (a, n, signed), wmin, wmax)


# -- comparisons / boolean algebra ------------------------------------------


def lt(a, b):
    if a.hi < b.lo:
        return TRUE
    if a.lo >= b.hi:
        return FALSE
    return Bool("lt", (a, b))


def le(a, b):
    if a.hi <= b.lo:
        return TRUE
    if a.lo > b.hi:
        return FALSE
    return Bool("le", (a, b))


def gt(a, b):
    return lt(b, a)


def ge(a, b):
    return le(b, a)


def eq(a, b):
    if _is_const(a) and _is_const(b):
        return bool_const(a.lo == b.lo)
    if a.hi < b.lo or b.hi < a.lo:
        return FALSE
    return Bool("eq", (a, b))


def ne(a, b):
    return bnot(eq(a, b))


def band(a, b):
    if a.op == "false" or b.op == "false":
        return FALSE
    if a.op == "true":
        return b
    if b.op == "true":
        return a
    return Bool("and", (a, b))


def bor(a, b):
    if a.op == "true" or b.op == "true":
        return TRUE
    if a.op == "false":
        return b
    if b.op == "false":
        return a
    return Bool("or", (a, b))


def bnot(a):
    if a.op == "true":
        return FALSE
    if a.op == "false":
        return TRUE
    if a.op == "not":
        return a.args[0]
    return Bool("not", (a,))


def any_of(conds):
    """Balanced OR of a sequence (keeps the DAG shallow)."""
    conds = [c for c in conds if c.op != "false"]
    if not conds:
        return FALSE
    while len(conds) > 1:
        conds = [bor(conds[i], conds[i + 1])
                 if i + 1 < len(conds) else conds[i]
                 for i in range(0, len(conds), 2)]
    return conds[0]


def all_of(conds):
    """Balanced AND of a sequence."""
    conds = [c for c in conds if c.op != "true"]
    if not conds:
        return TRUE
    while len(conds) > 1:
        conds = [band(conds[i], conds[i + 1])
                 if i + 1 < len(conds) else conds[i]
                 for i in range(0, len(conds), 2)]
    return conds[0]


# -- traversal / evaluation --------------------------------------------------


def width_bits(node):
    """Two's-complement bits needed for every value ``node`` can take."""
    return max(word.bit_length_signed(node.lo),
               word.bit_length_signed(node.hi))


def _children(node):
    if isinstance(node, BV):
        if node.op in ("const", "var"):
            return ()
        if node.op in ("shl", "ashr"):
            return (node.args[0],)
        if node.op == "wrap":
            return (node.args[0],)
        return node.args           # add/sub/mul/neg/ite (ite: cond, a, b)
    if node.op in ("true", "false"):
        return ()
    return node.args               # comparisons / and / or / not


def collect_nodes(roots):
    """Every distinct node reachable from ``roots`` in postorder.

    Non-recursive (verification formulas can be deep); each node appears
    once, after all of its children.
    """
    seen = set()
    order = []
    stack = [(r, False) for r in reversed(list(roots))]
    while stack:
        node, expanded = stack.pop()
        nid = id(node)
        if nid in seen:
            continue
        if expanded:
            seen.add(nid)
            order.append(node)
            continue
        stack.append((node, True))
        for child in reversed(_children(node)):
            if id(child) not in seen:
                stack.append((child, False))
    return order


def variables_of(roots):
    """Sorted names of every ``var`` node reachable from ``roots``."""
    return sorted({n.args[0] for n in collect_nodes(roots)
                   if isinstance(n, BV) and n.op == "var"})


class Evaluator:
    """Evaluate a set of root nodes under variable assignments.

    The DAG is linearized once; :meth:`run` then executes a flat
    instruction list per assignment — the inner loop of the exhaustive
    enumeration backend.
    """

    def __init__(self, roots):
        self.roots = list(roots)
        self._order = collect_nodes(self.roots)
        self._index = {id(n): i for i, n in enumerate(self._order)}

    @property
    def n_nodes(self):
        return len(self._order)

    def run(self, env):
        """Evaluate every root under ``env`` (var name -> int).

        Returns a dict keyed by node identity covering *all* reachable
        nodes, so callers can read intermediate witnesses too.
        """
        values = {}
        wrap_code = word.wrap_code
        for node in self._order:
            op = node.op
            a = node.args
            if isinstance(node, BV):
                if op == "const":
                    v = a[0]
                elif op == "var":
                    v = env[a[0]]
                elif op == "add":
                    v = values[id(a[0])] + values[id(a[1])]
                elif op == "sub":
                    v = values[id(a[0])] - values[id(a[1])]
                elif op == "mul":
                    v = values[id(a[0])] * values[id(a[1])]
                elif op == "neg":
                    v = -values[id(a[0])]
                elif op == "shl":
                    v = values[id(a[0])] << a[1]
                elif op == "ashr":
                    v = values[id(a[0])] >> a[1]
                elif op == "ite":
                    v = (values[id(a[1])] if values[id(a[0])]
                         else values[id(a[2])])
                elif op == "wrap":
                    v = wrap_code(values[id(a[0])], a[1], a[2])
                else:                        # pragma: no cover - exhaustive
                    raise AssertionError("unknown BV op %r" % op)
            else:
                if op == "true":
                    v = True
                elif op == "false":
                    v = False
                elif op == "lt":
                    v = values[id(a[0])] < values[id(a[1])]
                elif op == "le":
                    v = values[id(a[0])] <= values[id(a[1])]
                elif op == "eq":
                    v = values[id(a[0])] == values[id(a[1])]
                elif op == "and":
                    v = values[id(a[0])] and values[id(a[1])]
                elif op == "or":
                    v = values[id(a[0])] or values[id(a[1])]
                elif op == "not":
                    v = not values[id(a[0])]
                else:                        # pragma: no cover - exhaustive
                    raise AssertionError("unknown Bool op %r" % op)
            values[id(node)] = v
        return _ValueView(values)


class _ValueView:
    """Read node values by node object (``view[node]``)."""

    __slots__ = ("_values",)

    def __init__(self, values):
        self._values = values

    def __getitem__(self, node):
        return self._values[id(node)]

    def __contains__(self, node):
        return id(node) in self._values
