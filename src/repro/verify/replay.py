"""Counterexample replay through the interpreted engine.

A counterexample is only reported after it has been *reproduced*: the
recorded stimulus is driven through the real ``Sig``/``Reg``/ops
machinery (via :func:`repro.parallel.run_simulations`, so the replay
exercises exactly the code path users run) and the claimed violation is
checked bit-for-bit.  A mismatch means the encoder and the engine have
drifted apart — that is raised loudly as a :class:`VerifyError` instead
of reporting an unconfirmed finding.

:class:`SfgReplayDesign` is the generic vehicle: it re-interprets a
traced SFG as a Design, re-creating each traced signal and re-executing
each traced op with the engine's own overloaded operators.
"""

from __future__ import annotations

from repro.core.dtype import DType
from repro.parallel.runner import SimConfig, run_simulations
from repro.signal import ops as sigops
from repro.signal.expr import as_expr
from repro.signal.signal import Reg, Sig
from repro.verify.encode import EncodingUnsupported, VerifyError

__all__ = ["SfgReplayDesign", "ReplayResult", "replay_counterexample"]


def _fx(value):
    """Fixed-point value of an operand (float / Sig / Expr)."""
    if isinstance(value, float):
        return value
    return value.fx


class SfgReplayDesign:
    """Design-protocol adapter that re-interprets a traced SFG.

    ``encoder`` supplies the validated structure (schedule, drivers,
    dtypes, power-on values); ``stimulus`` maps each input name to its
    per-step values; ``init_state`` optionally overrides register
    power-on values (limit-cycle counterexamples).  During ``run`` the
    design records, per step and signal, the pre-quantization incoming
    value and the stored value — the evidence the verifier compares
    against its model.
    """

    name = "verify-replay"

    def __init__(self, encoder, stimulus, init_state=None):
        self.encoder = encoder
        self.inputs = tuple(encoder.inputs)
        self.stimulus = {k: [float(v) for v in vs]
                         for k, vs in dict(stimulus).items()}
        self.init_state = dict(init_state or {})
        self.output = None
        self.incoming = {}        # signal -> [pre-quantization fx per step]
        self.stored = {}          # signal -> [post-quantization fx per step]
        self.overflow_log = []    # (cycle, signal, value) from the context

    # -- Design protocol ---------------------------------------------------

    def build(self, ctx):
        enc = self.encoder
        self._sigs = {}
        for node in enc.sfg.signal_nodes():
            name = node.label
            cls = Reg if node.kind == "reg" else Sig
            sig = cls(name, dtype=enc._dtypes.get(name), ctx=ctx,
                      init=enc._inits.get(name, 0.0))
            self._sigs[name] = sig
        for name, value in self.init_state.items():
            self._sigs[name].set_init(value)
        self.incoming = {name: [] for name in self._sigs}
        self.stored = {name: [] for name in self._sigs}
        self.overflow_log = []

    def run(self, ctx, n_samples):
        enc = self.encoder
        order = enc._order
        drivers = enc._driver
        regs = [n.label for n in enc.sfg.nodes("reg")]
        for t in range(int(n_samples)):
            for name in self.inputs:
                series = self.stimulus.get(name, ())
                value = series[t] if t < len(series) else 0.0
                sig = self._sigs.get(name)
                if sig is not None:
                    sig.assign(value)
            values = {}
            for node in order:
                if node.kind == "const":
                    values[node] = float(node.payload)
                elif node.kind == "op":
                    values[node] = self._apply(node,
                                               [values[p] for p in
                                                enc.sfg.preds(node)])
                elif node.kind == "reg":
                    values[node] = self._sigs[node.label]
                else:
                    name = node.label
                    sig = self._sigs[name]
                    driver = drivers.get(name)
                    if name not in self.inputs and driver is not None:
                        value = values[driver]
                        self.incoming[name].append(_fx(value))
                        sig.assign(value)
                        self.stored[name].append(sig.fx)
                    values[node] = sig
            for name in regs:
                driver = drivers.get(name)
                if driver is not None:
                    value = values[driver]
                    self.incoming[name].append(_fx(value))
                    self._sigs[name].assign(value)
                    self.stored[name].append(self._sigs[name].next_fx)
            ctx.tick()
        self.overflow_log = list(ctx.overflow_log)

    # -- op re-execution -----------------------------------------------------

    def _apply(self, node, operands):
        label = node.label
        if label == "add":
            return operands[0] + operands[1]
        if label == "sub":
            return operands[0] - operands[1]
        if label == "mul":
            return operands[0] * operands[1]
        if label == "div":
            return operands[0] / operands[1]
        if label == "neg":
            return -operands[0]
        if label == "abs":
            return abs(as_expr(operands[0]))
        if label.startswith("shl") and label[3:].lstrip("-").isdigit():
            return as_expr(operands[0]) << int(label[3:])
        if label.startswith("shr") and label[3:].lstrip("-").isdigit():
            return as_expr(operands[0]) >> int(label[3:])
        if label == "min":
            return sigops.fmin(operands[0], operands[1])
        if label == "max":
            return sigops.fmax(operands[0], operands[1])
        if label == "select":
            if len(operands) != 3:
                raise EncodingUnsupported(
                    "cannot replay select with an untraced condition")
            return sigops.select(as_expr(operands[0]), operands[1],
                                 operands[2])
        if label in ("gt", "ge", "lt", "le"):
            return getattr(sigops, label)(operands[0], operands[1])
        if label.startswith("cast"):
            dt = DType.from_cast_label(label)
            if dt is None:
                raise EncodingUnsupported("unparsable cast label %r"
                                          % (label,))
            return sigops.cast(operands[0], dt)
        raise EncodingUnsupported("cannot replay op %r" % (label,))


class ReplayResult:
    """Replay evidence: engine outcome plus the recorded traces."""

    __slots__ = ("outcome", "design")

    def __init__(self, outcome, design):
        self.outcome = outcome
        self.design = design

    @property
    def completed(self):
        return self.outcome.error is None

    def overflow_count(self, signal):
        rec = self.outcome.records.get(signal)
        return 0 if rec is None else rec.overflow_count

    def overflow_events(self, signal=None):
        events = self.design.overflow_log
        if signal is None:
            return list(events)
        return [e for e in events if e[1] == signal]

    def stored_values(self, signal):
        return list(self.design.stored.get(signal, ()))

    def incoming_values(self, signal):
        return list(self.design.incoming.get(signal, ()))


def replay_counterexample(encoder, counterexample, n_samples=None,
                          label="verify-replay"):
    """Drive a counterexample through ``run_simulations`` (serial).

    Returns a :class:`ReplayResult`; the serial path runs in-process, so
    the design instance — and with it the per-step trace — survives for
    inspection.
    """
    holder = {}

    def factory():
        design = SfgReplayDesign(encoder, counterexample.inputs,
                                 counterexample.init_state)
        holder["design"] = design
        return design

    horizon = n_samples
    if horizon is None:
        horizon = max(counterexample.horizon,
                      (counterexample.step or 0) + 1, 1)
    config = SimConfig(label=label, n_samples=int(horizon),
                       overflow_action="record",
                       guard_action="sanitize")
    outcomes = run_simulations(factory, [config], workers=1)
    design = holder.get("design")
    if design is None:                      # pragma: no cover - serial path
        raise VerifyError("replay did not run in-process; cannot "
                          "inspect the replayed trace")
    return ReplayResult(outcomes[0], design)
