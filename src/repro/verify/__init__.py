"""``repro.verify`` — bit-vector bounded model checking of traced designs.

Upgrades the refinement loop's simulated evidence ("no overflow in N
samples") to proof: the traced SFG's fixed-point semantics are encoded
*exactly* as integer/bit-vector formulas and three properties are
discharged over a declared input envelope and horizon:

>>> from repro.verify import Envelope, prove_no_overflow
>>> from repro.verify.gallery import FirOkDesign
>>> v = prove_no_overflow(FirOkDesign, {"x": (-1.0, 1.0)}, k=2,
...                       backend="enumeration")
>>> v.status
'PROVED'

See ``docs/verification.md`` for the encoding table, budget/backend
selection and a worked example; ``python -m repro.verify --all`` checks
the bundled gallery against its documented verdicts.
"""

from repro.verify.backends import (EnumerationBackend, VerifyBudget,
                                   Z3Backend, resolve_backend,
                                   z3_available)
from repro.verify.encode import (EncodingUnsupported, Envelope,
                                 StepEncoder, VerifyError)
from repro.verify.properties import (TracedDesign, prove_no_limit_cycle,
                                     prove_no_overflow,
                                     prove_response_error, trace_design)
from repro.verify.replay import (ReplayResult, SfgReplayDesign,
                                 replay_counterexample)
from repro.verify.verdict import (COUNTEREXAMPLE, PROVED, UNKNOWN,
                                  Counterexample, Verdict, VerifyReport)

__all__ = [
    "PROVED", "COUNTEREXAMPLE", "UNKNOWN",
    "Verdict", "VerifyReport", "Counterexample",
    "Envelope", "StepEncoder", "VerifyError", "EncodingUnsupported",
    "VerifyBudget", "EnumerationBackend", "Z3Backend",
    "resolve_backend", "z3_available",
    "TracedDesign", "trace_design",
    "prove_no_overflow", "prove_no_limit_cycle", "prove_response_error",
    "SfgReplayDesign", "ReplayResult", "replay_counterexample",
]
