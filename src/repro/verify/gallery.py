"""Bundled verification gallery: small designs with *expected* verdicts.

Each entry pairs a Design with the properties the checker is expected
to decide about it — documented envelopes and horizons, chosen so the
self-contained enumeration backend can discharge every check within
the default :class:`~repro.verify.backends.VerifyBudget` (z3, when
installed, must agree; the test suite cross-checks).  The gallery is
the CLI's and CI's ground truth:

* ``fir-ok`` — a saturating 3-tap FIR whose output word has headroom;
  overflow-free and limit-cycle-free (theorems, not samples),
* ``fir-wrap-bug`` — same structure, output squeezed into a wrapping
  ``<5,4>`` word: the checker finds the overflowing stimulus and the
  interpreted engine reproduces it bit for bit,
* ``acc-trunc`` — leaky accumulator with truncating write-back:
  zero-input orbits strictly decay, so no limit cycle exists,
* ``acc-round-wrap`` — the same accumulator with round-half-up and a
  wrapping word: the half-LSB round-up makes the smallest positive
  code a nonzero fixed point — a period-1 limit cycle (and the FX009
  lint hazard),
* ``fir-coarse`` — a 2-tap LTI FIR with a coarse output grid: the
  response error is exactly one half output LSB, proved as a bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dtype import DType
from repro.refine.flow import Design
from repro.signal.signal import Reg, Sig
from repro.verify.verdict import COUNTEREXAMPLE, PROVED

__all__ = [
    "GalleryEntry", "gallery",
    "FirOkDesign", "FirWrapBugDesign", "AccTruncDesign",
    "AccRoundWrapDesign", "FirCoarseDesign",
]

#: deterministic on-grid trace stimulus (structure capture only).
_TRACE_STIM = (0.5, -0.25, 1.0, -1.0, 0.125, 0.0, 0.75, -0.5)

_T_IN = DType("TIN", 5, 3, "tc", "saturate", "round")


class _FirBase(Design):
    """Common FIR skeleton: three delay registers, one weighted sum."""

    inputs = ("x",)
    output = "y"
    taps = (0.5, -0.25, 0.125)
    y_dtype = DType("TY", 8, 5, "tc", "saturate", "round")

    def build(self, ctx):
        self.x = Sig("x", dtype=_T_IN)
        self.d0 = Reg("d0", dtype=_T_IN)
        self.d1 = Reg("d1", dtype=_T_IN)
        self.d2 = Reg("d2", dtype=_T_IN)
        self.y = Sig("y", dtype=self.y_dtype)
        self.x.role = "input"
        self.y.role = "output"

    def run(self, ctx, n_samples):
        t0, t1, t2 = self.taps
        for i in range(int(n_samples)):
            self.x.assign(_TRACE_STIM[i % len(_TRACE_STIM)])
            self.y.assign(self.d0 * t0 + self.d1 * t1 + self.d2 * t2)
            self.d2.assign(self.d1)
            self.d1.assign(self.d0)
            self.d0.assign(self.x)
            ctx.tick()


class FirOkDesign(_FirBase):
    """Saturating FIR with output headroom — overflow-free by design."""

    name = "fir-ok"


class FirWrapBugDesign(_FirBase):
    """FIR whose gain exceeds the wrapping output word — seeded bug."""

    name = "fir-wrap-bug"
    taps = (0.5, 0.5, 0.25)
    y_dtype = DType("TYW", 5, 4, "tc", "wrap", "round")


class _AccBase(Design):
    """Leaky accumulator ``w' = Q(0.5*w + 0.25*x)``."""

    inputs = ("x",)
    output = "w"
    w_dtype = DType("TW", 5, 3, "tc", "saturate", "trunc")

    def build(self, ctx):
        self.x = Sig("x", dtype=_T_IN)
        self.w = Reg("w", dtype=self.w_dtype)
        self.x.role = "input"

    def run(self, ctx, n_samples):
        for i in range(int(n_samples)):
            self.x.assign(_TRACE_STIM[i % len(_TRACE_STIM)])
            self.w.assign(self.w * 0.5 + self.x * 0.25)
            ctx.tick()


class AccTruncDesign(_AccBase):
    """Truncating write-back: zero-input orbits strictly decay."""

    name = "acc-trunc"


class AccRoundWrapDesign(_AccBase):
    """Round-half-up + wrap write-back: code 1 is a nonzero fixed
    point (``round(0.5 LSB)`` rounds back up) — a period-1 limit
    cycle, and the FX009 hazard."""

    name = "acc-round-wrap"
    w_dtype = DType("TWR", 5, 3, "tc", "wrap", "round")


class FirCoarseDesign(Design):
    """2-tap LTI FIR with a coarse output grid (response-error demo)."""

    name = "fir-coarse"
    inputs = ("x",)
    output = "y"

    def build(self, ctx):
        self.x = Sig("x", dtype=_T_IN)
        self.d0 = Reg("d0", dtype=_T_IN)
        self.d1 = Reg("d1", dtype=_T_IN)
        self.y = Sig("y", dtype=DType("TYC", 6, 3, "tc", "saturate",
                                      "round"))
        self.x.role = "input"
        self.y.role = "output"

    def run(self, ctx, n_samples):
        for i in range(int(n_samples)):
            self.x.assign(_TRACE_STIM[i % len(_TRACE_STIM)])
            self.y.assign(self.d0 * 0.5 + self.d1 * 0.25)
            self.d1.assign(self.d0)
            self.d0.assign(self.x)
            ctx.tick()


@dataclass
class GalleryEntry:
    """One gallery design plus its documented property checks.

    ``checks`` is a list of ``(property, kwargs, expected_status)``
    triples; ``kwargs`` feed the matching ``prove_*`` function.
    """

    name: str
    factory: object
    description: str
    checks: list = field(default_factory=list)


#: the documented stimulus envelope shared by every gallery check.
GALLERY_ENVELOPE = {"x": (-1.0, 1.0)}


def gallery():
    """Gallery entries keyed by CLI name."""
    entries = [
        GalleryEntry(
            "fir-ok", FirOkDesign,
            "saturating 3-tap FIR with output headroom",
            checks=[
                ("no-overflow",
                 dict(envelope=GALLERY_ENVELOPE, k=3), PROVED),
                ("no-limit-cycle", dict(k=3), PROVED),
            ]),
        GalleryEntry(
            "fir-wrap-bug", FirWrapBugDesign,
            "FIR gain 1.25 into a wrapping <5,4> output word",
            checks=[
                ("no-overflow",
                 dict(envelope=GALLERY_ENVELOPE, k=3), COUNTEREXAMPLE),
                ("no-limit-cycle", dict(k=3), PROVED),
            ]),
        GalleryEntry(
            "acc-trunc", AccTruncDesign,
            "leaky accumulator, truncating saturate write-back",
            checks=[
                ("no-overflow",
                 dict(envelope=GALLERY_ENVELOPE, k=3), PROVED),
                ("no-limit-cycle", dict(k=4), PROVED),
            ]),
        GalleryEntry(
            "acc-round-wrap", AccRoundWrapDesign,
            "leaky accumulator, round-half-up wrap write-back",
            checks=[
                ("no-overflow",
                 dict(envelope=GALLERY_ENVELOPE, k=3), PROVED),
                ("no-limit-cycle", dict(k=2), COUNTEREXAMPLE),
            ]),
        GalleryEntry(
            "fir-coarse", FirCoarseDesign,
            "2-tap LTI FIR, coarse output grid",
            checks=[
                ("no-overflow",
                 dict(envelope=GALLERY_ENVELOPE, k=3), PROVED),
                ("response-error",
                 dict(bound=0.0625, k=3,
                      envelope=GALLERY_ENVELOPE), PROVED),
            ]),
    ]
    return {e.name: e for e in entries}
