"""Exact bit-vector encoding of one traced-design clock step.

The interpreted engine stores every fixed-point signal as a double whose
value lies on a dyadic grid ``2**-f``.  As long as every intermediate
integer *code* stays below 52 bits of magnitude, double arithmetic is
exact, and the engine's semantics coincide with pure integer arithmetic
on codes.  This module exploits that: it walks the traced SFG in
``condensed_order`` and re-expresses one clock tick as
:mod:`repro.verify.bv` expressions over ``(code, f)`` pairs —
:class:`Wire` — where the carried value is ``code * 2**-f``.

Quantization (the ``Sig`` assignment path and ``cast`` ops) becomes

* rounding: an arithmetic shift with the mode's exact pre-offset
  (:func:`repro.core.word.shift_round_code` lifted to symbols),
* ``wrap``: modular reduction (:func:`repro.verify.bv.wrap`),
* ``saturate``/``error``: if-then-else clamping — ``error`` matches the
  engine under ``overflow_action="record"``, which is how designs are
  traced for analysis,
* the *overflow* predicate: rounded code outside the representable
  range, exactly when ``Sig._record`` would bump ``overflow_count``.

Anything the encoding cannot express **exactly** — division,
``select`` with an untraced (plain-bool) condition, combinational
cycles, multiply-driven signals, or any node whose exact interval
exceeds the 52-bit double-exactness budget — raises
:class:`EncodingUnsupported`, which the property layer converts into an
honest ``UNKNOWN`` verdict.  The encoder never approximates.
"""

from __future__ import annotations

import math

from repro.core import word
from repro.core.dtype import DType
from repro.core.errors import ReproError
from repro.verify import bv

__all__ = [
    "VerifyError", "EncodingUnsupported",
    "Wire", "Envelope", "QuantEvent", "InputSpec", "StateSpec",
    "StepEncoder", "MAX_EXACT_BITS",
]

#: Magnitude budget (bits) under which integer codes are exact doubles.
MAX_EXACT_BITS = 52

#: Ops that break linearity/time-invariance; refused by ``require_lti``.
_NONLINEAR_OPS = ("abs", "min", "max", "select", "gt", "ge", "lt", "le")


class VerifyError(ReproError):
    """A verification request that cannot be carried out as posed."""


class EncodingUnsupported(VerifyError):
    """The traced design falls outside the exact bit-vector fragment."""


class Wire:
    """One encoded value: integer code expression plus fractional grid.

    The real value carried is ``code * 2**-f``; ``f`` may be negative
    (pure left-shifted integers).
    """

    __slots__ = ("code", "f")

    def __init__(self, code, f):
        self.code = code
        self.f = int(f)

    def __repr__(self):
        return "Wire(f=%d, lo=%d, hi=%d)" % (self.f, self.code.lo,
                                             self.code.hi)


class Envelope:
    """Declared input ranges for bounded proofs.

    ``bounds`` maps each input name to ``(lo, hi)`` real-valued bounds,
    or ``(lo, hi, f)`` to pin the stimulus grid explicitly.  Bounds are
    interpreted *after* input quantization: the checker explores every
    representable stimulus code in ``[lo, hi]`` on the input's grid
    (the input signal's own dtype grid unless overridden), intersected
    with the dtype's representable range.

    >>> env = Envelope({"x": (-1.0, 1.0)})
    >>> env.bound("x")
    (-1.0, 1.0, None)
    """

    def __init__(self, bounds, f=None):
        self.f = None if f is None else int(f)
        self.bounds = {}
        for name, spec in dict(bounds).items():
            spec = tuple(spec)
            if len(spec) == 2:
                lo, hi, fo = spec[0], spec[1], None
            elif len(spec) == 3:
                lo, hi, fo = spec
            else:
                raise VerifyError(
                    "envelope entry for %r must be (lo, hi) or "
                    "(lo, hi, f)" % (name,))
            lo = float(lo)
            hi = float(hi)
            if not (math.isfinite(lo) and math.isfinite(hi)) or lo > hi:
                raise VerifyError("bad envelope bounds for %r: (%r, %r)"
                                  % (name, lo, hi))
            self.bounds[str(name)] = (lo, hi,
                                      None if fo is None else int(fo))

    def bound(self, name):
        """``(lo, hi, f_override)`` for one input."""
        try:
            return self.bounds[name]
        except KeyError:
            raise VerifyError(
                "envelope does not bound input %r (have: %s)"
                % (name, ", ".join(sorted(self.bounds)) or "nothing"))


class QuantEvent:
    """One signal-assignment quantization inside an unrolled formula."""

    __slots__ = ("signal", "overflowed", "incoming", "step")

    def __init__(self, signal, overflowed, incoming, step=0):
        self.signal = signal          # signal name
        self.overflowed = overflowed  # Bool: engine would log an overflow
        self.incoming = incoming      # Wire: pre-quantization value
        self.step = step


class InputSpec:
    """Stimulus variable domain of one input, in codes on grid ``f``."""

    __slots__ = ("name", "f", "lo_code", "hi_code", "dtype")

    def __init__(self, name, f, lo_code, hi_code, dtype):
        self.name = name
        self.f = f
        self.lo_code = lo_code
        self.hi_code = hi_code
        self.dtype = dtype

    @property
    def n_values(self):
        return self.hi_code - self.lo_code + 1


class StateSpec:
    """One register: its dtype (may be None) and power-on value."""

    __slots__ = ("name", "dtype", "init_value")

    def __init__(self, name, dtype, init_value):
        self.name = name
        self.dtype = dtype
        self.init_value = float(init_value)


class StepEncoder:
    """Symbolic executor for one clock tick of a traced design.

    Built once per (design, envelope); :meth:`step` is then called k
    times by the property layer, threading the register state wires
    through.  Because untyped intermediate signals keep their exact
    fractional grid, ``f`` can differ between unrolled steps — the
    encoder therefore re-derives every wire per step instead of
    building a fixed transition function.
    """

    def __init__(self, sfg, inputs, envelope=None, dtypes=None,
                 max_bits=MAX_EXACT_BITS, require_lti=False):
        self.sfg = sfg
        self.inputs = tuple(str(n) for n in inputs)
        self.max_bits = int(max_bits)
        self.require_lti = bool(require_lti)
        self._quantized = True
        self._order = sfg.condensed_order()

        # dtype / init per signal: explicit map wins, else traced payload.
        self._dtypes = {}
        self._inits = {}
        for node in sfg.signal_nodes():
            payload = sfg.sig_payload(node.label)
            dt = None if payload is None else payload.dtype
            if dtypes and node.label in dtypes:
                dt = dtypes[node.label]
            self._dtypes[node.label] = dt
            self._inits[node.label] = (0.0 if payload is None
                                       else payload.init_value)

        self._check_structure()

        self.states = {}
        for node in sfg.nodes("reg"):
            self.states[node.label] = StateSpec(
                node.label, self._dtypes[node.label],
                self._inits[node.label])

        self.input_specs = {}
        if envelope is not None:
            for name in self.inputs:
                self.input_specs[name] = self._input_spec(name, envelope)

    # -- construction-time validation ---------------------------------------

    def _check_structure(self):
        for cyc in self.sfg.cycles():
            if not any(n.kind == "reg" for n in cyc):
                names = self.sfg.cycle_signal_names(cyc)
                raise EncodingUnsupported(
                    "combinational cycle through %s"
                    % (" -> ".join(names) or "ops only"))
        self._driver = {}
        for node in self.sfg.signal_nodes():
            if node.label in self.inputs:
                self._driver[node.label] = None   # stimulus, not dataflow
                continue
            drivers = [src for src, _dst, d
                       in self.sfg.g.in_edges(node, data=True)
                       if d.get("assign")]
            if len(drivers) > 1:
                raise EncodingUnsupported(
                    "signal %r has %d drivers; the exact encoding "
                    "requires single-assignment dataflow"
                    % (node.label, len(drivers)))
            self._driver[node.label] = drivers[0] if drivers else None

    def _input_spec(self, name, envelope):
        lo, hi, f_over = envelope.bound(name)
        dt = self._dtypes.get(name)
        f = f_over
        if f is None:
            f = dt.f if dt is not None else envelope.f
        if f is None:
            raise VerifyError(
                "input %r has no dtype; give the envelope an explicit "
                "fractional grid (f=... or a (lo, hi, f) bound)" % (name,))
        lo_code = math.ceil(lo * (1 << f)) if f >= 0 else \
            math.ceil(lo / (1 << -f))
        hi_code = math.floor(hi * (1 << f)) if f >= 0 else \
            math.floor(hi / (1 << -f))
        if dt is not None and f == dt.f:
            lo_code = max(lo_code, dt.code_min)
            hi_code = min(hi_code, dt.code_max)
        if lo_code > hi_code:
            raise VerifyError(
                "envelope for %r contains no representable stimulus on "
                "grid 2**-%d" % (name, f))
        return InputSpec(name, f, lo_code, hi_code, dt)

    # -- wire helpers --------------------------------------------------------

    def _gate(self, expr, what):
        if max(abs(expr.lo), abs(expr.hi)).bit_length() > self.max_bits:
            raise EncodingUnsupported(
                "%s needs %d-bit codes; beyond the %d-bit exactness "
                "budget of the double-based engine"
                % (what, max(abs(expr.lo), abs(expr.hi)).bit_length(),
                   self.max_bits))
        return expr

    def _wire(self, expr, f, what):
        return Wire(self._gate(expr, what), f)

    def exact_wire(self, value, what="constant"):
        """Exact dyadic ``(code, f)`` of a float (every double is dyadic)."""
        value = float(value)
        if value == 0.0:
            return Wire(bv.const(0), 0)
        if not math.isfinite(value):
            raise EncodingUnsupported("non-finite %s %r" % (what, value))
        mant, e = math.frexp(abs(value))
        code = int(mant * (1 << 53))          # exact 53-bit mantissa
        tz = (code & -code).bit_length() - 1
        code >>= tz
        f = 53 - e - tz
        if value < 0.0:
            code = -code
        return self._wire(bv.const(code), f, what)

    def input_var(self, name, step):
        """Fresh stimulus variable ``name@step`` over the envelope."""
        spec = self.input_specs[name]
        v = bv.var("%s@%d" % (name, step), spec.lo_code, spec.hi_code)
        return self._wire(v, spec.f, "input %r" % name)

    def state_var(self, name, tag="s0"):
        """Symbolic initial register value over the full dtype range."""
        spec = self.states[name]
        if spec.dtype is None:
            raise EncodingUnsupported(
                "register %r has no dtype; symbolic state needs a "
                "declared wordlength" % (name,))
        dt = spec.dtype
        v = bv.var("%s@%s" % (name, tag), dt.code_min, dt.code_max)
        return self._wire(v, dt.f, "state %r" % name)

    def init_wire(self, name):
        """Concrete power-on wire of one register (engine semantics)."""
        spec = self.states[name]
        w = self.exact_wire(spec.init_value, "init of %r" % name)
        if spec.dtype is None:
            return w
        # set_init() quantizes through the saturating variant.
        rounded = word.shift_round_code(w.code.lo, w.f - spec.dtype.f,
                                        spec.dtype.lsbspec)
        code = word.saturate_code(rounded, spec.dtype.n, spec.dtype.signed)
        return Wire(bv.const(code), spec.dtype.f)

    def zero_state(self):
        return {name: Wire(bv.const(0), 0) for name in self.states}

    def initial_state(self):
        return {name: self.init_wire(name) for name in self.states}

    # -- quantization --------------------------------------------------------

    def _shift_round(self, expr, delta, lsbspec, what):
        """Symbolic :func:`repro.core.word.shift_round_code`."""
        if delta <= 0:
            return self._gate(bv.shl(expr, -delta), what)
        if lsbspec == "round":
            offset = bv.add(expr, bv.const(1 << (delta - 1)))
            return bv.ashr(self._gate(offset, what), delta)
        if lsbspec == "floor":
            return bv.ashr(expr, delta)
        if lsbspec == "ceil":
            return bv.neg(bv.ashr(bv.neg(expr), delta))
        if lsbspec == "trunc":
            return bv.ite(bv.ge(expr, bv.const(0)),
                          bv.ashr(expr, delta),
                          bv.neg(bv.ashr(bv.neg(expr), delta)))
        raise EncodingUnsupported("unknown rounding mode %r" % (lsbspec,))

    def quantize_wire(self, wire, dtype, what):
        """Quantize ``wire`` by ``dtype``: ``(out_wire, overflow_cond)``.

        Mirrors :meth:`repro.core.dtype.DType.quantize_code` symbolically
        — and therefore the compiled float kernel bit for bit (``error``
        types behave as recorded saturation, the tracing configuration).
        """
        rounded = self._shift_round(wire.code, wire.f - dtype.f,
                                    dtype.lsbspec, what)
        lo = dtype.code_min
        hi = dtype.code_max
        over = bv.bor(bv.lt(rounded, bv.const(lo)),
                      bv.gt(rounded, bv.const(hi)))
        if dtype.msbspec == "wrap":
            out = bv.wrap(rounded, dtype.n, dtype.signed)
        else:
            out = bv.ite(bv.lt(rounded, bv.const(lo)), bv.const(lo),
                         bv.ite(bv.gt(rounded, bv.const(hi)),
                                bv.const(hi), rounded))
        return self._wire(out, dtype.f, what), over

    # -- one clock tick ------------------------------------------------------

    def step(self, state, inputs, events=None, step_index=0,
             quantized=True):
        """Symbolically execute one tick.

        ``state`` / ``inputs`` map register / input names to their
        :class:`Wire`; returns ``(new_state, sig_wires)`` where
        ``sig_wires`` covers every traced signal (registers read as
        their pre-tick value, exactly like the engine).  Each typed
        assignment appends a :class:`QuantEvent` to ``events``.  With
        ``quantized=False`` the same dataflow is executed with every
        quantizer removed — the float-reference track.
        """
        self._quantized = quantized
        wires = {}
        for node in self._order:
            if node.kind == "const":
                wires[node] = self.exact_wire(node.payload,
                                              "const %s" % node.label)
            elif node.kind == "op":
                wires[node] = self._op_wire(node, wires)
            elif node.kind == "reg":
                wires[node] = state[node.label]
            else:  # plain sig
                name = node.label
                if name in self.input_specs or name in self.inputs:
                    wires[node] = inputs[name]
                    continue
                driver = self._driver[name]
                if driver is None:
                    wires[node] = self.exact_wire(
                        self._inits[name], "init of %r" % name)
                    continue
                wires[node] = self._assign(name, wires[driver], events,
                                           step_index, quantized)

        new_state = {}
        for name in self.states:
            driver = self._driver[name]
            if driver is None:
                new_state[name] = state[name]
            else:
                new_state[name] = self._assign(name, wires[driver],
                                               events, step_index,
                                               quantized)
        sig_wires = {n.label: wires[n] for n in self.sfg.signal_nodes()
                     if n in wires}
        return new_state, sig_wires

    def _assign(self, name, wire, events, step_index, quantized):
        dt = self._dtypes.get(name)
        if dt is None or not quantized:
            return wire
        out, over = self.quantize_wire(wire, dt, "signal %r" % name)
        if events is not None:
            events.append(QuantEvent(name, over, wire, step_index))
        return out

    # -- op dispatch ---------------------------------------------------------

    def _align(self, wa, wb, what):
        f = max(wa.f, wb.f)
        a = wa.code if wa.f == f else self._gate(
            bv.shl(wa.code, f - wa.f), what)
        b = wb.code if wb.f == f else self._gate(
            bv.shl(wb.code, f - wb.f), what)
        return a, b, f

    def _op_wire(self, node, wires):
        label = node.label
        ops = [wires[p] for p in self.sfg.preds(node)]
        what = "op %s" % label

        if self.require_lti and (label in _NONLINEAR_OPS
                                 or label == "div"):
            raise EncodingUnsupported(
                "op %r is not LTI; response-error proofs cover linear "
                "time-invariant designs only" % (label,))

        if label == "add" or label == "sub":
            a, b, f = self._align(ops[0], ops[1], what)
            fn = bv.add if label == "add" else bv.sub
            return self._wire(fn(a, b), f, what)
        if label == "mul":
            if self.require_lti and not (ops[0].code.op == "const"
                                         or ops[1].code.op == "const"):
                raise EncodingUnsupported(
                    "signal-by-signal multiply is nonlinear; "
                    "response-error proofs need a constant coefficient")
            return self._wire(bv.mul(ops[0].code, ops[1].code),
                              ops[0].f + ops[1].f, what)
        if label == "neg":
            return self._wire(bv.neg(ops[0].code), ops[0].f, what)
        if label == "abs":
            a = ops[0].code
            return self._wire(
                bv.ite(bv.lt(a, bv.const(0)), bv.neg(a), a),
                ops[0].f, what)
        if label.startswith("shl") and label[3:].lstrip("-").isdigit():
            return Wire(ops[0].code, ops[0].f - int(label[3:]))
        if label.startswith("shr") and label[3:].lstrip("-").isdigit():
            return Wire(ops[0].code, ops[0].f + int(label[3:]))
        if label in ("min", "max"):
            a, b, f = self._align(ops[0], ops[1], what)
            cond = bv.le(a, b) if label == "min" else bv.ge(a, b)
            return self._wire(bv.ite(cond, a, b), f, what)
        if label == "select":
            if len(ops) != 3:
                raise EncodingUnsupported(
                    "select with an untraced (plain bool) condition; "
                    "use repro.signal.ops.gt/ge/lt/le to keep the "
                    "condition in the dataflow")
            cond = bv.bnot(bv.eq(ops[0].code, bv.const(0)))
            a, b, f = self._align(ops[1], ops[2], what)
            return self._wire(bv.ite(cond, a, b), f, what)
        if label in ("gt", "ge", "lt", "le"):
            a, b, _f = self._align(ops[0], ops[1], what)
            cond = {"gt": bv.gt, "ge": bv.ge,
                    "lt": bv.lt, "le": bv.le}[label](a, b)
            return Wire(bv.ite(cond, bv.const(1), bv.const(0)), 0)
        if label.startswith("cast"):
            dt = DType.from_cast_label(label)
            if dt is None:
                raise EncodingUnsupported("unparsable cast label %r"
                                          % (label,))
            # Non-wrap casts run the saturating kernel and never log
            # overflow (see repro.signal.ops.cast) — drop the condition.
            # The float-reference track passes through casts untouched.
            if not self._quantized:
                return ops[0]
            if dt.msbspec != "wrap":
                dt = dt.saturating
            out, _over = self.quantize_wire(ops[0], dt, what)
            return out
        if label == "div":
            raise EncodingUnsupported(
                "division has no exact fixed-point bit-vector encoding")
        raise EncodingUnsupported("op %r is outside the encodable "
                                  "fragment" % (label,))
