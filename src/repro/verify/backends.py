"""Decision backends for the bit-vector checker.

A property is posed as a :class:`VerifyProblem` — a single boolean
*violation* formula over bounded integer variables plus named witness
expressions.  ``check`` answers:

* ``sat``     — a violating assignment exists (the model is returned),
* ``unsat``   — no violating assignment exists: the property is proved
  for the declared envelope and horizon,
* ``unknown`` — the backend could not decide within its budget.

Two backends:

:class:`EnumerationBackend`
    Self-contained exhaustive search over the (finite) variable
    domains.  Exact — it enumerates every representable stimulus — but
    only viable when the domain product fits the budget; otherwise it
    answers ``unknown`` honestly.  This is the backend the unit suite
    proves real theorems with, no third-party solver required.

:class:`Z3Backend`
    Translates the same formula onto fixed-width ``z3`` bit-vectors
    (width chosen from the exact interval bounds, so no intermediate
    modular overflow is possible).  Used when ``z3-solver`` is
    importable; both backends agree on every verdict by construction
    and the test suite cross-checks them whenever z3 is present.
"""

from __future__ import annotations

from repro.verify import bv
from repro.verify.encode import VerifyError

__all__ = [
    "VerifyBudget", "VerifyProblem", "CheckResult",
    "EnumerationBackend", "Z3Backend",
    "resolve_backend", "z3_available",
]


class VerifyBudget:
    """Explicit effort limits; exceeding any of them yields ``unknown``."""

    __slots__ = ("max_assignments", "max_solver_ms", "max_bits")

    def __init__(self, max_assignments=200_000, max_solver_ms=10_000,
                 max_bits=52):
        self.max_assignments = int(max_assignments)
        self.max_solver_ms = int(max_solver_ms)
        self.max_bits = int(max_bits)

    def __repr__(self):
        return ("VerifyBudget(max_assignments=%d, max_solver_ms=%d, "
                "max_bits=%d)" % (self.max_assignments,
                                  self.max_solver_ms, self.max_bits))


class VerifyProblem:
    """One decidable question: is the violation formula satisfiable?"""

    def __init__(self, violation, witnesses=None):
        self.violation = violation            # bv.Bool
        self.witnesses = dict(witnesses or {})  # label -> bv.BV

    def variables(self):
        """``{name: (lo, hi)}`` for every variable in the formula."""
        out = {}
        roots = [self.violation] + list(self.witnesses.values())
        for node in bv.collect_nodes(roots):
            if isinstance(node, bv.BV) and node.op == "var":
                name = node.args[0]
                if name in out and out[name] != (node.lo, node.hi):
                    raise VerifyError(
                        "variable %r declared with two domains" % (name,))
                out[name] = (node.lo, node.hi)
        return out


class CheckResult:
    """Backend answer: status, model and witness values, statistics."""

    __slots__ = ("status", "model", "witness_values", "reason", "stats")

    def __init__(self, status, model=None, witness_values=None,
                 reason="", stats=None):
        if status not in ("sat", "unsat", "unknown"):
            raise VerifyError("bad check status %r" % (status,))
        self.status = status
        self.model = dict(model or {})
        self.witness_values = dict(witness_values or {})
        self.reason = reason
        self.stats = dict(stats or {})

    def __repr__(self):
        return "CheckResult(%s%s)" % (
            self.status, ", " + self.reason if self.reason else "")


class EnumerationBackend:
    """Exhaustive search over the finite stimulus/state space."""

    name = "enumeration"

    def __init__(self, budget=None):
        self.budget = budget or VerifyBudget()

    def check(self, problem):
        violation = problem.violation
        if violation.op == "false":
            return CheckResult("unsat", stats={"assignments": 0})
        domains = problem.variables()
        names = sorted(domains)
        total = 1
        for name in names:
            lo, hi = domains[name]
            total *= hi - lo + 1
            if total > self.budget.max_assignments:
                return CheckResult(
                    "unknown",
                    reason="domain has %s assignments; enumeration "
                           "budget is %d (raise VerifyBudget."
                           "max_assignments or install z3-solver)"
                           % (">%d" % self.budget.max_assignments,
                              self.budget.max_assignments),
                    stats={"assignments": 0})
        if violation.op == "true":
            env = {name: domains[name][0] for name in names}
            ev = bv.Evaluator(list(problem.witnesses.values()))
            view = ev.run(env)
            wv = {k: view[n] for k, n in problem.witnesses.items()}
            return CheckResult("sat", model=env, witness_values=wv,
                               stats={"assignments": 1})

        roots = [violation] + list(problem.witnesses.values())
        ev = bv.Evaluator(roots)
        env = {name: domains[name][0] for name in names}
        counters = [domains[name][0] for name in names]
        n_tried = 0
        while True:
            n_tried += 1
            view = ev.run(env)
            if view[violation]:
                wv = {k: view[n]
                      for k, n in problem.witnesses.items()}
                return CheckResult("sat", model=dict(env),
                                   witness_values=wv,
                                   stats={"assignments": n_tried})
            # odometer increment
            i = 0
            while i < len(names):
                counters[i] += 1
                if counters[i] <= domains[names[i]][1]:
                    env[names[i]] = counters[i]
                    break
                counters[i] = domains[names[i]][0]
                env[names[i]] = counters[i]
                i += 1
            if i == len(names):
                return CheckResult("unsat",
                                   stats={"assignments": n_tried})


def z3_available():
    try:
        import z3  # noqa: F401
    except ImportError:
        return False
    return True


class Z3Backend:
    """SMT bit-vector backend (requires the optional ``z3-solver``)."""

    name = "z3"

    def __init__(self, budget=None):
        try:
            import z3
        except ImportError:
            raise VerifyError(
                "z3-solver is not installed; use the enumeration "
                "backend or pip install z3-solver")
        self._z3 = z3
        self.budget = budget or VerifyBudget()

    def check(self, problem):
        z3 = self._z3
        if problem.violation.op == "false":
            return CheckResult("unsat", stats={"solver": "z3"})

        roots = [problem.violation] + list(problem.witnesses.values())
        order = bv.collect_nodes(roots)
        width = 1
        wrap_widths = []
        for node in order:
            if isinstance(node, bv.BV):
                width = max(width, bv.width_bits(node))
                if node.op == "wrap":
                    wrap_widths.append(node.args[1] + 1)
        width = max([width] + wrap_widths)

        terms = {}
        zvars = {}
        constraints = []
        for node in order:
            op = node.op
            a = node.args
            if isinstance(node, bv.BV):
                if op == "const":
                    t = z3.BitVecVal(a[0], width)
                elif op == "var":
                    t = zvars.get(a[0])
                    if t is None:
                        t = z3.BitVec(a[0], width)
                        zvars[a[0]] = t
                        constraints.append(
                            z3.BitVecVal(node.lo, width) <= t)
                        constraints.append(
                            t <= z3.BitVecVal(node.hi, width))
                elif op == "add":
                    t = terms[id(a[0])] + terms[id(a[1])]
                elif op == "sub":
                    t = terms[id(a[0])] - terms[id(a[1])]
                elif op == "mul":
                    t = terms[id(a[0])] * terms[id(a[1])]
                elif op == "neg":
                    t = -terms[id(a[0])]
                elif op == "shl":
                    t = terms[id(a[0])] << a[1]
                elif op == "ashr":
                    t = terms[id(a[0])] >> a[1]   # z3 >> is arithmetic
                elif op == "ite":
                    t = z3.If(terms[id(a[0])], terms[id(a[1])],
                              terms[id(a[2])])
                elif op == "wrap":
                    low = z3.Extract(a[1] - 1, 0, terms[id(a[0])])
                    t = (z3.SignExt(width - a[1], low) if a[2]
                         else z3.ZeroExt(width - a[1], low))
                else:                    # pragma: no cover - exhaustive
                    raise AssertionError("unknown BV op %r" % op)
            else:
                if op == "true":
                    t = z3.BoolVal(True)
                elif op == "false":
                    t = z3.BoolVal(False)
                elif op == "lt":
                    t = terms[id(a[0])] < terms[id(a[1])]
                elif op == "le":
                    t = terms[id(a[0])] <= terms[id(a[1])]
                elif op == "eq":
                    t = terms[id(a[0])] == terms[id(a[1])]
                elif op == "and":
                    t = z3.And(terms[id(a[0])], terms[id(a[1])])
                elif op == "or":
                    t = z3.Or(terms[id(a[0])], terms[id(a[1])])
                elif op == "not":
                    t = z3.Not(terms[id(a[0])])
                else:                    # pragma: no cover - exhaustive
                    raise AssertionError("unknown Bool op %r" % op)
            terms[id(node)] = t

        solver = z3.Solver()
        solver.set("timeout", self.budget.max_solver_ms)
        for c in constraints:
            solver.add(c)
        solver.add(terms[id(problem.violation)])
        verdict = solver.check()
        stats = {"solver": "z3", "width": width}
        if verdict == z3.unsat:
            return CheckResult("unsat", stats=stats)
        if verdict == z3.sat:
            m = solver.model()

            def as_int(term):
                v = m.eval(term, model_completion=True).as_long()
                if v >= (1 << (width - 1)):
                    v -= 1 << width
                return v

            model = {name: as_int(t) for name, t in zvars.items()}
            wv = {k: as_int(terms[id(n)])
                  for k, n in problem.witnesses.items()}
            return CheckResult("sat", model=model, witness_values=wv,
                               stats=stats)
        return CheckResult("unknown",
                           reason="z3 gave up: %s"
                                  % solver.reason_unknown(),
                           stats=stats)


def resolve_backend(name="auto", budget=None):
    """Backend instance for ``auto`` / ``enumeration`` / ``z3``."""
    if name == "enumeration":
        return EnumerationBackend(budget)
    if name == "z3":
        return Z3Backend(budget)
    if name == "auto":
        if z3_available():
            return Z3Backend(budget)
        return EnumerationBackend(budget)
    raise VerifyError("unknown backend %r (want auto, enumeration or z3)"
                      % (name,))
