"""``python -m repro.verify`` — check the bundled gallery designs.

Runs the documented property checks of each requested gallery entry
(see :mod:`repro.verify.gallery`) through the selected backend and
compares every verdict against the entry's expectation.  Exit status:
0 when every verdict matches, 1 on any mismatch (a wrongly-proved bug
or a wrongly-refuted theorem is a regression), 2 on usage errors.

Formats reuse the lint pipeline: ``text`` (verdict table), ``json``
(structured verdicts) and ``sarif`` (findings with DG210–DG212 rule
metadata, consumable by code-scanning UIs).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.verify.backends import VerifyBudget, resolve_backend, \
    z3_available
from repro.verify.gallery import gallery
from repro.verify.properties import prove_no_limit_cycle, \
    prove_no_overflow, prove_response_error, trace_design
from repro.verify.verdict import VERIFY_RULE_METAS, VerifyReport

__all__ = ["main", "run_entry_checks"]

_PROVERS = {
    "no-overflow": prove_no_overflow,
    "no-limit-cycle": prove_no_limit_cycle,
    "response-error": prove_response_error,
}


def run_entry_checks(entry, backend="auto", budget=None,
                     properties=None):
    """Run one gallery entry's checks.

    Returns ``(report, mismatches)`` — the
    :class:`~repro.verify.verdict.VerifyReport` plus a list of
    ``(verdict, expected_status)`` pairs that disagree.
    """
    traced = trace_design(entry.factory, name=entry.name)
    verdicts = []
    mismatches = []
    for prop, kwargs, expected in entry.checks:
        if properties and prop not in properties:
            continue
        prover = _PROVERS[prop]
        verdict = prover(traced, backend=backend, budget=budget,
                         **kwargs)
        verdicts.append(verdict)
        if verdict.status != expected:
            mismatches.append((verdict, expected))
    return VerifyReport(verdicts, design_name=entry.name), mismatches


def build_parser():
    p = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Bit-vector bounded model checking over the bundled "
                    "gallery designs.")
    p.add_argument("designs", nargs="*",
                   help="gallery designs to check (default: none; "
                        "use --all)")
    p.add_argument("--all", action="store_true",
                   help="check every gallery design")
    p.add_argument("--list", action="store_true",
                   help="list gallery designs and their documented "
                        "checks")
    p.add_argument("--backend", default="auto",
                   choices=("auto", "enumeration", "z3"),
                   help="solver backend (default: auto = z3 when "
                        "installed, else enumeration)")
    p.add_argument("--property", action="append", dest="properties",
                   choices=sorted(_PROVERS),
                   help="restrict to one property (repeatable)")
    p.add_argument("--format", default="text",
                   choices=("text", "json", "sarif"))
    p.add_argument("--output", default=None,
                   help="write the report to a file instead of stdout")
    p.add_argument("--max-assignments", type=int, default=None,
                   help="enumeration budget override")
    p.add_argument("--max-solver-ms", type=int, default=None,
                   help="z3 timeout override (milliseconds)")
    return p


def _budget(args):
    kwargs = {}
    if args.max_assignments is not None:
        kwargs["max_assignments"] = args.max_assignments
    if args.max_solver_ms is not None:
        kwargs["max_solver_ms"] = args.max_solver_ms
    return VerifyBudget(**kwargs) if kwargs else None


def _emit(text, path):
    if path is None:
        print(text)
    else:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")


def main(argv=None):
    args = build_parser().parse_args(argv)
    entries = gallery()

    if args.list:
        for name in sorted(entries):
            e = entries[name]
            print("%-16s %s" % (name, e.description))
            for prop, kwargs, expected in e.checks:
                detail = ", ".join("%s=%r" % kv
                                   for kv in sorted(kwargs.items()))
                print("    %-16s %s -> expect %s"
                      % (prop, detail, expected))
        return 0

    names = list(args.designs)
    if args.all:
        names = sorted(entries)
    if not names:
        print("no designs selected; use --all, --list or name designs",
              file=sys.stderr)
        return 2
    unknown = [n for n in names if n not in entries]
    if unknown:
        print("unknown designs: %s (have: %s)"
              % (", ".join(unknown), ", ".join(sorted(entries))),
              file=sys.stderr)
        return 2

    budget = _budget(args)
    try:
        resolve_backend(args.backend, budget)
    except Exception as exc:
        print(str(exc), file=sys.stderr)
        return 2

    reports = []
    all_mismatches = []
    for name in names:
        report, mismatches = run_entry_checks(
            entries[name], backend=args.backend, budget=budget,
            properties=args.properties)
        reports.append(report)
        all_mismatches.extend(mismatches)

    if args.format == "text":
        lines = []
        for report in reports:
            lines.append(report.table())
        for verdict, expected in all_mismatches:
            lines.append("MISMATCH: %s (expected %s)"
                         % (verdict.describe(), expected))
        if not all_mismatches:
            lines.append("all %d verdicts match the documented "
                         "expectations (backend: %s)"
                         % (sum(len(r) for r in reports),
                            "z3" if args.backend == "z3"
                            or (args.backend == "auto"
                                and z3_available())
                            else "enumeration"))
        _emit("\n".join(lines), args.output)
    elif args.format == "json":
        doc = {
            "backend": args.backend,
            "reports": [r.to_dict() for r in reports],
            "mismatches": [
                {"verdict": v.to_dict(), "expected": e}
                for v, e in all_mismatches],
        }
        _emit(json.dumps(doc, indent=2, sort_keys=True), args.output)
    else:  # sarif
        from repro.lint.output import to_sarif_dict
        doc = to_sarif_dict([r.to_lint_report() for r in reports],
                            extra_rules=VERIFY_RULE_METAS)
        _emit(json.dumps(doc, indent=2, sort_keys=True), args.output)

    return 1 if all_mismatches else 0


if __name__ == "__main__":          # pragma: no cover - module CLI
    sys.exit(main())
