"""The three bounded properties: overflow, limit cycle, response error.

Each ``prove_*`` function unrolls ``k`` clock steps of the exact
encoding (:mod:`repro.verify.encode`), poses the violation as a
:class:`~repro.verify.backends.VerifyProblem`, discharges it through the
selected backend and returns a :class:`~repro.verify.verdict.Verdict`:

* ``prove_no_overflow`` — no signal assignment overflows for any
  stimulus inside the declared :class:`~repro.verify.encode.Envelope`,
  over ``k`` steps from power-on.  "Overflow" is exactly the engine's
  notion: the rounded code falls outside the representable range (the
  condition under which ``Sig._record`` bumps ``overflow_count`` and
  logs to ``ctx.overflow_log``), for wrap, saturate and error types
  alike.
* ``prove_no_limit_cycle`` — with all inputs held at zero, no initial
  register state (ranging symbolically over the full declared words)
  revisits itself through a nonzero state within ``k`` steps.  Since
  any state *on* a limit cycle is a valid initial state, ``unsat``
  proves the absence of zero-input limit cycles of period ``<= k``.
* ``prove_response_error`` — for LTI designs only: the quantized output
  never deviates from the unquantized (float-reference) output by more
  than ``bound``, for ``k`` steps over the envelope.  Matches the
  engine's dual-track ``fx``/``fl`` semantics with on-grid stimulus.

Counterexamples are replayed through the interpreted engine before
being reported (see :mod:`repro.verify.replay`); a replay mismatch is a
verifier bug and raises instead of reporting.
"""

from __future__ import annotations

from repro.obs import counters as obs_counters
from repro.obs import trace as obs_trace
from repro.refine.flow import Annotations
from repro.sfg import trace
from repro.signal.context import DesignContext
from repro.verify import bv
from repro.verify.backends import VerifyBudget, VerifyProblem, \
    resolve_backend
from repro.verify.encode import EncodingUnsupported, Envelope, \
    StepEncoder, VerifyError, Wire
from repro.verify.replay import replay_counterexample
from repro.verify.verdict import COUNTEREXAMPLE, PROVED, UNKNOWN, \
    Counterexample, Verdict

__all__ = [
    "TracedDesign", "trace_design",
    "prove_no_overflow", "prove_no_limit_cycle", "prove_response_error",
]

#: samples to run under trace; structure converges after a few ticks.
TRACE_SAMPLES = 16


class TracedDesign:
    """A traced design plus the metadata the checker needs."""

    __slots__ = ("sfg", "name", "inputs", "output", "factory")

    def __init__(self, sfg, name, inputs, output=None, factory=None):
        self.sfg = sfg
        self.name = name
        self.inputs = tuple(inputs)
        self.output = output
        self.factory = factory


def trace_design(factory, samples=TRACE_SAMPLES, ranges=None,
                 dtypes=None, name=None):
    """Build and trace a Design factory for verification.

    Runs with sanitizing guards and recorded overflows (like the
    linter) — the checker judges the captured structure, not the traced
    sample values.
    """
    ctx = DesignContext("verify-trace", overflow_action="record",
                        guard_action="sanitize")
    with ctx:
        design = factory()
        design.build(ctx)
        Annotations(dtypes=dtypes or {}, ranges=ranges or {}).apply(ctx)
        with trace(ctx) as tracer:
            design.run(ctx, samples)
    return TracedDesign(tracer.sfg,
                        name or getattr(design, "name", "design"),
                        getattr(design, "inputs", ()),
                        getattr(design, "output", None),
                        factory)


def _as_traced(design):
    if isinstance(design, TracedDesign):
        return design
    if callable(design):
        return trace_design(design)
    raise VerifyError("expected a TracedDesign or a design factory, "
                      "got %r" % (design,))


def _default_code(spec):
    """Stimulus code used for inputs the model leaves unconstrained."""
    if spec.lo_code <= 0 <= spec.hi_code:
        return 0
    return spec.lo_code


def _stimulus_from_model(enc, model, k):
    """Per-input real-valued stimulus vectors from a backend model."""
    stimulus = {}
    for name, spec in enc.input_specs.items():
        series = []
        for t in range(k):
            code = model.get("%s@%d" % (name, t), _default_code(spec))
            series.append(code * 2.0 ** -spec.f)
        stimulus[name] = series
    return stimulus


def _unknown(prop, traced, k, backend_name, reason, envelope=None):
    obs_counters.inc("verify.unknown")
    return Verdict(prop, UNKNOWN, traced.name, k, backend_name,
                   reason=reason, envelope=envelope)


def _env_dict(envelope):
    if envelope is None:
        return None
    return {name: (lo, hi) for name, (lo, hi, _f)
            in envelope.bounds.items()}


def _check(backend, problem):
    obs_counters.inc("verify.checks")
    return backend.check(problem)


# -- property 1: overflow freedom -------------------------------------------


def prove_no_overflow(design, envelope, k, backend="auto", budget=None,
                      replay=True, dtypes=None):
    """Prove that no signal assignment overflows within ``k`` steps.

    ``design`` is a :class:`TracedDesign` or a Design factory;
    ``envelope`` an :class:`~repro.verify.encode.Envelope` (or a plain
    ``{input: (lo, hi)}`` dict).  Returns a
    :class:`~repro.verify.verdict.Verdict`.
    """
    traced = _as_traced(design)
    if not isinstance(envelope, Envelope):
        envelope = Envelope(envelope)
    budget = budget or VerifyBudget()
    be = resolve_backend(backend, budget)
    k = int(k)
    env_d = _env_dict(envelope)
    with obs_trace.span("verify.prove", property="no-overflow",
                        design=traced.name, k=k, backend=be.name):
        try:
            enc = StepEncoder(traced.sfg, traced.inputs, envelope,
                              dtypes=dtypes, max_bits=budget.max_bits)
            state = enc.initial_state()
            events = []
            for t in range(k):
                ins = {name: enc.input_var(name, t)
                       for name in enc.input_specs}
                state, _sigs = enc.step(state, ins, events,
                                        step_index=t)
        except EncodingUnsupported as exc:
            return _unknown("no-overflow", traced, k, be.name, str(exc),
                            env_d)
        violation = bv.any_of(e.overflowed for e in events)
        result = _check(be, VerifyProblem(violation))
        if result.status == "unsat":
            obs_counters.inc("verify.proved")
            return Verdict(
                "no-overflow", PROVED, traced.name, k, be.name,
                message="%d quantization steps cannot overflow for the "
                        "declared envelope" % len(events),
                stats=result.stats, envelope=env_d)
        if result.status == "unknown":
            return _unknown("no-overflow", traced, k, be.name,
                            result.reason, env_d)
        cex = _overflow_counterexample(enc, events, result.model, k)
        cex.detail = ("signal %r overflows at step %d with incoming "
                      "value %r" % (cex.signal, cex.step, cex.value))
        if replay:
            _confirm_overflow_replay(enc, cex)
        obs_counters.inc("verify.counterexample")
        return Verdict("no-overflow", COUNTEREXAMPLE, traced.name, k,
                       be.name, message=cex.detail, counterexample=cex,
                       stats=result.stats, envelope=env_d)


def _overflow_counterexample(enc, events, model, k):
    """Locate the first violating quantization under a model."""
    ev = bv.Evaluator([e.overflowed for e in events]
                      + [e.incoming.code for e in events])
    env = dict(model)
    for name, spec in enc.input_specs.items():
        for t in range(k):
            env.setdefault("%s@%d" % (name, t), _default_code(spec))
    view = ev.run(env)
    hit = None
    for e in sorted(events, key=lambda e: e.step):
        if view[e.overflowed]:
            hit = e
            break
    if hit is None:                         # pragma: no cover - sat => hit
        raise VerifyError("backend reported sat but no quantization "
                          "event is violated under its model")
    value = view[hit.incoming.code] * 2.0 ** -hit.incoming.f
    return Counterexample(_stimulus_from_model(enc, env, k), {},
                          signal=hit.signal, step=hit.step, value=value)


def _confirm_overflow_replay(enc, cex):
    """Replay and demand the bit-exact overflow; else raise."""
    obs_counters.inc("verify.replays")
    res = replay_counterexample(enc, cex, n_samples=cex.step + 1)
    if not res.completed:
        raise VerifyError("counterexample replay aborted: %s"
                          % res.outcome.error)
    events = [e for e in res.overflow_events(cex.signal)
              if e[0] == cex.step]
    if not events:
        raise VerifyError(
            "encoder/engine drift: predicted overflow of %r at step %d "
            "did not reproduce in the interpreted engine"
            % (cex.signal, cex.step))
    if all(e[2] != cex.value for e in events):
        raise VerifyError(
            "encoder/engine drift: overflow of %r at step %d "
            "reproduced with incoming value %r, model predicted %r"
            % (cex.signal, cex.step, events[0][2], cex.value))
    cex.replayed = True


# -- property 2: zero-input limit cycles ------------------------------------


def prove_no_limit_cycle(design, k, backend="auto", budget=None,
                         replay=True, dtypes=None):
    """Prove absence of zero-input limit cycles of period ``<= k``.

    Registers range symbolically over their full declared words; all
    inputs are held at zero.  Every register must carry a dtype (the
    state space must be finite and declared), else ``UNKNOWN``.
    """
    traced = _as_traced(design)
    budget = budget or VerifyBudget()
    be = resolve_backend(backend, budget)
    k = int(k)
    with obs_trace.span("verify.prove", property="no-limit-cycle",
                        design=traced.name, k=k, backend=be.name):
        try:
            enc = StepEncoder(traced.sfg, traced.inputs, envelope=None,
                              dtypes=dtypes, max_bits=budget.max_bits)
            reg_names = sorted(enc.states)
            if not reg_names:
                obs_counters.inc("verify.proved")
                return Verdict("no-limit-cycle", PROVED, traced.name, k,
                               be.name,
                               message="design is stateless")
            init = {name: enc.state_var(name) for name in reg_names}
            zero_in = {name: Wire(bv.const(0), 0)
                       for name in traced.inputs}
            states = [init]
            for t in range(k):
                nxt, _sigs = enc.step(states[-1], zero_in,
                                      step_index=t)
                states.append(nxt)
        except EncodingUnsupported as exc:
            return _unknown("no-limit-cycle", traced, k, be.name,
                            str(exc))

        def state_eq(si, sj):
            return bv.all_of(bv.eq(si[n].code, sj[n].code)
                             for n in reg_names)

        def state_nonzero(s):
            return bv.any_of(bv.ne(s[n].code, bv.const(0))
                             for n in reg_names)

        pair_conds = []
        for i in range(k + 1):
            for j in range(i + 1, k + 1):
                seg = bv.any_of(state_nonzero(states[m])
                                for m in range(i, j))
                pair_conds.append((i, j,
                                   bv.band(state_eq(states[i],
                                                    states[j]), seg)))
        violation = bv.any_of(c for _i, _j, c in pair_conds)
        result = _check(be, VerifyProblem(violation))
        if result.status == "unsat":
            obs_counters.inc("verify.proved")
            return Verdict(
                "no-limit-cycle", PROVED, traced.name, k, be.name,
                message="no zero-input state orbit of period <= %d "
                        "revisits a nonzero state" % k)
        if result.status == "unknown":
            return _unknown("no-limit-cycle", traced, k, be.name,
                            result.reason)
        cex = _limit_cycle_counterexample(enc, reg_names, states,
                                          pair_conds, result.model,
                                          traced.inputs, k)
        if replay:
            _confirm_limit_cycle_replay(enc, reg_names, cex, k)
        obs_counters.inc("verify.counterexample")
        return Verdict("no-limit-cycle", COUNTEREXAMPLE, traced.name, k,
                       be.name, message=cex.detail, counterexample=cex,
                       stats=result.stats)


def _limit_cycle_counterexample(enc, reg_names, states, pair_conds,
                                model, inputs, k):
    roots = [c for _i, _j, c in pair_conds]
    state_codes = [[s[n].code for n in reg_names] for s in states]
    ev = bv.Evaluator(roots + [c for row in state_codes for c in row])
    env = dict(model)
    for name in reg_names:
        env.setdefault("%s@s0" % name, 0)
    view = ev.run(env)
    pair = None
    for (i, j, cond) in pair_conds:
        if view[cond]:
            pair = (i, j)
            break
    if pair is None:                        # pragma: no cover - sat => pair
        raise VerifyError("backend reported sat but no state pair "
                          "coincides under its model")
    i, j = pair
    init_state = {
        name: view[states[0][name].code] * 2.0 ** -states[0][name].f
        for name in reg_names}
    orbit = [
        {name: view[states[t][name].code] * 2.0 ** -states[t][name].f
         for name in reg_names}
        for t in range(len(states))]
    return Counterexample(
        {name: [0.0] * k for name in inputs}, init_state,
        signal=reg_names[0] if len(reg_names) == 1 else None,
        step=j,
        value=orbit[i],
        detail="zero-input state orbit returns to step-%d state at "
               "step %d through a nonzero state (period %d)"
               % (i, j, j - i))


def _confirm_limit_cycle_replay(enc, reg_names, cex, k):
    """Replay the orbit and demand a nonzero state revisit; else raise."""
    obs_counters.inc("verify.replays")
    res = replay_counterexample(enc, cex, n_samples=k)
    if not res.completed:
        raise VerifyError("counterexample replay aborted: %s"
                          % res.outcome.error)
    # Reconstruct the state sequence: s_0 is the init, s_{t+1} is the
    # pending value stored at step t (held value when never assigned).
    seqs = {}
    for name in reg_names:
        stored = res.stored_values(name)
        init = float(res.design._sigs[name].init_value)
        if enc.states[name].dtype is not None:
            init = enc.states[name].dtype.saturating.quantize(init)
        seq = [init]
        for t in range(k):
            seq.append(stored[t] if t < len(stored) else seq[-1])
        seqs[name] = seq
    found = False
    for i in range(k + 1):
        for j in range(i + 1, k + 1):
            if all(seqs[n][i] == seqs[n][j] for n in reg_names) and \
                    any(seqs[n][m] != 0.0 for n in reg_names
                        for m in range(i, j)):
                found = True
                break
        if found:
            break
    if not found:
        raise VerifyError(
            "encoder/engine drift: the modelled zero-input limit cycle "
            "did not reproduce in the interpreted engine")
    cex.replayed = True


# -- property 3: LTI response error ------------------------------------------


def prove_response_error(design, bound, k, envelope, backend="auto",
                         budget=None, dtypes=None):
    """Prove ``|y_fx - y_ref| <= bound`` for ``k`` steps (LTI designs).

    The reference track re-executes the same dataflow with every
    quantizer removed — the engine's float (``fl``) track — sharing the
    on-grid stimulus, so the bound covers the error *introduced by the
    datapath quantization*.  Nonlinear ops (``select``, ``abs``,
    comparisons, signal-by-signal multiply, …) make the design non-LTI
    and yield ``UNKNOWN``.
    """
    traced = _as_traced(design)
    if traced.output is None:
        raise VerifyError("design %r declares no output signal"
                          % traced.name)
    if not isinstance(envelope, Envelope):
        envelope = Envelope(envelope)
    budget = budget or VerifyBudget()
    be = resolve_backend(backend, budget)
    k = int(k)
    bound = float(bound)
    if bound < 0.0:
        raise VerifyError("error bound must be >= 0, got %r" % bound)
    env_d = _env_dict(envelope)
    with obs_trace.span("verify.prove", property="response-error",
                        design=traced.name, k=k, backend=be.name):
        try:
            enc = StepEncoder(traced.sfg, traced.inputs, envelope,
                              dtypes=dtypes, max_bits=budget.max_bits,
                              require_lti=True)
            bound_w = enc.exact_wire(bound, "error bound")
            state_q = enc.initial_state()
            state_r = {name: enc.exact_wire(
                enc.states[name].init_value, "init of %r" % name)
                for name in enc.states}
            step_conds = []
            diffs = []
            for t in range(k):
                ins = {name: enc.input_var(name, t)
                       for name in enc.input_specs}
                state_q, sigs_q = enc.step(state_q, ins, step_index=t)
                state_r, sigs_r = enc.step(state_r, ins, step_index=t,
                                           quantized=False)
                wq = sigs_q[traced.output]
                wr = sigs_r[traced.output]
                f = max(wq.f, wr.f, bound_w.f)
                dq = bv.shl(wq.code, f - wq.f)
                dr = bv.shl(wr.code, f - wr.f)
                db = bv.shl(bound_w.code, f - bound_w.f)
                diff = bv.sub(dq, dr)
                enc._gate(diff, "output error at step %d" % t)
                diffs.append((diff, f))
                step_conds.append(bv.bor(bv.gt(diff, db),
                                         bv.lt(diff, bv.neg(db))))
        except EncodingUnsupported as exc:
            return _unknown("response-error", traced, k, be.name,
                            str(exc), env_d)
        violation = bv.any_of(step_conds)
        result = _check(be, VerifyProblem(violation))
        if result.status == "unsat":
            obs_counters.inc("verify.proved")
            return Verdict(
                "response-error", PROVED, traced.name, k, be.name,
                message="|%s_fx - %s_ref| <= %r holds for every "
                        "envelope stimulus"
                        % (traced.output, traced.output, bound),
                stats=result.stats, envelope=env_d)
        if result.status == "unknown":
            return _unknown("response-error", traced, k, be.name,
                            result.reason, env_d)
        ev = bv.Evaluator([c for c in step_conds]
                          + [d for d, _f in diffs])
        env = dict(result.model)
        for name, spec in enc.input_specs.items():
            for t in range(k):
                env.setdefault("%s@%d" % (name, t),
                               _default_code(spec))
        view = ev.run(env)
        step = next(t for t, c in enumerate(step_conds) if view[c])
        diff, f = diffs[step]
        err = view[diff] * 2.0 ** -f
        cex = Counterexample(
            _stimulus_from_model(enc, env, k), {},
            signal=traced.output, step=step, value=err,
            detail="output error %r at step %d exceeds bound %r"
                   % (err, step, bound))
        obs_counters.inc("verify.counterexample")
        return Verdict("response-error", COUNTEREXAMPLE, traced.name, k,
                       be.name, message=cex.detail, counterexample=cex,
                       stats=result.stats, envelope=env_d)
