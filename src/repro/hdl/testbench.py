"""Self-checking VHDL testbench generation.

The refinement simulation is bit-true to the generated RTL (same
quantize-on-assign semantics), so a watched simulation run doubles as a
golden vector set: this module turns recorded input/output histories
into a VHDL testbench that drives the entity with the input codes and
asserts the expected output codes cycle by cycle.
"""

from __future__ import annotations

from repro.core.errors import DesignError
from repro.hdl.vhdlgen import PACKAGE_NAME, vhdl_identifier

__all__ = ["generate_testbench", "collect_vectors"]


def collect_vectors(ctx, input_names, output_names, max_vectors=None):
    """Extract aligned stimulus/expected vectors from watched signals.

    Every named signal must have been created with ``.watch()`` before
    the simulation ran; histories are truncated to the shortest one.
    """
    histories = {}
    for name in list(input_names) + list(output_names):
        sig = ctx.get(name)
        if sig.history is None:
            raise DesignError("signal %r was not watched; call .watch() "
                              "before simulating" % name)
        histories[name] = [fx for fx, _fl in sig.history]
    n = min(len(h) for h in histories.values())
    if max_vectors is not None:
        n = min(n, max_vectors)
    return {name: h[:n] for name, h in histories.items()}, n


def _code(value, dtype):
    code = int(round(value * (2.0 ** dtype.f)))
    return code


def generate_testbench(entity_name, vectors, types, input_names,
                       output_names, clock="clk", reset="rst",
                       tb_suffix="_tb", period_ns=10):
    """Emit a self-checking testbench for ``entity_name``.

    ``vectors`` maps signal name -> list of real values (as produced by
    :func:`collect_vectors`); ``types`` maps signal name -> DType.
    """
    if not input_names or not output_names:
        raise DesignError("testbench needs at least one input and output")
    n = min(len(vectors[name]) for name in
            list(input_names) + list(output_names))
    if n == 0:
        raise DesignError("no vectors to replay")

    ent = vhdl_identifier(entity_name)
    tb = ent + tb_suffix

    decls = []
    port_map = ["      %s => %s" % (clock, clock),
                "      %s => %s" % (reset, reset)]
    for name in input_names:
        dt = types[name]
        ident = vhdl_identifier(name)
        decls.append("  signal %s : signed(%d downto 0) := (others => '0');"
                     % (ident, dt.n - 1))
        port_map.append("      %s => %s" % (ident, ident))
    for name in output_names:
        dt = types[name]
        ident = vhdl_identifier(name)
        decls.append("  signal %s : signed(%d downto 0);"
                     % (ident, dt.n - 1))
        port_map.append("      %s => %s" % (ident, ident))

    # ROMs of stimulus and expected codes.
    roms = []
    for name in input_names + output_names:
        dt = types[name]
        ident = vhdl_identifier(name)
        codes = ", ".join(str(_code(v, dt)) for v in vectors[name][:n])
        roms.append(
            "  type t_%s_rom is array (0 to %d) of integer;\n"
            "  constant %s_rom : t_%s_rom := (%s);"
            % (ident, n - 1, ident, ident, codes))

    drive = "\n".join(
        "        %s <= to_signed(%s_rom(i), %d);"
        % (vhdl_identifier(name), vhdl_identifier(name),
           types[name].n)
        for name in input_names)
    checks = "\n".join(
        "        assert %s = to_signed(%s_rom(i), %d)\n"
        "          report \"mismatch on %s at vector \" & integer'image(i)\n"
        "          severity error;"
        % (vhdl_identifier(name), vhdl_identifier(name),
           types[name].n, vhdl_identifier(name))
        for name in output_names)

    return """\
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.%(pkg)s.all;

entity %(tb)s is
end entity %(tb)s;

architecture sim of %(tb)s is
  signal %(clk)s : std_logic := '0';
  signal %(rst)s : std_logic := '1';
%(decls)s
%(roms)s
begin
  %(clk)s <= not %(clk)s after %(half)d ns;

  dut : entity work.%(ent)s
    port map (
%(ports)s
    );

  stimulus : process
  begin
    wait for %(period)d ns;
    %(rst)s <= '0';
    for i in 0 to %(last)d loop
%(drive)s
      wait until rising_edge(%(clk)s);
      wait for 1 ns;
%(checks)s
    end loop;
    report "testbench completed: %(n)d vectors" severity note;
    wait;
  end process;
end architecture sim;
""" % {
        "pkg": PACKAGE_NAME,
        "tb": tb,
        "ent": ent,
        "clk": clock,
        "rst": reset,
        "decls": "\n".join(decls),
        "roms": "\n".join(roms),
        "ports": ",\n".join(port_map),
        "drive": drive,
        "checks": checks,
        "half": period_ns // 2,
        "period": period_ns,
        "last": n - 1,
        "n": n,
    }
