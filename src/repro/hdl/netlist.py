"""RTL netlist extraction from a traced signal flow graph.

Bridges the refinement result and the VHDL generator: every signal gets
its synthesized :class:`DType`, every operation node gets a derived
intermediate format wide enough to hold its exact result (no rounding
inside expressions — quantization happens only at signal assignment,
matching the simulation semantics).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core import word
from repro.core.dtype import DType
from repro.core.errors import DesignError

__all__ = ["Net", "OpInstance", "Netlist", "build_netlist",
           "UnsupportedOpError", "derive_op_dtype", "const_dtype"]


class UnsupportedOpError(DesignError):
    """The traced operation has no RTL mapping (e.g. division)."""


def const_dtype(value, max_frac_bits=32):
    """Minimal two's-complement format holding a literal exactly-ish."""
    f = word.needed_frac_bits(value, cap=max_frac_bits)
    msb = word.required_msb(min(value, 0.0), max(value, 0.0))
    if msb is None:
        msb = 0
    return DType("const", msb + f + 1, f, "tc", "wrap", "round")


def derive_op_dtype(label, operand_dtypes):
    """Exact (lossless) result format of one operation."""
    if label in ("add", "sub"):
        a, b = operand_dtypes
        f = max(a.f, b.f)
        msb = max(a.msb, b.msb) + 1
        return DType(label, msb + f + 1, f, "tc", "wrap", "round")
    if label == "mul":
        a, b = operand_dtypes
        f = a.f + b.f
        msb = a.msb + b.msb + 1
        return DType(label, msb + f + 1, f, "tc", "wrap", "round")
    if label in ("neg", "abs"):
        (a,) = operand_dtypes
        return DType(label, a.n + 1, a.f, "tc", "wrap", "round")
    if label in ("min", "max"):
        a, b = operand_dtypes
        f = max(a.f, b.f)
        msb = max(a.msb, b.msb)
        return DType(label, msb + f + 1, f, "tc", "wrap", "round")
    if label in ("gt", "ge", "lt", "le"):
        return DType(label, 2, 0, "tc", "wrap", "round")
    if label == "select":
        branches = operand_dtypes[-2:]
        f = max(d.f for d in branches)
        msb = max(d.msb for d in branches)
        return DType(label, msb + f + 1, f, "tc", "wrap", "round")
    if label.startswith("shl") or label.startswith("shr"):
        (a,) = operand_dtypes
        k = int(label[3:]) * (1 if label.startswith("shl") else -1)
        return DType(label, a.n, max(0, a.f - k), "tc", "wrap", "round")
    cast_dt = DType.from_cast_label(label)
    if cast_dt is not None:
        return cast_dt
    if label == "div":
        raise UnsupportedOpError(
            "division has no direct RTL mapping; restructure the design "
            "(reciprocal LUT / shift approximation) before HDL generation")
    raise UnsupportedOpError("no RTL mapping for traced op %r" % label)


@dataclass
class Net:
    """One named signal of the netlist."""

    name: str
    dtype: DType
    is_register: bool
    is_input: bool
    is_output: bool
    driver: object = None   # Node driving this net (None for inputs)


@dataclass
class OpInstance:
    """One operation with resolved input/result formats."""

    node: object
    label: str
    operands: list          # list of Node
    dtype: DType


class Netlist:
    """Typed view of a traced SFG, ready for HDL emission."""

    def __init__(self, sfg, nets, ops, consts):
        self.sfg = sfg
        self.nets = nets          # name -> Net
        self.ops = ops            # node -> OpInstance
        self.consts = consts      # node -> (value, DType)

    def inputs(self):
        return [n for n in self.nets.values() if n.is_input]

    def outputs(self):
        return [n for n in self.nets.values() if n.is_output]

    def registers(self):
        return [n for n in self.nets.values() if n.is_register]

    def dtype_of(self, node):
        if node.kind == "const":
            return self.consts[node][1]
        if node.kind == "op":
            return self.ops[node].dtype
        return self.nets[node.label].dtype


def build_netlist(sfg, types, inputs=(), outputs=(), max_const_frac=32):
    """Resolve formats for every node of ``sfg``.

    ``types`` maps every signal name to its :class:`DType`; ``inputs``
    and ``outputs`` name the port signals.
    """
    inputs = set(inputs)
    outputs = set(outputs)
    nets = {}
    for node in sfg.signal_nodes():
        name = node.label
        if name not in types:
            raise DesignError("no fixed-point type for signal %r" % name)
        drivers = sfg.preds(node)
        nets[name] = Net(name, types[name], node.kind == "reg",
                         name in inputs, name in outputs,
                         driver=drivers[-1] if drivers else None)

    consts = {}
    ops = {}
    for node in sfg.condensed_order():
        if node.kind == "const":
            consts[node] = (node.payload,
                            const_dtype(node.payload, max_const_frac))
        elif node.kind == "op":
            operand_nodes = sfg.preds(node)
            operand_types = []
            for p in operand_nodes:
                if p.kind == "const":
                    operand_types.append(consts[p][1])
                elif p.kind == "op":
                    if p not in ops:
                        raise DesignError(
                            "operation %r feeds %r through a combinational "
                            "cycle" % (p.label, node.label))
                    operand_types.append(ops[p].dtype)
                else:
                    operand_types.append(nets[p.label].dtype)
            ops[node] = OpInstance(node, node.label, operand_nodes,
                                   derive_op_dtype(node.label,
                                                   operand_types))
    return Netlist(sfg, nets, ops, consts)
