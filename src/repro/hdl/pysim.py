"""Bit-true Python evaluation of an extracted netlist.

The VHDL generator maps every operation to exact intermediate formats
and applies rounding/saturation only at signal assignments.  This module
evaluates the *same netlist* with the *same integer-code semantics* in
Python, which gives an executable specification of the generated RTL:

* cross-checking it against the signal-layer simulation proves the
  netlist extraction and format derivation are bit-true
  (``tests/test_pysim.py`` does exactly that for whole designs), and
* it doubles as a golden model when no VHDL simulator is available.

All values are integer codes; a code plus its node's
:class:`~repro.core.dtype.DType` defines the real value
``code * 2**-f``.
"""

from __future__ import annotations

from repro.core import word
from repro.core.errors import DesignError
from repro.hdl.netlist import build_netlist

__all__ = ["NetlistSimulator"]


def _align_code(code, from_dt, to_f):
    """Shift a code between fractional formats (exact, to_f >= from_f)."""
    shift = to_f - from_dt.f
    if shift >= 0:
        return code << shift
    raise DesignError("lossy alignment inside an expression")


def _quantize_code(code, src_dt, dst_dt):
    """Rounding + overflow handling, mirroring Sig.assign semantics."""
    shift = src_dt.f - dst_dt.f
    if shift > 0:
        if dst_dt.lsbspec == "floor":
            code >>= shift            # arithmetic shift: floor
        elif dst_dt.lsbspec == "round":
            code = (code + (1 << (shift - 1))) >> shift
        elif dst_dt.lsbspec == "trunc":
            q = 1 << shift
            code = -((-code) >> shift) if code < 0 else code >> shift
            del q
        else:  # ceil
            code = -((-code) >> shift)
    elif shift < 0:
        code <<= -shift
    if dst_dt.msbspec == "wrap":
        return word.wrap_code(code, dst_dt.n, dst_dt.signed)
    # saturate and error both clamp in hardware.
    return word.saturate_code(code, dst_dt.n, dst_dt.signed)


class NetlistSimulator:
    """Cycle-accurate integer-code evaluation of a netlist."""

    def __init__(self, sfg, types, inputs, outputs):
        self.netlist = build_netlist(sfg, types, inputs, outputs)
        self.sfg = sfg
        self.input_names = list(inputs)
        self.output_names = list(outputs)
        self._regs = {}       # name -> current code
        self._comb_order = self._schedule()
        self.reset()

    # -- construction -------------------------------------------------------

    def _schedule(self):
        """Combinational signal nets in evaluation order.

        Registers read old values, so only the combinational nets need
        ordering; the traced node ids are creation-ordered, which is a
        topological order for the expression DAG.
        """
        order = []
        for node in self.sfg.condensed_order():
            if node.kind == "sig":
                net = self.netlist.nets[node.label]
                if not net.is_input and net.driver is not None:
                    order.append(net)
        return order

    def reset(self):
        """Power-on: every register and signal to zero."""
        self._values = {name: 0 for name in self.netlist.nets}
        self._regs = {net.name: 0 for net in self.netlist.registers()}
        return self

    # -- evaluation -----------------------------------------------------------

    def _eval(self, node, cache):
        if node in cache:
            return cache[node]
        if node.kind == "const":
            value, dt = self.netlist.consts[node]
            code = int(round(value * (2.0 ** dt.f)))
        elif node.kind in ("sig", "reg"):
            code = self._values[node.label]
        else:
            code = self._eval_op(node, cache)
        cache[node] = code
        return code

    def _eval_op(self, node, cache):
        op = self.netlist.ops[node]
        dt = op.dtype
        ins = []
        for p in op.operands:
            ins.append((self._eval(p, cache), self.netlist.dtype_of(p)))
        label = op.label

        if label in ("add", "sub"):
            a = _align_code(ins[0][0], ins[0][1], dt.f)
            b = _align_code(ins[1][0], ins[1][1], dt.f)
            return a + b if label == "add" else a - b
        if label == "mul":
            return ins[0][0] * ins[1][0]
        if label == "neg":
            return -_align_code(ins[0][0], ins[0][1], dt.f)
        if label == "abs":
            return abs(_align_code(ins[0][0], ins[0][1], dt.f))
        if label in ("min", "max"):
            a = _align_code(ins[0][0], ins[0][1], dt.f)
            b = _align_code(ins[1][0], ins[1][1], dt.f)
            return min(a, b) if label == "min" else max(a, b)
        if label in ("gt", "ge", "lt", "le"):
            f = max(ins[0][1].f, ins[1][1].f)
            a = _align_code(ins[0][0], ins[0][1], f)
            b = _align_code(ins[1][0], ins[1][1], f)
            taken = {"gt": a > b, "ge": a >= b,
                     "lt": a < b, "le": a <= b}[label]
            return 1 if taken else 0
        if label == "select":
            if len(ins) != 3:
                raise DesignError("select without a traced condition")
            cond = ins[0][0]
            pick = ins[1] if cond != 0 else ins[2]
            return _align_code(pick[0], pick[1], dt.f)
        if label.startswith("shl"):
            return ins[0][0]           # format change only (f shrinks)
        if label.startswith("shr"):
            return ins[0][0]           # format change only (f grows)
        if label.startswith("cast<"):
            return _quantize_code(ins[0][0], ins[0][1], dt)
        raise DesignError("cannot evaluate traced op %r" % label)

    def step(self, inputs):
        """One clock cycle.

        ``inputs`` maps input names to *real values* (quantized through
        the input types here).  Returns ``{output_name: real_value}``.
        """
        # Apply inputs.
        for name in self.input_names:
            dt = self.netlist.nets[name].dtype
            code = int(round(float(inputs[name]) * (2.0 ** dt.f)))
            code = word.saturate_code(code, dt.n, dt.signed)
            self._values[name] = code

        cache = {}
        # Combinational nets settle in dependency order.
        for net in self._comb_order:
            code = self._eval(net.driver, cache)
            self._values[net.name] = _quantize_code(
                code, self.netlist.dtype_of(net.driver), net.dtype)

        # Registers capture their next values...
        next_regs = {}
        for net in self.netlist.registers():
            if net.driver is None:
                continue
            code = self._eval(net.driver, cache)
            next_regs[net.name] = _quantize_code(
                code, self.netlist.dtype_of(net.driver), net.dtype)

        out = {name: self.value_of(name) for name in self.output_names}

        # ...and commit at the clock edge.
        for name, code in next_regs.items():
            self._values[name] = code
        return out

    # -- observation -----------------------------------------------------------

    def code_of(self, name):
        """Current integer code of a net."""
        return self._values[name]

    def value_of(self, name):
        """Current real value of a net."""
        dt = self.netlist.nets[name].dtype
        return self._values[name] * (2.0 ** -dt.f)

    def run(self, input_series):
        """Feed a sequence of ``{name: value}`` dicts; collect outputs."""
        return [self.step(frame) for frame in input_series]
