"""VHDL code generation for refined designs.

Generates synthesizable VHDL-93 from a traced signal flow graph and the
fixed-point types produced by the refinement flow:

* a support package (``fixed_refine_pkg``) with resize/round/saturate
  helpers over ``signed`` vectors,
* one entity per design: input/output ports, one internal ``signed``
  signal per refined net, concurrent assignments for the combinational
  operations and a single clocked process for all registers.

Expressions are evaluated in exact intermediate formats (see
:mod:`repro.hdl.netlist`); rounding/overflow handling is applied only at
signal assignments, mirroring the simulator's quantize-on-assign
semantics, so the generated RTL is bit-true to the verified fixed-point
simulation.
"""

from __future__ import annotations

from repro.core.errors import DesignError
from repro.hdl.netlist import build_netlist

__all__ = ["fixed_point_package", "generate_entity", "generate_design",
           "vhdl_identifier"]

PACKAGE_NAME = "fixed_refine_pkg"


def vhdl_identifier(name):
    """Map a signal name (may contain ``[]``, ``.``) to a VHDL identifier."""
    out = []
    for ch in name:
        if ch.isalnum():
            out.append(ch)
        elif ch == "_" :
            out.append(ch)
        elif ch in "[].- ":
            out.append("_")
    ident = "".join(out).strip("_")
    while "__" in ident:
        ident = ident.replace("__", "_")
    if not ident or not ident[0].isalpha():
        ident = "s_" + ident
    return ident.lower()


def fixed_point_package():
    """Support package: align / round / saturate over ``signed``."""
    return """\
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

package %(pkg)s is
  -- Shift a signed value left (positive k) or right (negative k).
  function f_shift(v : signed; k : integer) return signed;
  -- Round-half-up by dropping s fraction bits (s >= 0).
  function f_round(v : signed; s : natural) return signed;
  -- Truncate toward minus infinity by dropping s fraction bits.
  function f_floor(v : signed; s : natural) return signed;
  -- Saturate to n bits.
  function f_saturate(v : signed; n : positive) return signed;
  -- Wrap (drop high bits) to n bits.
  function f_wrap(v : signed; n : positive) return signed;
end package %(pkg)s;

package body %(pkg)s is

  function f_shift(v : signed; k : integer) return signed is
  begin
    if k >= 0 then
      return shift_left(resize(v, v'length + k), k);
    else
      return shift_right(v, -k)(v'length - 1 downto 0);
    end if;
  end function;

  function f_round(v : signed; s : natural) return signed is
    variable w : signed(v'length downto 0);
  begin
    if s = 0 then
      return v;
    end if;
    w := resize(v, v'length + 1) + to_signed(2 ** (s - 1), v'length + 1);
    return w(w'length - 1 downto s);
  end function;

  function f_floor(v : signed; s : natural) return signed is
  begin
    if s = 0 then
      return v;
    end if;
    return v(v'length - 1 downto s);
  end function;

  function f_saturate(v : signed; n : positive) return signed is
    constant VMAX : signed(n - 1 downto 0) :=
      (n - 1 => '0', others => '1');
    constant VMIN : signed(n - 1 downto 0) :=
      (n - 1 => '1', others => '0');
  begin
    if v > resize(VMAX, v'length) then
      return VMAX;
    elsif v < resize(VMIN, v'length) then
      return VMIN;
    else
      return v(n - 1 downto 0);
    end if;
  end function;

  function f_wrap(v : signed; n : positive) return signed is
  begin
    return v(n - 1 downto 0);
  end function;

end package body %(pkg)s;
""" % {"pkg": PACKAGE_NAME}


class _ExprEmitter:
    """Emits one VHDL expression per operation node."""

    def __init__(self, netlist):
        self.netlist = netlist
        self.lines = []
        self._emitted = {}

    def ref(self, node):
        """VHDL reference of a node's value (emitting it if needed)."""
        if node.kind == "const":
            value, dt = self.netlist.consts[node]
            code = int(round(value * (2.0 ** dt.f)))
            return "to_signed(%d, %d)" % (code, dt.n), dt
        if node.kind in ("sig", "reg"):
            net = self.netlist.nets[node.label]
            return vhdl_identifier(node.label), net.dtype
        return self._emit_op(node)

    def _align(self, expr, dt, target_f, target_n):
        """Resize/shift ``expr`` of format ``dt`` to (target_n, target_f)."""
        out = expr
        if dt.f != target_f:
            out = "f_shift(%s, %d)" % (out, target_f - dt.f)
            # f_shift right keeps width; left grows it; resize below fixes.
        return "resize(%s, %d)" % (out, target_n)

    def _emit_op(self, node):
        if node in self._emitted:
            return self._emitted[node]
        op = self.netlist.ops[node]
        dt = op.dtype
        name = "op_%d" % node.id
        ins = [self.ref(p) for p in op.operands]
        label = op.label

        if label in ("add", "sub"):
            a = self._align(ins[0][0], ins[0][1], dt.f, dt.n)
            b = self._align(ins[1][0], ins[1][1], dt.f, dt.n)
            rhs = "%s %s %s" % (a, "+" if label == "add" else "-", b)
        elif label == "mul":
            rhs = "resize(%s * %s, %d)" % (ins[0][0], ins[1][0], dt.n)
        elif label == "neg":
            rhs = "-resize(%s, %d)" % (ins[0][0], dt.n)
        elif label == "abs":
            rhs = "abs resize(%s, %d)" % (ins[0][0], dt.n)
        elif label in ("min", "max"):
            a = self._align(ins[0][0], ins[0][1], dt.f, dt.n)
            b = self._align(ins[1][0], ins[1][1], dt.f, dt.n)
            fn = "minimum" if label == "min" else "maximum"
            rhs = "%s(%s, %s)" % (fn, a, b)
        elif label == "select":
            cond = ins[0]
            a = self._align(ins[-2][0], ins[-2][1], dt.f, dt.n)
            b = self._align(ins[-1][0], ins[-1][1], dt.f, dt.n)
            if len(ins) == 3:
                rhs = ("%s when %s /= 0 else %s" % (a, cond[0], b))
            else:
                raise DesignError("select traced without a condition "
                                  "operand cannot be emitted")
        elif label in ("gt", "ge", "lt", "le"):
            width = max(ins[0][1].n, ins[1][1].n) + 2
            f = max(ins[0][1].f, ins[1][1].f)
            a = self._align(ins[0][0], ins[0][1], f, width)
            b = self._align(ins[1][0], ins[1][1], f, width)
            rel = {"gt": ">", "ge": ">=", "lt": "<", "le": "<="}[label]
            rhs = ("to_signed(1, 2) when %s %s %s else to_signed(0, 2)"
                   % (a, rel, b))
        elif label.startswith("shl") or label.startswith("shr"):
            k = int(label[3:]) * (1 if label.startswith("shl") else -1)
            rhs = "resize(f_shift(%s, %d), %d)" % (ins[0][0], k, dt.n)
        elif label.startswith("cast<"):
            rhs = self._quantize(ins[0][0], ins[0][1], dt)
        else:
            raise DesignError("cannot emit traced op %r" % label)

        self.lines.append("  %s <= %s;" % (name, rhs))
        decl = "  signal %s : signed(%d downto 0);" % (name, dt.n - 1)
        self._emitted[node] = (name, dt)
        self.op_decls.append(decl)
        return self._emitted[node]

    op_decls = None

    def _quantize(self, expr, src_dt, dst_dt):
        """Emit rounding + overflow handling into ``dst_dt``."""
        out = expr
        shift = src_dt.f - dst_dt.f
        if shift > 0:
            fn = "f_floor" if dst_dt.lsbspec == "floor" else "f_round"
            out = "%s(%s, %d)" % (fn, out, shift)
            width = src_dt.n - shift + (0 if dst_dt.lsbspec == "floor" else 1)
        elif shift < 0:
            out = "f_shift(%s, %d)" % (out, -shift)
            width = src_dt.n - shift
        else:
            width = src_dt.n
        if dst_dt.msbspec == "wrap":
            if width < dst_dt.n:
                out = "resize(%s, %d)" % (out, dst_dt.n)
            else:
                out = "f_wrap(%s, %d)" % (out, dst_dt.n)
        else:  # saturate and error both saturate in hardware
            out = "f_saturate(resize(%s, %d), %d)" % (out,
                                                      max(width, dst_dt.n) + 1,
                                                      dst_dt.n)
        return out


def generate_entity(name, sfg, types, inputs, outputs, clock="clk",
                    reset="rst"):
    """Generate the entity/architecture pair for one design."""
    netlist = build_netlist(sfg, types, inputs, outputs)
    emitter = _ExprEmitter(netlist)
    emitter.op_decls = []

    # Ports.
    port_lines = ["    %s : in std_logic;" % clock,
                  "    %s : in std_logic;" % reset]
    for net in netlist.inputs():
        port_lines.append("    %s : in signed(%d downto 0);"
                          % (vhdl_identifier(net.name), net.dtype.n - 1))
    for net in netlist.outputs():
        port_lines.append("    %s : out signed(%d downto 0);"
                          % (vhdl_identifier(net.name), net.dtype.n - 1))
    ports = "\n".join(port_lines).rstrip(";") + "\n"

    # Internal signals (inputs/outputs are ports; outputs need a shadow).
    decls = []
    for net in netlist.nets.values():
        if net.is_input:
            continue
        suffix = "_int" if net.is_output else ""
        decls.append("  signal %s%s : signed(%d downto 0);"
                     % (vhdl_identifier(net.name), suffix, net.dtype.n - 1))

    # Drivers.
    comb = []
    regs = []
    for net in netlist.nets.values():
        if net.is_input or net.driver is None:
            continue
        expr, src_dt = emitter.ref(net.driver)
        rhs = emitter._quantize(expr, src_dt, net.dtype)
        target = vhdl_identifier(net.name) + ("_int" if net.is_output else "")
        if net.is_register:
            regs.append("        %s <= %s;" % (target, rhs))
        else:
            comb.append("  %s <= %s;" % (target, rhs))

    out_assigns = ["  %s <= %s_int;" % (vhdl_identifier(n.name),
                                        vhdl_identifier(n.name))
                   for n in netlist.outputs()]

    reg_process = ""
    if regs:
        resets = []
        for net in netlist.registers():
            target = vhdl_identifier(net.name) + ("_int" if net.is_output
                                                  else "")
            resets.append("        %s <= (others => '0');" % target)
        reg_process = """
  registers : process (%(clk)s)
  begin
    if rising_edge(%(clk)s) then
      if %(rst)s = '1' then
%(resets)s
      else
%(assigns)s
      end if;
    end if;
  end process;
""" % {"clk": clock, "rst": reset,
       "resets": "\n".join(resets), "assigns": "\n".join(regs)}

    return """\
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.%(pkg)s.all;

entity %(name)s is
  port (
%(ports)s  );
end entity %(name)s;

architecture rtl of %(name)s is
%(decls)s
%(op_decls)s
begin
%(op_lines)s
%(comb)s
%(outs)s
%(regs)s
end architecture rtl;
""" % {
        "pkg": PACKAGE_NAME,
        "name": vhdl_identifier(name),
        "ports": ports,
        "decls": "\n".join(decls),
        "op_decls": "\n".join(emitter.op_decls),
        "op_lines": "\n".join(emitter.lines),
        "comb": "\n".join(comb),
        "outs": "\n".join(out_assigns),
        "regs": reg_process,
    }


def generate_design(name, sfg, types, inputs, outputs):
    """Package + entity in one string (ready to write to a ``.vhd``)."""
    return fixed_point_package() + "\n" + generate_entity(
        name, sfg, types, inputs, outputs)
