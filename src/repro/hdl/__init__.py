"""HDL back-end: VHDL generation for refined designs."""

from repro.hdl.netlist import (Net, Netlist, OpInstance, UnsupportedOpError,
                               build_netlist, const_dtype, derive_op_dtype)
from repro.hdl.pysim import NetlistSimulator
from repro.hdl.testbench import collect_vectors, generate_testbench
from repro.hdl.vhdlgen import (fixed_point_package, generate_design,
                               generate_entity, vhdl_identifier)

__all__ = [
    "Net",
    "Netlist",
    "OpInstance",
    "UnsupportedOpError",
    "build_netlist",
    "const_dtype",
    "derive_op_dtype",
    "fixed_point_package",
    "generate_entity",
    "generate_design",
    "vhdl_identifier",
    "collect_vectors",
    "generate_testbench",
    "NetlistSimulator",
]
